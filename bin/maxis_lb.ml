(* maxis_lb: command-line driver for the lower-bound constructions.

   Subcommands:
     build     construct an instance and print its census
     verify    check Properties 1-3 and the Definition-4 conditions
     bounds    print the Theorem 1/2 round bounds at given parameters
     figure    emit a paper figure's gadget as DOT
     simulate  run the Theorem-5 CONGEST simulation on an instance
     sweep     sweep t and print the closing gap ratio
     solve     solve one instance, printing the serve daemon's payload line
     serve     run the batched, budgeted, cache-backed solve daemon *)

open Cmdliner
module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module Family = Maxis_core.Family

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let alpha_arg =
  Arg.(value & opt int 1 & info [ "alpha" ] ~docv:"A" ~doc:"Code parameter alpha.")

let ell_arg =
  Arg.(value & opt int 4 & info [ "ell" ] ~docv:"L" ~doc:"Code parameter ell.")

let players_arg =
  Arg.(value & opt int 3 & info [ "t"; "players" ] ~docv:"T" ~doc:"Number of players.")

let seed_arg =
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let intersecting_arg =
  Arg.(
    value & flag
    & info [ "intersecting" ]
        ~doc:"Generate a uniquely-intersecting input (default: pairwise disjoint).")

let quadratic_arg =
  Arg.(
    value & flag
    & info [ "quadratic" ] ~doc:"Use the Section-5 quadratic family instead of the linear one.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan work out over $(docv) domains (default 1: fully sequential, \
           no domain spawns).  Output is byte-identical for every value.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Do not read or write the on-disk result cache under \
           results/cache/.")

(* ------------------------------------------------------------------ *)
(* Exit-code taxonomy (documented in docs/RESILIENCE.md and the man
   pages):
     0    success — every check passed / output produced
     2    a claim check ran to completion and the claimed bound is
          violated
     3    budget exhausted — some checks are inconclusive (certified
          intervals printed), none failed
     4    I/O error (cache, journal or output file) that survived the
          bounded retries
     124  command-line usage error (cmdliner's convention)
     130/143  interrupted by SIGINT/SIGTERM (after flushing the journal)
   Codes 2/3/4 never overlap: failure beats inconclusive, and an I/O
   error aborts the audit before it can conclude. *)

let exit_io_error = 4

let exits =
  Cmd.Exit.info 0 ~doc:"on success (all checks passed, where applicable)."
  :: Cmd.Exit.info 2
       ~doc:"when a claim check completed and the claimed bound is violated."
  :: Cmd.Exit.info 3
       ~doc:
         "when the compute budget was exhausted and some checks are \
          inconclusive (none failed); certified OPT intervals are printed."
  :: Cmd.Exit.info exit_io_error
       ~doc:"on a cache/journal/output I/O error that survived the retries."
  :: Cmd.Exit.defaults

(* I/O failures that survive Exec.Error's bounded retries surface here as
   a distinct exit code instead of a backtrace. *)
let with_io_guard f =
  try f () with
  | Exec.Error.Error k ->
      Format.eprintf "maxis_lb: %s@." (Exec.Error.to_string k);
      exit_io_error
  | Sys_error m ->
      Format.eprintf "maxis_lb: %s@." m;
      exit_io_error

(* Every parallel subcommand funnels through here so a bad --jobs is a
   usage error (cmdliner's 124), not an escaping Invalid_argument. *)
let with_pool_checked jobs f =
  if jobs < 1 then begin
    Format.eprintf "maxis_lb: --jobs must be >= 1 (got %d)@." jobs;
    exit 124
  end;
  Exec.Pool.with_pool ~jobs f

let make_cache ~no_cache =
  if no_cache then Exec.Cache.disabled () else Exec.Cache.create ()

(* ------------------------------------------------------------------ *)
(* Observability (docs/OBSERVABILITY.md)

   --metrics[=PATH] (or MAXIS_METRICS=PATH in the environment) exports
   the end-of-run Obs.Metrics snapshot as JSON lines, plus the span
   profile tree on stderr.  The export must never change results: all
   --metrics output goes to the file and stderr, stdout stays
   byte-identical — the parity test in test/test_cli.ml holds us to
   that. *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "MAXIS_METRICS")
        ~doc:
          "Export end-of-run metrics as JSON lines to $(docv) (default \
           results/metrics/<command>.jsonl when given without a value) \
           and print the span profile tree on stderr.  Never changes \
           stdout or results.")

let metrics_default_path cmd =
  Filename.concat (Filename.concat "results" "metrics") (cmd ^ ".jsonl")

let with_metrics ~cmd metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      let path = if path = "" then metrics_default_path cmd else path in
      Obs.Span.set_clock Unix.gettimeofday;
      Obs.Span.set_enabled true;
      let code = Obs.Span.with_span cmd f in
      with_io_guard (fun () ->
          Obs.Export.write_jsonl path (Obs.Metrics.snapshot ());
          Format.eprintf "metrics: wrote %s@." path;
          (match Obs.Span.roots () with
          | [] -> ()
          | roots -> Format.eprintf "profile:@.%a" Obs.Span.pp roots);
          code)

(* ------------------------------------------------------------------ *)
(* Budgets and journals *)

let budget_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-nodes" ] ~docv:"N"
        ~doc:
          "Cap every exact solve at $(docv) branch-and-bound nodes \
           (deterministic).  An exhausted solve degrades to a certified \
           interval lb <= OPT <= ub; checks it cannot decide exit with \
           code 3 instead of failing.")

let budget_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-seconds" ] ~docv:"S"
        ~doc:
          "Wall-clock deadline for the whole audit's solves (best-effort, \
           checked between branch-and-bound nodes; unlike --budget-nodes \
           the set of completed checks is not deterministic).")

let make_budget ~nodes ~seconds =
  match (nodes, seconds) with
  | None, None -> Exec.Budget.unlimited
  | _ ->
      Exec.Budget.create ?max_nodes:nodes ?deadline_s:seconds
        ~clock:Unix.gettimeofday ()

let run_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-id" ] ~docv:"ID"
        ~doc:
          "Journal completed cells under results/journal/$(docv).journal \
           so a killed run can be resumed with $(b,--resume).  Without \
           $(b,--resume) an existing journal of the same id is restarted \
           from scratch.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume the journal named by $(b,--run-id): cells it records \
           are not re-solved (their values re-materialize from the \
           cache), and the output is byte-identical to an uninterrupted \
           run.")

let make_journal ~run_id ~resume =
  match run_id with
  | None ->
      if resume then begin
        Format.eprintf "maxis_lb: --resume requires --run-id@.";
        exit 124
      end;
      Exec.Journal.disabled ()
  | Some run_id -> Exec.Journal.open_ ~resume ~run_id ()

(* On SIGINT/SIGTERM: the journal is already durable per cell, so just
   tell the user where the run stands and how to pick it up. *)
let install_termination journal =
  if Exec.Journal.enabled journal then
    Exec.Journal.on_termination (fun _signal ->
        Format.eprintf "@.maxis_lb: interrupted; journal: %a@."
          Exec.Journal.pp_stats journal;
        Format.eprintf
          "maxis_lb: resume with the same --run-id plus --resume@.")

let finish_journal journal =
  if Exec.Journal.enabled journal then
    Format.eprintf "journal: %a@." Exec.Journal.pp_stats journal;
  Exec.Journal.close journal

let params alpha ell players = P.make ~alpha ~ell ~players

let gen_instance p ~quadratic ~seed ~intersecting =
  let rng = Stdx.Prng.create seed in
  if quadratic then
    let x =
      Commcx.Inputs.gen_promise rng ~k:(QF.string_length p) ~t:p.P.players
        ~intersecting
    in
    (QF.instance p x, x)
  else
    let x =
      Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting
    in
    (LF.instance p x, x)

(* ------------------------------------------------------------------ *)
(* build *)

let build_cmd =
  let run alpha ell players seed intersecting quadratic solve metrics =
    with_metrics ~cmd:"build" metrics @@ fun () ->
    let p = params alpha ell players in
    let inst, x = gen_instance p ~quadratic ~seed ~intersecting in
    let g = inst.Family.graph in
    Format.printf "parameters: %a@." P.pp p;
    Format.printf "input: %a@." Commcx.Inputs.pp x;
    Format.printf "instance: %a@." Wgraph.Graph.pp g;
    Format.printf "cut: %d@." (Family.cut_size inst);
    Format.printf "diameter: %d@." (Wgraph.Metrics.diameter g);
    if solve then begin
      let sol = Mis.Exact.solve g in
      Format.printf "OPT: %d (B&B nodes: %d)@." sol.Mis.Exact.weight
        sol.Mis.Exact.nodes_explored
    end;
    0
  in
  let solve_arg =
    Arg.(value & flag & info [ "solve" ] ~doc:"Also solve MaxIS exactly.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Construct an instance and print its census.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ seed_arg
      $ intersecting_arg $ quadratic_arg $ solve_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify_cmd =
  let run alpha ell players seed samples jobs no_cache budget_nodes
      budget_seconds run_id resume metrics =
    with_metrics ~cmd:"verify" metrics @@ fun () ->
    with_io_guard @@ fun () ->
    let p = params alpha ell players in
    Format.printf "parameters: %a@." P.pp p;
    let cache = make_cache ~no_cache in
    let budget = make_budget ~nodes:budget_nodes ~seconds:budget_seconds in
    let journal = make_journal ~run_id ~resume in
    install_termination journal;
    let items =
      with_pool_checked jobs (fun pool ->
          Maxis_core.Verification.run ~seed ~samples ~pool ~cache ~budget
            ~journal p)
    in
    if Exec.Cache.enabled cache then
      Format.eprintf "cache: %a@." Exec.Cache.pp_stats (Exec.Cache.stats cache);
    finish_journal journal;
    List.iter
      (fun i -> Format.printf "%a@." Maxis_core.Verification.pp_item i)
      items;
    let count pred = List.length (List.filter pred items) in
    let code = Maxis_core.Verification.exit_code items in
    (match code with
    | 0 -> Format.printf "all %d checks passed@." (List.length items)
    | 2 -> Format.printf "%d FAILURES@." (count Maxis_core.Verification.failed)
    | _ ->
        Format.printf
          "%d checks inconclusive (budget exhausted), %d passed, none \
           failed@."
          (count Maxis_core.Verification.inconclusive)
          (count Maxis_core.Verification.passed));
    code
  in
  let samples_arg =
    Arg.(
      value & opt int 4
      & info [ "samples" ] ~docv:"N" ~doc:"Randomized-check repetitions.")
  in
  Cmd.v
    (Cmd.info "verify" ~exits
       ~doc:
         "Audit the code distance, Properties 1-3, Claims, Definition-4 \
          conditions and the Theorem-5 reduction at given parameters.  \
          Exits 0 when every check passes, 2 on a violated claim, 3 when \
          a compute budget left checks inconclusive, 4 on an I/O error.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ seed_arg $ samples_arg
      $ jobs_arg $ no_cache_arg $ budget_nodes_arg $ budget_seconds_arg
      $ run_id_arg $ resume_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* bounds *)

let bounds_cmd =
  let run alpha ell players epsilon jobs no_cache run_id resume metrics =
    with_metrics ~cmd:"bounds" metrics @@ fun () ->
    with_io_guard @@ fun () ->
    let p = params alpha ell players in
    let cache = make_cache ~no_cache in
    let journal = make_journal ~run_id ~resume in
    install_termination journal;
    (* Each report is one journaled cell: cheap here, but the same
       record-on-completion idiom the sweeps rely on — and it makes
       bounds runs resumable for free. *)
    let reports =
      with_pool_checked jobs (fun pool ->
          Exec.Pool.map_list pool
            (fun (solver, theorem) ->
              let key =
                Exec.Cache.key ~family:"bounds"
                  ~params:(Format.asprintf "%a" P.pp p)
                  ~seed:0 ~solver ()
              in
              Exec.Journal.memo journal cache key (fun () ->
                  Format.asprintf "%a" Maxis_core.Theorems.pp (theorem p)))
            [
              ("theorem1-linear", Maxis_core.Theorems.linear);
              ("theorem2-quadratic", Maxis_core.Theorems.quadratic);
            ])
    in
    finish_journal journal;
    List.iter (fun r -> Format.printf "%s@." r) reports;
    (match epsilon with
    | None -> ()
    | Some epsilon ->
        let s1 = Maxis_core.Theorems.theorem1_statement ~epsilon in
        Format.printf
          "@.Theorem 1 @ eps=%.3f: t=%d players, any %.4f-approximation \
           needs >= n/(t log t log^3 n) rounds (%.3f at n=2^20)@."
          epsilon s1.Maxis_core.Theorems.players_used
          s1.Maxis_core.Theorems.defeated_ratio
          (s1.Maxis_core.Theorems.rounds_at ~n:1048576.0);
        if epsilon < 0.25 then begin
          let s2 = Maxis_core.Theorems.theorem2_statement ~epsilon in
          Format.printf
            "Theorem 2 @ eps=%.3f: t=%d players, any %.4f-approximation \
             needs >= n^2/(t log t log^3 n) rounds (%.1f at n=2^20)@."
            epsilon s2.Maxis_core.Theorems.players_used
            s2.Maxis_core.Theorems.defeated_ratio
            (s2.Maxis_core.Theorems.rounds_at ~n:1048576.0)
        end);
    Format.printf "@.prior work at the linear instance's n:@.";
    let n = float_of_int (LF.n_nodes p) in
    List.iter
      (fun (e : Maxis_core.Bachrach_baseline.entry) ->
        Format.printf "  %-40s ratio %.3f, rounds >= %.3f@."
          e.Maxis_core.Bachrach_baseline.source
          e.Maxis_core.Bachrach_baseline.ratio
          (e.Maxis_core.Bachrach_baseline.rounds ~n))
      Maxis_core.Bachrach_baseline.all;
    0
  in
  let epsilon_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~docv:"EPS"
          ~doc:"Also print the epsilon-level theorem statements.")
  in
  Cmd.v
    (Cmd.info "bounds" ~exits ~doc:"Print the Theorem 1/2 round bounds.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ epsilon_arg $ jobs_arg
      $ no_cache_arg $ run_id_arg $ resume_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* figure *)

let figure_cmd =
  let run which out =
    let p2 = P.figure_params ~players:2 in
    let p3 = P.figure_params ~players:3 in
    let dot =
      match which with
      | 1 ->
          (* Figure 1: one copy of H. *)
          let g = Wgraph.Graph.create (Maxis_core.Base_graph.copy_size p2) in
          Maxis_core.Base_graph.build_into p2 g ~offset:0 ~copy_name:"";
          Wgraph.Dot.to_dot ~name:"Figure1_H" g
      | 3 ->
          (* Figure 3: the t=3 construction with the Property-1 set
             highlighted. *)
          let g, part = LF.fixed p3 in
          Wgraph.Dot.to_dot ~name:"Figure3_G_t3" ~partition:part
            ~highlight:(LF.property1_set p3 ~m:0) g
      | 5 ->
          (* Figure 5: the quadratic F for t=2. *)
          let g, part = QF.fixed p2 in
          Wgraph.Dot.to_dot ~name:"Figure5_F_t2" ~partition:part g
      | n ->
          Printf.ksprintf failwith
            "unknown figure %d (supported: 1, 3, 5; figures 2/4/6 are \
             sub-diagrams of these)"
            n
    in
    (match out with
    | None -> print_string dot
    | Some path ->
        Wgraph.Dot.write_file path dot;
        Format.printf "wrote %s@." path);
    0
  in
  let which_arg =
    Arg.(value & pos 0 int 1 & info [] ~docv:"N" ~doc:"Figure number (1, 3 or 5).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Emit a paper figure's gadget as Graphviz DOT.")
    Term.(const run $ which_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let run alpha ell players seed intersecting drop corrupt fault_seed engine
      jobs metrics =
    with_metrics ~cmd:"simulate" metrics @@ fun () ->
    if drop < 0.0 || drop > 1.0 || corrupt < 0.0 || corrupt > 1.0 then begin
      Format.eprintf
        "simulate: --drop and --corrupt must be probabilities in [0,1]@.";
      exit 2
    end;
    if engine <> `List && (drop > 0.0 || corrupt > 0.0) then begin
      Format.eprintf
        "simulate: --engine=%s rejects fault injection (--drop/--corrupt \
         need --engine=list)@."
        (match engine with `Flat -> "flat" | _ -> "flat-par");
      exit 2
    end;
    let p = params alpha ell players in
    let inst, x = gen_instance p ~quadratic:false ~seed ~intersecting in
    let config =
      if drop = 0.0 && corrupt = 0.0 then Congest.Runtime.default_config
      else begin
        let plan =
          Congest.Faults.plan
            ~default:(Congest.Faults.link ~drop ~corrupt ())
            fault_seed
        in
        Format.printf "faults: %a@." Congest.Faults.pp_plan plan;
        { Congest.Runtime.default_config with Congest.Runtime.faults = Some plan }
      end
    in
    let decide engine =
      Maxis_core.Simulation.decide_disjointness_checked ~config ~engine inst
        ~predicate:(LF.predicate p)
    in
    (* The checked entry point: a misbehaving or fault-starved run degrades
       to a structured report instead of an escaping exception. *)
    match
      match engine with
      | `List -> decide Maxis_core.Simulation.List_mode
      | `Flat -> decide Maxis_core.Simulation.Flat
      | `Flat_par ->
          with_pool_checked jobs (fun pool ->
              decide (Maxis_core.Simulation.Flat_par pool))
    with
    | Error e ->
        Format.printf "simulation FAILED: %a@." Maxis_core.Simulation.pp_error e;
        1
    | Ok d ->
        let r = d.Maxis_core.Simulation.report in
        Format.printf "algorithm: %s@." r.Maxis_core.Simulation.algorithm;
        Format.printf "rounds: %d, cut: %d, bandwidth: %d bits/edge/round@."
          r.Maxis_core.Simulation.rounds r.Maxis_core.Simulation.cut_size
          r.Maxis_core.Simulation.bandwidth;
        Format.printf "blackboard: %d bits in %d writes (bound %d, within: %b)@."
          r.Maxis_core.Simulation.blackboard_bits
          r.Maxis_core.Simulation.blackboard_writes
          r.Maxis_core.Simulation.bound_bits r.Maxis_core.Simulation.within_bound;
        if r.Maxis_core.Simulation.faults_injected > 0 then
          Format.printf
            "faults: %d injected events; cut bits dropped %d, delivered %d@."
            r.Maxis_core.Simulation.faults_injected
            r.Maxis_core.Simulation.blackboard_bits_dropped
            r.Maxis_core.Simulation.blackboard_bits_delivered;
        Format.printf "OPT = %d, answer f(x) = %s, truth = %b@."
          d.Maxis_core.Simulation.opt
          (match d.Maxis_core.Simulation.answer with
          | Some b -> string_of_bool b
          | None -> "?")
          (Commcx.Functions.promise_pairwise_disjointness x);
        0
  in
  let drop_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Per-message drop probability on every link (fault injection).")
  in
  let corrupt_arg =
    Arg.(
      value & opt float 0.0
      & info [ "corrupt" ] ~docv:"P"
          ~doc:"Per-message bit-corruption probability on every link.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-plan PRNG seed.")
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum [ ("list", `List); ("flat", `Flat); ("flat-par", `Flat_par) ])
          `List
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Executor for the gather protocol: $(b,list) (historical \
             per-message allocation), $(b,flat) (zero-allocation CSR \
             runtime), or $(b,flat-par) (flat runtime sharded across \
             $(b,--jobs) domains).  All engines print byte-identical \
             reports; fault injection requires $(b,list).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the Theorem-5 simulation on an instance.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ seed_arg
      $ intersecting_arg $ drop_arg $ corrupt_arg $ fault_seed_arg
      $ engine_arg $ jobs_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* export *)

let export_cmd =
  let run alpha ell players seed intersecting quadratic format out =
    let p = params alpha ell players in
    let inst, x = gen_instance p ~quadratic ~seed ~intersecting in
    let g = inst.Family.graph in
    let comment =
      Format.asprintf
        "hard MaxIS instance from 'Beyond Alice and Bob' (PODC 2020)@\n\
         family: %s, %a@\nseed=%d intersecting=%b f(x)=%b"
        (if quadratic then "quadratic (Section 5)" else "linear (Section 4)")
        P.pp p seed intersecting
        (Commcx.Functions.promise_pairwise_disjointness x)
    in
    let contents =
      match format with
      | "dimacs" ->
          Wgraph.Dimacs.to_string ~comment ~partition:inst.Family.partition g
      | "dot" -> Wgraph.Dot.to_dot ~name:"instance" ~partition:inst.Family.partition g
      | other ->
          Printf.ksprintf failwith "unknown format %s (dimacs | dot)" other
    in
    (match out with
    | None -> print_string contents
    | Some path ->
        Wgraph.Dot.write_file path contents;
        Format.printf "wrote %s (%d nodes, %d edges)@." path (Wgraph.Graph.n g)
          (Wgraph.Graph.edge_count g));
    0
  in
  let format_arg =
    Arg.(
      value & opt string "dimacs"
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: dimacs or dot.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default stdout).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Export a hard instance (DIMACS for off-the-shelf MaxIS solvers, \
          or DOT), partition included.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ seed_arg
      $ intersecting_arg $ quadratic_arg $ format_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd =
  let run max_t jobs no_cache run_id resume metrics =
    with_metrics ~cmd:"sweep" metrics @@ fun () ->
    with_io_guard @@ fun () ->
    let cache = make_cache ~no_cache in
    let journal = make_journal ~run_id ~resume in
    install_termination journal;
    Format.printf "t, ell, formal lo/hi ratio, defeated approximation@.";
    let ts = Array.init (Stdlib.max 0 (max_t - 1)) (fun i -> i + 2) in
    let rows =
      with_pool_checked jobs (fun pool ->
          Exec.Pool.map pool
            (fun t ->
              let key =
                Exec.Cache.key ~family:"sweep-formula"
                  ~params:(Printf.sprintf "t=%d" t)
                  ~seed:0 ~solver:"gap-ratio" ()
              in
              Exec.Journal.memo journal cache key (fun () ->
                  let p = P.make ~alpha:1 ~ell:(4 * t * t) ~players:t in
                  Printf.sprintf "%d, %d, %.4f, (1/2 + %.4f)" t (4 * t * t)
                    (float_of_int (LF.low_weight p)
                    /. float_of_int (LF.high_weight p))
                    (1.0 /. float_of_int t)))
            ts)
    in
    finish_journal journal;
    Array.iter print_endline rows;
    0
  in
  let max_t_arg =
    Arg.(value & opt int 16 & info [ "max-t" ] ~docv:"T" ~doc:"Largest t.")
  in
  Cmd.v
    (Cmd.info "sweep" ~exits ~doc:"Sweep t and print the closing gap ratio.")
    Term.(
      const run $ max_t_arg $ jobs_arg $ no_cache_arg $ run_id_arg
      $ resume_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* solve — the offline twin of the serve daemon's "solve" op.  Both
   funnel through Serve.Ops.solve, which is what makes the byte-parity
   contract (docs/SERVING.md) checkable: same instance, same budget,
   same payload bytes, socket or not. *)

let solve_cmd =
  let run alpha ell players seed intersecting quadratic no_cache budget_nodes
      metrics =
    with_metrics ~cmd:"solve" metrics @@ fun () ->
    with_io_guard @@ fun () ->
    let cache = make_cache ~no_cache in
    let budget = make_budget ~nodes:budget_nodes ~seconds:None in
    let outcome =
      Serve.Ops.solve ~cache ~budget
        {
          Serve.Proto.alpha;
          ell;
          players;
          seed;
          intersecting;
          quadratic;
          budget_nodes;
        }
    in
    print_endline outcome.Serve.Ops.payload;
    if outcome.Serve.Ops.exhausted then 3 else 0
  in
  Cmd.v
    (Cmd.info "solve" ~exits
       ~doc:
         "Solve one gadget instance exactly (optionally budgeted) and \
          print the payload line the serve daemon would return for the \
          same request: $(b,OPT <w>), or $(b,EXHAUSTED lb=.. ub=..) with \
          exit code 3 when the budget ran out.")
    Term.(
      const run $ alpha_arg $ ell_arg $ players_arg $ seed_arg
      $ intersecting_arg $ quadratic_arg $ no_cache_arg $ budget_nodes_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let addr_conv =
  let parse s =
    match Serve.Proto.addr_of_string s with
    | Ok a -> Ok a
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Serve.Proto.pp_addr)

let serve_cmd =
  let run listen metrics_addr jobs no_cache max_inflight default_nodes
      max_nodes max_line_bytes batch_max allow_chaos max_conns idle_timeout
      read_deadline write_deadline drain_deadline =
    with_io_guard @@ fun () ->
    if jobs < 1 then begin
      Format.eprintf "maxis_lb: --jobs must be >= 1 (got %d)@." jobs;
      exit 124
    end;
    if max_conns < 1 then begin
      Format.eprintf "maxis_lb: --max-conns must be >= 1 (got %d)@." max_conns;
      exit 124
    end;
    (* Unix sockets need their parent directory; make it like the cache
       does its own. *)
    let prep = function
      | Serve.Proto.Unix_sock path ->
          let dir = Filename.dirname path in
          if dir <> "." && dir <> "/" then Exec.Cache.mkdir_p dir
      | Serve.Proto.Tcp _ -> ()
    in
    prep listen;
    Option.iter prep metrics_addr;
    let cache = make_cache ~no_cache in
    let cfg =
      {
        (Serve.Daemon.default_config ~cache ~listen ()) with
        Serve.Daemon.metrics = metrics_addr;
        jobs;
        max_inflight;
        default_budget_nodes = default_nodes;
        max_budget_nodes = max_nodes;
        max_line_bytes;
        batch_max;
        allow_chaos;
        max_conns;
        idle_timeout_s = idle_timeout;
        read_deadline_s = read_deadline;
        write_deadline_s = write_deadline;
        drain_deadline_s = drain_deadline;
      }
    in
    let d = Serve.Daemon.create cfg in
    let stop_on _signal = Serve.Daemon.stop d in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on);
    Format.eprintf "serve: listening on %a (jobs=%d, window=%d)@."
      Serve.Proto.pp_addr listen jobs max_inflight;
    (match metrics_addr with
    | Some a -> Format.eprintf "serve: metrics on %a@." Serve.Proto.pp_addr a
    | None -> ());
    Serve.Daemon.run d;
    if Exec.Cache.enabled cache then
      Format.eprintf "cache: %a@." Exec.Cache.pp_stats (Exec.Cache.stats cache);
    Format.eprintf "serve: drained after %d replies@."
      (Serve.Daemon.requests_served d);
    0
  in
  let listen_arg =
    Arg.(
      value
      & opt addr_conv (Serve.Proto.Unix_sock "results/serve.sock")
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Wire address: $(b,unix:PATH) or $(b,tcp:HOST:PORT) (default \
             unix:results/serve.sock).")
  in
  let metrics_listen_arg =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "metrics-listen" ] ~docv:"ADDR"
          ~doc:
            "Also serve the Prometheus rendering of the live metrics \
             registry to anything that connects here.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission window: compute requests admitted but unanswered, \
             across all connections; beyond it requests get structured \
             $(b,rejected) replies.")
  in
  let default_nodes_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "default-budget-nodes" ] ~docv:"N"
          ~doc:"Node cap attached to requests that do not name one.")
  in
  let max_nodes_arg =
    Arg.(
      value & opt int 4_000_000
      & info [ "max-budget-nodes" ] ~docv:"N"
          ~doc:"Ceiling a request may ask for; above it: rejected.")
  in
  let max_line_bytes_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Longer request lines are answered with an error and skipped; \
             the connection survives.")
  in
  let batch_max_arg =
    Arg.(
      value & opt int 64
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Most requests one pool batch may carry.")
  in
  let allow_chaos_arg =
    Arg.(
      value & flag
      & info [ "allow-chaos" ]
          ~doc:
            "Honor $(b,chaos-kill) requests (kill a pool worker \
             mid-batch).  For the chaos suite only.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Connection cap; accepts beyond it are shed with a structured \
             error reply and counted as $(b,capacity) evictions.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 300.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Evict a connection with no traffic and nothing owed either \
             way for this long.")
  in
  let read_deadline_arg =
    Arg.(
      value & opt float 30.0
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Evict a connection holding a partial request line that makes \
             no progress for this long (the slow-loris bound).")
  in
  let write_deadline_arg =
    Arg.(
      value & opt float 5.0
      & info [ "write-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Evict a connection whose pending replies make no progress for \
             this long; also bounds metrics-scrape responses.")
  in
  let drain_deadline_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Grace period for flushing replies during shutdown drain; \
             peers still holding bytes at the deadline are dropped.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the solve daemon: newline-delimited JSON requests \
          ($(b,solve), $(b,bounds), $(b,claim-verify), $(b,ping), \
          $(b,stats)) over a Unix or TCP socket, each admitted under a \
          node budget, batched across a worker pool, answered from the \
          result cache when warm.  SIGINT/SIGTERM drain gracefully: \
          every in-flight request gets its terminal reply, then the \
          process exits 0.")
    Term.(
      const run $ listen_arg $ metrics_listen_arg $ jobs_arg $ no_cache_arg
      $ max_inflight_arg $ default_nodes_arg $ max_nodes_arg
      $ max_line_bytes_arg $ batch_max_arg $ allow_chaos_arg $ max_conns_arg
      $ idle_timeout_arg $ read_deadline_arg $ write_deadline_arg
      $ drain_deadline_arg)

(* ------------------------------------------------------------------ *)
(* fsck *)

let fsck_cmd =
  let run cache_dir journal_dir quiet metrics =
    with_metrics ~cmd:"fsck" metrics @@ fun () ->
    with_io_guard @@ fun () ->
    let on_quarantine ~kind ~path =
      if not quiet then Format.eprintf "fsck: quarantined [%s] %s@." kind path
    in
    let report = Exec.Fsck.run ~cache_dir ~journal_dir ~on_quarantine () in
    Format.printf "%a@." Exec.Fsck.pp_report report;
    if Exec.Fsck.clean report then 0 else 2
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Exec.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result-cache tree to scan.")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt string Exec.Journal.default_dir
      & info [ "journal-dir" ] ~docv:"DIR" ~doc:"Journal directory to scan.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Do not list quarantined items on stderr.")
  in
  Cmd.v
    (Cmd.info "fsck" ~exits
       ~doc:
         "Scan the on-disk cache and journal trees, quarantine invalid \
          entries (moved, never deleted: cache entries into \
          $(i,cache-dir)/quarantine/, corrupt journal tails into \
          $(i,journal-dir)/quarantine/), remove stray temp files, and \
          report counts.  Exits 0 when everything was valid, 2 when \
          damage was found (and repaired: a rerun exits 0).")
    Term.(
      const run $ cache_dir_arg $ journal_dir_arg $ quiet_arg $ metrics_arg)

let () =
  (* Retry backoff should yield the CPU, not spin: the library default
     exists only because lib/exec carries no unix dependency. *)
  Exec.Error.set_default_sleep Unix.sleepf;
  let doc = "lower-bound constructions for approximate MaxIS in CONGEST" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "maxis_lb" ~doc)
          [
            build_cmd;
            verify_cmd;
            bounds_cmd;
            figure_cmd;
            simulate_cmd;
            export_cmd;
            sweep_cmd;
            solve_cmd;
            serve_cmd;
            fsck_cmd;
          ]))
