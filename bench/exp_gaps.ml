(* Experiments T1-gap and T2-gap: the approximation gaps of Lemmas 2 and 3,
   measured by exact MaxIS on both promise sides.

   Shape to reproduce: the intersecting/disjoint OPT ratio falls with t —
   towards 1/2 for the linear family (Theorem 1) and towards 3/4 for the
   quadratic family (Theorem 2).  Absolute OPT values depend on our
   parameter instantiation; the monotone closing of the gap and the claim
   inequalities are the paper's content. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module T = Stdx.Tablefmt
open Exp_common

let trials = 3

let t1_gap () =
  section "T1-gap"
    "Lemma 2: linear-family gap vs t (intersecting vs pairwise-disjoint OPT)";
  let rng = rng_for "t1-gap" in
  let table =
    T.create
      [
        T.column "t";
        T.column "ell";
        T.column "n";
        T.column "OPT inter (mean)";
        T.column "OPT disj (mean)";
        T.column "claim hi";
        T.column "claim lo";
        T.column "measured ratio";
        T.column "formula ratio";
        T.column ~align:T.Left "claims";
      ]
  in
  (* Rows are added only once fully solved, so on SIGINT/SIGTERM this
     prints exactly the completed prefix of the sweep. *)
  on_interrupt (fun () -> prerr_string (T.render table));
  List.iter
    (fun t ->
      let ell = (t * t) + 1 in
      let p = P.make ~alpha:1 ~ell ~players:t in
      let params = Format.asprintf "%a" P.pp p in
      let solve_checked intersecting x =
        let c =
          if intersecting then Maxis_core.Claims.claim3 p x
          else Maxis_core.Claims.claim5 p x
        in
        (c.Maxis_core.Claims.opt, c.Maxis_core.Claims.holds)
      in
      let hi, hi_ok =
        mean_opt ~family:"linear" ~params ~solver:"claim3" ~trials rng
          (fun () -> linear_input rng p ~intersecting:true)
          (solve_checked true)
      in
      let lo, lo_ok =
        mean_opt ~family:"linear" ~params ~solver:"claim5" ~trials rng
          (fun () -> linear_input rng p ~intersecting:false)
          (solve_checked false)
      in
      let claims_ok = ref (hi_ok && lo_ok) in
      T.add_row table
        [
          T.cell_int t;
          T.cell_int ell;
          T.cell_int (LF.n_nodes p);
          T.cell_float hi;
          T.cell_float lo;
          T.cell_int (LF.high_weight p);
          T.cell_int (LF.low_weight p);
          T.cell_ratio (lo /. hi);
          T.cell_ratio
            (float_of_int (LF.low_weight p) /. float_of_int (LF.high_weight p));
          T.cell_bool !claims_ok;
        ])
    [ 2; 3; 4 ];
  T.print ~csv:"results/t1_gap.csv" table;
  note "paper: ratio -> 1/2 + eps with t = ceil(2/eps) (Theorem 1 defeats 1/2+eps)"

let t2_gap () =
  section "T2-gap"
    "Lemma 3: quadratic-family gap vs t (Claims 6 and 7)";
  let rng = rng_for "t2-gap" in
  let table =
    T.create
      [
        T.column "t";
        T.column "ell";
        T.column "n";
        T.column "OPT inter (mean)";
        T.column "OPT disj (mean)";
        T.column "claim hi";
        T.column "claim lo";
        T.column "measured ratio";
        T.column ~align:T.Left "claims";
      ]
  in
  on_interrupt (fun () -> prerr_string (T.render table));
  List.iter
    (fun (t, ell) ->
      let p = P.make ~alpha:1 ~ell ~players:t in
      let params = Format.asprintf "%a" P.pp p in
      let solve_checked intersecting x =
        let c =
          if intersecting then Maxis_core.Claims.claim6 p x
          else Maxis_core.Claims.claim7 p x
        in
        (c.Maxis_core.Claims.opt, c.Maxis_core.Claims.holds)
      in
      let hi, hi_ok =
        mean_opt ~family:"quadratic" ~params ~solver:"claim6" ~trials rng
          (fun () -> quadratic_input rng p ~intersecting:true)
          (solve_checked true)
      in
      let lo, lo_ok =
        mean_opt ~family:"quadratic" ~params ~solver:"claim7" ~trials rng
          (fun () -> quadratic_input rng p ~intersecting:false)
          (solve_checked false)
      in
      let claims_ok = ref (hi_ok && lo_ok) in
      T.add_row table
        [
          T.cell_int t;
          T.cell_int ell;
          T.cell_int (QF.n_nodes p);
          T.cell_float hi;
          T.cell_float lo;
          T.cell_int (QF.high_weight p);
          T.cell_int (QF.low_weight p);
          T.cell_ratio (lo /. hi);
          T.cell_bool !claims_ok;
        ])
    [ (2, 3); (2, 6); (3, 4) ];
  T.print ~csv:"results/t2_gap.csv" table;
  note "paper: formula ratio 3(t+1)l / 4tl -> 3/4; measured OPTs close on it";
  (* The closed-form trend where instances are too big to solve exactly. *)
  let table2 =
    T.create [ T.column "t"; T.column "formula lo/hi (ell = 8t^3)" ]
  in
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:(8 * t * t * t) ~players:t in
      T.add_row table2
        [
          T.cell_int t;
          T.cell_ratio
            (float_of_int (QF.low_weight p) /. float_of_int (QF.high_weight p));
        ])
    [ 4; 8; 16; 32 ];
  T.print ~csv:"results/t2_gap_formula.csv" table2

let run () =
  t1_gap ();
  t2_gap ()
