(* Experiment CHAOS: supervised execution under combined fault pressure.

   One mini-sweep of exact MaxIS cells is executed several ways — clean
   reference, then under simultaneous worker kills + filesystem fault
   injection, then under budget pressure, then once more against the
   fsck-repaired cache — and a hardened CONGEST run rides along under an
   adversarial link plan.  The invariant on every leg: the run
   {e terminates} (no hang) with either byte-identical output or a
   certified [lb <= OPT <= ub] degradation.

   stdout carries only verdicts that are deterministic by construction
   (pure cell functions; caches and journals are transparent
   accelerators; node budgets are scheduling-independent).  Everything
   run-dependent — injected fault counts, retries, worker restarts,
   first-pass fsck counts — goes to stderr, like the cache counter lines
   of the other legs. *)

module T = Stdx.Tablefmt
module Faults = Congest.Faults
module Runtime = Congest.Runtime
open Exp_common

let chaos_root = Filename.concat "results" "chaos"

let chaos_cache_dir = Filename.concat chaos_root "cache"

let chaos_journal_dir = Filename.concat chaos_root "journal"

let verdicts_csv = Filename.concat "results" "chaos_verdicts.csv"

(* Fresh fault state every run: the leg's claims are about one seeded
   chaos episode, not an accumulation of previous ones. *)
let rm_rf root =
  let fs = Stdx.Fsio.real in
  let rec go path =
    if fs.Stdx.Fsio.file_exists path then
      if fs.Stdx.Fsio.is_directory path then begin
        Array.iter
          (fun f -> go (Filename.concat path f))
          (fs.Stdx.Fsio.readdir path);
        try fs.Stdx.Fsio.rmdir path with Sys_error _ -> ()
      end
      else try fs.Stdx.Fsio.remove path with Sys_error _ -> ()
  in
  go root

(* ------------------------------------------------------------------ *)
(* The sweep cells: exact OPT of seeded Erdős–Rényi instances.  Pure in
   the cell index, so every execution path must reproduce the same row
   bytes. *)

let cells = 8

let cell_graph i =
  let rng = Stdx.Prng.create (1000 + i) in
  Wgraph.Build.erdos_renyi rng (12 + i) 0.3

let cell_key i =
  Exec.Cache.key ~family:"chaos-sweep"
    ~params:(Printf.sprintf "cell=%d" i)
    ~seed:(1000 + i) ~solver:"exact-mis" ()

let cell_row i =
  let g = cell_graph i in
  Printf.sprintf "cell %d: n=%d OPT=%d" i (Wgraph.Graph.n g) (Mis.Exact.opt g)

(* One sweep execution: memoized through [cache] when given (faulty or
   repaired), completion recorded in [journal] when given, and — under
   chaos — the first execution of mask-selected slots kills its worker
   domain.  Journal-append failures that survive the retries are
   counted, never fatal: completion tracking is an accelerator, not a
   correctness dependency. *)
let run_sweep pool ?cache ?journal ?kills () =
  let attempts = Array.init cells (fun _ -> Atomic.make 0) in
  let journal_failures = Atomic.make 0 in
  let rows =
    Exec.Pool.map pool
      (fun i ->
        let attempt = Atomic.fetch_and_add attempts.(i) 1 in
        (match kills with
        | Some mask when mask.(i) && attempt = 0 -> raise Exec.Pool.Chaos_kill
        | _ -> ());
        let row =
          match cache with
          | None -> cell_row i
          | Some c -> Exec.Cache.memo c (cell_key i) (fun () -> cell_row i)
        in
        (match journal with
        | Some j -> (
            try Exec.Journal.record j (cell_key i)
            with Exec.Error.Error _ -> Atomic.incr journal_failures)
        | None -> ());
        row)
      (Array.init cells Fun.id)
  in
  (rows, Atomic.get journal_failures)

(* ------------------------------------------------------------------ *)

let run () =
  section "CHAOS"
    "supervised execution: worker kills + FS faults + budget pressure";
  rm_rf chaos_root;
  let table =
    T.create [ T.column ~align:T.Left "check"; T.column ~align:T.Left "result" ]
  in
  let verdict name value = T.add_row table [ name; value ] in

  (* Reference: sequential, no cache, no faults. *)
  let reference = Array.init cells cell_row in

  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      (* Chaos leg: the supervised pool under worker kills, reading and
         writing cache + journal through a seeded fault-injecting
         filesystem. *)
      let plan =
        Exec.Fsio.plan
          ~default:
            (Exec.Fsio.op_fault ~eintr:0.05 ~enospc:0.04 ~torn:0.04 ~flip:0.03
               ~fail_rename:0.04 ())
          77
      in
      let injector = Exec.Fsio.injector plan in
      let fs = Exec.Fsio.chaos injector in
      let kill_rng = rng_for "chaos-kills" in
      let kills = Array.init cells (fun _ -> Stdx.Prng.bool kill_rng) in
      let cache = Exec.Cache.create ~fs ~dir:chaos_cache_dir () in
      let journal =
        try
          Some (Exec.Journal.open_ ~fs ~dir:chaos_journal_dir ~run_id:"chaos" ())
        with Exec.Error.Error _ -> None
      in
      let rows_chaos, jfail = run_sweep pool ~cache ?journal ~kills () in
      Option.iter Exec.Journal.close journal;
      verdict "sweep rows identical under chaos"
        (T.cell_bool (rows_chaos = reference));

      (* Poison leg: a slot that kills every executor must terminate the
         batch as a quarantined Worker_death, never hang or eat the
         pool. *)
      let poisoned =
        match
          Exec.Pool.map pool
            (fun i -> if i = 1 then raise Exec.Pool.Chaos_kill else i)
            [| 0; 1; 2 |]
        with
        | _ -> false
        | exception Exec.Error.Error (Exec.Error.Worker_death _) -> true
      in
      verdict "poison task quarantined as Worker_death" (T.cell_bool poisoned);

      (* Budget leg: node-capped solves on the (healed) pool.  Node
         budgets are deterministic, so both the containment verdict and
         the exhausted count are stable bytes. *)
      let outcomes =
        Exec.Pool.map pool
          (fun i ->
            let g = cell_graph i in
            let budget = Exec.Budget.create ~max_nodes:40 () in
            let o = Mis.Exact.solve_budgeted ~budget g in
            (Mis.Exact.interval o,
             (match o with Mis.Exact.Complete _ -> false | _ -> true),
             Mis.Exact.opt g))
          (Array.init cells Fun.id)
      in
      let contained =
        Array.for_all (fun ((lb, ub), _, opt) -> lb <= opt && opt <= ub) outcomes
      in
      let exhausted =
        Array.fold_left (fun n (_, ex, _) -> if ex then n + 1 else n) 0 outcomes
      in
      verdict "certified intervals contain OPT" (T.cell_bool contained);
      verdict "budget-exhausted cells (deterministic)"
        (Printf.sprintf "%d/%d" exhausted cells);

      (* Network-fault leg: hardened delivery under an adversarial link
         plan must reproduce the fault-free referee's outputs. *)
      let net_rng = rng_for "chaos-net" in
      let g = Wgraph.Build.erdos_renyi net_rng 16 0.35 in
      let cfg faults =
        {
          Runtime.default_config with
          Runtime.bandwidth_factor = 64;
          max_rounds = 600;
          faults;
        }
      in
      let program = Congest.Algo_luby.mis in
      let base = Runtime.run ~config:(cfg None) program g in
      let net_plan =
        Faults.plan
          ~default:
            (Faults.link ~drop:0.15 ~duplicate:0.1 ~corrupt:0.1 ~max_delay:2 ())
          13
      in
      let hardened_ok =
        match
          Runtime.run_checked
            ~config:(cfg (Some net_plan))
            (Faults.harden program) g
        with
        | Ok r -> r.Runtime.outputs = base.Runtime.outputs
        | Error _ -> false
      in
      verdict "hardened outputs = fault-free referee" (T.cell_bool hardened_ok);

      (* fsck: quarantine whatever the injected faults corrupted, then
         prove the repair converged (second pass clean) and that the
         surviving entries still serve the sweep byte-identically. *)
      let report1 =
        Exec.Fsck.run ~cache_dir:chaos_cache_dir ~journal_dir:chaos_journal_dir
          ()
      in
      let report2 =
        Exec.Fsck.run ~cache_dir:chaos_cache_dir ~journal_dir:chaos_journal_dir
          ()
      in
      verdict "fsck rerun clean after repair"
        (T.cell_bool (Exec.Fsck.clean report2));
      let repaired = Exec.Cache.create ~dir:chaos_cache_dir () in
      let rows_repaired, _ = run_sweep pool ~cache:repaired () in
      verdict "repaired-cache rerun rows identical"
        (T.cell_bool (rows_repaired = reference));

      (* Run-dependent counters: stderr only, like the cache lines. *)
      Format.eprintf "[chaos] fs faults injected: %d (%s)@."
        (Exec.Fsio.total_injected injector)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              (Exec.Fsio.faults_injected injector)));
      Format.eprintf
        "[chaos] worker restarts: %d; journal append failures: %d@."
        (Exec.Pool.restarts pool) jfail;
      Format.eprintf "[chaos] fsck first pass: %a@." Exec.Fsck.pp_report report1);
  T.print ~csv:verdicts_csv table;
  note "all verdicts above are deterministic; fault counts are on stderr.";
  note "wrote %s." verdicts_csv
