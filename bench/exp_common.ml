(* Shared helpers for the experiment harness. *)

module P = Maxis_core.Params
module T = Stdx.Tablefmt

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n"

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(* Every experiment draws from its own deterministically seeded stream so
   re-runs and reorderings reproduce bit-identical tables. *)
let rng_for id = Stdx.Prng.create (Hashtbl.hash id)

(* ------------------------------------------------------------------ *)
(* Execution context.

   All experiments share one worker pool (width from MAXIS_JOBS, default
   1) and one result cache under results/cache (disable with
   MAXIS_NO_CACHE=1, relocate with MAXIS_CACHE_DIR).  The determinism
   contract of Exec.Pool means stdout and every results/*.csv stay
   byte-identical for any jobs/cache setting; the only run-dependent
   output is the counter line below, which therefore goes to stderr. *)

let pool = lazy (Exec.Pool.create ~jobs:(Exec.Pool.default_jobs ()) ())

(* Exact solves actually computed this run (cache misses).  Atomic: the
   computes run on pool domains. *)
let solves = Atomic.make 0

let cache =
  lazy
    (let c =
       match Sys.getenv_opt "MAXIS_NO_CACHE" with
       | Some "1" -> Exec.Cache.disabled ()
       | Some _ | None ->
           let dir =
             Option.value
               (Sys.getenv_opt "MAXIS_CACHE_DIR")
               ~default:Exec.Cache.default_dir
           in
           Exec.Cache.create ~dir ()
     in
     at_exit (fun () ->
         Format.eprintf "[exec] jobs=%d solves=%d cache: %a@."
           (Exec.Pool.default_jobs ())
           (Atomic.get solves)
           Exec.Cache.pp_stats (Exec.Cache.stats c));
     c)

(* Crash-safe sweep journal, opted into with MAXIS_RUN_ID=<id> (resume an
   interrupted run of the same id with MAXIS_RESUME=1); see
   docs/RESILIENCE.md.  The stats line goes to stderr like the cache
   counters: it is the only run-dependent output. *)
let journal =
  lazy
    (match Sys.getenv_opt "MAXIS_RUN_ID" with
    | None | Some "" -> Exec.Journal.disabled ()
    | Some run_id ->
        let resume = Sys.getenv_opt "MAXIS_RESUME" = Some "1" in
        let dir =
          Option.value
            (Sys.getenv_opt "MAXIS_JOURNAL_DIR")
            ~default:Exec.Journal.default_dir
        in
        let j = Exec.Journal.open_ ~dir ~resume ~run_id () in
        at_exit (fun () ->
            Format.eprintf "[journal] %a@." Exec.Journal.pp_stats j;
            Exec.Journal.close j);
        j)

(* ------------------------------------------------------------------ *)
(* Graceful interruption.

   SIGINT/SIGTERM flush whatever tables are complete so far (experiments
   register theirs with [on_interrupt]) and print how to resume, then
   exit through [at_exit] — pool shutdown and the counter lines
   included.  A SIGKILL skips all of this and loses nothing but the
   in-flight cells: the journal is durable per completed cell. *)

let interrupt_hooks : (unit -> unit) list ref = ref []

let on_interrupt f = interrupt_hooks := f :: !interrupt_hooks

let () =
  Exec.Journal.on_termination (fun signal ->
      Format.eprintf "@.[bench] %s: flushing partial tables@."
        (if signal = Sys.sigterm then "SIGTERM" else "SIGINT");
      List.iter (fun f -> try f () with _ -> ()) (List.rev !interrupt_hooks);
      if Lazy.is_val journal then begin
        let j = Lazy.force journal in
        if Exec.Journal.enabled j then
          Format.eprintf
            "[journal] %a@.[journal] resume with MAXIS_RUN_ID unchanged and \
             MAXIS_RESUME=1@."
            Exec.Journal.pp_stats j
      end)

(* Opt-in metrics export for any bench invocation: MAXIS_METRICS=<path>
   (or =1 for the default results/metrics/bench.jsonl) writes the full
   Obs.Metrics snapshot at exit.  Only a stderr note is added — stdout
   and every results/*.csv table stay byte-identical with the export on
   or off, like the cache/journal counter lines above. *)
let () =
  match Sys.getenv_opt "MAXIS_METRICS" with
  | None | Some "" -> ()
  | Some p ->
      let path =
        if p = "1" then
          Filename.concat (Filename.concat "results" "metrics") "bench.jsonl"
        else p
      in
      at_exit (fun () ->
          try
            Obs.Export.write_jsonl path (Obs.Metrics.snapshot ());
            Format.eprintf "[obs] metrics: wrote %s@." path
          with Sys_error m ->
            Format.eprintf "[obs] metrics export failed: %s@." m)

let linear_input rng p ~intersecting =
  Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting

let quadratic_input rng p ~intersecting =
  Commcx.Inputs.gen_promise rng
    ~k:(Maxis_core.Quadratic_family.string_length p)
    ~t:p.P.players ~intersecting

let opt_linear p x =
  Mis.Exact.opt (Maxis_core.Linear_family.instance p x).Maxis_core.Family.graph

let opt_quadratic p x =
  Mis.Exact.opt
    (Maxis_core.Quadratic_family.instance p x).Maxis_core.Family.graph

(* ------------------------------------------------------------------ *)
(* Cached solving *)

let encode_opt (opt, ok) = Printf.sprintf "%d %b" opt ok

let decode_opt s =
  try Scanf.sscanf s " %d %B" (fun opt ok -> Some (opt, ok)) with _ -> None

(* [solve] must be pure in [x]; its (opt, claim-holds) result is cached
   under a digest of the input, so warm re-runs skip the exact solve (and
   the claim re-check) entirely.  With a journal each solved cell is also
   recorded as complete the moment its value is safely in the cache, so a
   killed sweep resumes without re-solving. *)
let solve_cached ~family ~params ~solver solve x =
  let key =
    Exec.Cache.key ~family ~params ~seed:0 ~solver
      ~extra:(Exec.Cache.fingerprint (Commcx.Inputs.canonical x))
      ()
  in
  Exec.Journal.memo_value (Lazy.force journal) (Lazy.force cache) key
    ~encode:encode_opt ~decode:decode_opt (fun () ->
      Atomic.incr solves;
      solve x)

(* Mean measured OPT over [trials] random promise inputs, solves fanned
   out over the shared pool.  Inputs are drawn sequentially from [rng]
   (same stream as a sequential run) and results are reassembled in draw
   order, so the mean — and the returned all-claims-hold flag — are
   independent of jobs and cache state.  [solve x] returns the measured
   OPT and whether the claim bound held on [x]. *)
let mean_opt ~family ~params ~solver ~trials rng gen solve =
  let inputs = Array.init trials (fun _ -> gen ()) in
  let results =
    Exec.Pool.map (Lazy.force pool)
      (solve_cached ~family ~params ~solver solve)
      inputs
  in
  let mean = Stdx.Stats.mean (Array.map (fun (o, _) -> float_of_int o) results) in
  (mean, Array.for_all (fun (_, ok) -> ok) results)
