(* Shared helpers for the experiment harness. *)

module P = Maxis_core.Params
module T = Stdx.Tablefmt

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n"

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(* Every experiment draws from its own deterministically seeded stream so
   re-runs and reorderings reproduce bit-identical tables. *)
let rng_for id = Stdx.Prng.create (Hashtbl.hash id)

let linear_input rng p ~intersecting =
  Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting

let quadratic_input rng p ~intersecting =
  Commcx.Inputs.gen_promise rng
    ~k:(Maxis_core.Quadratic_family.string_length p)
    ~t:p.P.players ~intersecting

let opt_linear p x =
  Mis.Exact.opt (Maxis_core.Linear_family.instance p x).Maxis_core.Family.graph

let opt_quadratic p x =
  Mis.Exact.opt
    (Maxis_core.Quadratic_family.instance p x).Maxis_core.Family.graph

(* Mean measured OPT over [trials] random promise inputs. *)
let mean_opt ~trials rng gen solve =
  let vals = Array.init trials (fun _ -> float_of_int (solve (gen ()))) in
  Stdx.Stats.mean vals
