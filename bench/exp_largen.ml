(* Experiment LARGEN: the large-n CSR engine at n in the 10³–10⁵(10⁶)
   range.

   Three legs:

   - an algorithm sweep — flood (max-id), BFS distances, and Luby MIS on
     sparse random CSR graphs, executed through the allocation-free
     [Runtime.run_flat] with [Trace.Light] streaming accumulators.  The
     verdict table (rounds, messages, bits, halted) is deterministic for
     a given size gate and lands on stdout; wall-clock throughput goes
     to stderr, results/largen.csv and BENCH_largen.json, never stdout;

   - a gadget-family sweep — the linear construction at α = 1, t = 2
     scaled to each target n via [Linear_family.fixed_csr] /
     [instance_csr], then flooded for a few rounds with the player cut
     registered so the blackboard accounting stays O(1) per event.  At
     the smallest size the CSR build is cross-checked edge-for-edge
     against the bitset path ([Csr.of_graph (fst (fixed p))]);

   - a pinned seed-vs-flat comparison at n = 10⁴ — the historical path
     ([Runtime.run] on {!Wgraph.Graph.t} with a [Full] trace) against
     the large-n path ([run_flat] on {!Wgraph.Csr.t} with a [Light]
     trace) on the same graph and workload, with the output parity
     asserted and the rounds/s ratio recorded in the trajectory file.

   MAXIS_LARGEN_MAX_N caps the sweep sizes (default 100_000; set
   1_000_000 to include the top size, 10_000 for a CI-speed smoke). *)

module T = Stdx.Tablefmt
module J = Stdx.Jsonx
module Csr = Wgraph.Csr
module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
open Exp_common

let bench_json = "BENCH_largen.json"

let largen_csv = Filename.concat "results" "largen.csv"

let max_n =
  match Sys.getenv_opt "MAXIS_LARGEN_MAX_N" with
  | None | Some "" -> 100_000
  | Some s -> ( try int_of_string s with Failure _ -> 100_000)

let sizes = List.filter (fun n -> n <= max_n) [ 1_000; 10_000; 100_000; 1_000_000 ]

(* Sweep workloads converge well before this on the random graphs below
   (diameter ~ log n); flood and BFS still execute all 16 rounds, so the
   rounds/s figures compare like with like across sizes. *)
let sweep_rounds = 16

(* ------------------------------------------------------------------ *)
(* Sparse random graphs: every node draws three partners, so the degree
   is 3–6 in expectation and m ≈ 3n — the regime where CSR beats the
   n²-bit matrix by orders of magnitude. *)

let sparse_csr n =
  let rng = rng_for (Printf.sprintf "largen-graph-%d" n) in
  let b = Csr.Builder.create n in
  for v = 0 to n - 1 do
    for _ = 1 to 3 do
      let u = Stdx.Prng.int rng n in
      if u <> v then Csr.Builder.add_edge b v u
    done
  done;
  Csr.Builder.finish b

(* ------------------------------------------------------------------ *)
(* Measurements.  Only [wall_s] is run-dependent; everything else is
   fixed by the seeds. *)

type measure = {
  m_leg : string;
  m_n : int;
  m_algo : string;
  m_rounds : int;
  m_messages : int;
  m_bits : int;
  m_halted : bool;
  m_wall_s : float;
  m_peak_words : int;
}

let config rounds =
  { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }

let run_flat_timed ~leg ~algo ?cut ~rounds fp c =
  let trace = Congest.Trace.create ~mode:Congest.Trace.Light ?cut () in
  let t0 = Unix.gettimeofday () in
  let result = Congest.Runtime.run_flat ~config:(config rounds) ~trace fp c in
  let wall_s = Unix.gettimeofday () -. t0 in
  ( {
      m_leg = leg;
      m_n = Csr.n c;
      m_algo = algo;
      m_rounds = result.Congest.Runtime.rounds_executed;
      m_messages = Congest.Trace.total_messages trace;
      m_bits = Congest.Trace.total_bits trace;
      m_halted = result.Congest.Runtime.all_halted;
      m_wall_s = wall_s;
      m_peak_words = Csr.resident_words c;
    },
    result,
    trace )

let per_s count wall = if wall <= 0.0 then 0.0 else float_of_int count /. wall

(* ------------------------------------------------------------------ *)
(* Gadget parameters: α = 1, t = 2, the largest ℓ whose construction
   fits the target node count.  n ≈ 2(ℓ+1)(q+1) ~ 2ℓ², so targets 10³,
   10⁴ and 10⁵ land around ℓ = 21, 69 and 222. *)

let gadget_params target =
  let rec grow ell best =
    let p = P.make ~alpha:1 ~ell ~players:2 in
    if LF.n_nodes p > target then best else grow (ell + 1) (Some p)
  in
  grow 2 None

(* ------------------------------------------------------------------ *)

let run () =
  section "LARGEN" "large-n CSR engine: flood/BFS/Luby + gadget sweep";
  note "sizes up to %d (MAXIS_LARGEN_MAX_N); wall-clock on stderr, %s and %s"
    max_n largen_csv bench_json;
  let measures = ref [] in
  let record m =
    measures := m :: !measures;
    Printf.eprintf "  [largen] %-8s n=%-8d %-9s %.3fs (%.0f rounds/s, %.0f msgs/s)\n%!"
      m.m_leg m.m_n m.m_algo m.m_wall_s
      (per_s m.m_rounds m.m_wall_s)
      (per_s m.m_messages m.m_wall_s)
  in

  (* ---------------- algorithm sweep (deterministic table) ---------- *)
  let table =
    T.create
      [
        T.column ~align:T.Right "n";
        T.column ~align:T.Left "algo";
        T.column ~align:T.Right "rounds";
        T.column ~align:T.Right "messages";
        T.column ~align:T.Right "bits";
        T.column ~align:T.Left "halted";
      ]
  in
  List.iter
    (fun n ->
      let c = sparse_csr n in
      let legs =
        [
          ("flood", fun () -> Congest.Fastpath.max_id ~rounds:sweep_rounds);
          ("bfs", fun () -> Congest.Fastpath.bfs_distances ~root:0 ~rounds:sweep_rounds);
        ]
      in
      List.iter
        (fun (algo, fp) ->
          let m, _, _ =
            run_flat_timed ~leg:"sweep" ~algo ~rounds:sweep_rounds (fp ()) c
          in
          record m;
          T.add_row table
            [
              T.cell_int m.m_n;
              algo;
              T.cell_int m.m_rounds;
              T.cell_int m.m_messages;
              T.cell_int m.m_bits;
              T.cell_bool m.m_halted;
            ])
        legs;
      let m, result, _ =
        run_flat_timed ~leg:"sweep" ~algo:"luby"
          ~rounds:Congest.Runtime.default_config.Congest.Runtime.max_rounds
          Congest.Fastpath.luby_mis c
      in
      record m;
      let in_mis =
        Array.fold_left
          (fun acc o -> if o = Some true then acc + 1 else acc)
          0 result.Congest.Runtime.outputs
      in
      T.add_row table
        [
          T.cell_int m.m_n;
          Printf.sprintf "luby(|MIS|=%d)" in_mis;
          T.cell_int m.m_rounds;
          T.cell_int m.m_messages;
          T.cell_int m.m_bits;
          T.cell_bool m.m_halted;
        ])
    sizes;
  T.print ~title:"flat executor sweep on sparse random graphs" table;

  (* ---------------- seed-vs-flat comparison at n = 10⁴ -------------

     Three executors on the same graph and workload: the frozen seed
     path ({!Baseline.run}: per-send records, hashtable bandwidth
     bookkeeping, cons-and-sort delivery), the current list-mode arena
     ({!Runtime.run}, byte-identical outputs to seed), and the flat
     large-n path ({!Runtime.run_flat}).  Best-of-3 walls; outputs are
     asserted identical across all three. *)
  let speedup =
    if max_n < 10_000 then None
    else begin
      let c = sparse_csr 10_000 in
      let g = Csr.to_graph c in
      (* Runs before the gadget leg on purpose: its 4×10⁷-edge instance
         bloats the major heap enough to skew all three walls.  Compact
         so the executors time against the same clean memory state. *)
      Gc.compact ();
      (* Samples are sized to comparable wall-clock (the flat run is ~10×
         shorter, so each of its samples times 10 back-to-back runs):
         scheduler jitter then perturbs every executor's best-of-3
         equally instead of swamping the shortest. *)
      let repeats = 3 in
      let best ~iters f =
        let w = ref infinity in
        let out = ref None in
        for _ = 1 to repeats do
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters - 1 do
            ignore (f ())
          done;
          let r = f () in
          let dt = (Unix.gettimeofday () -. t0) /. float_of_int iters in
          if dt < !w then begin
            w := dt;
            out := Some r
          end
        done;
        (Option.get !out, !w)
      in
      let seed_result, seed_wall =
        best ~iters:1 (fun () ->
            Baseline.run ~config:(config sweep_rounds)
              (Congest.Algo_flood.max_id ~rounds:sweep_rounds)
              g)
      in
      let list_result, list_wall =
        best ~iters:2 (fun () ->
            Congest.Runtime.run ~config:(config sweep_rounds)
              (Congest.Algo_flood.max_id ~rounds:sweep_rounds)
              g)
      in
      let flat_result, flat_wall =
        best ~iters:10 (fun () ->
            let trace = Congest.Trace.create ~mode:Congest.Trace.Light () in
            Congest.Runtime.run_flat ~config:(config sweep_rounds) ~trace
              (Congest.Fastpath.max_id ~rounds:sweep_rounds)
              c)
      in
      let parity =
        seed_result.Baseline.outputs = flat_result.Congest.Runtime.outputs
        && seed_result.Baseline.outputs = list_result.Congest.Runtime.outputs
        && seed_result.Baseline.rounds_executed
           = flat_result.Congest.Runtime.rounds_executed
        && Baseline.total_messages seed_result.Baseline.trace
           = Congest.Trace.total_messages list_result.Congest.Runtime.trace
        && Baseline.total_bits seed_result.Baseline.trace
           = Congest.Trace.total_bits list_result.Congest.Runtime.trace
      in
      note "seed-vs-flat at n=10000: outputs, rounds and traffic totals %s"
        (if parity then "agree across all three executors" else "DISAGREE");
      let ratio = seed_wall /. flat_wall in
      Printf.eprintf
        "  [largen] speedup  n=10000   flood     seed %.3fs / list %.3fs / \
         flat %.3fs -> %.1fx (list %.1fx)\n%!"
        seed_wall list_wall flat_wall ratio (seed_wall /. list_wall);
      Some (seed_wall, list_wall, flat_wall, ratio, parity)
    end
  in

  (* ---------------- gadget-family sweep ---------------------------- *)
  let gtable =
    T.create
      [
        T.column ~align:T.Right "target";
        T.column ~align:T.Right "ell";
        T.column ~align:T.Right "nodes";
        T.column ~align:T.Right "edges";
        T.column ~align:T.Right "cut edges";
        T.column ~align:T.Right "cut bits";
        T.column ~align:T.Left "csr = bitset";
      ]
  in
  List.iter
    (fun target ->
      match gadget_params target with
      | None -> ()
      | Some p ->
          let t0 = Unix.gettimeofday () in
          let fixed, part = LF.fixed_csr p in
          let build_s = Unix.gettimeofday () -. t0 in
          let rng = rng_for (Printf.sprintf "largen-gadget-%d" target) in
          let x =
            Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players
              ~intersecting:true
          in
          let inst, _ = LF.instance_csr p x in
          let m, _, trace =
            run_flat_timed ~leg:"gadget" ~algo:"flood" ~cut:part ~rounds:4
              (Congest.Fastpath.max_id ~rounds:4)
              inst
          in
          record { m with m_wall_s = m.m_wall_s +. build_s };
          Printf.eprintf "  [largen] gadget   ell=%d build %.3fs (%d edges)\n%!"
            (P.ell p) build_s (Csr.edge_count fixed);
          (* Small sizes: the CSR builder path must agree edge-for-edge
             with the historical bitset construction. *)
          let agrees =
            if LF.n_nodes p <= 2_000 then
              T.cell_bool (Csr.equal fixed (Csr.of_graph (fst (LF.fixed p))))
            else "skipped"
          in
          T.add_row gtable
            [
              T.cell_int target;
              T.cell_int (P.ell p);
              T.cell_int (Csr.n fixed);
              T.cell_int (Csr.edge_count fixed);
              T.cell_int (LF.expected_cut_size p);
              T.cell_int (Congest.Trace.cut_bits trace part);
              agrees;
            ])
    sizes;
  T.print ~title:"linear family at alpha=1, t=2 (flood, 4 rounds, cut registered)"
    gtable;

  (* ---------------- CSV + trajectory ------------------------------- *)
  let rows = List.rev !measures in
  Exec.Cache.mkdir_p "results";
  let oc = open_out largen_csv in
  output_string oc
    "leg,n,algo,rounds,messages,bits,wall_s,rounds_per_s,msgs_per_s,peak_words\n";
  List.iter
    (fun m ->
      Printf.fprintf oc "%s,%d,%s,%d,%d,%d,%.4f,%.1f,%.1f,%d\n" m.m_leg m.m_n
        m.m_algo m.m_rounds m.m_messages m.m_bits m.m_wall_s
        (per_s m.m_rounds m.m_wall_s)
        (per_s m.m_messages m.m_wall_s)
        m.m_peak_words)
    rows;
  (match speedup with
  | None -> ()
  | Some (seed_wall, list_wall, flat_wall, ratio, _) ->
      let row algo wall =
        Printf.fprintf oc "speedup,10000,%s,%d,0,0,%.4f,%.1f,0,0\n" algo
          sweep_rounds wall
          (per_s sweep_rounds wall)
      in
      row "flood-seed" seed_wall;
      row "flood-list" list_wall;
      row "flood-flat" flat_wall;
      Printf.fprintf oc "# flat %.1fx over seed, list %.1fx over seed\n" ratio
        (seed_wall /. list_wall));
  close_out oc;
  let today () =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let run_entry m =
    J.Obj
      [
        ("leg", J.Str m.m_leg);
        ("n", J.Int m.m_n);
        ("algo", J.Str m.m_algo);
        ("rounds", J.Int m.m_rounds);
        ("messages", J.Int m.m_messages);
        ("bits", J.Int m.m_bits);
        ("wall_s", J.Float m.m_wall_s);
        ("rounds_per_s", J.Float (per_s m.m_rounds m.m_wall_s));
        ("messages_per_s", J.Float (per_s m.m_messages m.m_wall_s));
        ("peak_words", J.Int m.m_peak_words);
      ]
  in
  let entries = List.map run_entry rows in
  let entries =
    match speedup with
    | None -> entries
    | Some (seed_wall, list_wall, flat_wall, ratio, parity) ->
        entries
        @ [
            J.Obj
              [
                ("leg", J.Str "speedup");
                ("n", J.Int 10_000);
                ("algo", J.Str "flood");
                ("rounds", J.Int sweep_rounds);
                ("seed_wall_s", J.Float seed_wall);
                ("list_wall_s", J.Float list_wall);
                ("flat_wall_s", J.Float flat_wall);
                ("seed_rounds_per_s", J.Float (per_s sweep_rounds seed_wall));
                ("flat_rounds_per_s", J.Float (per_s sweep_rounds flat_wall));
                ("speedup", J.Float ratio);
                ("list_speedup", J.Float (seed_wall /. list_wall));
                ("outputs_agree", J.Bool parity);
              ];
          ]
  in
  J.append_entry ~path:bench_json
    ~header:[ ("bench", J.Str "largen"); ("schema", J.Int 1) ]
    (J.Obj
       [
         ("date", J.Str (today ()));
         ("max_n", J.Int max_n);
         ("runs", J.Arr entries);
       ]);
  note "throughput written to %s and %s" largen_csv bench_json
