(* The seed CONGEST executor, frozen as a benchmark baseline.

   The library runtime was rewritten over preallocated arena buffers and
   streaming trace accumulators (lib/congest/runtime.ml, trace.ml); this
   module keeps the original implementation — per-send record allocation
   into a growable log, per-round (src, dst) hashtable bandwidth
   bookkeeping, cons-built inboxes re-sorted at delivery — so the
   LARGEN bench can report the speedup of the current engine against the
   seed path on identical workloads, forever, without checking out old
   commits.  Faithful to the seed modulo the fault-injection plumbing,
   which the comparison leg never exercises (fault-free config) and
   which cost nothing when disabled.

   Not part of the library: only exp_largen links it, and nothing in it
   is reachable from lib/.  Do not "optimize" this file — its slowness
   is the datum. *)

module Graph = Wgraph.Graph
module Msg = Congest.Msg
module Program = Congest.Program

(* ------------------------------------------------------------------ *)
(* Seed trace: one boxed record per send, totals by folding the log. *)

type send = { round : int; src : int; dst : int; bits : int }

type trace = { sends : send Stdx.Dynvec.t; mutable executed_rounds : int }

let create_trace () = { sends = Stdx.Dynvec.create (); executed_rounds = 0 }

let record_send t ~round ~src ~dst ~bits =
  Stdx.Dynvec.push t.sends { round; src; dst; bits }

let total_messages t = Stdx.Dynvec.length t.sends

let total_bits t =
  Stdx.Dynvec.fold (fun acc (s : send) -> acc + s.bits) 0 t.sends

(* ------------------------------------------------------------------ *)
(* Seed round loop (fault-free). *)

type 'out result = {
  outputs : 'out option array;
  rounds_executed : int;
  all_halted : bool;
  trace : trace;
}

type metrics = {
  m_runs : Obs.Metrics.counter;
  m_rounds : Obs.Metrics.counter;
  m_messages : Obs.Metrics.counter;
  m_bits : Obs.Metrics.counter;
  m_deliveries : Obs.Metrics.counter;
}

let metrics_for algo =
  let labels = [ ("algo", algo) ] in
  {
    m_runs = Obs.Metrics.counter ~labels "congest_runs_total";
    m_rounds = Obs.Metrics.counter ~labels "congest_rounds_total";
    m_messages = Obs.Metrics.counter ~labels "congest_messages_total";
    m_bits = Obs.Metrics.counter ~labels "congest_bits_total";
    m_deliveries = Obs.Metrics.counter ~labels "congest_deliveries_total";
  }

let run ~config (program : 'out Program.t) g =
  let n = Graph.n g in
  let limit = Congest.Runtime.bandwidth_bits config ~n in
  let mx = metrics_for program.Program.name in
  Obs.Metrics.inc mx.m_runs;
  let trace = create_trace () in
  let master_rng = Stdx.Prng.create config.Congest.Runtime.seed in
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = Graph.weight g v;
        neighbors = Stdx.Bitset.to_array (Graph.neighbors g v);
        rng = Stdx.Prng.split master_rng;
      }
    in
    program.Program.spawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  let inboxes : (int * Msg.t) list array = Array.make n [] in
  let next_inboxes : (int * Msg.t) list array = Array.make n [] in
  let sent_this_round : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let round = ref 0 in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (instances.(v).Program.halted ()) then ok := false
    done;
    !ok
  in
  while !round < config.Congest.Runtime.max_rounds && not (all_halted ()) do
    Hashtbl.reset sent_this_round;
    Array.fill next_inboxes 0 n [];
    for v = 0 to n - 1 do
      let inst = instances.(v) in
      if not (inst.Program.halted ()) then
        let outbox = inst.Program.step ~round:!round ~inbox:inboxes.(v) in
        List.iter
          (fun (dst, (m : Msg.t)) ->
            if not (Graph.has_edge g v dst) then
              raise
                (Congest.Runtime.Illegal_recipient
                   { round = !round; src = v; dst });
            let key = (v, dst) in
            let already =
              Option.value ~default:0 (Hashtbl.find_opt sent_this_round key)
            in
            let total = already + m.Msg.bits in
            if total > limit then
              raise
                (Congest.Runtime.Bandwidth_exceeded
                   { round = !round; src = v; dst; bits = total; limit });
            Hashtbl.replace sent_this_round key total;
            record_send trace ~round:!round ~src:v ~dst ~bits:m.Msg.bits;
            Obs.Metrics.inc mx.m_messages;
            Obs.Metrics.add mx.m_bits m.Msg.bits;
            Obs.Metrics.inc mx.m_deliveries;
            next_inboxes.(dst) <- (v, m) :: next_inboxes.(dst))
          outbox
    done;
    for v = 0 to n - 1 do
      inboxes.(v) <-
        List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(v)
    done;
    incr round
  done;
  trace.executed_rounds <- !round;
  Obs.Metrics.add mx.m_rounds !round;
  {
    outputs = Array.map (fun inst -> inst.Program.output ()) instances;
    rounds_executed = !round;
    all_halted = all_halted ();
    trace;
  }
