(* Experiment SERVE: the solve daemon under multi-client load.

   An in-process daemon (own domain, own pool) is driven two ways:

   - a scripted capability pass over every protocol op — ping, bounds,
     cold solve, warm solve, budget exhaustion, claim-verify, a
     malformed line, an oversized line, an over-ceiling budget — whose
     table is deterministic by construction (payloads are cached solver
     output; statuses are protocol law) and lands on stdout;

   - a seeded load phase — closed-loop client threads and a pipelined
     burst — whose throughput and tail latency are run-dependent and
     therefore go to stderr, results/serve_latency.csv and the
     BENCH_serve.json trajectory file, never stdout.

   A chaos episode rides along: worker-killing requests and an
   fs-fault-injected cache mid-load, after which every in-flight
   request must still have received a terminal reply and fsck must
   come back clean.

   MAXIS_SERVE_SOCKET=<addr> (plus MAXIS_SERVE_METRICS_SOCKET) points
   the pass at an externally started daemon instead — the smoke script
   uses this; the chaos and drain legs only run in-process. *)

module T = Stdx.Tablefmt
module J = Stdx.Jsonx
module Proto = Serve.Proto
module Client = Serve.Client
open Exp_common

let serve_root = Filename.concat "results" "serve-bench"

let sock_path = Filename.concat serve_root "wire.sock"

let metrics_path = Filename.concat serve_root "metrics.sock"

let cache_dir = Filename.concat serve_root "cache"

let latency_csv = Filename.concat "results" "serve_latency.csv"

let capability_csv = Filename.concat "results" "serve_capabilities.csv"

let bench_json = "BENCH_serve.json"

let max_line_bytes = 65536

let rm_rf root =
  let fs = Stdx.Fsio.real in
  let rec go path =
    if fs.Stdx.Fsio.file_exists path then
      if fs.Stdx.Fsio.is_directory path then begin
        Array.iter
          (fun f -> go (Filename.concat path f))
          (fs.Stdx.Fsio.readdir path);
        try fs.Stdx.Fsio.rmdir path with Sys_error _ -> ()
      end
      else try fs.Stdx.Fsio.remove path with Sys_error _ -> ()
  in
  go root

(* ------------------------------------------------------------------ *)
(* Request corpus: small gadget instances, cheap enough that the load
   phase is socket-bound rather than solver-bound once the cache is
   warm. *)

let corpus =
  [|
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 11 };
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 12 };
    { Proto.solve_defaults with Proto.ell = 4; players = 2; seed = 13 };
    { Proto.solve_defaults with Proto.ell = 4; players = 2; seed = 14 };
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 15; intersecting = true };
    { Proto.solve_defaults with Proto.ell = 4; players = 2; seed = 16; intersecting = true };
  |]

let corpus_req rng =
  let sp = corpus.(Stdx.Prng.int rng (Array.length corpus)) in
  Proto.solve { sp with Proto.budget_nodes = Some 200_000 }

(* ------------------------------------------------------------------ *)
(* Load generation *)

type load_stats = {
  requests : int;
  ok : int;
  rejected : int;
  errored : int;
  wall_s : float;
  latencies_ms : float array;  (** closed-loop only; empty for burst *)
}

let count_status replies =
  List.fold_left
    (fun (ok, rej, err) r ->
      match r with
      | Proto.Ok_reply _ -> (ok + 1, rej, err)
      | Proto.Rejected _ -> (ok, rej + 1, err)
      | Proto.Error_reply _ -> (ok, rej, err + 1))
    (0, 0, 0) replies

(* Closed-loop: [clients] threads, each its own connection, each sending
   [per_client] requests back to back and waiting for every reply.
   Per-request latency is wall-clock around one request/reply pair. *)
let closed_loop addr ~clients ~per_client =
  let results = Array.make clients ([], [||]) in
  let t0 = Unix.gettimeofday () in
  let worker i =
    let rng = rng_for (Printf.sprintf "serve-load-%d" i) in
    let c = Client.connect addr in
    let lats = Array.make per_client 0.0 in
    let replies = ref [] in
    for r = 0 to per_client - 1 do
      let req = corpus_req rng in
      let s = Unix.gettimeofday () in
      let reply = Client.request c req in
      lats.(r) <- (Unix.gettimeofday () -. s) *. 1000.0;
      replies := reply :: !replies
    done;
    Client.close c;
    results.(i) <- (!replies, lats)
  in
  let threads = Array.init clients (fun i -> Thread.create worker i) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let replies = Array.to_list results |> List.concat_map fst in
  let ok, rejected, errored = count_status replies in
  {
    requests = clients * per_client;
    ok;
    rejected;
    errored;
    wall_s;
    latencies_ms =
      Array.concat (Array.to_list (Array.map snd results));
  }

(* Burst: one connection, [n] requests pipelined in a single write wave,
   then all replies read back.  Exercises the admission window and the
   batch dispatcher; only aggregate throughput is meaningful. *)
let burst addr ~n =
  let rng = rng_for "serve-burst" in
  let c = Client.connect addr in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Client.send c (corpus_req rng)
  done;
  let replies = ref [] in
  for _ = 1 to n do
    replies := Client.recv c :: !replies
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  Client.close c;
  let ok, rejected, errored = count_status !replies in
  {
    requests = n;
    ok;
    rejected;
    errored;
    wall_s;
    latencies_ms = [||];
  }

(* ------------------------------------------------------------------ *)
(* Trajectory file: one JSON object per re-anchor, appended to the
   entries array so the perf history accumulates across sessions. *)

let today () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let load_entry ~mode ~clients (s : load_stats) =
  let p q =
    if Array.length s.latencies_ms = 0 then J.Null
    else J.Float (Stdx.Stats.percentile s.latencies_ms q)
  in
  J.Obj
    [
      ("mode", J.Str mode);
      ("clients", J.Int clients);
      ("requests", J.Int s.requests);
      ("ok", J.Int s.ok);
      ("rejected", J.Int s.rejected);
      ("error", J.Int s.errored);
      ("wall_s", J.Float s.wall_s);
      ("throughput_rps", J.Float (float_of_int s.requests /. s.wall_s));
      ("p50_ms", p 50.0);
      ("p99_ms", p 99.0);
    ]

let append_trajectory ~jobs entries =
  let existing =
    if Sys.file_exists bench_json then begin
      let ic = open_in_bin bench_json in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match J.parse body with
      | Ok j -> ( match J.member "entries" j with Some (J.Arr l) -> l | _ -> [])
      | Error _ -> []
    end
    else []
  in
  let entry =
    J.Obj [ ("date", J.Str (today ())); ("jobs", J.Int jobs); ("runs", J.Arr entries) ]
  in
  let doc =
    J.Obj
      [
        ("bench", J.Str "serve");
        ("schema", J.Int 1);
        ("entries", J.Arr (existing @ [ entry ]));
      ]
  in
  let oc = open_out_bin bench_json in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let write_latency_csv rows =
  Exec.Cache.mkdir_p "results";
  let oc = open_out latency_csv in
  output_string oc
    "mode,clients,requests,ok,rejected,error,wall_s,throughput_rps,p50_ms,p99_ms\n";
  List.iter
    (fun (mode, clients, (s : load_stats)) ->
      let p q =
        if Array.length s.latencies_ms = 0 then ""
        else Printf.sprintf "%.3f" (Stdx.Stats.percentile s.latencies_ms q)
      in
      Printf.fprintf oc "%s,%d,%d,%d,%d,%d,%.3f,%.1f,%s,%s\n" mode clients
        s.requests s.ok s.rejected s.errored s.wall_s
        (float_of_int s.requests /. s.wall_s)
        (p 50.0) (p 99.0))
    rows;
  close_out oc

let one_line s = String.map (fun c -> if c = '\n' then ';' else c) s

let last_line s =
  match String.rindex_opt s '\n' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* ------------------------------------------------------------------ *)

let run () =
  section "SERVE" "solve daemon: protocol capabilities + multi-client load";
  let external_addr =
    match Sys.getenv_opt "MAXIS_SERVE_SOCKET" with
    | None | Some "" -> None
    | Some s -> (
        match Proto.addr_of_string s with
        | Ok a -> Some a
        | Error e -> failwith ("MAXIS_SERVE_SOCKET: " ^ e))
  in
  let jobs = Exec.Pool.default_jobs () in
  (* In-process daemon: its cache reads and writes through a seeded
     fault-injecting filesystem for the entire run, so the chaos episode
     is not a special mode — the capability table's byte-parity rows
     already hold under injected faults. *)
  let injector =
    Exec.Fsio.injector
      (Exec.Fsio.plan
         ~default:
           (Exec.Fsio.op_fault ~eintr:0.03 ~enospc:0.02 ~torn:0.02 ~flip:0.02
              ~fail_rename:0.02 ())
         41)
  in
  let daemon, addr, metrics_addr =
    match external_addr with
    | Some a ->
        let m =
          match Sys.getenv_opt "MAXIS_SERVE_METRICS_SOCKET" with
          | None | Some "" -> None
          | Some s -> (
              match Proto.addr_of_string s with Ok a -> Some a | Error _ -> None)
        in
        (None, a, m)
    | None ->
        rm_rf serve_root;
        Exec.Cache.mkdir_p serve_root;
        let cache =
          Exec.Cache.create ~fs:(Exec.Fsio.chaos injector) ~dir:cache_dir ()
        in
        let listen = Proto.Unix_sock sock_path in
        let metrics = Proto.Unix_sock metrics_path in
        let cfg =
          {
            (Serve.Daemon.default_config ~cache ~listen ()) with
            Serve.Daemon.metrics = Some metrics;
            jobs;
            max_line_bytes;
            allow_chaos = true;
          }
        in
        let d = Serve.Daemon.create cfg in
        let h = Domain.spawn (fun () -> Serve.Daemon.run d) in
        (Some (d, h), listen, Some metrics)
  in

  (* ---------------- capability table (deterministic) -------------- *)
  let table =
    T.create
      [
        T.column ~align:T.Left "request";
        T.column ~align:T.Left "status";
        T.column ~align:T.Left "reply";
      ]
  in
  let row name reply =
    let detail =
      match Proto.reply_payload reply with
      | Some p -> one_line p
      | None -> Option.value (Proto.reply_reason reply) ~default:""
    in
    T.add_row table [ name; Proto.reply_status reply; detail ]
  in
  let c = Client.connect addr in
  row "ping" (Client.request c (Proto.ping ()));
  row "bounds ell=3 t=2"
    (Client.request c (Proto.bounds ~alpha:1 ~ell:3 ~players:2 ()));
  let solve_sp =
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 11;
      budget_nodes = Some 200_000 }
  in
  let cold = Client.request c (Proto.solve solve_sp) in
  row "solve ell=3 t=2 (cold)" cold;
  let warm = Client.request c (Proto.solve solve_sp) in
  T.add_row table
    [
      "solve again (warm)";
      Proto.reply_status warm;
      T.cell_bool (Proto.reply_payload warm = Proto.reply_payload cold)
      ^ " (= cold bytes)";
    ];
  (* Offline parity: the same op through Serve.Ops directly (a fresh
     fault-free cacheless context) must produce the same payload bytes
     the socket returned. *)
  let offline =
    (Serve.Ops.solve ~cache:(Exec.Cache.disabled ())
       ~budget:(Exec.Budget.create ~max_nodes:200_000 ())
       solve_sp)
      .Serve.Ops.payload
  in
  T.add_row table
    [
      "offline Ops.solve parity";
      "-";
      T.cell_bool (Proto.reply_payload cold = Some offline) ^ " (= socket bytes)";
    ];
  row "solve budget_nodes=10"
    (Client.request c
       (Proto.solve { solve_sp with Proto.budget_nodes = Some 10 }));
  let cv =
    Client.request c
      (Proto.claim_verify
         { Proto.verify_defaults with Proto.v_ell = 3; v_players = 2; v_samples = 1 })
  in
  T.add_row table
    [
      "claim-verify ell=3 t=2";
      Proto.reply_status cv;
      (match Proto.reply_payload cv with
      | Some p -> last_line p
      | None -> Option.value (Proto.reply_reason cv) ~default:"");
    ];
  row "over-ceiling budget"
    (Client.request c
       (Proto.solve { solve_sp with Proto.budget_nodes = Some 100_000_000 }));
  Client.send_raw c "{\"op\":";
  row "malformed line" (Client.recv c);
  Client.send_raw c (String.make (max_line_bytes + 5) 'x');
  row "oversized line" (Client.recv c);
  row "ping (same connection)" (Client.request c (Proto.ping ()));
  Client.close c;
  T.print ~csv:capability_csv table;
  note "wrote %s." capability_csv;

  (* ---------------- load phase (run-dependent) --------------------- *)
  let clients = 4 and per_client = 24 and burst_n = 48 in
  let cl = closed_loop addr ~clients ~per_client in
  let bu = burst addr ~n:burst_n in
  Format.eprintf
    "[serve] closed-loop: %d clients x %d reqs, %.2fs wall, %.1f req/s, p50 \
     %.2fms p99 %.2fms (%d ok, %d rejected, %d error)@."
    clients per_client cl.wall_s
    (float_of_int cl.requests /. cl.wall_s)
    (Stdx.Stats.percentile cl.latencies_ms 50.0)
    (Stdx.Stats.percentile cl.latencies_ms 99.0)
    cl.ok cl.rejected cl.errored;
  Format.eprintf
    "[serve] burst: %d pipelined, %.2fs wall, %.1f req/s (%d ok, %d rejected, \
     %d error)@."
    burst_n bu.wall_s
    (float_of_int bu.requests /. bu.wall_s)
    bu.ok bu.rejected bu.errored;
  let every_reply_terminal =
    cl.ok + cl.rejected + cl.errored = cl.requests
    && bu.ok + bu.rejected + bu.errored = bu.requests
  in
  write_latency_csv
    [ ("closed-loop", clients, cl); ("burst", 1, bu) ];
  note "wrote %s (run-dependent; not under version control)." latency_csv;

  (* ---------------- chaos episode + drain (in-process only) -------- *)
  let verdicts =
    T.create
      [ T.column ~align:T.Left "check"; T.column ~align:T.Left "result" ]
  in
  T.add_row verdicts
    [ "every load request got a terminal reply"; T.cell_bool every_reply_terminal ];
  (match metrics_addr with
  | None -> ()
  | Some m ->
      let body = Client.scrape m in
      let has_requests =
        (* any serve_requests_total sample with a positive count *)
        String.split_on_char '\n' body
        |> List.exists (fun l ->
               String.length l > 20
               && String.sub l 0 20 = "serve_requests_total"
               && not (String.length l >= 2 && String.sub l (String.length l - 2) 2 = " 0"))
      in
      T.add_row verdicts
        [ "scrape shows serve_requests_total > 0"; T.cell_bool has_requests ]);
  (match daemon with
  | None -> note "external daemon: chaos + drain legs skipped."
  | Some (d, h) ->
      (* Chaos: worker-killing requests interleaved with solves on one
         connection.  Every request — poison included — must get a
         terminal reply, and the killed workers must not take any
         neighbouring request down with them. *)
      let c = Client.connect addr in
      let n_chaos = 12 in
      let rng = rng_for "serve-chaos" in
      let sent =
        List.init n_chaos (fun i ->
            let req =
              if i mod 4 = 1 then Proto.chaos_kill ~id:(J.Int i) ()
              else
                let sp = corpus.(Stdx.Prng.int rng (Array.length corpus)) in
                Proto.solve ~id:(J.Int i)
                  { sp with Proto.budget_nodes = Some 200_000 }
            in
            Client.send c req;
            req)
      in
      let replies = List.map (fun _ -> Client.recv c) sent in
      Client.close c;
      let solves_ok =
        List.for_all2
          (fun req reply ->
            match req.Proto.op with
            | Proto.Chaos_kill -> Proto.reply_status reply = "error"
            | _ -> Proto.reply_status reply = "ok")
          sent replies
      in
      T.add_row verdicts
        [
          "chaos episode: kills contained, solves answered";
          T.cell_bool solves_ok;
        ];
      (* Drain: stop must answer everything and return. *)
      Serve.Daemon.stop d;
      Domain.join h;
      T.add_row verdicts [ "daemon drained on stop"; T.cell_bool true ];
      (* The cache lived behind a fault-injecting filesystem the whole
         run; fsck must repair whatever that corrupted, and a second
         pass must be clean. *)
      let _first = Exec.Fsck.run ~cache_dir ~journal_dir:(Filename.concat serve_root "nojournal") () in
      let second = Exec.Fsck.run ~cache_dir ~journal_dir:(Filename.concat serve_root "nojournal") () in
      T.add_row verdicts
        [ "fsck clean after chaos run"; T.cell_bool (Exec.Fsck.clean second) ];
      Format.eprintf "[serve] daemon replies: %d; fs faults injected: %d@."
        (Serve.Daemon.requests_served d)
        (Exec.Fsio.total_injected injector));
  T.print verdicts;

  append_trajectory ~jobs
    [ load_entry ~mode:"closed-loop" ~clients cl; load_entry ~mode:"burst" ~clients:1 bu ];
  note "appended trajectory entry to %s." bench_json
