(* Experiment PERF: Bechamel timing benches, one Test.make per moving part
   of the pipeline — family construction, exact solving on both promise
   sides, code encoding, bipartite matching, and a full CONGEST
   simulation round-trip. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
open Bechamel
open Toolkit

let p3 = P.make ~alpha:1 ~ell:4 ~players:3
let p2 = P.make ~alpha:1 ~ell:4 ~players:2

let prepared_inputs =
  let rng = Stdx.Prng.create 0xbe5c in
  let xi = Commcx.Inputs.gen_promise rng ~k:(P.k p3) ~t:3 ~intersecting:true in
  let xd = Commcx.Inputs.gen_promise rng ~k:(P.k p3) ~t:3 ~intersecting:false in
  let xq =
    Commcx.Inputs.gen_promise rng ~k:(QF.string_length p2) ~t:2
      ~intersecting:true
  in
  (xi, xd, xq)

let tests =
  let xi, xd, xq = prepared_inputs in
  let inst_i = LF.instance p3 xi in
  let inst_d = LF.instance p3 xd in
  let gi = inst_i.Maxis_core.Family.graph in
  let gd = inst_d.Maxis_core.Family.graph in
  let cp = p3.P.cp in
  Test.make_grouped ~name:"maxis-lb"
    [
      Test.make ~name:"build-linear-t3" (Staged.stage (fun () -> LF.instance p3 xi));
      Test.make ~name:"build-quadratic-t2" (Staged.stage (fun () -> QF.instance p2 xq));
      Test.make ~name:"exact-mis-intersecting" (Staged.stage (fun () -> Mis.Exact.opt gi));
      Test.make ~name:"exact-mis-disjoint" (Staged.stage (fun () -> Mis.Exact.opt gd));
      Test.make ~name:"greedy-mis" (Staged.stage (fun () -> Mis.Bounds.greedy_lower gi));
      Test.make ~name:"clique-cover-bound"
        (Staged.stage (fun () -> Mis.Bounds.clique_cover_upper gi));
      Test.make ~name:"rs-encode-all-k"
        (Staged.stage (fun () ->
             for m = 0 to Codes.Code_params.(cp.k) - 1 do
               ignore (Codes.Code_params.codeword cp m)
             done));
      Test.make ~name:"property2-matching"
        (Staged.stage (fun () ->
             ignore (Maxis_core.Properties.property2 p3 ~i:0 ~j:1 ~m1:0 ~m2:1)));
      Test.make ~name:"congest-luby"
        (Staged.stage (fun () -> ignore (Congest.Runtime.run Congest.Algo_luby.mis gi)));
      Test.make ~name:"congest-coloring"
        (Staged.stage (fun () ->
             ignore (Congest.Runtime.run Congest.Algo_coloring.color gi)));
      Test.make ~name:"congest-matching"
        (Staged.stage (fun () ->
             ignore (Congest.Runtime.run Congest.Algo_matching.maximal_matching gi)));
      Test.make ~name:"vertex-cover-2approx"
        (Staged.stage (fun () -> ignore (Mis.Vertex_cover.local_ratio_2approx gi)));
      Test.make ~name:"simulation-flood"
        (Staged.stage (fun () ->
             ignore
               (Maxis_core.Simulation.simulate
                  (Congest.Algo_flood.max_id ~rounds:4)
                  inst_i)));
      Test.make ~name:"player-protocol-flood"
        (Staged.stage (fun () ->
             ignore
               (Maxis_core.Player_sim.run
                  (Congest.Algo_flood.max_id ~rounds:4)
                  inst_i)));
      Test.make ~name:"unweighted-transform"
        (Staged.stage (fun () ->
             ignore (Maxis_core.Unweighted.transform_instance inst_d)));
    ]

(* ------------------------------------------------------------------ *)
(* Exec probe: the Theorem-1 sweep workload run through Exec.Pool +
   Exec.Cache against a private, freshly wiped cache directory.  The
   hit/miss counters of the cold and warm passes are deterministic
   (cold: every solve misses; warm: every solve hits), so they get a CSV
   twin; wall-clock comparisons are inherently run-dependent and stay on
   stdout with the other timings. *)

let probe_dir = Filename.concat "results" (Filename.concat "cache" "perf-probe")

let probe_workload cache pool =
  (* Same shape as T1-gap: per-t claim solves on both promise sides. *)
  let solves = Atomic.make 0 in
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:((t * t) + 1) ~players:t in
      let params = Format.asprintf "%a" P.pp p in
      let rng = Stdx.Prng.create (0x9e3f + t) in
      let inputs =
        Array.init 4 (fun i ->
            (i, Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t ~intersecting:(i mod 2 = 0)))
      in
      let opts =
        Exec.Pool.map pool
          (fun (i, x) ->
            (* The trial index goes into the key so that two identical
               random draws still occupy distinct entries: cold passes
               then miss exactly once per trial at every pool width,
               keeping this table deterministic. *)
            let key =
              Exec.Cache.key ~family:"linear-perf-probe" ~params ~seed:i
                ~solver:"opt"
                ~extra:(Exec.Cache.fingerprint (Commcx.Inputs.canonical x))
                ()
            in
            Exec.Cache.memo_value cache key
              ~encode:string_of_int
              ~decode:int_of_string_opt
              (fun () ->
                Atomic.incr solves;
                Mis.Exact.opt (LF.instance p x).Maxis_core.Family.graph))
          inputs
      in
      ignore (opts : int array))
    [ 2; 3 ];
  Atomic.get solves

let exec_probe () =
  (* Wipe so the cold pass is genuinely cold and the counters exact. *)
  Exec.Cache.clear (Exec.Cache.create ~dir:probe_dir ());
  let counters =
    Stdx.Tablefmt.create
      [
        Stdx.Tablefmt.column ~align:Stdx.Tablefmt.Left "phase";
        Stdx.Tablefmt.column "solves";
        Stdx.Tablefmt.column "hits";
        Stdx.Tablefmt.column "misses";
        Stdx.Tablefmt.column "stores";
      ]
  in
  let timings = ref [] in
  let pass phase ~jobs =
    let cache = Exec.Cache.create ~dir:probe_dir () in
    let t0 = Unix.gettimeofday () in
    let solves = Exec.Pool.with_pool ~jobs (probe_workload cache) in
    let dt = Unix.gettimeofday () -. t0 in
    let s = Exec.Cache.stats cache in
    Stdx.Tablefmt.add_row counters
      [
        phase;
        Stdx.Tablefmt.cell_int solves;
        Stdx.Tablefmt.cell_int s.Exec.Cache.hits;
        Stdx.Tablefmt.cell_int s.Exec.Cache.misses;
        Stdx.Tablefmt.cell_int s.Exec.Cache.stores;
      ];
    timings := (phase, dt) :: !timings
  in
  (* Fixed width: the probe compares sequential vs 2-way parallel no
     matter what MAXIS_JOBS says, so the CSV twin is byte-identical in
     every environment. *)
  let par_jobs = 2 in
  pass "cold seq (jobs=1)" ~jobs:1;
  pass "warm seq (jobs=1)" ~jobs:1;
  Exec.Cache.clear (Exec.Cache.create ~dir:probe_dir ());
  pass (Printf.sprintf "cold par (jobs=%d)" par_jobs) ~jobs:par_jobs;
  pass (Printf.sprintf "warm par (jobs=%d)" par_jobs) ~jobs:par_jobs;
  Stdx.Tablefmt.print ~title:"exec pool + cache counters (deterministic)"
    ~csv:"results/perf_exec.csv" counters;
  List.iter
    (fun (phase, dt) -> Exp_common.note "%-20s %.3f s wall" phase dt)
    (List.rev !timings);
  Exp_common.note
    "warm passes perform zero exact-MIS solves; wall times are run-dependent"

let run () =
  Exp_common.section "PERF" "Bechamel timings (ns per run, OLS on monotonic clock)";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Stdx.Tablefmt.create
      [
        Stdx.Tablefmt.column ~align:Stdx.Tablefmt.Left "bench";
        Stdx.Tablefmt.column "ns/run";
      ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Stdx.Tablefmt.add_row table [ name; ns ])
    (List.sort compare !rows);
  Stdx.Tablefmt.print ~csv:"results/perf.csv" table;
  exec_probe ()
