(* Experiments T1-bound, T2-bound and BASE: the round lower bounds of
   Theorems 1 and 2 via Corollary 1, with measured cuts, and the
   comparison against prior work.

   Shape to reproduce: the linear bound scales like n/log^3 n, the
   quadratic like n^2/log^3 n (the ratio bound/shape stabilizes), and both
   strictly dominate the Bachrach et al. baselines (by log^3 n and
   log^4 n respectively) while defeating harder approximation ratios. *)

module P = Maxis_core.Params
module Theorems = Maxis_core.Theorems
module Baseline = Maxis_core.Bachrach_baseline
module T = Stdx.Tablefmt
open Exp_common

(* Parameter ladder in the paper's direction: alpha grows with k.  The
   calculators are closed-form, so the ladder can reach sizes whose graphs
   would not fit in memory. *)
let ladder =
  [ (1, 4); (2, 4); (2, 8); (3, 6); (3, 10); (4, 8); (4, 16); (5, 20); (6, 26) ]

let bound_table which pick shape_name ~csv =
  let table =
    T.create
      [
        T.column "alpha";
        T.column "ell";
        T.column "k";
        T.column "strings";
        T.column "t";
        T.column "n";
        T.column "cut";
        T.column "CC bits";
        T.column "rounds LB";
        T.column shape_name;
        T.column "LB/shape";
      ]
  in
  List.iter
    (fun (alpha, ell) ->
      let p = P.make ~alpha ~ell ~players:3 in
      let r : Theorems.report = pick p in
      T.add_row table
        [
          T.cell_int alpha;
          T.cell_int ell;
          T.cell_int r.Theorems.k;
          T.cell_int r.Theorems.string_length;
          T.cell_int r.Theorems.t;
          T.cell_int r.Theorems.n;
          T.cell_int r.Theorems.cut;
          T.cell_float r.Theorems.cc_bits;
          T.cell_float ~decimals:6 r.Theorems.rounds_lower_bound;
          T.cell_float r.Theorems.shape;
          T.cell_float ~decimals:6 (r.Theorems.rounds_lower_bound /. r.Theorems.shape);
        ])
    ladder;
  T.print ~csv table;
  ignore which

let t1_bound () =
  section "T1-bound" "Theorem 1: Omega(n/log^3 n) rounds for (1/2+eps)-approx";
  bound_table "linear" Theorems.linear "n/log^3 n" ~csv:"results/t1_bound.csv";
  note "rounds LB = CC(k,t) / (2 |cut| log n); the LB/shape column shows the";
  note "polylog-vs-polylog bookkeeping (cut ~ t^2 q^2 (l+a) vs log^3 n);";
  note "in the paper regime k = (l+a)^a is exponential and the shapes match."

let t2_bound () =
  section "T2-bound" "Theorem 2: Omega(n^2/log^3 n) rounds for (3/4+eps)-approx";
  bound_table "quadratic" Theorems.quadratic "n^2/log^3 n" ~csv:"results/t2_bound.csv";
  note "the k^2-bit strings buy a factor k over the linear bound at the";
  note "same cut: the quadratic rounds LB / linear rounds LB ~ k:";
  let table =
    T.create [ T.column "alpha"; T.column "ell"; T.column "k"; T.column "quad LB / lin LB" ]
  in
  List.iter
    (fun (alpha, ell) ->
      let p = P.make ~alpha ~ell ~players:3 in
      let lin = Theorems.linear p and quad = Theorems.quadratic p in
      T.add_row table
        [
          T.cell_int alpha;
          T.cell_int ell;
          T.cell_int (P.k p);
          T.cell_float
            (quad.Theorems.rounds_lower_bound /. lin.Theorems.rounds_lower_bound);
        ])
    ladder;
  T.print ~csv:"results/quad_vs_lin.csv" table

let regime_table () =
  section "REGIME" "The paper's asymptotic parameter choices, realized";
  let table =
    T.create
      [
        T.column "target k";
        T.column "alpha";
        T.column "ell";
        T.column "realized k";
        T.column "k ratio";
        T.column "q padding";
        T.column "n (linear)";
        T.column ~align:T.Left "lin gap";
        T.column ~align:T.Left "quad gap";
      ]
  in
  List.iter
    (fun target_k ->
      let r = Maxis_core.Regime.at ~target_k ~players:3 in
      let p = r.Maxis_core.Regime.params in
      T.add_row table
        [
          T.cell_int target_k;
          T.cell_int (P.alpha p);
          T.cell_int (P.ell p);
          T.cell_int r.Maxis_core.Regime.realized_k;
          T.cell_float r.Maxis_core.Regime.k_ratio;
          T.cell_int r.Maxis_core.Regime.prime_padding;
          T.cell_int (Maxis_core.Regime.nodes_linear r);
          (if r.Maxis_core.Regime.linear_gap_valid then "ok" else "needs bigger k");
          (if r.Maxis_core.Regime.quadratic_gap_valid then "ok" else "needs bigger k");
        ])
    [ 16; 256; 4096; 65536; 1048576; 16777216; 1073741824 ];
  T.print ~csv:"results/regime.csv" table;
  note "alpha = log k/log log k, ell = log k - alpha (the paper's choice);";
  note "prime padding q - (ell+alpha) is tiny at every scale, and the";
  note "formal gaps separate once k (hence ell ~ log k) is large enough."

let epsilon_table () =
  section "EPS" "The theorems' epsilon dependence (constant made explicit)";
  let table =
    T.create
      [
        T.column "epsilon";
        T.column "Thm1: t";
        T.column "defeats";
        T.column "rounds @ n=2^20";
        T.column "Thm2: t";
        T.column "defeats";
        T.column "rounds @ n=2^20";
      ]
  in
  List.iter
    (fun epsilon ->
      let s1 = Theorems.theorem1_statement ~epsilon in
      let s2 = Theorems.theorem2_statement ~epsilon in
      T.add_row table
        [
          T.cell_float epsilon;
          T.cell_int s1.Theorems.players_used;
          T.cell_ratio s1.Theorems.defeated_ratio;
          T.cell_float (s1.Theorems.rounds_at ~n:1048576.0);
          T.cell_int s2.Theorems.players_used;
          T.cell_ratio s2.Theorems.defeated_ratio;
          T.cell_float (s2.Theorems.rounds_at ~n:1048576.0);
        ])
    [ 0.2; 0.1; 0.05; 0.02; 0.01 ];
  T.print ~csv:"results/epsilon.csv" table;
  note "smaller eps: harder approximation ratios defeated, at a 1/(t log t)";
  note "constant -- the trade Lemma 2's t = ceil(2/eps) choice encodes."

let base () =
  section "BASE" "Comparison with prior work (matched n, formula constants 1)";
  let table =
    T.create
      [
        T.column ~align:T.Left "bound";
        T.column "defeated ratio";
        T.column "rounds @ n=2^10";
        T.column "rounds @ n=2^16";
        T.column "rounds @ n=2^20";
      ]
  in
  List.iter
    (fun (e : Baseline.entry) ->
      T.add_row table
        [
          e.Baseline.source ^ ": " ^ e.Baseline.description;
          T.cell_ratio e.Baseline.ratio;
          T.cell_float (e.Baseline.rounds ~n:1024.0);
          T.cell_float (e.Baseline.rounds ~n:65536.0);
          T.cell_float (e.Baseline.rounds ~n:1048576.0);
        ])
    Baseline.all;
  T.print ~csv:"results/baseline.csv" table;
  let table2 =
    T.create
      [
        T.column ~align:T.Left "improvement";
        T.column "factor @ n=2^16";
        T.column ~align:T.Left "expected";
      ]
  in
  T.add_row table2
    [
      "Thm 1 vs Bachrach linear";
      T.cell_float
        (Baseline.improvement_factor ~old_bound:Baseline.bachrach_linear
           ~new_bound:Baseline.this_paper_linear ~n:65536.0);
      "log^3 n = 4096";
    ];
  T.add_row table2
    [
      "Thm 2 vs Bachrach quadratic";
      T.cell_float
        (Baseline.improvement_factor ~old_bound:Baseline.bachrach_quadratic
           ~new_bound:Baseline.this_paper_quadratic ~n:65536.0);
      "log^4 n = 65536";
    ];
  T.print ~csv:"results/baseline_improvement.csv" table2;
  note "and the defeated ratios drop: 5/6 -> 1/2 (linear), 7/8 -> 3/4 (quadratic)";
  (* The constructive two-party baseline we can actually run: Lemma 1's
     family under the classic Alice-and-Bob framework. *)
  let table3 =
    T.create
      [
        T.column "ell";
        T.column "k";
        T.column "n";
        T.column "cut";
        T.column "2-party rounds LB";
        T.column "defeats";
        T.column ~align:T.Left "barrier";
      ]
  in
  List.iter
    (fun ell ->
      let p = Maxis_core.Two_party.params ~ell in
      let b = Maxis_core.Two_party.round_bound p in
      T.add_row table3
        [
          T.cell_int ell;
          T.cell_int b.Maxis_core.Two_party.k;
          T.cell_int b.Maxis_core.Two_party.n;
          T.cell_int b.Maxis_core.Two_party.cut;
          T.cell_float ~decimals:6 b.Maxis_core.Two_party.rounds_lower_bound;
          T.cell_ratio b.Maxis_core.Two_party.gamma_defeated;
          Printf.sprintf "cannot defeat %.2f" Maxis_core.Two_party.barrier_ratio;
        ])
    [ 4; 8; 16; 32 ];
  T.print ~csv:"results/two_party_baseline.csv"
    ~title:
      "the executable two-party baseline (Lemma 1 under the Alice-and-Bob \
       framework)"
    table3;
  note "two parties: better CC constant (k vs k/(t log t)) but stuck at 3/4;";
  note "the multi-party framework trades constants for ratios below 1/2+eps."

let run () =
  t1_bound ();
  t2_bound ();
  regime_table ();
  epsilon_table ();
  base ()
