(* Experiment PARLARGEN: the domain-sharded flat runtime
   ([Runtime.run_flat_par]) against sequential [run_flat] at n in the
   10³–10⁵(10⁶) range, across pool widths.

   Three legs:

   - an algorithm sweep — flood, BFS and Luby on the same sparse random
     CSR graphs as LARGEN, run once sequentially and then at every
     width in [jobs_widths].  Outputs, round counts and Light-trace
     digests are asserted byte-identical at every width; the
     deterministic parity table lands on stdout, wall-clock and the
     scaling-efficiency table (speedup and efficiency per width) on
     stderr, results/parlargen.csv and BENCH_largen.json;

   - a gadget-construction sweep — [Linear_family.fixed_csr] and (at
     the smaller sizes) [Quadratic_family.fixed_csr] built with the
     row-sorting pass sharded across each width via
     [Csr.Builder.finish ~shard], asserted [Csr.equal] to the
     sequential build.  Gadget targets stop at 10⁵ (a 10⁶-node gadget
     instance carries ~10¹⁰ edges — out of memory range);

   - the trajectory append — one dated entry per run, recorded with the
     host's domain count so single-core CI numbers read as what they
     are.

   MAXIS_LARGEN_MAX_N caps the sweep sizes exactly as in LARGEN. *)

module T = Stdx.Tablefmt
module J = Stdx.Jsonx
module Csr = Wgraph.Csr
module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
open Exp_common

let bench_json = "BENCH_largen.json"
let parlargen_csv = Filename.concat "results" "parlargen.csv"

let max_n =
  match Sys.getenv_opt "MAXIS_LARGEN_MAX_N" with
  | None | Some "" -> 100_000
  | Some s -> ( try int_of_string s with Failure _ -> 100_000)

let sizes = List.filter (fun n -> n <= max_n) [ 1_000; 10_000; 100_000; 1_000_000 ]
let gadget_sizes = List.filter (fun n -> n <= 100_000) sizes
let jobs_widths = [ 1; 2; 4; 8 ]
let sweep_rounds = 16

(* Same seeded construction as LARGEN, so the two experiments measure
   the same graphs. *)
let sparse_csr n =
  let rng = rng_for (Printf.sprintf "largen-graph-%d" n) in
  let b = Csr.Builder.create n in
  for v = 0 to n - 1 do
    for _ = 1 to 3 do
      let u = Stdx.Prng.int rng n in
      if u <> v then Csr.Builder.add_edge b v u
    done
  done;
  Csr.Builder.finish b

let config rounds =
  { Congest.Runtime.default_config with Congest.Runtime.max_rounds = rounds }

type row = {
  r_n : int;
  r_algo : string;
  r_jobs : int;  (* 0 = sequential run_flat reference *)
  r_rounds : int;
  r_messages : int;
  r_bits : int;
  r_wall_s : float;
  r_parity : bool;
}

let per_s count wall = if wall <= 0.0 then 0.0 else float_of_int count /. wall

let run () =
  section "PARLARGEN" "domain-sharded flat runtime: parity + scaling";
  let host_domains = Domain.recommended_domain_count () in
  note "sizes up to %d (MAXIS_LARGEN_MAX_N), jobs in {1,2,4,8}; host has %d domains"
    max_n host_domains;
  note "wall-clock and scaling table on stderr; %s and %s" parlargen_csv
    bench_json;
  let rows = ref [] in
  let record r =
    rows := r :: !rows;
    Printf.eprintf
      "  [parlargen] n=%-8d %-6s jobs=%d %8.3fs (%.0f rounds/s) parity=%b\n%!"
      r.r_n r.r_algo r.r_jobs r.r_wall_s
      (per_s r.r_rounds r.r_wall_s)
      r.r_parity
  in
  let pools = List.map (fun j -> (j, Exec.Pool.create ~jobs:j ())) jobs_widths in

  (* ---------------- algorithm sweep -------------------------------- *)
  let table =
    T.create
      [
        T.column ~align:T.Right "n";
        T.column ~align:T.Left "algo";
        T.column ~align:T.Right "rounds";
        T.column ~align:T.Right "messages";
        T.column ~align:T.Right "bits";
        T.column ~align:T.Left "parity (jobs 1,2,4,8)";
      ]
  in
  let all_parity = ref true in
  let sweep_algo n c algo rounds fp =
    let run_once runner =
            let trace = Congest.Trace.create ~mode:Congest.Trace.Light () in
            let t0 = Unix.gettimeofday () in
            let result = runner ~trace (fp ()) in
            let wall = Unix.gettimeofday () -. t0 in
            (result, trace, wall)
          in
          let seq, seq_trace, seq_wall =
            run_once (fun ~trace fp ->
                Congest.Runtime.run_flat ~config:(config rounds) ~trace fp c)
          in
          record
            {
              r_n = n;
              r_algo = algo;
              r_jobs = 0;
              r_rounds = seq.Congest.Runtime.rounds_executed;
              r_messages = Congest.Trace.total_messages seq_trace;
              r_bits = Congest.Trace.total_bits seq_trace;
              r_wall_s = seq_wall;
              r_parity = true;
            };
          let walls =
            List.map
              (fun (j, pool) ->
                let par, par_trace, wall =
                  run_once (fun ~trace fp ->
                      Congest.Runtime.run_flat_par ~config:(config rounds)
                        ~trace ~pool fp c)
                in
                let parity =
                  par.Congest.Runtime.outputs = seq.Congest.Runtime.outputs
                  && par.Congest.Runtime.rounds_executed
                     = seq.Congest.Runtime.rounds_executed
                  && Congest.Trace.digest par_trace
                     = Congest.Trace.digest seq_trace
                  && Congest.Trace.total_bits par_trace
                     = Congest.Trace.total_bits seq_trace
                in
                if not parity then all_parity := false;
                record
                  {
                    r_n = n;
                    r_algo = algo;
                    r_jobs = j;
                    r_rounds = par.Congest.Runtime.rounds_executed;
                    r_messages = Congest.Trace.total_messages par_trace;
                    r_bits = Congest.Trace.total_bits par_trace;
                    r_wall_s = wall;
                    r_parity = parity;
                  };
                (j, wall, parity))
              pools
          in
          (* Scaling-efficiency table row (stderr: walls are
             run-dependent). *)
          Printf.eprintf "  [parlargen] scaling n=%-8d %-6s seq %.3fs |" n algo
            seq_wall;
          List.iter
            (fun (j, wall, _) ->
              Printf.eprintf " j%d %.3fs (%.2fx, eff %.0f%%)" j wall
                (if wall > 0.0 then seq_wall /. wall else 0.0)
                (if wall > 0.0 then
                   100.0 *. seq_wall /. wall /. float_of_int j
                 else 0.0))
            walls;
          prerr_newline ();
          T.add_row table
            [
              T.cell_int n;
              algo;
              T.cell_int seq.Congest.Runtime.rounds_executed;
              T.cell_int (Congest.Trace.total_messages seq_trace);
              T.cell_int (Congest.Trace.total_bits seq_trace);
              T.cell_bool (List.for_all (fun (_, _, p) -> p) walls);
            ]
  in
  List.iter
    (fun n ->
      let c = sparse_csr n in
      sweep_algo n c "flood" sweep_rounds (fun () ->
          Congest.Fastpath.max_id ~rounds:sweep_rounds);
      sweep_algo n c "bfs" sweep_rounds (fun () ->
          Congest.Fastpath.bfs_distances ~root:0 ~rounds:sweep_rounds);
      sweep_algo n c "luby"
        Congest.Runtime.default_config.Congest.Runtime.max_rounds
        (fun () -> Congest.Fastpath.luby_mis))
    sizes;
  T.print ~title:"run_flat_par = run_flat at every width (sparse random graphs)"
    table;
  note "parity verdict: %s"
    (if !all_parity then "all widths byte-identical" else "PARITY FAILURE");

  (* ---------------- gadget-construction sweep ---------------------- *)
  let gtable =
    T.create
      [
        T.column ~align:T.Right "target";
        T.column ~align:T.Left "family";
        T.column ~align:T.Right "nodes";
        T.column ~align:T.Right "edges";
        T.column ~align:T.Left "sharded = sequential";
      ]
  in
  let gadget_params_for ~quadratic target =
    let nodes p = if quadratic then QF.n_nodes p else LF.n_nodes p in
    let rec grow ell best =
      let p = P.make ~alpha:1 ~ell ~players:2 in
      if nodes p > target then best else grow (ell + 1) (Some p)
    in
    grow 2 None
  in
  List.iter
    (fun target ->
      List.iter
        (fun quadratic ->
          match gadget_params_for ~quadratic target with
          | None -> ()
          | Some p ->
              let family = if quadratic then "quadratic" else "linear" in
              let build ?shard () =
                if quadratic then fst (QF.fixed_csr ?shard p)
                else fst (LF.fixed_csr ?shard p)
              in
              let t0 = Unix.gettimeofday () in
              let seq = build () in
              let seq_wall = Unix.gettimeofday () -. t0 in
              let agree = ref true in
              List.iter
                (fun (j, pool) ->
                  let shard ~lo ~hi f = Exec.Pool.run_range pool ~lo ~hi f in
                  let t0 = Unix.gettimeofday () in
                  let c = build ~shard () in
                  let wall = Unix.gettimeofday () -. t0 in
                  if not (Csr.equal c seq) then agree := false;
                  Printf.eprintf
                    "  [parlargen] gadget %-9s target=%-7d jobs=%d build %.3fs (seq %.3fs)\n%!"
                    family target j wall seq_wall)
                pools;
              T.add_row gtable
                [
                  T.cell_int target;
                  family;
                  T.cell_int (Csr.n seq);
                  T.cell_int (Csr.edge_count seq);
                  T.cell_bool !agree;
                ])
        [ false; true ])
    gadget_sizes;
  T.print ~title:"gadget CSR construction with sharded row sort" gtable;
  List.iter (fun (_, pool) -> Exec.Pool.shutdown pool) pools;

  (* ---------------- CSV + trajectory ------------------------------- *)
  let rows = List.rev !rows in
  Exec.Cache.mkdir_p "results";
  let oc = open_out parlargen_csv in
  output_string oc "n,algo,jobs,rounds,messages,bits,wall_s,rounds_per_s,parity\n";
  List.iter
    (fun r ->
      Printf.fprintf oc "%d,%s,%d,%d,%d,%d,%.4f,%.1f,%b\n" r.r_n r.r_algo
        r.r_jobs r.r_rounds r.r_messages r.r_bits r.r_wall_s
        (per_s r.r_rounds r.r_wall_s)
        r.r_parity)
    rows;
  close_out oc;
  let today () =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let entry r =
    J.Obj
      [
        ("n", J.Int r.r_n);
        ("algo", J.Str r.r_algo);
        ("jobs", J.Int r.r_jobs);
        ("rounds", J.Int r.r_rounds);
        ("messages", J.Int r.r_messages);
        ("bits", J.Int r.r_bits);
        ("wall_s", J.Float r.r_wall_s);
        ("rounds_per_s", J.Float (per_s r.r_rounds r.r_wall_s));
        ("parity", J.Bool r.r_parity);
      ]
  in
  J.append_entry ~path:bench_json
    ~header:[ ("bench", J.Str "largen"); ("schema", J.Int 1) ]
    (J.Obj
       [
         ("date", J.Str (today ()));
         ("leg", J.Str "parlargen");
         ("max_n", J.Int max_n);
         ("host_domains", J.Int host_domains);
         ("all_parity", J.Bool !all_parity);
         ("runs", J.Arr (List.map entry rows));
       ]);
  note "throughput written to %s and %s" parlargen_csv bench_json
