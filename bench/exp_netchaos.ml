(* Experiment NETCHAOS: the serving layer under network chaos.

   Seeded episodes, each a claim from docs/SERVING.md exercised against
   real sockets with injected faults (Stdx.Netio — the network sibling
   of the Fsio plans the CHAOS leg uses):

   - replay: a scripted fault episode re-run with the same seed must
     reproduce the fault stream exactly (and a different seed must not);
   - client chaos: a fault-injected client against a clean daemon — all
     requests answered ok with payloads byte-identical to a clean run;
   - daemon chaos: an injector plan on the daemon's own live sockets —
     same absorption claim, server side;
   - slow-loris flood: stalled partial-line connections are evicted on
     the read deadline while a healthy client keeps being served;
   - overload: accepts past max_conns are shed with a structured error,
     held connections unharmed;
   - failover: 3 replicas behind a balancer, one killed mid-load —
     every request answered ok, payloads byte-identical to the
     single-replica reference run, the dead replica's breaker open.

   The verdict table (stdout + results/netchaos_verdicts.csv) is
   deterministic by construction — booleans of absorption invariants
   plus fault counts of the scripted episode, which are a pure function
   of the seed.  Latency degradation (clean vs chaos client) is
   run-dependent and goes to stderr and BENCH_netchaos.json. *)

module T = Stdx.Tablefmt
module J = Stdx.Jsonx
module Netio = Serve.Netio
module Proto = Serve.Proto
module Client = Serve.Client
module Daemon = Serve.Daemon
module Balancer = Serve.Balancer
open Exp_common

let root = Filename.concat "results" "netchaos-bench"

let verdict_csv = Filename.concat "results" "netchaos_verdicts.csv"

let bench_json = "BENCH_netchaos.json"

let rm_rf path =
  let fs = Stdx.Fsio.real in
  let rec go path =
    if fs.Stdx.Fsio.file_exists path then
      if fs.Stdx.Fsio.is_directory path then begin
        Array.iter (fun f -> go (Filename.concat path f)) (fs.Stdx.Fsio.readdir path);
        try fs.Stdx.Fsio.rmdir path with Sys_error _ -> ()
      end
      else try fs.Stdx.Fsio.remove path with Sys_error _ -> ()
  in
  go path

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let evictions reason =
  Obs.Metrics.value
    (Obs.Metrics.counter ~labels:[ ("reason", reason) ] "serve_evictions_total")

(* ------------------------------------------------------------------ *)
(* Daemon plumbing *)

let sock_seq = ref 0

let fresh_sock tag =
  incr sock_seq;
  Filename.concat root (Printf.sprintf "%s-%d.sock" tag !sock_seq)

let daemon_on ?(configure = Fun.id) tag =
  let sock = fresh_sock tag in
  let cache =
    Exec.Cache.create ~dir:(Filename.concat root ("cache-" ^ tag)) ()
  in
  let cfg =
    configure
      {
        (Daemon.default_config ~cache ~listen:(Proto.Unix_sock sock) ()) with
        Daemon.tick_s = 0.01;
        jobs = 1;
      }
  in
  let d = Daemon.create cfg in
  let h = Domain.spawn (fun () -> Daemon.run d) in
  (d, h, Proto.Unix_sock sock)

let stop_daemon (d, h, _addr) =
  Daemon.stop d;
  Domain.join h

(* ------------------------------------------------------------------ *)
(* Seeded load: the request sequence is a pure function of [tag], so two
   runs with the same tag are byte-comparable. *)

let corpus =
  [|
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 11 };
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 12 };
    { Proto.solve_defaults with Proto.ell = 4; players = 2; seed = 13 };
    { Proto.solve_defaults with Proto.ell = 3; players = 2; seed = 15; intersecting = true };
  |]

let run_load ~request ~tag ~n =
  let rng = rng_for tag in
  let lats = Array.make n 0.0 in
  let payloads = ref [] in
  let ok = ref 0 in
  for i = 0 to n - 1 do
    let sp = corpus.(Stdx.Prng.int rng (Array.length corpus)) in
    let req =
      Proto.solve ~id:(J.Int i) { sp with Proto.budget_nodes = Some 200_000 }
    in
    let t0 = Unix.gettimeofday () in
    let r = request i req in
    lats.(i) <- (Unix.gettimeofday () -. t0) *. 1000.0;
    if Proto.reply_status r = "ok" then incr ok;
    payloads := Option.value (Proto.reply_payload r) ~default:"" :: !payloads
  done;
  (List.rev !payloads, lats, !ok)

let client_load ?netio addr ~tag ~n =
  let c = Client.connect ?netio addr in
  let r = run_load ~request:(fun _ req -> Client.request c req) ~tag ~n in
  Client.close c;
  r

(* ------------------------------------------------------------------ *)
(* Episode 1: scripted replay determinism (no daemon, no timing) *)

let scripted_episode seed =
  let payload = String.init 509 (fun i -> Char.chr (i mod 251)) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec write_all off =
    if off < String.length payload then
      write_all
        (off + Unix.write_substring a payload off (String.length payload - off))
  in
  write_all 0;
  Unix.close a;
  let inj =
    Netio.injector
      (Netio.plan
         ~overrides:
           [ ("read", Netio.op_fault ~eintr:0.2 ~stall:0.1 ~short_read:0.6 ()) ]
         seed)
  in
  let faults = ref [] in
  let net = Netio.faulty ~on_fault:(fun k -> faults := k :: !faults) inj in
  let buf = Bytes.create 64 in
  let out = Buffer.create 509 in
  let eof = ref false in
  while not !eof do
    match net.Stdx.Netio.read b buf 0 (Bytes.length buf) with
    | 0 -> eof := true
    | n -> Buffer.add_subbytes out buf 0 n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  done;
  Unix.close b;
  (List.rev !faults, Netio.faults_injected inj, Buffer.contents out = payload)

(* ------------------------------------------------------------------ *)
(* Episode 4: slow-loris flood *)

let loris_flood addr ~loris ~pings =
  let evicted = Array.make loris false in
  let threads =
    Array.init loris (fun i ->
        Thread.create
          (fun () ->
            let c = Client.connect addr in
            Client.send_bytes c {|{"op":"so|};  (* partial line, then stall *)
            (match Client.recv c with
            | r ->
                (* the eviction courtesy line *)
                evicted.(i) <- Proto.reply_status r = "error"
            | exception Exec.Error.Error (Exec.Error.Net_io _) ->
                evicted.(i) <- true);
            Client.close c)
          ())
  in
  Thread.delay 0.05;
  (* a healthy client during the flood *)
  let c = Client.connect addr in
  let healthy = ref 0 in
  for i = 1 to pings do
    let r = Client.request c (Proto.ping ~id:(J.Int i) ()) in
    if Proto.reply_status r = "ok" then incr healthy;
    Thread.delay 0.02
  done;
  Client.close c;
  Array.iter Thread.join threads;
  (Array.for_all Fun.id evicted, !healthy)

(* ------------------------------------------------------------------ *)
(* Trajectory file (same shape as BENCH_serve.json) *)

let today () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let load_entry ~mode ~n ~ok lats =
  J.Obj
    [
      ("mode", J.Str mode);
      ("requests", J.Int n);
      ("ok", J.Int ok);
      ("p50_ms", J.Float (Stdx.Stats.percentile lats 50.0));
      ("p99_ms", J.Float (Stdx.Stats.percentile lats 99.0));
    ]

let append_trajectory entries =
  let existing =
    if Sys.file_exists bench_json then begin
      let ic = open_in_bin bench_json in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match J.parse body with
      | Ok j -> ( match J.member "entries" j with Some (J.Arr l) -> l | _ -> [])
      | Error _ -> []
    end
    else []
  in
  let entry = J.Obj [ ("date", J.Str (today ())); ("runs", J.Arr entries) ] in
  let doc =
    J.Obj
      [
        ("bench", J.Str "netchaos");
        ("schema", J.Int 1);
        ("entries", J.Arr (existing @ [ entry ]));
      ]
  in
  let oc = open_out_bin bench_json in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let run () =
  section "NETCHAOS" "serving layer under network chaos";
  rm_rf root;
  Exec.Cache.mkdir_p root;
  let verdicts =
    T.create [ T.column ~align:T.Left "check"; T.column ~align:T.Left "result" ]
  in
  let verdict name ok = T.add_row verdicts [ name; T.cell_bool ok ] in

  (* ------------- episode 1: scripted replay determinism ------------ *)
  let f1, c1, intact1 = scripted_episode 42 in
  let f2, c2, intact2 = scripted_episode 42 in
  let f3, _, _ = scripted_episode 43 in
  verdict "replay: same seed, identical fault stream" (f1 = f2 && c1 = c2);
  verdict "replay: different seed, different fault stream" (f1 <> f3);
  verdict "replay: transfers intact under faults" (intact1 && intact2);
  T.add_row verdicts
    [
      "replay: fault counts (seed 42)";
      String.concat ";"
        (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) c1);
    ];

  (* ------------- episodes 2+3: absorption on live connections ------ *)
  let n_load = 24 in
  let clean = daemon_on "clean" in
  let _, _, clean_addr = clean in
  let base_payloads, base_lats, base_ok =
    client_load clean_addr ~tag:"netchaos-load" ~n:n_load
  in
  let client_inj =
    Netio.injector
      (Netio.plan
         ~overrides:
           [
             ("read", Netio.op_fault ~eintr:0.3 ~stall:0.2 ~short_read:0.4 ());
             ("write", Netio.op_fault ~eintr:0.3 ~stall:0.2 ~torn_write:0.4 ());
           ]
         1009)
  in
  let chaos_payloads, chaos_lats, chaos_ok =
    client_load ~netio:(Netio.chaos client_inj) clean_addr ~tag:"netchaos-load"
      ~n:n_load
  in
  stop_daemon clean;
  verdict "client chaos: every request ok" (chaos_ok = n_load && base_ok = n_load);
  verdict "client chaos: payload parity with clean run"
    (chaos_payloads = base_payloads);
  verdict "client chaos: faults were injected"
    (Netio.total_injected client_inj > 0);

  let daemon_inj =
    Netio.injector
      (Netio.plan
         ~overrides:
           [
             ("read", Netio.op_fault ~eintr:0.1 ~stall:0.1 ~short_read:0.3 ());
             ("write", Netio.op_fault ~eintr:0.1 ~torn_write:0.3 ());
           ]
         1013)
  in
  let chaotic =
    daemon_on "chaotic" ~configure:(fun cfg ->
        { cfg with Daemon.netio = Netio.chaos daemon_inj })
  in
  let _, _, chaotic_addr = chaotic in
  let srv_payloads, srv_lats, srv_ok =
    client_load chaotic_addr ~tag:"netchaos-load" ~n:n_load
  in
  stop_daemon chaotic;
  verdict "daemon chaos: every request ok" (srv_ok = n_load);
  verdict "daemon chaos: payload parity with clean run"
    (srv_payloads = base_payloads);
  verdict "daemon chaos: faults were injected"
    (Netio.total_injected daemon_inj > 0);

  (* ------------- episode 4: slow-loris flood ----------------------- *)
  let idle_before = evictions "idle" in
  let loris_daemon =
    daemon_on "loris" ~configure:(fun cfg ->
        { cfg with Daemon.read_deadline_s = 0.25 })
  in
  let _, _, loris_addr = loris_daemon in
  let n_loris = 6 in
  let all_evicted, healthy = loris_flood loris_addr ~loris:n_loris ~pings:16 in
  stop_daemon loris_daemon;
  verdict "slow-loris: healthy client fully served during flood" (healthy = 16);
  verdict "slow-loris: every stalled connection evicted" all_evicted;
  verdict "slow-loris: evictions accounted as reason=idle"
    (evictions "idle" - idle_before >= n_loris);

  (* ------------- episode 5: overload past max_conns ---------------- *)
  let cap_before = evictions "capacity" in
  let small =
    daemon_on "small" ~configure:(fun cfg -> { cfg with Daemon.max_conns = 4 })
  in
  let _, _, small_addr = small in
  let holders = List.init 4 (fun _ -> Client.connect small_addr) in
  let holders_live0 =
    List.for_all
      (fun c -> Proto.reply_status (Client.request c (Proto.ping ())) = "ok")
      holders
  in
  let n_extra = 6 in
  let shed_structured =
    List.init n_extra (fun _ ->
        let c = Client.connect small_addr in
        let r =
          match Client.recv c with
          | r -> (
              Proto.reply_status r = "error"
              &&
              match Proto.reply_reason r with
              | Some reason ->
                  (* the reject names the limit, not just "error" *)
                  contains ~needle:"capacity" reason
              | None -> false)
          | exception Exec.Error.Error (Exec.Error.Net_io _) -> false
        in
        Client.close c;
        r)
    |> List.for_all Fun.id
  in
  let holders_live =
    List.for_all
      (fun c -> Proto.reply_status (Client.request c (Proto.ping ())) = "ok")
      holders
  in
  List.iter Client.close holders;
  stop_daemon small;
  verdict "overload: every shed connection got a structured reject"
    shed_structured;
  verdict "overload: held connections unharmed" (holders_live0 && holders_live);
  verdict "overload: sheds accounted as reason=capacity"
    (evictions "capacity" - cap_before >= n_extra);

  (* ------------- episode 6: balancer failover ---------------------- *)
  let n_bal = 30 and kill_at = 10 in
  let reference = daemon_on "ref" in
  let _, _, ref_addr = reference in
  let ref_payloads, _, ref_ok =
    client_load ref_addr ~tag:"netchaos-balancer" ~n:n_bal
  in
  stop_daemon reference;
  let replicas = Array.init 3 (fun i -> daemon_on (Printf.sprintf "r%d" i)) in
  let addrs = Array.to_list (Array.map (fun (_, _, a) -> a) replicas) in
  let bal =
    Balancer.create ~failure_threshold:2 ~connect_retries:2 ~cooldown_s:5.0 addrs
  in
  let failovers_before =
    Obs.Metrics.value (Obs.Metrics.counter "balancer_failovers_total")
  in
  let bal_payloads, _, bal_ok =
    run_load ~tag:"netchaos-balancer" ~n:n_bal ~request:(fun i req ->
        if i = kill_at then stop_daemon replicas.(0);
        Balancer.request bal req)
  in
  let dead_open =
    List.assoc_opt (List.nth addrs 0) (Balancer.states bal) = Some "open"
  in
  let failovers =
    Obs.Metrics.value (Obs.Metrics.counter "balancer_failovers_total")
    - failovers_before
  in
  Balancer.close bal;
  stop_daemon replicas.(1);
  stop_daemon replicas.(2);
  verdict "failover: replica killed mid-load, zero client-visible errors"
    (bal_ok = n_bal && ref_ok = n_bal);
  verdict "failover: payloads byte-identical to single-replica run"
    (bal_payloads = ref_payloads);
  verdict "failover: dead replica's breaker open" dead_open;
  verdict "failover: failovers observed" (failovers > 0);

  Exec.Cache.mkdir_p "results";
  T.print ~csv:verdict_csv verdicts;
  note "wrote %s." verdict_csv;

  (* ------------- latency degradation (run-dependent) --------------- *)
  let p l q = Stdx.Stats.percentile l q in
  Format.eprintf
    "[netchaos] baseline: p50 %.2fms p99 %.2fms | client-chaos: p50 %.2fms \
     p99 %.2fms | daemon-chaos: p50 %.2fms p99 %.2fms@."
    (p base_lats 50.0) (p base_lats 99.0) (p chaos_lats 50.0)
    (p chaos_lats 99.0) (p srv_lats 50.0) (p srv_lats 99.0);
  Format.eprintf "[netchaos] faults injected: client=%d daemon=%d@."
    (Netio.total_injected client_inj)
    (Netio.total_injected daemon_inj);
  append_trajectory
    [
      load_entry ~mode:"baseline" ~n:n_load ~ok:base_ok base_lats;
      load_entry ~mode:"client-chaos" ~n:n_load ~ok:chaos_ok chaos_lats;
      load_entry ~mode:"daemon-chaos" ~n:n_load ~ok:srv_ok srv_lats;
    ];
  note "appended trajectory entry to %s." bench_json
