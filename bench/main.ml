(* The experiment harness: regenerates every figure and theorem-level
   artifact of the paper (see DESIGN.md section 3 for the index, and
   EXPERIMENTS.md for recorded paper-vs-measured results).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- list    # list experiment ids
     dune exec bench/main.exe -- F1 SIM  # run a subset *)

let experiments =
  [
    ("F1-F6", "paper figures 1-6 regenerated", Exp_figures.run);
    ("T1-gap", "linear gap vs t (Lemma 2)", Exp_gaps.run);
    ("T1-bound", "Theorems 1/2 round bounds + baseline", Exp_bounds.run);
    ("SIM", "Theorem 5 simulation + CC + Limitations", Exp_sim.run);
    ("UNW", "Remark 1 unweighted transform", Exp_unweighted.run);
    ("ABL", "ablations: code distance, bandwidth, broadcast", Exp_ablations.run);
    ("FAULTS", "fault injection: hardened delivery vs adversarial links", Exp_faults.run);
    ("PERF", "Bechamel timing benches", Exp_perf.run);
    ("OBS", "metrics + span profile of one pipeline cell", Exp_obs.run);
    ("CHAOS", "supervised execution under combined fault plans", Exp_chaos.run);
    ("SERVE", "solve daemon: capabilities + multi-client load", Exp_serve.run);
    ("NETCHAOS", "serving layer under network chaos", Exp_netchaos.run);
    ("LARGEN", "large-n CSR engine: flood/BFS/Luby + gadget sweep", Exp_largen.run);
    ("PARLARGEN", "domain-sharded flat runtime: parity + scaling", Exp_parlargen.run);
  ]

(* Subsets of the umbrella ids, so `-- T2-gap` etc. also work. *)
let aliases =
  [
    ("F1", "F1-F6");
    ("F2", "F1-F6");
    ("F3", "F1-F6");
    ("F4-F6", "F1-F6");
    ("T2-gap", "T1-gap");
    ("T2-bound", "T1-bound");
    ("BASE", "T1-bound");
    ("CC", "SIM");
    ("LIM", "SIM");
    ("ABL-code", "ABL");
    ("ABL-bandwidth", "ABL");
    ("ABL-broadcast", "ABL");
  ]

let () =
  (* Retry backoff should yield the CPU, not spin: the library default
     exists only because lib/exec carries no unix dependency. *)
  Exec.Error.set_default_sleep Unix.sleepf;
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "list" ] ->
      List.iter (fun (id, doc, _) -> Printf.printf "%-10s %s\n" id doc) experiments;
      List.iter (fun (a, target) -> Printf.printf "%-10s -> %s\n" a target) aliases
  | [] ->
      print_endline
        "Reproduction harness for 'Beyond Alice and Bob' (Efron, Grossman, \
         Khoury; PODC 2020).";
      print_endline
        "The paper is a lower-bound paper: its artifacts are gadget figures \
         and theorem-level";
      print_endline
        "gaps/bounds, all regenerated below.  See EXPERIMENTS.md for the \
         paper-vs-measured record.";
      List.iter (fun (_, _, run) -> run ()) experiments
  | ids ->
      let resolve id =
        match List.assoc_opt id aliases with Some t -> t | None -> id
      in
      List.iter
        (fun id ->
          let id = resolve id in
          match
            List.find_opt (fun (eid, _, _) -> eid = id) experiments
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %s (try `list`)\n" id;
              exit 1)
        ids
