(* Experiment OBS: the observability layer turned on itself — a span
   profile plus metric deltas for one end-to-end pipeline cell
   (instance build -> exact solve -> Theorem-5 simulation).

   stdout carries only deterministic counter deltas (same seed => same
   bits, nodes, messages, and the solve path bypasses the cache);
   wall-clock timings are inherently run-dependent and therefore go to
   stderr and to the two artifacts:

     results/obs_phases.csv           per-phase wall times (CSV)
     results/metrics/bench_obs.jsonl  metric deltas of this leg (JSONL) *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Simulation = Maxis_core.Simulation
module T = Stdx.Tablefmt
open Exp_common

let phases_csv = Filename.concat "results" "obs_phases.csv"

let metrics_jsonl =
  Filename.concat (Filename.concat "results" "metrics") "bench_obs.jsonl"

let run () =
  section "OBS" "observability: span profile + metric deltas of one pipeline cell";
  Obs.Span.set_clock Unix.gettimeofday;
  let was_enabled = Obs.Span.enabled () in
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  let before = Obs.Metrics.snapshot () in
  let rng = rng_for "obs" in
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let x = linear_input rng p ~intersecting:false in
  let algo = ref "" in
  Obs.Span.with_span "pipeline" (fun () ->
      let inst = Obs.Span.with_span "build" (fun () -> LF.instance p x) in
      let g = inst.Maxis_core.Family.graph in
      Obs.Span.with_span "solve" (fun () ->
          Obs.Span.count "opt" (Mis.Exact.opt g));
      Obs.Span.with_span "simulate" (fun () ->
          let m = Wgraph.Graph.edge_count g in
          let program = Congest.Algo_gather.exact_maxis ~m in
          algo := program.Congest.Program.name;
          let _, r = Simulation.simulate program inst in
          Obs.Span.count "rounds" r.Simulation.rounds;
          Obs.Span.count "blackboard_bits" r.Simulation.blackboard_bits));
  let diff = Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ()) in
  (* Deterministic deltas: the table reads named instruments explicitly
     (not the whole diff), so its shape does not depend on which other
     experiments ran in the same process. *)
  let by_algo = [ ("algo", !algo) ] in
  let table = T.create [ T.column ~align:T.Left "metric"; T.column "delta" ] in
  List.iter
    (fun (name, labels) ->
      T.add_row table
        [ name; T.cell_int (int_of_float (Obs.Metrics.get ~labels diff name)) ])
    [
      ("congest_rounds_total", by_algo);
      ("congest_messages_total", by_algo);
      ("congest_bits_total", by_algo);
      ("blackboard_bits_total", by_algo);
      ("blackboard_writes_total", by_algo);
      ("simulation_runs_total", by_algo);
      ("solver_solves_total", []);
      ("solver_nodes_total", []);
      ("solver_leaves_total", []);
      ("solver_prunes_total", [ ("bound", "clique_cover") ]);
    ];
  T.print ~csv:"results/obs_counters.csv" table;
  (* Run-dependent outputs: timings to stderr and to the artifacts. *)
  let roots = Obs.Span.roots () in
  Format.eprintf "[obs] profile:@.%a" Obs.Span.pp roots;
  Obs.Export.write phases_csv (Obs.Export.spans_csv roots);
  Obs.Export.write_jsonl metrics_jsonl diff;
  Format.eprintf "[obs] wrote %s and %s@." phases_csv metrics_jsonl;
  Obs.Span.reset ();
  Obs.Span.set_enabled was_enabled;
  note "counter deltas above are deterministic (seeded input, cache-free path);";
  note "wall-clock timings are run-dependent and live in %s." phases_csv
