(* Experiments ABL-*: ablations of the construction's design choices
   (DESIGN.md calls these out).

   ABL-code — is the large-distance code load-bearing?  Rebuild the family
   with a weak repetition code: Property 2's matching drops below ell, and
   an adversarially chosen disjoint input pushes OPT above the Claim-2
   bound — the hardness gap demonstrably narrows.  This is why Theorem 4
   (Reed-Solomon) is in the paper.

   ABL-bandwidth — the c in the c*log(n) bandwidth only rescales Theorem
   5's cap linearly; the measured blackboard bits and the bound move
   together and the inequality never breaks.

   ABL-broadcast — Theorem 5 is model-agnostic within CONGEST variants:
   uniform-message algorithms run unchanged under the Broadcast
   restriction with identical traffic. *)

module P = Maxis_core.Params
module A = Maxis_core.Ablations
module T = Stdx.Tablefmt
open Exp_common

let code () =
  section "ABL-code" "Ablation: Reed-Solomon vs a weak repetition code (alpha=2)";
  let table =
    T.create
      [
        T.column ~align:T.Left "code";
        T.column "ell";
        T.column "min distance";
        T.column "worst matching";
        T.column ~align:T.Left "Property 2";
        T.column "adversarial OPT";
        T.column "Claim-2 bound";
        T.column ~align:T.Left "Claim 2";
        T.column "gap ratio";
      ]
  in
  List.iter
    (fun (kind, ell) ->
      let r = A.analyze kind ~alpha:2 ~ell in
      T.add_row table
        [
          A.code_name kind;
          T.cell_int ell;
          T.cell_int r.A.min_pairwise_distance;
          T.cell_int r.A.worst_matching;
          T.cell_bool r.A.property2_holds;
          T.cell_int r.A.claim2_opt;
          T.cell_int r.A.claim2_bound;
          T.cell_bool r.A.claim2_holds;
          T.cell_ratio r.A.gap_ratio;
        ])
    [
      (A.Reed_solomon, 4);
      (A.Repetition, 4);
      (A.Reed_solomon, 6);
      (A.Repetition, 6);
    ];
  T.print ~csv:"results/abl_code.csv" table;
  note "with the weak code the worst codeword pair is too close: the";
  note "matching (Property 2) collapses and Claim 2's bound is overrun --";
  note "the construction provably needs Theorem 4's distance.";
  note "(FAIL cells in the repetition rows are the point of the ablation.)"

let bandwidth () =
  section "ABL-bandwidth" "Ablation: the bandwidth constant c in c*log n";
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let table =
    T.create
      [
        T.column "c";
        T.column "B bits";
        T.column "blackboard bits";
        T.column "T*2cut*B";
        T.column ~align:T.Left "within";
      ]
  in
  List.iter
    (fun (factor, (r : Maxis_core.Simulation.report)) ->
      T.add_row table
        [
          T.cell_int factor;
          T.cell_int r.Maxis_core.Simulation.bandwidth;
          T.cell_int r.Maxis_core.Simulation.blackboard_bits;
          T.cell_int r.Maxis_core.Simulation.bound_bits;
          T.cell_bool r.Maxis_core.Simulation.within_bound;
        ])
    (A.bandwidth_report ~factors:[ 1; 2; 4; 8; 16 ] p ~intersecting:true ~seed:5);
  T.print ~csv:"results/abl_bandwidth.csv" table;
  note "the cap scales with c while the algorithm's actual traffic doesn't:";
  note "Theorem 5's inequality is insensitive to the bandwidth constant."

let broadcast () =
  section "ABL-broadcast" "Ablation: CONGEST vs CONGEST-Broadcast";
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = rng_for "abl-broadcast" in
  let x = linear_input rng p ~intersecting:true in
  let inst = Maxis_core.Linear_family.instance p x in
  let table =
    T.create
      [
        T.column ~align:T.Left "algorithm";
        T.column ~align:T.Left "mode";
        T.column "rounds";
        T.column "blackboard bits";
        T.column ~align:T.Left "within";
        T.column ~align:T.Left "output equal";
      ]
  in
  let compare_modes name program =
    let run mode =
      let config = { Congest.Runtime.default_config with Congest.Runtime.mode } in
      Maxis_core.Simulation.simulate ~config program inst
    in
    let res_u, rep_u = run Congest.Runtime.Unicast in
    let res_b, rep_b = run Congest.Runtime.Broadcast in
    let equal = res_u.Congest.Runtime.outputs = res_b.Congest.Runtime.outputs in
    List.iter
      (fun (mode, (r : Maxis_core.Simulation.report)) ->
        T.add_row table
          [
            name;
            mode;
            T.cell_int r.Maxis_core.Simulation.rounds;
            T.cell_int r.Maxis_core.Simulation.blackboard_bits;
            T.cell_bool r.Maxis_core.Simulation.within_bound;
            T.cell_bool equal;
          ])
      [ ("unicast", rep_u); ("broadcast", rep_b) ]
  in
  compare_modes "max-id-flood" (Congest.Algo_flood.max_id ~rounds:5);
  compare_modes "luby-mis" Congest.Algo_luby.mis;
  T.print ~csv:"results/abl_broadcast.csv" table;
  note "uniform-message algorithms are unaffected by the broadcast";
  note "restriction; the DKO triangle bound the paper cites lives in this";
  note "restricted model, while Theorems 1-2 hold in full CONGEST."

let run () =
  code ();
  bandwidth ();
  broadcast ()
