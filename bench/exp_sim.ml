(* Experiments SIM, CC and LIM: the simulation theorem and the
   communication-complexity side of the reduction.

   SIM — Theorem 5 executed: several CONGEST algorithms run on a hard
   instance partitioned among the players; measured blackboard bits never
   exceed T x 2|cut| x B, and the universal algorithm decides promise
   pairwise disjointness on both promise sides.

   CC — Theorem 3 usage: measured worst-case costs of implementable
   protocols sit above the Omega(k / t log t) bound (constant 1), and the
   trivial protocol pays the full t*k.

   LIM — the Limitations section: t players get a 1/t-approximation for
   O(t log W) bits, which is why the t-party framework cannot defeat
   ratio 1/t — and why more players push the hardness frontier. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Simulation = Maxis_core.Simulation
module T = Stdx.Tablefmt
open Exp_common

let sim () =
  section "SIM" "Theorem 5: blackboard cost of simulated CONGEST algorithms";
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = rng_for "sim" in
  let table =
    T.create
      [
        T.column ~align:T.Left "algorithm";
        T.column ~align:T.Left "side";
        T.column "rounds T";
        T.column "cut";
        T.column "B";
        T.column "blackboard bits";
        T.column "T*2cut*B";
        T.column ~align:T.Left "within";
      ]
  in
  List.iter
    (fun intersecting ->
      let x = linear_input rng p ~intersecting in
      let inst = LF.instance p x in
      let g = inst.Maxis_core.Family.graph in
      let m = Wgraph.Graph.edge_count g in
      let side = if intersecting then "inter" else "disj" in
      let row program =
        (* Checked entry point: a model violation becomes a visible table
           row and the experiment continues with the other algorithms. *)
        match Simulation.simulate_checked program inst with
        | Error f ->
            T.add_row table
              [
                program.Congest.Program.name;
                side;
                Format.asprintf "FAILED: %a" Congest.Runtime.pp_failure f;
                "-";
                "-";
                "-";
                "-";
                "-";
              ]
        | Ok (_, r) ->
            T.add_row table
              [
                r.Simulation.algorithm;
                side;
                T.cell_int r.Simulation.rounds;
                T.cell_int r.Simulation.cut_size;
                T.cell_int r.Simulation.bandwidth;
                T.cell_int r.Simulation.blackboard_bits;
                T.cell_int r.Simulation.bound_bits;
                T.cell_bool r.Simulation.within_bound;
              ]
      in
      row (Congest.Algo_flood.max_id ~rounds:5);
      row (Congest.Algo_bfs.distances ~root:0 ~rounds:5);
      row Congest.Algo_luby.mis;
      row Congest.Algo_greedy_mis.mis;
      row Congest.Algo_coloring.color;
      row Congest.Algo_matching.maximal_matching;
      row (Congest.Algo_gather.exact_maxis ~m))
    [ true; false ];
  T.print ~csv:"results/sim_algorithms.csv" table;
  (* The decision end to end. *)
  let table2 =
    T.create
      [
        T.column ~align:T.Left "side";
        T.column "OPT";
        T.column ~align:T.Left "verdict";
        T.column ~align:T.Left "f(x) decided";
        T.column ~align:T.Left "truth";
        T.column ~align:T.Left "correct";
      ]
  in
  List.iter
    (fun intersecting ->
      let x = linear_input rng p ~intersecting in
      let inst = LF.instance p x in
      let truth = Commcx.Functions.promise_pairwise_disjointness x in
      match
        Simulation.decide_disjointness_checked inst ~predicate:(LF.predicate p)
      with
      | Error e ->
          T.add_row table2
            [
              (if intersecting then "inter" else "disj");
              Format.asprintf "FAILED: %a" Simulation.pp_error e;
              "-";
              "-";
              string_of_bool truth;
              T.cell_bool false;
            ]
      | Ok d ->
          T.add_row table2
            [
              (if intersecting then "inter" else "disj");
              T.cell_int d.Simulation.opt;
              (match d.Simulation.verdict with
              | `High -> "High"
              | `Low -> "Low"
              | `Gap_violation -> "GAP-VIOLATION");
              (match d.Simulation.answer with
              | Some b -> string_of_bool b
              | None -> "?");
              string_of_bool truth;
              T.cell_bool (d.Simulation.answer = Some truth);
            ])
    [ true; false ];
  T.print ~csv:"results/sim_decisions.csv" table2

let player () =
  section "PLAYER"
    "Theorem 5 as a literal t-player protocol (vs post-hoc trace metering)";
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = rng_for "player" in
  let table =
    T.create
      [
        T.column ~align:T.Left "algorithm";
        T.column "trace cut bits";
        T.column "blackboard bits";
        T.column ~align:T.Left "equal";
        T.column "internal bits";
        T.column "writes";
        T.column ~align:T.Left "outputs equal";
      ]
  in
  let x = linear_input rng p ~intersecting:true in
  let inst = LF.instance p x in
  let g = inst.Maxis_core.Family.graph in
  let m = Wgraph.Graph.edge_count g in
  let compare_impls : type o. o Congest.Program.t -> unit =
   fun program ->
    match Congest.Runtime.run_checked program g with
    | Error f ->
        (* Report-and-continue: the remaining algorithms still run. *)
        note "%s skipped -- %s" program.Congest.Program.name
          (Format.asprintf "%a" Congest.Runtime.pp_failure f)
    | Ok mono ->
    let multi = Maxis_core.Player_sim.run program inst in
    let trace_bits =
      Congest.Trace.cut_bits mono.Congest.Runtime.trace
        inst.Maxis_core.Family.partition
    in
    let board_bits =
      Commcx.Blackboard.bits_written multi.Maxis_core.Player_sim.board
    in
    T.add_row table
      [
        program.Congest.Program.name;
        T.cell_int trace_bits;
        T.cell_int board_bits;
        T.cell_bool (trace_bits = board_bits);
        T.cell_int multi.Maxis_core.Player_sim.internal_bits;
        T.cell_int
          (Commcx.Blackboard.writes multi.Maxis_core.Player_sim.board);
        T.cell_bool
          (mono.Congest.Runtime.outputs = multi.Maxis_core.Player_sim.outputs);
      ]
  in
  compare_impls (Congest.Algo_flood.max_id ~rounds:5);
  compare_impls Congest.Algo_luby.mis;
  compare_impls Congest.Algo_matching.maximal_matching;
  compare_impls (Congest.Algo_gather.exact_maxis ~m);
  T.print ~csv:"results/player_protocol.csv" table;
  note "two independent implementations of the simulation argument agree";
  note "bit-for-bit: the Theorem-5 numbers are not an artifact of the meter."

let cc () =
  section "CC" "Theorem 3 usage: protocol costs vs the Omega(k/t log t) bound";
  let rng = rng_for "cc" in
  let table =
    T.create
      [
        T.column "k";
        T.column "t";
        T.column "bound k/(t lg t)";
        T.column "exchange-all";
        T.column "sparse";
        T.column "sequential";
        T.column ~align:T.Left "all correct";
      ]
  in
  List.iter
    (fun (k, t) ->
      let inputs =
        List.init 12 (fun i ->
            Commcx.Inputs.gen_promise rng ~k ~t ~intersecting:(i mod 2 = 0))
      in
      let bound =
        Commcx.Cc_bounds.eval_bits
          Commcx.Cc_bounds.promise_pairwise_disjointness ~k ~t
      in
      let cost p = Commcx.Protocol.worst_case_bits p inputs in
      let correct p =
        Commcx.Protocol.accuracy p Commcx.Functions.promise_pairwise_disjointness
          inputs
        = 1.0
      in
      let protos = Commcx.Baseline_protocols.all ~k in
      T.add_row table
        [
          T.cell_int k;
          T.cell_int t;
          T.cell_float bound;
          T.cell_int (cost (List.nth protos 0));
          T.cell_int (cost (List.nth protos 1));
          T.cell_int (cost (List.nth protos 2));
          T.cell_bool (List.for_all correct protos);
        ])
    [ (32, 2); (64, 2); (64, 4); (128, 4); (256, 8) ];
  T.print ~csv:"results/cc_protocols.csv" table;
  note "every implementable protocol sits above the information bound;";
  note "the reduction inherits the bound, not any particular protocol."

let lim () =
  section "LIM" "Limitations: t players get a 1/t-approximation for O(t log W) bits";
  let rng = rng_for "lim" in
  let table =
    T.create
      [
        T.column "t";
        T.column ~align:T.Left "side";
        T.column "best local OPT";
        T.column "global OPT";
        T.column "ratio";
        T.column "1/t floor";
        T.column "bits";
        T.column ~align:T.Left "floor holds";
      ]
  in
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:(max 4 (t + 1)) ~players:t in
      List.iter
        (fun intersecting ->
          let x = linear_input rng p ~intersecting in
          let inst = LF.instance p x in
          let r = Maxis_core.Limitations.run inst in
          let floor = 1.0 /. float_of_int t in
          T.add_row table
            [
              T.cell_int t;
              (if intersecting then "inter" else "disj");
              T.cell_int r.Maxis_core.Limitations.best_local;
              T.cell_int r.Maxis_core.Limitations.global_opt;
              T.cell_ratio r.Maxis_core.Limitations.ratio;
              T.cell_ratio floor;
              T.cell_int r.Maxis_core.Limitations.bits;
              T.cell_bool (r.Maxis_core.Limitations.ratio >= floor -. 1e-9);
            ])
        [ true; false ])
    [ 2; 3; 4 ];
  T.print ~csv:"results/limitations.csv" table;
  note "the 2-party framework can never defeat 1/2 (ratio column at t=2);";
  note "with t parties the barrier moves to 1/t -- the paper's motivation."

let run () =
  sim ();
  player ();
  cc ();
  lim ()
