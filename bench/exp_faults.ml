(* Experiment FAULTS: fault injection and the price of reliable delivery.

   The paper's bounds price communication; fault tolerance is bought in
   the same currency.  This experiment runs plain and `Faults.harden`ed
   algorithms under increasingly hostile link plans and shows
   (a) plain algorithms degrade (outputs diverge from the fault-free
       referee) while hardened ones keep the exact fault-free outputs,
   (b) the runtime meters the extra bits that reliability costs, and
   (c) the whole faulty execution replays deterministically from
       (config.seed, plan) — same trace digest on a re-run. *)

module T = Stdx.Tablefmt
module Runtime = Congest.Runtime
module Faults = Congest.Faults
module Trace = Congest.Trace
open Exp_common

let run () =
  section "FAULTS" "fault injection: hardened delivery vs adversarial links";
  let rng = rng_for "faults" in
  let g = Wgraph.Build.erdos_renyi rng 16 0.35 in
  (* 131-bit hardened frames need bandwidth_factor * id_width(16) >= 131;
     64 * 4 = 256 leaves headroom.  Plain runs use the same budget so the
     bit columns are comparable. *)
  let cfg faults =
    {
      Runtime.default_config with
      Runtime.bandwidth_factor = 64;
      max_rounds = 600;
      faults;
    }
  in
  let plans =
    [
      ("none", None);
      ("drop 0.10", Some (Faults.plan ~default:(Faults.link ~drop:0.1 ()) 11));
      ( "drop+dup+corrupt+delay",
        Some
          (Faults.plan
             ~default:
               (Faults.link ~drop:0.15 ~duplicate:0.1 ~corrupt:0.1
                  ~max_delay:2 ())
             12) );
    ]
  in
  let table =
    T.create
      [
        T.column ~align:T.Left "algorithm";
        T.column ~align:T.Left "plan";
        T.column ~align:T.Left "variant";
        T.column ~align:T.Left "halted";
        T.column "rounds";
        T.column "attempted bits";
        T.column "injected";
        T.column "dropped bits";
        T.column ~align:T.Left "outputs = fault-free";
      ]
  in
  let bench : type o. o Congest.Program.t -> unit =
   fun program ->
    let name = program.Congest.Program.name in
    (* The fault-free referee every faulty run is compared against. *)
    let base = Runtime.run ~config:(cfg None) program g in
    List.iter
      (fun (pname, plan) ->
        let variant label prog =
          match Runtime.run_checked ~config:(cfg plan) prog g with
          | Error f ->
              T.add_row table
                [
                  name;
                  pname;
                  label;
                  Format.asprintf "FAILED: %a" Runtime.pp_failure f;
                  "-";
                  "-";
                  "-";
                  "-";
                  "-";
                ]
          | Ok r ->
              let tr = r.Runtime.trace in
              T.add_row table
                [
                  name;
                  pname;
                  label;
                  T.cell_bool r.Runtime.all_halted;
                  T.cell_int r.Runtime.rounds_executed;
                  T.cell_int (Trace.total_bits tr);
                  T.cell_int (Trace.total_faults tr);
                  T.cell_int (Trace.dropped_bits tr);
                  T.cell_bool (r.Runtime.outputs = base.Runtime.outputs);
                ]
        in
        variant "plain" program;
        variant "hardened" (Faults.harden program))
      plans
  in
  bench (Congest.Algo_flood.max_id ~rounds:8);
  bench (Congest.Algo_bfs.distances ~root:0 ~rounds:8);
  bench Congest.Algo_luby.mis;
  T.print ~csv:"results/faults.csv" table;
  note "hardened runs keep the fault-free outputs; the extra bits are the";
  note "price of reliability, metered by the same referee as the theorems.";
  (* Replay determinism: the faulty execution is a pure function of
     (config.seed, plan) -- byte-identical traces, digest included. *)
  let chaos = List.assoc "drop+dup+corrupt+delay" plans in
  let digest () =
    let r =
      Runtime.run ~config:(cfg chaos) (Faults.harden Congest.Algo_luby.mis) g
    in
    Trace.digest r.Runtime.trace
  in
  let d1 = digest () and d2 = digest () in
  note "replay determinism: digest %Lx = %Lx -> %b" d1 d2 (d1 = d2);
  (* Crashes are not masked by hardening: the node is gone, not slow. *)
  let crash_plan = Some (Faults.plan ~crashes:[ (3, 2) ] 13) in
  let r =
    Runtime.run ~config:(cfg crash_plan)
      (Faults.harden (Congest.Algo_flood.max_id ~rounds:8))
      g
  in
  note "crash plan: node 3 crashed at round 2 -> crashed.(3) = %b"
    r.Runtime.crashed.(3)
