(* Experiment UNW: Remark 1's unweighted transformation.

   Shape to reproduce: OPT is preserved node for node, the gap predicate
   classifies transformed instances identically, and n inflates by a
   Theta(ell) factor — the source of Remark 1's lost log factor. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module U = Maxis_core.Unweighted
module T = Stdx.Tablefmt
open Exp_common

let run () =
  section "UNW" "Remark 1: unweighted transformation preserves the gap";
  let rng = rng_for "unw" in
  let table =
    T.create
      [
        T.column "ell";
        T.column ~align:T.Left "side";
        T.column "n";
        T.column "n'";
        T.column "inflate";
        T.column "OPT";
        T.column "OPT'";
        T.column ~align:T.Left "preserved";
        T.column ~align:T.Left "verdict kept";
      ]
  in
  List.iter
    (fun ell ->
      let p = P.make ~alpha:1 ~ell ~players:2 in
      let pred = LF.predicate p in
      List.iter
        (fun intersecting ->
          let x = linear_input rng p ~intersecting in
          let inst = LF.instance p x in
          let tr = U.transform_instance inst in
          let n = Wgraph.Graph.n inst.Maxis_core.Family.graph in
          let n' = Wgraph.Graph.n tr.U.graph in
          let o = Mis.Exact.opt inst.Maxis_core.Family.graph in
          let o' = Mis.Exact.opt tr.U.graph in
          T.add_row table
            [
              T.cell_int ell;
              (if intersecting then "inter" else "disj");
              T.cell_int n;
              T.cell_int n';
              T.cell_float (float_of_int n' /. float_of_int n);
              T.cell_int o;
              T.cell_int o';
              T.cell_bool (o = o');
              T.cell_bool
                (Maxis_core.Predicate.classify pred o
                = Maxis_core.Predicate.classify pred o');
            ])
        [ true; false ])
    [ 3; 4; 6 ];
  T.print ~csv:"results/unweighted.csv" table;
  note "n' = Sigma w(v): heavy nodes blow up ell-fold, so on paper-regime";
  note "instances n' = Theta(k log k) and the round bound loses one log factor."
