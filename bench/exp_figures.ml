(* Experiments F1-F6: regenerate the paper's figures.

   The paper's only graphics are drawings of small gadget instances
   (ell = 2, alpha = 1, k = 3).  We rebuild each pictured object at the
   exact figure parameters, print a structural census that can be checked
   against the drawing, and emit DOT files under figures/ for rendering. *)

module P = Maxis_core.Params
module BG = Maxis_core.Base_graph
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module Graph = Wgraph.Graph
module T = Stdx.Tablefmt
open Exp_common

let figures_dir = "figures"

let ensure_dir () =
  if not (Sys.file_exists figures_dir) then Sys.mkdir figures_dir 0o755

let dump name dot =
  ensure_dir ();
  let path = Filename.concat figures_dir (name ^ ".dot") in
  Wgraph.Dot.write_file path dot;
  note "wrote %s" path

let fig1 () =
  section "F1" "Figure 1: the base graph H (ell=2, alpha=1, k=3)";
  let p = P.figure_params ~players:2 in
  let g = Graph.create (BG.copy_size p) in
  BG.build_into p g ~offset:0 ~copy_name:"";
  let table =
    T.create [ T.column ~align:T.Left "quantity"; T.column "value"; T.column "paper" ]
  in
  T.add_row table [ "nodes"; T.cell_int (Graph.n g); "12 (3 + 3x3)" ];
  T.add_row table [ "edges"; T.cell_int (Graph.edge_count g); "30" ];
  T.add_row table [ "A clique size k"; T.cell_int (P.k p); "3" ];
  T.add_row table [ "code cliques"; T.cell_int (P.positions p); "3" ];
  T.add_row table [ "clique size"; T.cell_int (P.q p); "3" ];
  T.add_row table
    [ "v_m degree"; T.cell_int (Graph.degree g (BG.a_node p ~offset:0 ~m:0)); "8" ];
  T.print ~csv:"results/fig1_census.csv" table;
  (* The defining adjacency of the figure: v_1 avoids exactly Code_1. *)
  let w = P.codeword p 0 in
  note "C(1) codeword (0-based symbols): [%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int w)));
  let ok = ref true in
  Array.iter
    (fun u ->
      let in_code1 = Array.exists (( = ) u) (BG.code_nodes p ~offset:0 ~m:0) in
      if Graph.has_edge g (BG.a_node p ~offset:0 ~m:0) u <> not in_code1 then
        ok := false)
    (BG.all_code_nodes p ~offset:0);
  note "v_1 adjacent to exactly Code \\ Code_1: %s" (if !ok then "ok" else "FAIL");
  dump "figure1_H" (Wgraph.Dot.to_dot ~name:"Figure1_H" g)

let fig2 () =
  section "F2" "Figure 2: C^i_h -- C^j_h complement-of-matching connections";
  let p = P.figure_params ~players:2 in
  let g, _ = LF.fixed p in
  let table =
    T.create
      [ T.column "r"; T.column "degree into C^2_1"; T.column ~align:T.Left "missing twin" ]
  in
  let off0 = LF.copy_offset p 0 and off1 = LF.copy_offset p 1 in
  for r = 0 to P.q p - 1 do
    let u = BG.sigma_node p ~offset:off0 ~h:0 ~r in
    let degree_across = ref 0 in
    let twin_missing = ref true in
    for r' = 0 to P.q p - 1 do
      let v = BG.sigma_node p ~offset:off1 ~h:0 ~r:r' in
      if Graph.has_edge g u v then begin
        incr degree_across;
        if r' = r then twin_missing := false
      end
    done;
    T.add_row table
      [
        T.cell_int (r + 1);
        T.cell_int !degree_across;
        (if !twin_missing then "ok (only twin missing)" else "FAIL");
      ]
  done;
  T.print ~csv:"results/fig2_degrees.csv" table;
  note "each sigma^1_(1,r) connects to q-1 = %d of the q = %d nodes across"
    (P.q p - 1) (P.q p)

let fig3 () =
  section "F3" "Figure 3: t=3 linear construction; independent set of Property 1";
  let p = P.figure_params ~players:3 in
  let g, part = LF.fixed p in
  let s = LF.property1_set p ~m:0 in
  let table =
    T.create [ T.column ~align:T.Left "quantity"; T.column "value"; T.column "paper" ]
  in
  T.add_row table [ "nodes"; T.cell_int (Graph.n g); "36 (3 copies of 12)" ];
  T.add_row table [ "cut edges"; T.cell_int (Wgraph.Cut.size g part); "54 (3 pairs x 3 pos x 6)" ];
  T.add_row table
    [ "set {v^i_1} u Code^i_1 size"; T.cell_int (Stdx.Bitset.cardinal s); "12 (3 x (1+3))" ];
  T.add_row table
    [
      "set independent";
      (if Wgraph.Check.is_independent g s then "yes" else "NO");
      "yes";
    ];
  (* On the instance where all three strings hold index 1, the set weighs
     t(2l+a) = 3*(4+1) = 15. *)
  let x = Commcx.Inputs.of_bit_lists ~k:3 [ [ 0 ]; [ 0 ]; [ 0 ] ] in
  let inst = LF.instance p x in
  T.add_row table
    [
      "set weight on x=({1},{1},{1})";
      T.cell_int (Graph.set_weight_of inst.Maxis_core.Family.graph s);
      Printf.sprintf "t(2l+a) = %d" (LF.high_weight p);
    ];
  T.print ~csv:"results/fig3_census.csv" table;
  dump "figure3_G_t3"
    (Wgraph.Dot.to_dot ~name:"Figure3_G_t3" ~partition:part ~highlight:s g)

let fig4_6 () =
  section "F4-F6" "Figures 4-6: quadratic construction F and its input edges";
  let p = P.figure_params ~players:2 in
  let g, part = QF.fixed p in
  let table =
    T.create [ T.column ~align:T.Left "quantity"; T.column "value"; T.column "paper" ]
  in
  T.add_row table [ "nodes"; T.cell_int (Graph.n g); "48 (4 copies of 12)" ];
  T.add_row table [ "fixed edges"; T.cell_int (Graph.edge_count g); "156 (4x30 + 2x18)" ];
  T.add_row table [ "cut edges"; T.cell_int (Wgraph.Cut.size g part); "36 (two sides x 18)" ];
  T.add_row table
    [
      "A-node weight";
      T.cell_int (Graph.weight g (BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~m:0));
      "l = 2 (fixed)";
    ];
  T.print ~csv:"results/fig4_6_census.csv" table;
  (* Figure 6's input: x^1 zero exactly at (1,1); x^2 all ones. *)
  let sl = QF.string_length p in
  let all = List.init sl Fun.id in
  let x1 = List.filter (fun j -> j <> QF.pair_index p ~m1:0 ~m2:0) all in
  let x = Commcx.Inputs.of_bit_lists ~k:sl [ x1; all ] in
  let inst = QF.instance p x in
  let gi = inst.Maxis_core.Family.graph in
  let added = Graph.edge_count gi - Graph.edge_count g in
  note "Figure 6 input: player 1 has one 0-bit at (1,1), player 2 none";
  note "input edges added: %d (paper: exactly 1, the edge v^(1,1)_1 -- v^(1,2)_1)" added;
  let e =
    Graph.has_edge gi
      (BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:0) ~m:0)
      (BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side:1) ~m:0)
  in
  note "that edge present: %s" (if e then "ok" else "FAIL");
  dump "figure5_F_t2" (Wgraph.Dot.to_dot ~name:"Figure5_F_t2" ~partition:part g);
  dump "figure6_Fx_t2"
    (Wgraph.Dot.to_dot ~name:"Figure6_Fx_t2" ~partition:inst.Maxis_core.Family.partition gi)

let run () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4_6 ()
