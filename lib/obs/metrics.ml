(* One global registry, interned handles.  Updates are single [Atomic]
   bumps on pre-registered cells; the mutex guards only registration and
   snapshotting.  Handles are physically the atomic cells, so instrumented
   hot loops touch no registry structure at all. *)

type counter = int Atomic.t

type gauge = int Atomic.t

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  cells : int Atomic.t array;  (* length = Array.length bounds + 1 (+inf) *)
  sum_micro : int Atomic.t;  (* observations in integer microunits *)
}

type entry = C of counter | G of gauge | H of histogram

let registry : (string * (string * string) list, entry) Hashtbl.t =
  Hashtbl.create 64

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let normalize_labels name labels =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: duplicate label key %S on %s" a name);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let intern ?(labels = []) name describe make =
  if name = "" then invalid_arg "Obs.Metrics: empty instrument name";
  let labels = normalize_labels name labels in
  locked (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some e -> e
      | None ->
          let e = make () in
          Hashtbl.replace registry (name, labels) e;
          e)
  |> fun e ->
  match describe e with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s already registered with another kind"
           name)

let counter ?labels name =
  intern ?labels name
    (function C c -> Some c | _ -> None)
    (fun () -> C (Atomic.make 0))

let inc c = Atomic.incr c

let add c k =
  if k < 0 then invalid_arg "Obs.Metrics.add: counters are monotone (k < 0)";
  ignore (Atomic.fetch_and_add c k)

let value c = Atomic.get c

let gauge ?labels name =
  intern ?labels name
    (function G g -> Some g | _ -> None)
    (fun () -> G (Atomic.make 0))

let set g v = Atomic.set g v

let gauge_value g = Atomic.get g

let default_latency_buckets = [| 0.001; 0.01; 0.1; 1.0; 10.0 |]

let histogram ?labels ~buckets name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && buckets.(i - 1) >= b then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing";
  let h =
    intern ?labels name
      (function H h -> Some h | _ -> None)
      (fun () ->
        H
          {
            bounds = Array.copy buckets;
            cells = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            sum_micro = Atomic.make 0;
          })
  in
  if h.bounds <> buckets then
    invalid_arg
      (Printf.sprintf "Obs.Metrics.histogram: %s re-registered with different buckets"
         name);
  h

let observe h v =
  let nb = Array.length h.bounds in
  let rec idx i = if i >= nb || v <= h.bounds.(i) then i else idx (i + 1) in
  Atomic.incr h.cells.(idx 0);
  ignore (Atomic.fetch_and_add h.sum_micro (int_of_float (Float.round (v *. 1e6))))

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type kind = Counter | Gauge | Histogram

type sample = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  value : float;
  sum : float;
  buckets : (float * int) list;
}

type snapshot = sample list

let sample_of (name, labels) entry =
  match entry with
  | C c -> { name; labels; kind = Counter; value = float_of_int (Atomic.get c); sum = 0.; buckets = [] }
  | G g -> { name; labels; kind = Gauge; value = float_of_int (Atomic.get g); sum = 0.; buckets = [] }
  | H h ->
      (* Cumulative ("le") buckets, +inf last, Prometheus-style. *)
      let running = ref 0 in
      let cumulative =
        Array.to_list
          (Array.mapi
             (fun i cell ->
               running := !running + Atomic.get cell;
               let le =
                 if i < Array.length h.bounds then h.bounds.(i) else infinity
               in
               (le, !running))
             h.cells)
      in
      {
        name;
        labels;
        kind = Histogram;
        value = float_of_int !running;
        sum = float_of_int (Atomic.get h.sum_micro) /. 1e6;
        buckets = cumulative;
      }

let compare_identity a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else compare a.labels b.labels

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun id e acc -> sample_of id e :: acc) registry [])
  |> List.sort compare_identity

let find ?(labels = []) snap name =
  let labels = normalize_labels name labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) snap

let get ?labels snap name =
  match find ?labels snap name with Some s -> s.value | None -> 0.

let sum_family snap name =
  List.fold_left
    (fun acc s -> if s.name = name && s.kind <> Histogram then acc +. s.value else acc)
    0. snap

let diff ~before ~after =
  List.map
    (fun (a : sample) ->
      match List.find_opt (fun b -> compare_identity a b = 0 && b.kind = a.kind) before with
      | None -> a
      | Some b -> (
          match a.kind with
          | Gauge -> a
          | Counter -> { a with value = a.value -. b.value }
          | Histogram ->
              let buckets =
                List.map2
                  (fun (le, ca) (_, cb) -> (le, ca - cb))
                  a.buckets b.buckets
              in
              { a with value = a.value -. b.value; sum = a.sum -. b.sum; buckets }))
    after

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0
          | H h ->
              Array.iter (fun cell -> Atomic.set cell 0) h.cells;
              Atomic.set h.sum_micro 0)
        registry)
