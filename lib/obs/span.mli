(** Nestable timed spans emitting a profile tree.

    A span measures the wall time of a dynamic extent ([with_span name f])
    and can carry user-attached integer counts ([count "solves" 3] inside
    the extent).  Spans nest: a span opened inside another becomes its
    child, and completed top-level spans accumulate into a {e profile
    tree} ({!roots}) that renders as an indented table or CSV rows.

    Spans are {b off by default} and driver-scoped: when disabled,
    [with_span name f] is [f ()] — one branch, no allocation — so
    instrumented library code costs nothing unless a driver opts in with
    {!set_enabled}.  The span stack is deliberately per-process and
    single-threaded (drivers profile their orchestration layer, not pool
    workers); updates from worker domains belong in {!Metrics} counters,
    which spans can then absorb via {!count}.

    The clock is injectable because this library depends on nothing that
    could provide a monotonic wall clock: drivers that link [unix] should
    install [Unix.gettimeofday] (see [bin/maxis_lb.ml]); the default is
    [Sys.time] (CPU seconds), which keeps the library dependency-free and
    tests deterministic enough. *)

val set_clock : (unit -> float) -> unit
val now : unit -> float
(** Read the installed clock (also used by [Exec.Pool]'s latency
    histogram). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] as a span named [name].  Exceptions propagate; the span is
    closed (and recorded) either way.  When disabled this is [f ()]. *)

val count : string -> int -> unit
(** Attach [k] to the named counter of the innermost open span; sums over
    repeated calls.  No-op when disabled or outside any span. *)

type tree = {
  name : string;
  wall_s : float;  (** elapsed clock time of the extent *)
  counts : (string * int) list;  (** attached counters, sorted by name *)
  children : tree list;  (** completed sub-spans, in open order *)
}

val roots : unit -> tree list
(** Completed top-level spans, in completion order. *)

val reset : unit -> unit
(** Drop recorded trees and any open stack (e.g. between bench legs). *)

val pp : Format.formatter -> tree list -> unit
(** Indented human-readable profile tree with millisecond timings. *)

val to_rows : tree list -> (string * float * (string * int) list) list
(** Flatten to [(slash/joined/path, wall_s, counts)] rows, depth-first —
    the shape the bench OBS leg writes as a per-phase CSV. *)
