(* One escaper for the whole repository: the serving layer parses what
   we print, so both sides share Stdx.Jsonx's idea of a legal JSON
   string (byte-identical to the escaper that used to live here). *)
let json_escape = Stdx.Jsonx.escape

(* Counters and gauges hold integers; render them without a fraction so
   the export is grep-friendly ("value":3, not 3.).  Histogram sums can
   be fractional. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_label le = if le = infinity then "+inf" else num le

let kind_name = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Histogram -> "histogram"

let jsonl snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (s : Metrics.sample) ->
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"labels\":{%s},\"type\":\"%s\",\"value\":%s"
           (json_escape s.Metrics.name)
           (String.concat ","
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                 s.Metrics.labels))
           (kind_name s.Metrics.kind)
           (num s.Metrics.value));
      if s.Metrics.kind = Metrics.Histogram then
        Buffer.add_string b
          (Printf.sprintf ",\"sum\":%s,\"buckets\":{%s}"
             (num s.Metrics.sum)
             (String.concat ","
                (List.map
                   (fun (le, c) -> Printf.sprintf "\"%s\":%d" (le_label le) c)
                   s.Metrics.buckets)));
      Buffer.add_string b "}\n")
    snap;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
              labels))

let prometheus snap =
  let b = Buffer.create 1024 in
  let last_typed = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.name <> !last_typed then begin
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.Metrics.name (kind_name s.Metrics.kind));
        last_typed := s.Metrics.name
      end;
      match s.Metrics.kind with
      | Metrics.Counter | Metrics.Gauge ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.Metrics.name
               (prom_labels s.Metrics.labels)
               (num s.Metrics.value))
      | Metrics.Histogram ->
          List.iter
            (fun (le, c) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.Metrics.name
                   (prom_labels (s.Metrics.labels @ [ ("le", le_label le) ]))
                   c))
            s.Metrics.buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" s.Metrics.name
               (prom_labels s.Metrics.labels)
               (num s.Metrics.sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %s\n" s.Metrics.name
               (prom_labels s.Metrics.labels)
               (num s.Metrics.value)))
    snap;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let table snap =
  let open Stdx.Tablefmt in
  let t =
    create [ column ~align:Left "metric"; column ~align:Left "labels";
             column ~align:Left "type"; column "value" ]
  in
  List.iter
    (fun (s : Metrics.sample) ->
      add_row t
        [
          s.Metrics.name;
          String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) s.Metrics.labels);
          kind_name s.Metrics.kind;
          (if s.Metrics.kind = Metrics.Histogram then
             Printf.sprintf "n=%s sum=%s" (num s.Metrics.value) (num s.Metrics.sum)
           else num s.Metrics.value);
        ])
    snap;
  render t

(* ------------------------------------------------------------------ *)

(* All export I/O goes through Stdx.Fsio so the chaos suite can inject
   filesystem faults under the atomic-write claim. *)
let write ?(fs = Stdx.Fsio.real) path contents =
  Stdx.Fsio.mkdir_p ~fs (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  (try fs.Stdx.Fsio.write_file tmp contents
   with e ->
     (try fs.Stdx.Fsio.remove tmp with Sys_error _ -> ());
     raise e);
  fs.Stdx.Fsio.rename tmp path

let write_jsonl ?fs path snap = write ?fs path (jsonl snap)

let spans_csv trees =
  let b = Buffer.create 256 in
  Buffer.add_string b "phase,wall_s,counts\n";
  List.iter
    (fun (path, wall, counts) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%.6f,%s\n" path wall
           (String.concat ";"
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counts))))
    (Span.to_rows trees);
  Buffer.contents b
