type tree = {
  name : string;
  wall_s : float;
  counts : (string * int) list;
  children : tree list;
}

(* An open span under construction; children/counts accumulate reversed. *)
type open_span = {
  oname : string;
  started : float;
  mutable ocounts : (string * int) list;
  mutable ochildren : tree list;
}

let clock = ref Sys.time

let set_clock c = clock := c

let now () = !clock ()

let on = ref false

let set_enabled b = on := b

let enabled () = !on

let stack : open_span list ref = ref []

let completed : tree list ref = ref []  (* reversed *)

let count name k =
  if !on then
    match !stack with
    | [] -> ()
    | top :: _ ->
        top.ocounts <-
          (match List.assoc_opt name top.ocounts with
          | None -> (name, k) :: top.ocounts
          | Some v -> (name, v + k) :: List.remove_assoc name top.ocounts)

let close_top () =
  match !stack with
  | [] -> ()
  | top :: rest ->
      stack := rest;
      let t =
        {
          name = top.oname;
          wall_s = now () -. top.started;
          counts = List.sort (fun (a, _) (b, _) -> String.compare a b) top.ocounts;
          children = List.rev top.ochildren;
        }
      in
      (match rest with
      | parent :: _ -> parent.ochildren <- t :: parent.ochildren
      | [] -> completed := t :: !completed)

let with_span name f =
  if not !on then f ()
  else begin
    stack := { oname = name; started = now (); ocounts = []; ochildren = [] } :: !stack;
    Fun.protect ~finally:close_top f
  end

let roots () = List.rev !completed

let reset () =
  stack := [];
  completed := []

let rec pp_tree ppf depth t =
  Format.fprintf ppf "%s%-*s %8.2f ms" (String.make (2 * depth) ' ')
    (max 1 (28 - (2 * depth)))
    t.name (t.wall_s *. 1000.);
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) t.counts;
  Format.pp_print_newline ppf ();
  List.iter (pp_tree ppf (depth + 1)) t.children

let pp ppf trees = List.iter (pp_tree ppf 0) trees

let to_rows trees =
  let rows = ref [] in
  let rec go prefix t =
    let path = if prefix = "" then t.name else prefix ^ "/" ^ t.name in
    rows := (path, t.wall_s, t.counts) :: !rows;
    List.iter (go path) t.children
  in
  List.iter (go "") trees;
  List.rev !rows
