(** Process-wide metrics registry.

    A single global registry of named {e counters}, {e gauges} and
    fixed-bucket {e histograms}, each optionally carrying a set of
    [(key, value)] labels (a labeled {e family} in Prometheus parlance:
    [congest_messages_total{algo="luby"}]).  Handles are interned — asking
    for the same [(name, labels)] twice returns the same instrument — so
    instrumented code can re-derive its handles cheaply and updates from
    worker domains all land on one cell.

    The hot-path contract: updating an instrument is an [Atomic] integer
    bump on a pre-existing cell — no allocation, no lock, no formatting.
    Registration (the [counter]/[gauge]/[histogram] calls) takes a lock
    and may allocate; do it once per run or per module, not per event.
    Instruments always count, whether or not any exporter ever looks:
    "disabled" observability is simply nobody calling {!snapshot}.

    Reading is done through {!snapshot}, an immutable, deterministically
    ordered view (sorted by name, then labels) suitable for diffing,
    asserting in tests, and exporting. *)

(** {1 Instruments} *)

type counter

val counter : ?labels:(string * string) list -> string -> counter
(** [counter ~labels name] interns (and on first use registers) the
    counter of that identity.  Labels are sorted internally; order does
    not matter.  Raises [Invalid_argument] on an empty name or duplicate
    label keys. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c k] adds [k] (which must be [>= 0]; counters are monotone —
    raises [Invalid_argument] otherwise). *)

val value : counter -> int

type gauge

val gauge : ?labels:(string * string) list -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

type histogram

val histogram :
  ?labels:(string * string) list -> buckets:float array -> string -> histogram
(** Fixed cumulative buckets: [buckets] lists the upper bounds ("le") in
    strictly increasing order; an implicit [+inf] bucket is always
    appended.  Re-interning an existing histogram with different buckets
    raises [Invalid_argument].  Observations are recorded in integer
    microunits, so values are exact up to 1e-6. *)

val observe : histogram -> float -> unit
(** Record one observation (e.g. a latency in seconds). *)

val default_latency_buckets : float array
(** [1ms, 10ms, 100ms, 1s, 10s] — for wall-clock latencies in seconds. *)

(** {1 Snapshots} *)

type kind = Counter | Gauge | Histogram

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  kind : kind;
  value : float;  (** counter/gauge value; histogram observation count *)
  sum : float;  (** histogram sum of observations; 0 otherwise *)
  buckets : (float * int) list;
      (** histogram cumulative (le, count) pairs, [+inf] last; [] otherwise *)
}

type snapshot = sample list
(** Sorted by [(name, labels)]: iteration order is deterministic and
    stable across runs, which is what makes snapshots diffable and
    goldens byte-stable. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-instrument change from [before] to [after]: counters and
    histograms subtract (an instrument absent from [before] counts from
    zero); gauges keep their [after] value.  Instruments absent from
    [after] are dropped; zero-change counters are kept (their presence is
    part of the deterministic shape). *)

val find : ?labels:(string * string) list -> snapshot -> string -> sample option

val get : ?labels:(string * string) list -> snapshot -> string -> float
(** [find]'s value, defaulting to [0.] when absent. *)

val sum_family : snapshot -> string -> float
(** Total over every label combination of [name] (counters/gauges). *)

val reset : unit -> unit
(** Zero every registered instrument (handles stay valid).  Tests and
    long-lived drivers use this to scope measurements; prefer
    {!snapshot} + {!diff} when concurrent updaters may be live. *)
