(** Exporters for {!Metrics} snapshots and {!Span} profile trees.

    Three formats, all rendered from an immutable snapshot so exporting
    never perturbs the instruments it reports:

    - {b JSON lines}: one object per sample —
      [{"name":"cache_hits_total","labels":{},"type":"counter","value":3}]
      — written atomically (temp file + rename, like
      [Stdx.Tablefmt.write_csv]) so a killed run never leaves a truncated
      export.  The conventional home is [results/metrics/*.jsonl].
    - {b table}: the repo's aligned ASCII table, for humans.
    - {b Prometheus text} (exposition format 0.0.4): for scraping or
      diffing against fleet dashboards.

    Sample order in every format is the snapshot's deterministic order. *)

val jsonl : Metrics.snapshot -> string
val prometheus : Metrics.snapshot -> string
val table : Metrics.snapshot -> string

val write : ?fs:Stdx.Fsio.t -> string -> string -> unit
(** [write path contents]: atomic tmp+rename write, creating the parent
    directory if needed.  Raises [Sys_error] on unwritable targets.
    [fs] (default [Stdx.Fsio.real]) routes the I/O for fault-injection
    tests. *)

val write_jsonl : ?fs:Stdx.Fsio.t -> string -> Metrics.snapshot -> unit
(** [write (jsonl snap)] — the [--metrics] exporter of [maxis_lb]. *)

val spans_csv : Span.tree list -> string
(** Per-phase CSV: [phase,wall_s,counts] rows, depth-first with
    slash-joined paths ([counts] as [;]-joined [k=v] pairs). *)

val json_escape : string -> string
(** Exposed for tests: minimal JSON string escaping (backslash, quote,
    control characters). *)
