module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

type t = { k : int; strings : Bitset.t array }

let t_players x = Array.length x.strings

let string_of_player x i =
  if i < 0 || i >= Array.length x.strings then
    invalid_arg "Inputs.string_of_player: bad player index";
  x.strings.(i)

let bit x ~player j = Bitset.mem (string_of_player x player) j

let make ~k strings =
  List.iter
    (fun s ->
      if Bitset.capacity s <> k then
        invalid_arg "Inputs.make: string capacity differs from k")
    strings;
  { k; strings = Array.of_list strings }

let of_bit_lists ~k lists =
  make ~k (List.map (fun ones -> Bitset.of_list k ones) lists)

let pairwise_disjoint x =
  let t = t_players x in
  let ok = ref true in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      if Bitset.intersects x.strings.(i) x.strings.(j) then ok := false
    done
  done;
  !ok

let uniquely_intersecting x =
  let t = t_players x in
  if t = 0 then None
  else begin
    let common = Bitset.copy x.strings.(0) in
    for i = 1 to t - 1 do
      Bitset.inter_in_place common x.strings.(i)
    done;
    Bitset.min_elt common
  end

let satisfies_promise x =
  match uniquely_intersecting x with
  | None -> pairwise_disjoint x
  | Some m ->
      (* Outside the shared index, strings must be pairwise disjoint. *)
      let t = t_players x in
      let clean = ref true in
      for i = 0 to t - 1 do
        for j = i + 1 to t - 1 do
          let inter = Bitset.inter x.strings.(i) x.strings.(j) in
          Bitset.remove inter m;
          if not (Bitset.is_empty inter) then clean := false
        done
      done;
      !clean

let gen_pairwise_disjoint rng ~k ~t ~ones_per_player =
  if t * ones_per_player > k then
    invalid_arg "Inputs.gen_pairwise_disjoint: not enough indices";
  if t < 1 || ones_per_player < 0 then
    invalid_arg "Inputs.gen_pairwise_disjoint: bad parameters";
  (* Choose t·o distinct indices and deal them out round-robin after a
     shuffle, so each player's support is uniform among disjoint choices. *)
  let chosen =
    Array.of_list (Prng.sample_without_replacement rng k (t * ones_per_player))
  in
  Prng.shuffle rng chosen;
  let strings = Array.init t (fun _ -> Bitset.create k) in
  Array.iteri (fun idx pos -> Bitset.add strings.(idx mod t) pos) chosen;
  { k; strings }

let gen_uniquely_intersecting rng ~k ~t ~ones_per_player =
  if ones_per_player < 1 then
    invalid_arg "Inputs.gen_uniquely_intersecting: need >= 1 one per player";
  if (t * (ones_per_player - 1)) + 1 > k then
    invalid_arg "Inputs.gen_uniquely_intersecting: not enough indices";
  let base = gen_pairwise_disjoint rng ~k ~t ~ones_per_player:(ones_per_player - 1) in
  (* Add the common index at a position no player currently holds. *)
  let taken = Bitset.create k in
  Array.iter (fun s -> Bitset.union_in_place taken s) base.strings;
  let free = Bitset.complement taken in
  let free_arr = Bitset.to_array free in
  let m = free_arr.(Prng.int rng (Array.length free_arr)) in
  Array.iter (fun s -> Bitset.add s m) base.strings;
  base

let gen_promise rng ~k ~t ~intersecting =
  let ones_per_player = max 1 (k / (2 * t)) in
  if intersecting then gen_uniquely_intersecting rng ~k ~t ~ones_per_player
  else gen_pairwise_disjoint rng ~k ~t ~ones_per_player

let canonical x =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "k=%d;t=%d" x.k (t_players x));
  Array.iter
    (fun s ->
      Buffer.add_char buf ';';
      Buffer.add_string buf
        (String.concat "," (List.map string_of_int (Bitset.elements s))))
    x.strings;
  Buffer.contents buf

let pp ppf x =
  Format.fprintf ppf "inputs(k=%d, t=%d)" x.k (t_players x);
  Array.iteri
    (fun i s -> Format.fprintf ppf "@ x^%d=%a" (i + 1) Bitset.pp s)
    x.strings
