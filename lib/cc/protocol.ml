type outcome = { answer : bool; bits : int; writes : int }

type t = { name : string; run : Inputs.t -> Blackboard.t -> bool }

let execute p x =
  let board = Blackboard.create () in
  let answer = p.run x board in
  {
    answer;
    bits = Blackboard.bits_written board;
    writes = Blackboard.writes board;
  }

let worst_case_bits p inputs =
  List.fold_left (fun acc x -> max acc (execute p x).bits) 0 inputs

let accuracy p reference inputs =
  match inputs with
  | [] -> invalid_arg "Protocol.accuracy: no inputs"
  | _ ->
      let correct =
        List.fold_left
          (fun acc x ->
            if (execute p x).answer = reference x then acc + 1 else acc)
          0 inputs
      in
      float_of_int correct /. float_of_int (List.length inputs)
