(** Blackboard protocols and their measured cost.

    A protocol is a strategy for the [t] players to compute a Boolean
    function of their joint input by writing on the shared blackboard.  In
    this executable model a protocol is a function receiving the input
    vector and a fresh blackboard; the discipline that player [i] may only
    look at [xⁱ] plus the blackboard is enforced by construction in the
    protocols we ship (each player-step closure receives only its own
    string), and tested by metamorphic tests (changing bits a player never
    reads cannot change that player's writes). *)

type outcome = {
  answer : bool;
  bits : int;  (** transcript length on this input *)
  writes : int;
}

type t = {
  name : string;
  run : Inputs.t -> Blackboard.t -> bool;
      (** computes the answer, writing all communication on the board *)
}

val execute : t -> Inputs.t -> outcome

val worst_case_bits : t -> Inputs.t list -> int
(** Max transcript length over the given inputs — an empirical lower
    estimate of [Cost(Q)] (Definition 1 maximizes over all inputs). *)

val accuracy : t -> (Inputs.t -> bool) -> Inputs.t list -> float
(** Fraction of inputs answered according to the reference function. *)
