(** The Boolean functions of the paper's communication-complexity reductions.

    All are functions [∏ᵢ {0,1}^k → {TRUE, FALSE}], represented as
    [Inputs.t -> bool]. *)

val two_party_disjointness : Inputs.t -> bool
(** Classic set-disjointness for [t = 2]: TRUE iff the strings do not
    intersect.  Raises [Invalid_argument] unless there are exactly two
    players. *)

val multiparty_disjointness : Inputs.t -> bool
(** TRUE iff there is {e no} index where all strings are 1 (the "all
    intersect at the same index" variant in the paper's Challenge
    paragraph). *)

val promise_pairwise_disjointness : Inputs.t -> bool
(** Definition 2: TRUE if pairwise disjoint, FALSE if uniquely
    intersecting.  Raises [Invalid_argument] when the input violates the
    promise (callers should only evaluate it on promise instances). *)
