type bound = {
  name : string;
  source : string;
  bits : k:int -> t:int -> float;
}

let two_party_disjointness =
  {
    name = "two-party set-disjointness";
    source = "Kalyanasundaram-Schnitger 1992 / Razborov 1992";
    bits = (fun ~k ~t:_ -> float_of_int k);
  }

let promise_pairwise_disjointness =
  {
    name = "promise pairwise disjointness";
    source = "Chakrabarti-Khot-Sun 2003, Theorem 2.5";
    bits =
      (fun ~k ~t ->
        if t < 2 then invalid_arg "cc bound: t must be >= 2";
        let logt = Float.max 1.0 (Stdx.Mathx.log2 (float_of_int t)) in
        float_of_int k /. (float_of_int t *. logt));
  }

let eval_bits b ~k ~t = b.bits ~k ~t
