type entry = { author : int; bits : int; value : int; tag : string }

type t = { entries : entry Stdx.Dynvec.t }

let create () = { entries = Stdx.Dynvec.create () }

let write t ~author ~bits ?(tag = "") value =
  if bits < 0 then invalid_arg "Blackboard.write: negative bit count";
  Stdx.Dynvec.push t.entries { author; bits; value; tag }

let check_payload_fits e =
  e.value >= 0 && (e.bits >= 63 || e.value < 1 lsl e.bits)

let bits_written t = Stdx.Dynvec.fold (fun acc e -> acc + e.bits) 0 t.entries

let entries t = Stdx.Dynvec.to_list t.entries

let writes t = Stdx.Dynvec.length t.entries

let bits_by_author t =
  let tbl = Hashtbl.create 8 in
  Stdx.Dynvec.iter
    (fun e ->
      Hashtbl.replace tbl e.author
        (e.bits + Option.value ~default:0 (Hashtbl.find_opt tbl e.author)))
    t.entries;
  Hashtbl.fold (fun a b acc -> (a, b) :: acc) tbl [] |> List.sort compare

let read_last t ~tag =
  Stdx.Dynvec.fold
    (fun acc e -> if e.tag = tag then Some e else acc)
    None t.entries

let pp ppf t =
  Format.fprintf ppf "blackboard(%d writes, %d bits)" (writes t)
    (bits_written t)
