(** Input vectors for the number-in-hand multi-party model.

    An input is a vector [x̄ = (x¹, ..., xᵗ)] of [t] binary strings of
    length [k], player [i] holding [xⁱ].  Strings are {!Stdx.Bitset}
    values: [mem xⁱ j] means the [j]-th bit of [xⁱ] is 1.

    The generators here produce exactly the instance classes the paper's
    reductions consume: pairwise-disjoint vectors and uniquely-intersecting
    vectors (the two sides of the promise of Definition 2). *)

type t = {
  k : int;  (** string length *)
  strings : Stdx.Bitset.t array;  (** one per player; length [t] *)
}

val t_players : t -> int
val string_of_player : t -> int -> Stdx.Bitset.t
(** Raises [Invalid_argument] on a bad player index. *)

val bit : t -> player:int -> int -> bool
(** [bit x̄ ~player j] is [xⁱ_j]. *)

val make : k:int -> Stdx.Bitset.t list -> t
(** Validates that each string has capacity [k]. *)

val of_bit_lists : k:int -> int list list -> t
(** Each inner list gives the 1-positions of one player's string. *)

(** {1 Predicates} *)

val pairwise_disjoint : t -> bool
(** For all [i ≠ j], [xⁱ ∩ xʲ = ∅]. *)

val uniquely_intersecting : t -> int option
(** [Some m] when index [m] has [xⁱ_m = 1] for every player [i]; [None]
    otherwise.  When several such indices exist, the smallest is
    returned. *)

val satisfies_promise : t -> bool
(** The promise of Definition 2: pairwise disjoint, {e or} intersecting in
    a common index and disjoint everywhere else (for [t >= 2] "uniquely
    intersecting" per the paper means all strings share an index; we follow
    Chakrabarti et al. and additionally require the shared index to be the
    only pairwise collision). *)

(** {1 Generators} *)

val gen_pairwise_disjoint : Stdx.Prng.t -> k:int -> t:int -> ones_per_player:int -> t
(** Random pairwise-disjoint vector where each player holds
    [ones_per_player] ones.  Raises [Invalid_argument] when
    [t * ones_per_player > k]. *)

val gen_uniquely_intersecting :
  Stdx.Prng.t -> k:int -> t:int -> ones_per_player:int -> t
(** Random promise-respecting intersecting vector: one common index, all
    other ones pairwise disjoint.  Requires [ones_per_player >= 1] and
    [t * (ones_per_player - 1) + 1 <= k]. *)

val gen_promise : Stdx.Prng.t -> k:int -> t:int -> intersecting:bool -> t
(** Convenience wrapper with a sensible density ([ones_per_player =
    max 1 (k / (2t))]). *)

val canonical : t -> string
(** Single-line canonical rendering ([k], [t], then each player's
    1-positions), independent of any formatter state — the stable
    identity an input contributes to an {!Exec.Cache} key. *)

val pp : Format.formatter -> t -> unit
