(** The shared blackboard of the number-in-hand model (Definition 1).

    Players exchange information only by writing on a blackboard visible to
    all; the cost of a protocol is the total number of bits written in the
    worst case.  This module makes the blackboard a concrete, bit-metered
    object: every write records the author, a declared bit size and a
    payload, and the transcript length [|π_Q(x¹,...,xᵗ)|] is simply
    {!bits_written}.

    Bit accounting is declared, not inferred: a writer states how many bits
    its message occupies (e.g. [⌈log₂ n⌉] for a node id).  Writers that lie
    can be caught by {!val-check_payload_fits}, which tests that the payload's
    integer value fits the declared width. *)

type entry = {
  author : int;  (** player index *)
  bits : int;  (** declared size of this write *)
  value : int;  (** payload (interpreted by the protocol) *)
  tag : string;  (** debugging label, not counted in bits *)
}

type t

val create : unit -> t

val write : t -> author:int -> bits:int -> ?tag:string -> int -> unit
(** Appends an entry.  Raises [Invalid_argument] on negative [bits]. *)

val check_payload_fits : entry -> bool
(** [value] representable in [bits] bits (as an unsigned integer). *)

val bits_written : t -> int
(** Total declared bits — the transcript length. *)

val entries : t -> entry list
(** In write order. *)

val writes : t -> int
(** Number of entries. *)

val bits_by_author : t -> (int * int) list
(** [(player, bits)] pairs, ascending by player. *)

val read_last : t -> tag:string -> entry option
(** Most recent entry with the given tag — convenience for protocols whose
    phases name their writes. *)

val pp : Format.formatter -> t -> unit
