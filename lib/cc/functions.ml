let two_party_disjointness x =
  if Inputs.t_players x <> 2 then
    invalid_arg "Functions.two_party_disjointness: need exactly 2 players";
  Stdx.Bitset.disjoint
    (Inputs.string_of_player x 0)
    (Inputs.string_of_player x 1)

let multiparty_disjointness x = Inputs.uniquely_intersecting x = None

let promise_pairwise_disjointness x =
  match Inputs.uniquely_intersecting x with
  | Some _ -> false
  | None ->
      if Inputs.pairwise_disjoint x then true
      else
        invalid_arg
          "Functions.promise_pairwise_disjointness: input violates the promise"
