module Bitset = Stdx.Bitset
module Mathx = Stdx.Mathx

(* Each protocol writes on the blackboard with declared bit widths, then
   decides.  Decisions read only the blackboard (plus the deciding player's
   own string), mirroring the model's information flow. *)

let exchange_everything =
  {
    Protocol.name = "exchange-everything";
    run =
      (fun x board ->
        let t = Inputs.t_players x in
        let k = x.Inputs.k in
        for i = 0 to t - 1 do
          (* Write the k-bit string as ⌈k/62⌉ machine words, declaring k
             bits in total. *)
          let s = Inputs.string_of_player x i in
          let remaining = ref k in
          let word = ref 0 and word_bits = ref 0 in
          let flush () =
            if !word_bits > 0 then begin
              Blackboard.write board ~author:i ~bits:!word_bits ~tag:"string"
                !word;
              word := 0;
              word_bits := 0
            end
          in
          for j = 0 to k - 1 do
            word := !word lor ((if Bitset.mem s j then 1 else 0) lsl !word_bits);
            incr word_bits;
            decr remaining;
            if !word_bits = 62 then flush ()
          done;
          flush ();
          if k = 0 then Blackboard.write board ~author:i ~bits:0 ~tag:"string" 0
        done;
        (* Player 0 reconstructs all strings from the board and answers. *)
        Inputs.uniquely_intersecting x = None);
  }

let position_bits k = max 1 (Mathx.ceil_log2 (max 2 k))

let sparse_encoding ~k =
  let pb = position_bits k in
  let cb = max 1 (Mathx.ceil_log2 (k + 2)) in
  {
    Protocol.name = "sparse-encoding";
    run =
      (fun x board ->
        let t = Inputs.t_players x in
        for i = 0 to t - 1 do
          let s = Inputs.string_of_player x i in
          Blackboard.write board ~author:i ~bits:cb ~tag:"count"
            (Bitset.cardinal s);
          Bitset.iter
            (fun j -> Blackboard.write board ~author:i ~bits:pb ~tag:"pos" j)
            s
        done;
        Inputs.uniquely_intersecting x = None);
  }

let sequential_intersect ~k =
  let pb = position_bits k in
  let cb = max 1 (Mathx.ceil_log2 (k + 2)) in
  {
    Protocol.name = "sequential-intersect";
    run =
      (fun x board ->
        let t = Inputs.t_players x in
        (* candidates: positions that could still be the common index. *)
        let candidates = ref (Bitset.copy (Inputs.string_of_player x 0)) in
        Blackboard.write board ~author:0 ~bits:cb ~tag:"count"
          (Bitset.cardinal !candidates);
        Bitset.iter
          (fun j -> Blackboard.write board ~author:0 ~bits:pb ~tag:"pos" j)
          !candidates;
        for i = 1 to t - 1 do
          let survivors =
            Bitset.inter !candidates (Inputs.string_of_player x i)
          in
          Blackboard.write board ~author:i ~bits:cb ~tag:"count"
            (Bitset.cardinal survivors);
          Bitset.iter
            (fun j -> Blackboard.write board ~author:i ~bits:pb ~tag:"pos" j)
            survivors;
          candidates := survivors
        done;
        Bitset.is_empty !candidates);
  }

let all ~k = [ exchange_everything; sparse_encoding ~k; sequential_intersect ~k ]
