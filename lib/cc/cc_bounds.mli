(** The communication-complexity lower bounds the reductions consume, as
    first-class formula objects.

    These are information-theoretic theorems from the literature; code
    cannot re-prove them, but the reduction pipeline needs them as values
    (Corollary 1 divides one by the cut size).  Each bound records its
    source and exposes the function of [(k, t)]; the constant factor hidden
    by Ω(·) is taken as 1, so a bound here is "the paper's expression with
    constant 1" — exactly what the bench tables report. *)

type bound = {
  name : string;
  source : string;  (** citation, e.g. "Chakrabarti–Khot–Sun 2003, Thm 2.5" *)
  bits : k:int -> t:int -> float;  (** the Ω(·) expression, constant 1 *)
}

val two_party_disjointness : bound
(** Ω(k) — Kalyanasundaram–Schnitger / Razborov. *)

val promise_pairwise_disjointness : bound
(** Ω(k / (t·log t)) — Theorem 3 of the paper, citing Chakrabarti, Khot &
    Sun (CCC 2003), Theorem 2.5.  For [t = 2] the [t·log t] factor is
    [2·1 = 2]; we use [log₂] and clamp [log t] below by 1 so the formula is
    monotone and meaningful at [t = 2]. *)

val eval_bits : bound -> k:int -> t:int -> float
