(** Concrete upper-bound protocols for disjointness problems.

    These bracket the Ω(k/t log t) lower bound of Theorem 3 from above and
    serve as the measured baselines in the `cc` experiment: no protocol we
    can implement beats the bound on promise instances, and the trivial
    ones sit a factor Θ(t² log t) above it. *)

val exchange_everything : Protocol.t
(** Every player writes its full k-bit string; player 1 computes the
    promise-pairwise-disjointness answer.  Cost: exactly [t·k] bits. *)

val sparse_encoding : k:int -> Protocol.t
(** Every player writes the positions of its 1-bits, each as a
    [⌈log₂ k⌉]-bit index prefixed by a [⌈log₂(k+1)⌉]-bit count.  Cost:
    [Σᵢ (|xⁱ|·⌈log k⌉ + ⌈log(k+1)⌉)] — cheaper than
    {!exchange_everything} on the sparse promise instances the reduction
    generates. *)

val sequential_intersect : k:int -> Protocol.t
(** Exploits the promise: player 1 writes its 1-positions; each later
    player intersects the candidate set written so far with its own string
    and writes the surviving positions.  On promise instances the
    candidate set collapses to at most one index after the second player,
    so the cost is [O(|x¹|·log k + t·log k)] bits. *)

val all : k:int -> Protocol.t list
