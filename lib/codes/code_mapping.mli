(** Code-mappings in the sense of Definition 3 of the paper.

    A code-mapping with parameters [(L, M, d, Σ)] is a function
    [C : Σ^L → Σ^M] such that distinct inputs map to codewords at Hamming
    distance at least [d].  Symbols are integers [0 .. q-1] where
    [q = |Σ|] (the paper writes symbols 1-based; we are 0-based internally
    and shift only when printing node names [σ_(h,r)]). *)

type t = {
  l : int;  (** message length [L] *)
  m : int;  (** codeword length [M] *)
  d : int;  (** guaranteed minimum distance *)
  q : int;  (** alphabet size [|Σ|] *)
  encode : int array -> int array;
      (** total on messages in [Σ^L]; raises [Invalid_argument] otherwise *)
}

val distance : int array -> int array -> int
(** Hamming distance; raises [Invalid_argument] on length mismatch. *)

val message_count : t -> int
(** [q^L] — the number of encodable messages. *)

val encode_index : t -> int -> int array
(** [encode_index c i] encodes the [i]-th message in the lexicographic
    ordering of [Σ^L] (base-[q] digits, least-significant first).  This is
    the paper's [C(m)] for [m ∈ [k]] (0-based).  Raises [Invalid_argument]
    when [i] is out of [0, q^L). *)

val message_of_index : t -> int -> int array
(** The base-[q] digit expansion used by {!encode_index}. *)

val verify : ?samples:int -> ?rng:Stdx.Prng.t -> t -> (unit, string) result
(** Checks the distance property.  Exhaustive over all message pairs when
    [q^L <= 256] (or when [samples] is omitted and the space is small);
    otherwise checks [samples] random pairs (default 1000).  Returns a
    human-readable error naming the violating pair on failure. *)

val repetition : q:int -> l:int -> m:int -> t
(** The trivial repetition-style mapping used as a {e negative control} in
    tests: it simply repeats the message to length [m] and therefore has
    distance as low as ⌈m/l⌉ — far below [m − l] when [l > 1].  Its [d]
    field records that weak guarantee honestly. *)
