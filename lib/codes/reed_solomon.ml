let make ~p ~l ~m =
  if not (Stdx.Primes.is_prime p) then
    invalid_arg "Reed_solomon.make: p must be prime";
  if l < 1 || m < l || m > p then
    invalid_arg "Reed_solomon.make: need 1 <= l <= m <= p";
  let field = Gf.make p in
  let encode msg =
    if Array.length msg <> l then
      invalid_arg "Reed_solomon.encode: bad message length";
    Array.iter
      (fun s ->
        if s < 0 || s >= p then
          invalid_arg "Reed_solomon.encode: symbol out of alphabet")
      msg;
    Array.init m (fun x -> Poly.eval field msg x)
  in
  { Code_mapping.l; m; d = m - l + 1; q = p; encode }

let decode_unique ~p ~l word =
  let field = Gf.make p in
  let m = Array.length word in
  if m < l then None
  else begin
    let points = List.init l (fun i -> (i, word.(i))) in
    let poly = Poly.interpolate field points in
    if Poly.degree field poly >= l then None
    else begin
      let consistent = ref true in
      for x = 0 to m - 1 do
        if Poly.eval field poly x <> Gf.of_int field word.(x) then
          consistent := false
      done;
      if not !consistent then None
      else Some (Array.init l (fun i -> if i < Array.length poly then Gf.of_int field poly.(i) else 0))
    end
  end
