(** Prime-field arithmetic GF(p).

    Theorem 4 of the paper only asserts the {e existence} of a large-distance
    code; the canonical construction (which we implement fully) is
    Reed–Solomon, which needs a finite field with at least [M = ℓ+α]
    elements.  Prime fields suffice for every parameter regime we
    instantiate, so we implement GF(p) for prime [p] rather than general
    extension fields. *)

type t
(** The field, carrying its modulus. *)

val make : int -> t
(** [make p] — raises [Invalid_argument] unless [p] is prime. *)

val order : t -> int

val of_int : t -> int -> int
(** Canonical representative in [0, p). Accepts negatives. *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val neg : t -> int -> int

val pow : t -> int -> int -> int
(** [pow f x e] for [e >= 0]. *)

val inv : t -> int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val div : t -> int -> int -> int

val elements : t -> int list
(** [0; 1; ...; p-1]. *)
