(** Parameter selection for the paper's code gadget.

    Section 4.1 fixes three positive integers [k, α, ℓ] with
    [(ℓ+α)^α = k] and [ℓ ≫ α], and a code-mapping with parameters
    [(α, ℓ+α, ℓ, Σ)] where [|Σ| = ℓ+α].  Concretely the paper sets
    [ℓ = log k − log k/log log k] and [α = log k/log log k].

    Reed–Solomon needs [ℓ+α] distinct evaluation points inside a field, so
    we use the smallest prime [q ≥ ℓ+α] as the alphabet size.  The code
    gadget then has [ℓ+α] cliques of [q] nodes each; all of the paper's
    inequalities count {e positions} (of which there are exactly [ℓ+α]) and
    are untouched by the slightly larger cliques (see DESIGN.md §4).  When
    [ℓ+α] is itself prime — e.g. the figures' [ℓ=2, α=1] — the construction
    matches the paper exactly. *)

type t = {
  alpha : int;  (** message length [α] *)
  ell : int;  (** distance parameter [ℓ] *)
  positions : int;  (** [ℓ + α], the number of code-gadget cliques *)
  q : int;  (** alphabet size: smallest prime [>= ℓ+α] *)
  k : int;  (** [(ℓ+α)^α] — the size of the [A] cliques *)
  code : Code_mapping.t;  (** RS mapping [Σ^α → Σ^{ℓ+α}] with distance [ℓ+1] *)
}

val make : alpha:int -> ell:int -> t
(** Raises [Invalid_argument] when [alpha < 1] or [ell < 1], or when [k]
    would overflow the native int range. *)

val paper_regime : k:int -> t
(** Parameters as close as possible to the paper's asymptotic choice for a
    target [k]: [α ≈ log k / log log k], [ℓ ≈ log k − α], both at least 1.
    The achieved [k] is [(ℓ+α)^α], recorded in the result (generally not
    exactly the target). *)

val codeword : t -> int -> int array
(** [codeword p m] is [C(m)] — the length-[ℓ+α] symbol vector of the
    [m]-th message, symbols in [0, q).  Raises [Invalid_argument] when
    [m ∉ [0, k)]. *)

val exact_alphabet : t -> bool
(** True when [q = ℓ+α], i.e. the construction matches the paper with no
    alphabet padding. *)

val pp : Format.formatter -> t -> unit
