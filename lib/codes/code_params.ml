module Mathx = Stdx.Mathx

type t = {
  alpha : int;
  ell : int;
  positions : int;
  q : int;
  k : int;
  code : Code_mapping.t;
}

let make ~alpha ~ell =
  if alpha < 1 then invalid_arg "Code_params.make: alpha must be >= 1";
  if ell < 1 then invalid_arg "Code_params.make: ell must be >= 1";
  let positions = ell + alpha in
  (* Guard against k = positions^alpha overflowing. *)
  let kf = float_of_int positions ** float_of_int alpha in
  if kf > 1e15 then invalid_arg "Code_params.make: k too large";
  let k = Mathx.pow positions alpha in
  let q = Stdx.Primes.next_prime positions in
  let code = Reed_solomon.make ~p:q ~l:alpha ~m:positions in
  { alpha; ell; positions; q; k; code }

let paper_regime ~k =
  if k < 2 then invalid_arg "Code_params.paper_regime: k must be >= 2";
  let logk = Mathx.log2 (float_of_int k) in
  let loglogk = Mathx.log2 (Float.max 2.0 logk) in
  let alpha = max 1 (int_of_float (Float.round (logk /. loglogk))) in
  let ell = max 1 (int_of_float (Float.round (logk -. (logk /. loglogk)))) in
  make ~alpha ~ell

let codeword p m =
  if m < 0 || m >= p.k then
    invalid_arg (Printf.sprintf "Code_params.codeword: %d out of [0,%d)" m p.k);
  Code_mapping.encode_index p.code m

let exact_alphabet p = p.q = p.positions

let pp ppf p =
  Format.fprintf ppf "params(alpha=%d, ell=%d, positions=%d, q=%d, k=%d)"
    p.alpha p.ell p.positions p.q p.k
