type t = {
  l : int;
  m : int;
  d : int;
  q : int;
  encode : int array -> int array;
}

let distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Code_mapping.distance: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let message_count c = Stdx.Mathx.pow c.q c.l

let message_of_index c i =
  let total = message_count c in
  if i < 0 || i >= total then
    invalid_arg
      (Printf.sprintf "Code_mapping.message_of_index: %d out of [0,%d)" i total);
  let msg = Array.make c.l 0 in
  let rest = ref i in
  for pos = 0 to c.l - 1 do
    msg.(pos) <- !rest mod c.q;
    rest := !rest / c.q
  done;
  msg

let encode_index c i = c.encode (message_of_index c i)

let verify ?samples ?rng c =
  let total = message_count c in
  let check i j =
    let ci = encode_index c i and cj = encode_index c j in
    let dist = distance ci cj in
    if dist < c.d then
      Error
        (Printf.sprintf
           "messages %d and %d have codeword distance %d < required %d" i j
           dist c.d)
    else Ok ()
  in
  let exhaustive () =
    let result = ref (Ok ()) in
    (try
       for i = 0 to total - 1 do
         for j = i + 1 to total - 1 do
           match check i j with
           | Ok () -> ()
           | Error _ as e ->
               result := e;
               raise Exit
         done
       done
     with Exit -> ());
    !result
  in
  let sampled n rng =
    let result = ref (Ok ()) in
    (try
       for _ = 1 to n do
         let i = Stdx.Prng.int rng total in
         let j = Stdx.Prng.int rng total in
         if i <> j then
           match check i j with
           | Ok () -> ()
           | Error _ as e ->
               result := e;
               raise Exit
       done
     with Exit -> ());
    !result
  in
  match (samples, rng) with
  | None, _ when total <= 256 -> exhaustive ()
  | Some _, None | None, None ->
      (* No entropy source supplied for a large space: fall back to a
         deterministic one so verification stays total. *)
      sampled (Option.value ~default:1000 samples) (Stdx.Prng.create 0x5eed)
  | Some n, Some rng -> sampled n rng
  | None, Some rng -> sampled 1000 rng

let repetition ~q ~l ~m =
  if l <= 0 || m < l then invalid_arg "Code_mapping.repetition";
  {
    l;
    m;
    d = Stdx.Mathx.divide_round_up m l;
    q;
    encode =
      (fun msg ->
        if Array.length msg <> l then
          invalid_arg "Code_mapping.repetition: bad message length";
        Array.init m (fun i -> msg.(i mod l)));
  }
