type t = int array

let degree f p =
  let rec go i =
    if i < 0 then -1 else if Gf.of_int f p.(i) <> 0 then i else go (i - 1)
  in
  go (Array.length p - 1)

let eval f p x =
  let acc = ref 0 in
  for i = Array.length p - 1 downto 0 do
    acc := Gf.add f (Gf.mul f !acc x) (Gf.of_int f p.(i))
  done;
  !acc

let add f a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      let ai = if i < Array.length a then a.(i) else 0 in
      let bi = if i < Array.length b then b.(i) else 0 in
      Gf.add f (Gf.of_int f ai) (Gf.of_int f bi))

let scale f c p = Array.map (fun x -> Gf.mul f (Gf.of_int f c) (Gf.of_int f x)) p

let sub f a b = add f a (scale f (Gf.neg f 1) b)

let mul f a b =
  let da = Array.length a and db = Array.length b in
  if da = 0 || db = 0 then [||]
  else begin
    let r = Array.make (da + db - 1) 0 in
    for i = 0 to da - 1 do
      for j = 0 to db - 1 do
        r.(i + j) <-
          Gf.add f r.(i + j) (Gf.mul f (Gf.of_int f a.(i)) (Gf.of_int f b.(j)))
      done
    done;
    r
  end

let roots f p =
  List.filter (fun x -> eval f p x = 0) (Gf.elements f)

let interpolate f points =
  let xs = List.map fst points in
  let distinct =
    List.length (List.sort_uniq compare xs) = List.length xs
  in
  if not distinct then invalid_arg "Poly.interpolate: duplicate x values";
  (* Lagrange basis: Σ yᵢ · Πⱼ≠ᵢ (x − xⱼ)/(xᵢ − xⱼ). *)
  List.fold_left
    (fun acc (xi, yi) ->
      let basis =
        List.fold_left
          (fun b (xj, _) ->
            if xj = xi then b
            else
              let denom = Gf.sub f xi xj in
              let factor = [| Gf.div f (Gf.neg f xj) denom; Gf.inv f denom |] in
              mul f b factor)
          [| 1 |] points
      in
      add f acc (scale f yi basis))
    [| 0 |] points

let equal f a b =
  let d = max (Array.length a) (Array.length b) in
  let coeff p i = if i < Array.length p then Gf.of_int f p.(i) else 0 in
  let rec go i = i >= d || (coeff a i = coeff b i && go (i + 1)) in
  go 0
