(** Polynomials over a prime field, coefficient-array representation.

    A Reed–Solomon codeword is the evaluation vector of the message
    polynomial; the distance proof rests on "a nonzero degree-< L polynomial
    has < L roots", which {!roots} lets the test suite check directly. *)

type t = int array
(** [p.(i)] is the coefficient of [x^i].  High zero coefficients are
    allowed; [degree] ignores them. *)

val degree : Gf.t -> t -> int
(** Degree, with [degree [||] = -1] and degree of the zero polynomial
    [-1]. *)

val eval : Gf.t -> t -> int -> int
(** Horner evaluation. *)

val add : Gf.t -> t -> t -> t
val sub : Gf.t -> t -> t -> t
val mul : Gf.t -> t -> t -> t
val scale : Gf.t -> int -> t -> t

val roots : Gf.t -> t -> int list
(** All field elements where the polynomial vanishes (brute force over the
    field — fields here are tiny). *)

val interpolate : Gf.t -> (int * int) list -> t
(** Lagrange interpolation through the given (x, y) points; the xs must be
    distinct.  Returns a polynomial of degree < number of points. *)

val equal : Gf.t -> t -> t -> bool
(** Equality as field polynomials (trailing zeros ignored). *)
