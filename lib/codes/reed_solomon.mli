(** Reed–Solomon codes: the constructive witness for Theorem 4.

    A message [(c₀, ..., c_{L-1}) ∈ GF(p)^L] is read as the polynomial
    [c₀ + c₁x + ... + c_{L-1}x^{L-1}] and encoded as its evaluations at [M]
    fixed distinct points.  Two distinct degree-< L polynomials agree on at
    most [L−1] points, so distinct codewords are at distance at least
    [M − L + 1 > M − L = d] — meeting Definition 3's requirement with one
    symbol to spare. *)

val make : p:int -> l:int -> m:int -> Code_mapping.t
(** [make ~p ~l ~m] is the RS code-mapping over GF(p) with message length
    [l], codeword length [m], evaluation points [0 .. m-1], alphabet size
    [p], and recorded distance [d = m - l + 1].

    Raises [Invalid_argument] unless [p] is prime, [1 <= l <= m <= p]. *)

val decode_unique : p:int -> l:int -> int array -> int array option
(** Erasure-free brute-force decoding used in tests: interpolate the first
    [l] coordinates and check consistency with the rest; [None] when the
    word is not a codeword.  (We never need error correction — the paper
    only uses the distance property — but round-tripping encode/decode is a
    strong implementation check.) *)
