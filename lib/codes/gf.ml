type t = { p : int }

let make p =
  if not (Stdx.Primes.is_prime p) then
    invalid_arg (Printf.sprintf "Gf.make: %d is not prime" p);
  { p }

let order f = f.p

let of_int f x =
  let r = x mod f.p in
  if r < 0 then r + f.p else r

let add f a b = (a + b) mod f.p
let sub f a b = of_int f (a - b)
let mul f a b = a * b mod f.p
let neg f a = of_int f (-a)

let rec pow f x e =
  if e < 0 then invalid_arg "Gf.pow: negative exponent"
  else if e = 0 then 1
  else
    let h = pow f (mul f x x) (e / 2) in
    if e land 1 = 1 then mul f x h else h

let inv f a =
  let a = of_int f a in
  if a = 0 then raise Division_by_zero;
  (* Fermat: a^(p-2) — fields are tiny, so this is plenty fast. *)
  pow f a (f.p - 2)

let div f a b = mul f a (inv f b)

let elements f = List.init f.p Fun.id
