(** Pluggable socket interface with seeded fault injection — the network
    sibling of {!Fsio}.

    The serving layer ([lib/serve]) claims the same kind of robustness
    contracts for its sockets that the storage layer claims for its
    files: a torn or stalled peer costs one connection, partial reads
    and writes are re-assembled, transient syscall failures are
    absorbed, and a replicated client fails over on [Net_io].  Those
    claims are only worth something when exercised against sockets that
    actually fail, so the daemon and the client route every socket
    operation through one small record ({!t}) with two backends:

    - {!real}: [Unix.accept]/[Unix.connect]/[Unix.read]/
      [Unix.write_substring] as the OS provides them;
    - {!faulty}: a wrapper around {!real} that injects {b seeded,
      exactly replayable} faults — interrupted syscalls, connection
      refusals, mid-frame resets, short reads, torn (partial) writes and
      stalls — mirroring the fault-plan idiom of [Congest.Faults] and
      {!Fsio}: the injected fault stream is a pure function of the plan
      seed and the operation sequence.

    Injected failures are raised as genuine [Unix.Unix_error]s (with
    ["injected"] as the syscall argument), so they travel the exact
    error paths real sockets use — the daemon's [EAGAIN]/[EINTR]
    branches, the client's reconnect logic, the balancer's breakers.

    Replay caveat (same as {!Fsio}): the stream is exactly replayable
    only for a deterministic operation sequence.  Live sockets make the
    {e number} of reads timing-dependent, so replay assertions belong on
    scripted op sequences (socketpairs with all bytes pre-written);
    against live connections, assert absorption invariants instead. *)

type t = {
  accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
  connect : Unix.file_descr -> Unix.sockaddr -> unit;
  read : Unix.file_descr -> bytes -> int -> int -> int;
      (** [read fd buf off len]: up to [len] bytes, [0] at EOF. *)
  write : Unix.file_descr -> string -> int -> int -> int;
      (** [write fd s off len]: bytes actually written (possibly a
          prefix — callers loop). *)
}

val real : t
(** The passthrough backend. *)

(** {1 Fault plans}

    Probabilities are drawn independently per operation from the plan's
    own splitmix64 stream: one draw per applicable kind per operation
    (fired or not) plus one unconditional auxiliary draw for prefix
    lengths, so the stream position depends only on the operation
    sequence, never on which faults happened to fire. *)

type op_fault = {
  eintr : float;
      (** the operation fails with injected [EINTR] before doing
          anything — the canonical transient failure retry loops must
          absorb (applies to all four operations) *)
  refuse : float;
      (** a connect fails with injected [ECONNREFUSED] — a replica that
          is down; what the balancer's breakers and the client's
          connect retries exist for *)
  reset : float;
      (** a read or write fails with injected [ECONNRESET] — the peer
          vanished mid-frame; the daemon must drop exactly one
          connection, the balancer must fail over *)
  short_read : float;
      (** a read is silently truncated to a 1-byte-minimum prefix of
          what was asked — exercises line reassembly across fragments *)
  torn_write : float;
      (** a write accepts only a 1-byte-minimum prefix and reports the
          short count — exercises write loops (progress is guaranteed:
          at least one byte lands, so loops terminate) *)
  stall : float;
      (** a read or write fails with injected [EAGAIN] — the kernel
          buffer lied about readiness; nonblocking loops must treat it
          as "try later", blocking callers must wait and retry *)
}

val no_fault : op_fault

val op_fault :
  ?eintr:float ->
  ?refuse:float ->
  ?reset:float ->
  ?short_read:float ->
  ?torn_write:float ->
  ?stall:float ->
  unit ->
  op_fault
(** Raises [Invalid_argument] on probabilities outside [0, 1]. *)

type plan = {
  seed : int;  (** seeds the fault stream *)
  default : op_fault;  (** applies to every operation *)
  overrides : (string * op_fault) list;
      (** first entry naming the operation ([accept] | [connect] |
          [read] | [write]) wins over [default] — scope chaos to one
          side of the conversation *)
}

val plan : ?default:op_fault -> ?overrides:(string * op_fault) list -> int -> plan
(** [plan seed] with no faults anywhere. *)

val pp_op_fault : Format.formatter -> op_fault -> unit

val pp_plan : Format.formatter -> plan -> unit

(** {1 Injection} *)

type injector
(** The plan plus its live PRNG stream and per-kind injection counters.
    Thread-safe (one mutex around the stream); exactly replayable only
    for a deterministic operation sequence. *)

val injector : plan -> injector

val faults_injected : injector -> (string * int) list
(** Injections so far, as [(kind, count)] pairs in the fixed kind order
    [eintr | refuse | reset | short_read | torn_write | stall];
    zero-count kinds omitted. *)

val total_injected : injector -> int

val faulty : ?on_fault:(string -> unit) -> injector -> t
(** A backend wrapping {!real} that injects the injector's plan.
    [on_fault] is called with the kind name at every injection (the
    serve layer hooks [netio_faults_injected_total{kind}] here).  Which
    kinds apply where: accepts draw [eintr]; connects draw
    [eintr]/[refuse]; reads draw [eintr]/[reset]/[stall]/[short_read];
    writes draw [eintr]/[reset]/[stall]/[torn_write]. *)
