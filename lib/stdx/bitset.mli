(** Dense, fixed-capacity bitsets.

    This is the workhorse data structure of the repository: graph adjacency
    rows, candidate sets inside the branch-and-bound maximum-weight
    independent-set solver, and the players' input strings of the
    communication-complexity substrate are all bitsets.

    A bitset has a fixed {e capacity} decided at creation time; all members
    are integers in [0, capacity).  Operations never grow a bitset.  Unless
    stated otherwise, binary operations require both arguments to have the
    same capacity and raise [Invalid_argument] otherwise. *)

type t

(** {1 Construction} *)

val create : int -> t
(** [create n] is the empty set with capacity [n].  Raises
    [Invalid_argument] if [n < 0]. *)

val full : int -> t
(** [full n] is the set [{0, ..., n-1}] with capacity [n]. *)

val copy : t -> t
(** [copy s] is a fresh bitset equal to [s]; mutating one does not affect
    the other. *)

val of_list : int -> int list -> t
(** [of_list n elts] is the set with capacity [n] containing exactly
    [elts].  Raises [Invalid_argument] on out-of-range elements. *)

val singleton : int -> int -> t
(** [singleton n i] is [of_list n [i]]. *)

(** {1 Capacity and cardinality} *)

val capacity : t -> int
(** Fixed capacity chosen at creation time. *)

val cardinal : t -> int
(** Number of members (population count). *)

val is_empty : t -> bool

(** {1 Membership and mutation} *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Raises [Invalid_argument] if [i] is out of
    range. *)

val add : t -> int -> unit
(** [add s i] inserts [i] in place. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i] in place. *)

val clear : t -> unit
(** Remove every member in place. *)

val fill : t -> unit
(** Insert every member of [0 .. capacity-1] in place. *)

(** {1 Set algebra (allocating)} *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

(** {1 Set algebra (in place, first argument mutated)} *)

val union_in_place : t -> t -> unit
val inter_in_place : t -> t -> unit
val diff_in_place : t -> t -> unit

(** {1 Predicates} *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true iff every member of [a] is a member of [b]. *)

val disjoint : t -> t -> bool
val intersects : t -> t -> bool
(** [intersects a b = not (disjoint a b)]. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating. *)

(** {1 Iteration and search} *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val to_array : t -> int array

val min_elt : t -> int option
(** Smallest member, or [None] when empty. *)

val max_elt : t -> int option

val choose : t -> int option
(** Some member (the smallest), or [None] when empty. *)

val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit
(** Renders as [{0, 3, 17}]. *)

val to_string : t -> string
