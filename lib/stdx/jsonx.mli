(** Minimal, dependency-free JSON encode/decode.

    Two consumers motivate one shared implementation: the metrics
    exporters ([Obs.Export]) render JSONL and previously hand-rolled
    their string escaping, and the serving layer ([Serve]) speaks a
    newline-delimited JSON wire protocol and additionally needs a
    {e reader}.  Sharing the escaper means a metric name and a wire
    payload can never disagree about what a legal JSON string is.

    Scope: the JSON actually used in this repository — objects, arrays,
    strings, booleans, null, and numbers split into [Int] (anything that
    prints without a fraction) and [Float].  The parser accepts any
    RFC-8259 document of bounded depth; surrogate pairs in [\uXXXX]
    escapes are decoded to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** insertion order preserved *)

(** {1 Encoding} *)

val escape : string -> string
(** The escaped {e content} of a JSON string literal, without the
    surrounding quotes: ["\""], ["\\"], ["\n"], ["\t"], ["\r"] get
    two-character escapes; every other byte below [0x20] becomes
    [\u00XX]; everything else passes through verbatim (the string is
    treated as already-valid UTF-8). *)

val to_string : t -> string
(** Compact rendering: no whitespace, object fields in their list
    order.  [Int] renders with no fraction; [Float] via ["%.17g"]
    trimmed to the shortest round-tripping form.

    Non-finite floats: [nan] and [±inf] render as [null] — JSON has no
    spelling for them — so [to_string] followed by {!parse} does {e not}
    round-trip such values: a non-finite [Float] silently comes back as
    [Null].  Callers that must preserve non-finite values have to encode
    them out-of-band (e.g. as strings) before serializing. *)

(** {1 Decoding} *)

val parse : string -> (t, string) result
(** Parse one complete JSON document (leading/trailing whitespace
    allowed; anything after the document is an error).  Never raises:
    lexical, structural, and depth errors come back as
    [Error reason] with a byte offset in the reason.  Nesting is capped
    at {!max_depth}. *)

val max_depth : int
(** 128 — a wire-protocol guard, not an expressiveness limit. *)

(** {1 Accessors}

    Total accessors for picking requests apart: every function returns
    an option instead of raising, so a malformed request degrades to a
    structured error reply, never an exception. *)

val member : string -> t -> t option
(** Field of an [Obj] (first match); [None] on anything else. *)

val to_str : t -> string option

val to_int : t -> int option
(** [Int], or a [Float] with integral value. *)

val to_bool : t -> bool option

val to_float : t -> float option
(** [Float] or [Int]. *)

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
(** [mem_* k j] = [member k j] composed with the accessor. *)

(** {1 Trajectory files}

    Benchmark trajectories are JSON documents of the shape
    [{...header fields..., "entries": [...]}] that grow by one entry per
    run and must never lose history. *)

val append_entry : path:string -> header:(string * t) list -> t -> unit
(** Append [entry] to the ["entries"] array of the document at [path],
    creating the file (with [header] fields before ["entries"]) when
    missing.  The write is atomic (pid-unique temp file + rename), so a
    crash can never truncate prior entries; an existing file that fails
    to parse is moved aside to [path ^ ".corrupt"] instead of being
    silently overwritten.  Concurrent appenders (other domains of this
    process, other processes) are serialised through a blocking fcntl
    lock on a sidecar [path ^ ".lock"] — which is left in place after
    the append — so parallel bench/CI legs writing one trajectory
    cannot drop each other's entries.  Raises [Sys_error] or
    [Unix.Unix_error] on I/O failure. *)
