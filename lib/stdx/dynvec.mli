(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used for edge lists and trace accumulation where the final size is not
    known in advance. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of range. *)

val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
