type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let max_depth = 128

(* ------------------------------------------------------------------ *)
(* Encoding *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips: try increasing precision instead
   of always paying 17 digits of noise. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string j =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding: recursive descent over the raw bytes.  Errors unwind via a
   local exception carrying the byte offset; [parse] catches it. *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> bad (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else bad (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then bad "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> bad "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (if !pos >= n then bad "truncated escape";
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char b '"'
           | '\\' -> advance (); Buffer.add_char b '\\'
           | '/' -> advance (); Buffer.add_char b '/'
           | 'b' -> advance (); Buffer.add_char b '\b'
           | 'f' -> advance (); Buffer.add_char b '\012'
           | 'n' -> advance (); Buffer.add_char b '\n'
           | 'r' -> advance (); Buffer.add_char b '\r'
           | 't' -> advance (); Buffer.add_char b '\t'
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 (* A high surrogate must be followed by \uDC00-\uDFFF;
                    combine the pair into one code point. *)
                 if cp >= 0xd800 && cp <= 0xdbff then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xdc00 || lo > 0xdfff then
                       bad "bad low surrogate";
                     0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                   end
                   else bad "lone high surrogate"
                 end
                 else if cp >= 0xdc00 && cp <= 0xdfff then
                   bad "lone low surrogate"
                 else cp
               in
               add_utf8 b cp
           | _ -> bad "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> bad "raw control byte in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      !pos - d0
    in
    if peek () = Some '-' then advance ();
    if digits () = 0 then bad "bad number";
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if digits () = 0 then bad "no digits after '.' in number"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if digits () = 0 then bad "no digits in exponent"
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> bad "bad number"
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          (* out of int range; keep the value as a float *)
          match float_of_string_opt lexeme with
          | Some f -> Float f
          | None -> bad "bad number")
  in
  let rec value depth =
    if depth > max_depth then bad "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> bad "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> bad "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> bad (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then bad "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Bad (off, msg) ->
      Error (Printf.sprintf "%s at byte %d" msg off)
  (* Safety net for the never-raises contract: the daemon parses
     attacker-controlled bytes on its event loop, so no stdlib
     conversion failure may escape as an exception. *)
  | exception Failure msg -> Error (Printf.sprintf "bad document: %s" msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let mem_str k j = Option.bind (member k j) to_str
let mem_int k j = Option.bind (member k j) to_int
let mem_bool k j = Option.bind (member k j) to_bool

(* ------------------------------------------------------------------ *)
(* Trajectory files *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The read-modify-rename below is a critical section: two unserialised
   appenders would both read N entries and the losing rename would
   silently drop one — the exact loss class this function exists to
   prevent.  Concurrent appenders are real (parallel bench/CI legs
   writing one trajectory), so appends are serialised at two levels: a
   process-local mutex for domains of this process (fcntl locks do not
   exclude within one process), and a blocking fcntl lock on a sidecar
   [path ^ ".lock"] for other processes.  fcntl locks die with their
   holder, so a crashed appender cannot wedge the file.  The sidecar is
   left in place: unlinking it would reopen the classic unlock/unlink
   race where two appenders lock different inodes of the same name. *)
let append_m = Mutex.create ()

let with_append_lock path f =
  Mutex.lock append_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock append_m)
    (fun () ->
      let fd =
        Unix.openfile (path ^ ".lock")
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ]
          0o644
      in
      Fun.protect
        ~finally:(fun () ->
          (* Closing releases the fcntl lock. *)
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.lockf fd Unix.F_LOCK 0;
          f ()))

let append_entry ~path ~header entry =
  with_append_lock path @@ fun () ->
  let existing =
    if not (Sys.file_exists path) then []
    else
      match parse (read_file path) with
      | Ok j -> ( match member "entries" j with Some (Arr l) -> l | _ -> [])
      | Error _ ->
          (* Never silently drop a trajectory: an unparseable file is
             moved aside (visible in the working tree / CI artifact)
             and the new history starts fresh next to it. *)
          let aside = path ^ ".corrupt" in
          (try Sys.remove aside with Sys_error _ -> ());
          Sys.rename path aside;
          []
  in
  let doc = Obj (header @ [ ("entries", Arr (existing @ [ entry ])) ]) in
  (* Atomic replace: a crash mid-write can never truncate the history.
     The temp name is pid-unique so an appender in another process that
     somehow bypasses the lock can clobber at worst its own temp file,
     never a half-written one of ours. *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_string doc);
     output_string oc "\n";
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
