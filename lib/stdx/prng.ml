(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  One mutable int64 of state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = int64 g }

let bits g = Int64.to_int (Int64.shift_right_logical (int64 g) 34)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits keeps the distribution exactly
     uniform. *)
  let mask = max_int in
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (int64 g) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let bool g = Int64.logand (int64 g) 1L = 1L

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g n m =
  if m < 0 || m > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: m iterations, set-backed. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = n - m to n - 1 do
    let r = int g (j + 1) in
    if S.mem r !s then s := S.add j !s else s := S.add r !s
  done;
  S.elements !s
