(** Small-prime utilities.

    The Reed–Solomon code mapping of the paper (Theorem 4) needs a finite
    field with at least [ℓ+α] elements; we always use the smallest prime
    at least that large as the alphabet size ([Codes.Code_params]). *)

val is_prime : int -> bool
(** Deterministic trial-division primality test, exact for all [int]
    arguments (intended for the small values used as field sizes). *)

val next_prime : int -> int
(** [next_prime n] is the smallest prime [>= n].  Raises [Invalid_argument]
    when [n < 0]. *)

val primes_up_to : int -> int list
(** All primes [<= n], ascending (simple sieve). *)
