(* Dense bitsets over [int] words.  We use 62 bits per word: staying clear of
   the sign bit keeps every word a non-negative OCaml [int], which makes
   popcount and comparisons straightforward on both 64-bit and JS backends. *)

let bits_per_word = 62

type t = { capacity : int; words : int array }

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity = n; words = Array.make (max 1 (word_count n)) 0 }

let capacity s = s.capacity

let check_range s i =
  if i < 0 || i >= s.capacity then
    invalid_arg
      (Printf.sprintf "Bitset: index %d out of range [0, %d)" i s.capacity)

let check_same a b =
  if a.capacity <> b.capacity then
    invalid_arg
      (Printf.sprintf "Bitset: capacity mismatch (%d vs %d)" a.capacity
         b.capacity)

(* Mask for the last word so that unused high bits stay zero. *)
let last_word_mask n =
  let r = n mod bits_per_word in
  if r = 0 then (1 lsl bits_per_word) - 1 else (1 lsl r) - 1

let full n =
  let s = create n in
  let w = Array.length s.words in
  for i = 0 to w - 1 do
    s.words.(i) <- (1 lsl bits_per_word) - 1
  done;
  if n > 0 then s.words.(w - 1) <- s.words.(w - 1) land last_word_mask n
  else s.words.(0) <- 0;
  s

let copy s = { capacity = s.capacity; words = Array.copy s.words }

let mem s i =
  check_range s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check_range s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check_range s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  let f = full s.capacity in
  Array.blit f.words 0 s.words 0 (Array.length s.words)

let of_list n elts =
  let s = create n in
  List.iter (fun i -> add s i) elts;
  s

let singleton n i = of_list n [ i ]

let popcount_word w =
  (* Kernighan's loop; words are short-lived so this is fast enough and
     portable. *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal s = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let map2 f a b =
  check_same a b;
  let r = create a.capacity in
  for i = 0 to Array.length a.words - 1 do
    r.words.(i) <- f a.words.(i) b.words.(i)
  done;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement a =
  let r = full a.capacity in
  for i = 0 to Array.length a.words - 1 do
    r.words.(i) <- r.words.(i) land lnot a.words.(i)
  done;
  r

let in_place f a b =
  check_same a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- f a.words.(i) b.words.(i)
  done

let union_in_place a b = in_place ( lor ) a b
let inter_in_place a b = in_place ( land ) a b
let diff_in_place a b = in_place (fun x y -> x land lnot y) a b

let equal a b =
  check_same a b;
  Array.for_all2 ( = ) a.words b.words

let subset a b =
  check_same a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  check_same a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then ok := false
  done;
  !ok

let intersects a b = not (disjoint a b)

let inter_cardinal a b =
  check_same a b;
  let c = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    c := !c + popcount_word (a.words.(i) land b.words.(i))
  done;
  !c

(* Index of the single set bit of a one-hot word, by binary probing.  Six
   branches instead of a 62-iteration scan; [iter] below extracts members
   with lowest-bit isolation so sparse rows cost O(members), not O(62)
   per nonzero word — the difference between O(n²) and O(n + m) when the
   CSR layer converts a large graph's adjacency rows. *)
let bit_index b =
  let n = ref 0 in
  let b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then n := !n + 1;
  !n

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let b = !word land - !word in
        f (base + bit_index b);
        word := !word lxor b
      done
    end
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let to_array s =
  let n = cardinal s in
  let a = Array.make n 0 in
  let j = ref 0 in
  iter
    (fun i ->
      a.(!j) <- i;
      incr j)
    s;
  a

exception Found of int

let min_elt s =
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let max_elt s = fold (fun i _ -> Some i) s None
let choose = min_elt

let exists p s =
  try
    iter (fun i -> if p i then raise (Found i)) s;
    false
  with Found _ -> true

let for_all p s = not (exists (fun i -> not (p i)) s)

let pp ppf s =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" i)
    s;
  Format.fprintf ppf "}"

let to_string s = Format.asprintf "%a" pp s
