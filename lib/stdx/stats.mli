(** Summary statistics over float samples.

    Used by the benchmark harness to report distributions (e.g. achieved
    approximation ratios over random promise inputs, blackboard bits over
    repeated simulations). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator); 0 for n <= 1 *)
  min : float;
  max : float;
  median : float;
  p90 : float;  (** 90th percentile (nearest-rank) *)
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val summarize_ints : int array -> summary

val mean : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], nearest-rank on a sorted copy.
    Sorting uses [Float.compare], so NaN samples order deterministically
    (below every number) instead of poisoning the sort. *)

val pp_summary : Format.formatter -> summary -> unit
