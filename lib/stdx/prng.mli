(** Deterministic pseudo-random number generation (splitmix64).

    All randomized components of the repository — input-string generators,
    Luby's distributed MIS, workload sweeps — draw from this generator so
    that every experiment is reproducible from a seed printed in its
    header.  The implementation is splitmix64, which has a single [int64]
    word of state, passes statistical test batteries far beyond our needs,
    and supports cheap independent streams via [split]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split g] advances [g] and returns an independently seeded generator.
    Streams obtained from successive splits are statistically
    independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound).  Raises [Invalid_argument] when
    [bound <= 0]. *)

val bool : t -> bool
val float : t -> float -> float
(** [float g x] is uniform in [0, x). *)

val bits : t -> int
(** 30 uniformly random non-negative bits, mirroring [Random.bits]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on an empty
    array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement g n m] is a sorted list of [m] distinct
    integers drawn uniformly from [0, n).  Raises [Invalid_argument] when
    [m > n] or [m < 0]. *)
