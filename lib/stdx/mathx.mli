(** Small numeric helpers shared across the repository.

    Integer logarithms appear everywhere in the paper: message sizes are
    [O(log n)] bits, the code parameters are [ℓ = log k − log k / log log k],
    and the lower bounds divide by powers of [log n]. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the number of bits needed to write numbers in
    [0, n) — i.e. [⌈log₂ n⌉], with [ceil_log2 0 = 0] and [ceil_log2 1 = 0].
    Raises [Invalid_argument] on negative input. *)

val floor_log2 : int -> int
(** [⌊log₂ n⌋]; raises [Invalid_argument] when [n <= 0]. *)

val pow : int -> int -> int
(** [pow b e] is [b^e] by fast exponentiation on [int]s (no overflow
    checking).  Raises [Invalid_argument] on negative exponent. *)

val isqrt : int -> int
(** Integer square root: largest [r] with [r*r <= n]. *)

val divide_round_up : int -> int -> int
(** [divide_round_up a b = ⌈a/b⌉] for positive [b]. *)

val clamp : lo:'a -> hi:'a -> 'a -> 'a

val float_eq : ?eps:float -> float -> float -> bool
(** Approximate float equality, absolute tolerance (default [1e-9]). *)
