type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

type t = { columns : column array; mutable rows : string list list }

let create columns = { columns = Array.of_list columns; rows = [] }

let add_row t row =
  if List.length row <> Array.length t.columns then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: expected %d cells, got %d"
         (Array.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map (fun c -> String.length c.title) t.columns in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad t.columns.(i).align widths.(i) cell);
        if i < ncols - 1 then Buffer.add_string buf " | ")
      cells;
    Buffer.add_string buf " |\n"
  in
  emit_row (Array.to_list (Array.map (fun c -> c.title) t.columns));
  Buffer.add_string buf "|";
  Array.iteri
    (fun i w ->
      Buffer.add_string buf (String.make (w + 2) '-');
      if i < ncols - 1 then Buffer.add_string buf "|")
    widths;
  Buffer.add_string buf "|\n";
  List.iter emit_row rows;
  Buffer.contents buf

let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quoting then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit (Array.to_list (Array.map (fun c -> c.title) t.columns));
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

(* Uniquifies temp names across processes publishing into one directory
   (no unix dependency, so no getpid: hash per-process state two racing
   processes will not share). *)
let tmp_token =
  lazy
    (Hashtbl.hash (Sys.executable_name, Sys.time (), Random.State.make_self_init ())
    land 0xFFFFFF)

let tmp_seq = Atomic.make 0

(* Atomic publish: a crash, kill or reader racing the writer must never
   observe a half-written CSV, so write to a unique temp file in the same
   directory (rename is only atomic within a filesystem) and rename over
   the target.  All I/O goes through [fs] so the chaos suite can inject
   filesystem faults under the atomicity claim. *)
let write_csv ?(fs = Fsio.real) t path =
  let dir = Filename.dirname path in
  if dir <> "." && not (fs.Fsio.file_exists dir) then fs.Fsio.mkdir dir;
  let tmp =
    Printf.sprintf "%s.%06x-%d.tmp" path (Lazy.force tmp_token)
      (Atomic.fetch_and_add tmp_seq 1)
  in
  match fs.Fsio.write_file tmp (to_csv t) with
  | () -> fs.Fsio.rename tmp path
  | exception e ->
      (try fs.Fsio.remove tmp with Sys_error _ -> ());
      raise e

let print ?title ?csv ?fs t =
  (match title with
  | Some s -> Printf.printf "\n== %s ==\n" s
  | None -> ());
  print_string (render t);
  match csv with None -> () | Some path -> write_csv ?fs t path

let cell_int = string_of_int
let cell_float ?(decimals = 3) f = Printf.sprintf "%.*f" decimals f
let cell_ratio f = Printf.sprintf "%.4f" f
let cell_bool b = if b then "ok" else "FAIL"
