(** Aligned ASCII tables for the benchmark harness.

    Every experiment in [bench/main.ml] prints one of these tables; keeping
    the rendering in one place guarantees the harness output is uniform and
    machine-greppable ("| "-separated cells, one header row, a rule line). *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column
(** Default alignment is [Right] (most cells are numbers). *)

type t

val create : column list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val render : t -> string
(** Render with a title row, a dashed rule, then rows. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows; cells containing
    commas, quotes or newlines are quoted. *)

val write_csv : ?fs:Fsio.t -> t -> string -> unit
(** [write_csv tbl path] writes {!to_csv} to a file, creating the parent
    directory if needed (one level).  The write is atomic — temp file in
    the target directory, then rename — so a crashed or killed run never
    leaves a truncated CSV behind.  [fs] (default {!Fsio.real}) routes
    the I/O, so the chaos suite can fault-inject under the claim. *)

val print : ?title:string -> ?csv:string -> ?fs:Fsio.t -> t -> unit
(** [print ~title tbl] writes the table to stdout, preceded by
    ["== title =="] when a title is given.  With [~csv:path] the table is
    also saved as CSV (the machine-readable twin of every experiment
    table). *)

(** {1 Cell formatting helpers} *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
(** Four-decimal ratio, e.g. achieved approximation factors. *)

val cell_bool : bool -> string
(** ["ok"] / ["FAIL"]. *)
