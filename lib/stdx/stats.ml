type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: a NaN-safe total order (NaN
     sorts below every number) with no boxing on the hot path. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let n = Array.length xs in
  let m = mean xs in
  let var =
    if n <= 1 then 0.0
    else
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (n - 1)
  in
  {
    n;
    mean = m;
    stddev = sqrt var;
    min = Array.fold_left Stdlib.min xs.(0) xs;
    max = Array.fold_left Stdlib.max xs.(0) xs;
    median = percentile xs 50.0;
    p90 = percentile xs 90.0;
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p90=%.3f max=%.3f" s.n s.mean
    s.stddev s.min s.median s.p90 s.max
