let log2 x = log x /. log 2.0

let ceil_log2 n =
  if n < 0 then invalid_arg "Mathx.ceil_log2";
  if n <= 1 then 0
  else
    let rec go bits v = if v >= n then bits else go (bits + 1) (v * 2) in
    go 0 1

let floor_log2 n =
  if n <= 0 then invalid_arg "Mathx.floor_log2";
  let rec go bits v = if v * 2 > n || v * 2 <= 0 then bits else go (bits + 1) (v * 2) in
  go 0 1

let pow b e =
  if e < 0 then invalid_arg "Mathx.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let isqrt n =
  if n < 0 then invalid_arg "Mathx.isqrt";
  if n < 2 then n
  else begin
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do
      decr r
    done;
    while (!r + 1) * (!r + 1) <= n do
      incr r
    done;
    !r
  end

let divide_round_up a b =
  if b <= 0 then invalid_arg "Mathx.divide_round_up";
  (a + b - 1) / b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
