(* The operation record is deliberately whole-file / whole-line grained:
   channels held open across calls would smuggle unfaultable state past
   the injector, and every consumer in the repository (cache entries,
   journal lines, CSV/JSONL exports) is naturally all-or-nothing at that
   grain anyway. *)

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  append_line : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  rmdir : string -> unit;
  file_exists : string -> bool;
  is_directory : string -> bool;
  readdir : string -> string array;
}

let real_read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let real_write_file path contents =
  let oc = open_out_bin path in
  match output_string oc contents with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e

let real_append_line path chunk =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path
  in
  match output_string oc chunk with
  | () -> close_out oc (* close_out flushes *)
  | exception e ->
      close_out_noerr oc;
      raise e

let real =
  {
    read_file = real_read_file;
    write_file = real_write_file;
    append_line = real_append_line;
    rename = Sys.rename;
    remove = Sys.remove;
    mkdir = (fun path -> Sys.mkdir path 0o755);
    rmdir = Sys.rmdir;
    file_exists = Sys.file_exists;
    is_directory = Sys.is_directory;
    readdir = Sys.readdir;
  }

let rec mkdir_p ?(fs = real) path =
  if path <> "" && path <> "." && path <> "/" && not (fs.file_exists path)
  then begin
    mkdir_p ~fs (Filename.dirname path);
    try fs.mkdir path
    with Sys_error _ -> () (* lost a race with a concurrent mkdir: fine *)
  end

(* ------------------------------------------------------------------ *)
(* Fault plans *)

type op_fault = {
  eintr : float;
  enospc : float;
  torn : float;
  flip : float;
  fail_rename : float;
}

let no_fault = { eintr = 0.0; enospc = 0.0; torn = 0.0; flip = 0.0; fail_rename = 0.0 }

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fsio.op_fault: %s=%g not a probability" name p)

let op_fault ?(eintr = 0.0) ?(enospc = 0.0) ?(torn = 0.0) ?(flip = 0.0)
    ?(fail_rename = 0.0) () =
  check_prob "eintr" eintr;
  check_prob "enospc" enospc;
  check_prob "torn" torn;
  check_prob "flip" flip;
  check_prob "fail_rename" fail_rename;
  { eintr; enospc; torn; flip; fail_rename }

type plan = {
  seed : int;
  default : op_fault;
  overrides : (string * op_fault) list;
}

let plan ?(default = no_fault) ?(overrides = []) seed = { seed; default; overrides }

let pp_op_fault ppf f =
  Format.fprintf ppf "eintr=%.3f enospc=%.3f torn=%.3f flip=%.3f rename=%.3f"
    f.eintr f.enospc f.torn f.flip f.fail_rename

let pp_plan ppf p =
  Format.fprintf ppf "fsio plan seed=%d default={%a}%s" p.seed pp_op_fault
    p.default
    (String.concat ""
       (List.map
          (fun (prefix, f) -> Format.asprintf " %s={%a}" prefix pp_op_fault f)
          p.overrides))

(* ------------------------------------------------------------------ *)
(* Injection *)

(* Counter indices, fixed so [faults_injected] is deterministically
   ordered. *)
let kinds = [| "eintr"; "enospc"; "torn"; "flip"; "rename" |]

type injector = {
  plan : plan;
  prng : Prng.t;
  counts : int array;  (* indexed like [kinds] *)
  mu : Mutex.t;
}

let injector plan = { plan; prng = Prng.create plan.seed; counts = Array.make 5 0; mu = Mutex.create () }

let faults_injected inj =
  Mutex.lock inj.mu;
  let pairs =
    Array.to_list (Array.mapi (fun i k -> (k, inj.counts.(i))) kinds)
  in
  Mutex.unlock inj.mu;
  List.filter (fun (_, c) -> c > 0) pairs

let total_injected inj =
  Mutex.lock inj.mu;
  let n = Array.fold_left ( + ) 0 inj.counts in
  Mutex.unlock inj.mu;
  n

let fault_for inj path =
  let rec pick = function
    | [] -> inj.plan.default
    | (prefix, f) :: rest ->
        if String.starts_with ~prefix path then f else pick rest
  in
  pick inj.plan.overrides

(* All stream consumption happens under the mutex so concurrent callers
   cannot tear the splitmix state; [decide] returns everything an
   operation needs (fired kind + the prefix-length draw for partial
   writes) in one critical section. *)
let kind_index = function
  | "eintr" -> 0
  | "enospc" -> 1
  | "torn" -> 2
  | "flip" -> 3
  | "rename" -> 4
  | _ -> assert false

let draw inj ~path ~kinds:applicable ~len on_fault =
  Mutex.lock inj.mu;
  let f = fault_for inj path in
  let prob = function
    | "eintr" -> f.eintr
    | "enospc" -> f.enospc
    | "torn" -> f.torn
    | "flip" -> f.flip
    | "rename" -> f.fail_rename
    | _ -> assert false
  in
  (* One draw per applicable kind, in listed order, whether or not an
     earlier kind already fired: the stream position then depends only
     on the operation sequence, not on which faults happened to fire. *)
  let fired =
    List.filter_map
      (fun k ->
        let p = prob k in
        let hit = p > 0.0 && Prng.float inj.prng 1.0 < p in
        if hit then Some k else None)
      applicable
  in
  let first = match fired with [] -> None | k :: _ -> Some k in
  (* Auxiliary draws are consumed unconditionally for the same reason. *)
  let cut = if len > 0 then Prng.int inj.prng len else 0 in
  let bit = if len > 0 then Prng.int inj.prng (len * 8) else 0 in
  (match first with
  | None -> ()
  | Some k -> inj.counts.(kind_index k) <- inj.counts.(kind_index k) + 1);
  Mutex.unlock inj.mu;
  (match first with None -> () | Some k -> on_fault k);
  (first, cut, bit)

let injected_error path what =
  Sys_error (Printf.sprintf "%s: %s (injected)" path what)

let flip_bit s bit =
  let b = Bytes.of_string s in
  let i = bit / 8 and j = bit mod 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
  Bytes.to_string b

let faulty ?(on_fault = fun _ -> ()) inj =
  let read_file path =
    let s = real.read_file path in
    match draw inj ~path ~kinds:[ "eintr"; "flip" ] ~len:(String.length s) on_fault with
    | Some "eintr", _, _ -> raise (injected_error path "Interrupted system call")
    | Some "flip", _, bit when String.length s > 0 -> flip_bit s bit
    | _ -> s
  in
  let write_like real_write path contents =
    let len = String.length contents in
    match draw inj ~path ~kinds:[ "eintr"; "enospc"; "torn" ] ~len on_fault with
    | Some "eintr", _, _ -> raise (injected_error path "Interrupted system call")
    | Some "enospc", cut, _ ->
        (try real_write path (String.sub contents 0 cut) with Sys_error _ -> ());
        raise (injected_error path "No space left on device")
    | Some "torn", cut, _ ->
        (* The lying write: a prefix lands on disk, success is reported. *)
        real_write path (String.sub contents 0 cut)
    | _ -> real_write path contents
  in
  let rename src dst =
    match draw inj ~path:src ~kinds:[ "eintr"; "rename" ] ~len:0 on_fault with
    | Some "eintr", _, _ -> raise (injected_error src "Interrupted system call")
    | Some "rename", _, _ -> raise (injected_error src "rename failed")
    | _ -> real.rename src dst
  in
  let eintr_only real_op path =
    match draw inj ~path ~kinds:[ "eintr" ] ~len:0 on_fault with
    | Some "eintr", _, _ -> raise (injected_error path "Interrupted system call")
    | _ -> real_op path
  in
  {
    read_file;
    write_file = write_like real.write_file;
    append_line = write_like real.append_line;
    rename;
    remove = eintr_only real.remove;
    mkdir = eintr_only real.mkdir;
    rmdir = real.rmdir;
    file_exists = real.file_exists;
    is_directory = real.is_directory;
    readdir = real.readdir;
  }
