(* The operation record is syscall-grained, unlike Fsio's whole-file
   grain: sockets are streams, and the interesting network failures —
   short reads, torn writes, resets mid-frame — live *between* the
   syscalls, where buffering and reassembly logic can get them wrong.
   Injected failures are genuine Unix_errors (argument "injected") so
   they exercise the same EAGAIN/EINTR/ECONNRESET branches real sockets
   reach. *)

type t = {
  accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
  connect : Unix.file_descr -> Unix.sockaddr -> unit;
  read : Unix.file_descr -> bytes -> int -> int -> int;
  write : Unix.file_descr -> string -> int -> int -> int;
}

let real =
  {
    accept = (fun fd -> Unix.accept fd);
    connect = Unix.connect;
    read = Unix.read;
    write = Unix.write_substring;
  }

(* ------------------------------------------------------------------ *)
(* Fault plans *)

type op_fault = {
  eintr : float;
  refuse : float;
  reset : float;
  short_read : float;
  torn_write : float;
  stall : float;
}

let no_fault =
  {
    eintr = 0.0;
    refuse = 0.0;
    reset = 0.0;
    short_read = 0.0;
    torn_write = 0.0;
    stall = 0.0;
  }

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Netio.op_fault: %s=%g not a probability" name p)

let op_fault ?(eintr = 0.0) ?(refuse = 0.0) ?(reset = 0.0) ?(short_read = 0.0)
    ?(torn_write = 0.0) ?(stall = 0.0) () =
  check_prob "eintr" eintr;
  check_prob "refuse" refuse;
  check_prob "reset" reset;
  check_prob "short_read" short_read;
  check_prob "torn_write" torn_write;
  check_prob "stall" stall;
  { eintr; refuse; reset; short_read; torn_write; stall }

type plan = {
  seed : int;
  default : op_fault;
  overrides : (string * op_fault) list;
}

let plan ?(default = no_fault) ?(overrides = []) seed = { seed; default; overrides }

let pp_op_fault ppf f =
  Format.fprintf ppf
    "eintr=%.3f refuse=%.3f reset=%.3f short=%.3f torn=%.3f stall=%.3f" f.eintr
    f.refuse f.reset f.short_read f.torn_write f.stall

let pp_plan ppf p =
  Format.fprintf ppf "netio plan seed=%d default={%a}%s" p.seed pp_op_fault
    p.default
    (String.concat ""
       (List.map
          (fun (op, f) -> Format.asprintf " %s={%a}" op pp_op_fault f)
          p.overrides))

(* ------------------------------------------------------------------ *)
(* Injection *)

(* Counter indices, fixed so [faults_injected] is deterministically
   ordered. *)
let kinds = [| "eintr"; "refuse"; "reset"; "short_read"; "torn_write"; "stall" |]

let kind_index = function
  | "eintr" -> 0
  | "refuse" -> 1
  | "reset" -> 2
  | "short_read" -> 3
  | "torn_write" -> 4
  | "stall" -> 5
  | _ -> assert false

type injector = {
  plan : plan;
  prng : Prng.t;
  counts : int array;  (* indexed like [kinds] *)
  mu : Mutex.t;
}

let injector plan =
  {
    plan;
    prng = Prng.create plan.seed;
    counts = Array.make (Array.length kinds) 0;
    mu = Mutex.create ();
  }

let faults_injected inj =
  Mutex.lock inj.mu;
  let pairs = Array.to_list (Array.mapi (fun i k -> (k, inj.counts.(i))) kinds) in
  Mutex.unlock inj.mu;
  List.filter (fun (_, c) -> c > 0) pairs

let total_injected inj =
  Mutex.lock inj.mu;
  let n = Array.fold_left ( + ) 0 inj.counts in
  Mutex.unlock inj.mu;
  n

let fault_for inj op =
  match List.assoc_opt op inj.plan.overrides with
  | Some f -> f
  | None -> inj.plan.default

(* All stream consumption happens under the mutex so concurrent callers
   cannot tear the splitmix state.  One draw per applicable kind, in
   listed order, whether or not an earlier kind already fired, plus one
   unconditional auxiliary draw for prefix lengths: the stream position
   then depends only on the operation sequence, not on which faults
   happened to fire. *)
let draw inj ~op ~kinds:applicable ~len on_fault =
  Mutex.lock inj.mu;
  let f = fault_for inj op in
  let prob = function
    | "eintr" -> f.eintr
    | "refuse" -> f.refuse
    | "reset" -> f.reset
    | "short_read" -> f.short_read
    | "torn_write" -> f.torn_write
    | "stall" -> f.stall
    | _ -> assert false
  in
  let fired =
    List.filter_map
      (fun k ->
        let p = prob k in
        let hit = p > 0.0 && Prng.float inj.prng 1.0 < p in
        if hit then Some k else None)
      applicable
  in
  let first = match fired with [] -> None | k :: _ -> Some k in
  let cut = if len > 0 then Prng.int inj.prng len else 0 in
  (match first with
  | None -> ()
  | Some k -> inj.counts.(kind_index k) <- inj.counts.(kind_index k) + 1);
  Mutex.unlock inj.mu;
  (match first with None -> () | Some k -> on_fault k);
  (first, cut)

let injected e fn = Unix.Unix_error (e, fn, "injected")

let faulty ?(on_fault = fun _ -> ()) inj =
  let accept fd =
    match draw inj ~op:"accept" ~kinds:[ "eintr" ] ~len:0 on_fault with
    | Some "eintr", _ -> raise (injected Unix.EINTR "accept")
    | _ -> real.accept fd
  in
  let connect fd sa =
    match draw inj ~op:"connect" ~kinds:[ "eintr"; "refuse" ] ~len:0 on_fault with
    | Some "eintr", _ -> raise (injected Unix.EINTR "connect")
    | Some "refuse", _ -> raise (injected Unix.ECONNREFUSED "connect")
    | _ -> real.connect fd sa
  in
  let read fd buf off len =
    match
      draw inj ~op:"read"
        ~kinds:[ "eintr"; "reset"; "stall"; "short_read" ]
        ~len on_fault
    with
    | Some "eintr", _ -> raise (injected Unix.EINTR "read")
    | Some "reset", _ -> raise (injected Unix.ECONNRESET "read")
    | Some "stall", _ -> raise (injected Unix.EAGAIN "read")
    | Some "short_read", cut when len > 0 ->
        real.read fd buf off (1 + (cut mod len))
    | _ -> real.read fd buf off len
  in
  let write fd s off len =
    match
      draw inj ~op:"write"
        ~kinds:[ "eintr"; "reset"; "stall"; "torn_write" ]
        ~len on_fault
    with
    | Some "eintr", _ -> raise (injected Unix.EINTR "write")
    | Some "reset", _ -> raise (injected Unix.ECONNRESET "write")
    | Some "stall", _ -> raise (injected Unix.EAGAIN "write")
    | Some "torn_write", cut when len > 0 ->
        (* A prefix is accepted and the short count reported — legal
           socket behavior, just rarer than write loops usually see. *)
        real.write fd s off (1 + (cut mod len))
    | _ -> real.write fd s off len
  in
  { accept; connect; read; write }
