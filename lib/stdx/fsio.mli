(** Pluggable filesystem interface with seeded fault injection.

    Every durable artifact in the repository — cache entries, sweep
    journals, CSV tables, metrics exports — claims a robustness contract
    ("writes are atomic", "corruption degrades to a miss", "appends are
    self-validating").  Those claims are only worth something if they are
    exercised against a filesystem that actually fails, so all of that
    I/O is routed through one small record of operations ({!t}) with two
    backends:

    - {!real}: the operations as [Stdlib]/[Sys] provide them;
    - {!faulty}: a wrapper around {!real} that injects {b seeded,
      exactly replayable} faults — interrupted syscalls, full disks,
      torn writes, failed renames, bit flips on read — mirroring the
      fault-plan idiom of [Congest.Faults]: two runs with the same plan
      and the same operation sequence inject byte-identical faults.

    Fault injection lives below the retry/degradation machinery
    ([Exec.Error.with_retries], miss-on-corruption reads), which is the
    point: the chaos tests assert the recovery claims {e under} injected
    faults, not around them. *)

type t = {
  read_file : string -> string;
      (** Whole-file binary read.  Raises [Sys_error] on failure. *)
  write_file : string -> string -> unit;
      (** [write_file path contents]: create/truncate and write all bytes.
          Not atomic — callers wanting atomicity write a temp name and
          {!field-rename} over the target. *)
  append_line : string -> string -> unit;
      (** [append_line path chunk]: open in append mode (creating the
          file if needed), write [chunk], flush and close — one durable
          append per call. *)
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;  (** One level, mode [0o755]. *)
  rmdir : string -> unit;
  file_exists : string -> bool;
  is_directory : string -> bool;
  readdir : string -> string array;
}

val real : t
(** The passthrough backend. *)

val mkdir_p : ?fs:t -> string -> unit
(** [mkdir] with parents; losing a race to a concurrent creator is not
    an error. *)

(** {1 Fault plans}

    Probabilities are drawn independently per operation from the plan's
    own splitmix64 stream, so a faulty run is a pure function of
    [(plan, operation sequence)]. *)

type op_fault = {
  eintr : float;
      (** the operation fails with an injected "Interrupted system
          call" [Sys_error] {e before} doing anything — the canonical
          transient failure a bounded retry must absorb *)
  enospc : float;
      (** a write persists only a prefix, then fails with "No space
          left on device" *)
  torn : float;
      (** a write persists only a prefix but {e reports success} — the
          lie a crash-before-fsync tells, which only content digests
          can catch *)
  flip : float;  (** one bit of a read's result is flipped *)
  fail_rename : float;
      (** a rename fails with an injected [Sys_error]; source and
          target are left untouched *)
}

val no_fault : op_fault

val op_fault :
  ?eintr:float ->
  ?enospc:float ->
  ?torn:float ->
  ?flip:float ->
  ?fail_rename:float ->
  unit ->
  op_fault
(** Raises [Invalid_argument] on probabilities outside [0, 1]. *)

type plan = {
  seed : int;  (** seeds the fault stream *)
  default : op_fault;  (** applies to every path *)
  overrides : (string * op_fault) list;
      (** first entry whose string is a prefix of the operation's path
          wins over [default] — scope chaos to one directory tree *)
}

val plan : ?default:op_fault -> ?overrides:(string * op_fault) list -> int -> plan
(** [plan seed] with no faults anywhere. *)

val pp_plan : Format.formatter -> plan -> unit

(** {1 Injection} *)

type injector
(** The plan plus its live PRNG stream and per-kind injection counters.
    Thread-safe (one mutex around the stream); exactly replayable only
    for a deterministic operation sequence, i.e. single-threaded use. *)

val injector : plan -> injector

val faults_injected : injector -> (string * int) list
(** Injections so far, as sorted [(kind, count)] pairs over
    [eintr | enospc | torn | flip | rename]; zero-count kinds omitted. *)

val total_injected : injector -> int

val faulty : ?on_fault:(string -> unit) -> injector -> t
(** A backend wrapping {!real} that injects the injector's plan.
    [on_fault] is called with the kind name at every injection (the exec
    layer hooks metrics here).  Which kinds apply where: reads draw
    [eintr]/[flip]; writes and appends draw [eintr]/[enospc]/[torn];
    renames draw [eintr]/[fail_rename]; [mkdir]/[remove] draw [eintr];
    queries ([file_exists], [readdir], …) are never faulted. *)
