module Bitset = Stdx.Bitset

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(name = "G") ?partition ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  let emit_node v =
    let fill =
      match highlight with
      | Some h when Bitset.mem h v -> ", style=filled, fillcolor=lightblue"
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\\nw=%d\"%s];\n" v
         (escape (Graph.label g v))
         (Graph.weight g v) fill)
  in
  (match partition with
  | None -> Graph.iter_nodes emit_node g
  | Some part ->
      let nparts = Cut.parts part in
      for p = 0 to nparts - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_%d {\n    label=\"V^%d\";\n" p
             (p + 1));
        List.iter
          (fun v ->
            Buffer.add_string buf "  ";
            emit_node v)
          (Cut.part_nodes part p);
        Buffer.add_string buf "  }\n"
      done);
  Graph.iter_edges
    (fun u v ->
      let style =
        match partition with
        | Some part when part.(u) <> part.(v) -> " [style=dashed, color=red]"
        | _ -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let ascii_summary g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "n=%d m=%d total_weight=%d max_degree=%d diameter=%d\n"
       (Graph.n g) (Graph.edge_count g) (Graph.total_weight g)
       (Graph.max_degree g) (Metrics.diameter g));
  Buffer.add_string buf "degree histogram:";
  List.iter
    (fun (d, c) -> Buffer.add_string buf (Printf.sprintf " %d:%d" d c))
    (Metrics.degree_histogram g);
  Buffer.add_string buf "\n";
  Buffer.contents buf
