(** Vertex-weighted undirected graphs over dense adjacency bitsets.

    This is the graph type shared by the whole repository: the lower-bound
    gadget families of the paper are built as values of this type, the
    exact/approximate independent-set solvers consume it, and the CONGEST
    simulator derives its network topology from it.

    Nodes are integers [0 .. n-1].  Weights are positive integers exactly as
    in the paper (node weights are [1] or [ℓ]).  Self-loops are rejected.
    The representation is an adjacency-matrix of bitsets: dense graphs (the
    gadgets are mostly unions of cliques) cost [n²/62] words, and
    neighborhood intersection — the inner loop of the solver — is word
    parallel. *)

type t

(** {1 Construction} *)

val create : ?default_weight:int -> int -> t
(** [create n] is the edgeless graph on [n] nodes, all weights
    [default_weight] (default [1]).  Raises [Invalid_argument] when [n < 0]
    or the weight is [< 0]. *)

val copy : t -> t

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the undirected edge [{u,v}].  Idempotent.
    Raises [Invalid_argument] on out-of-range nodes or when [u = v]. *)

val remove_edge : t -> int -> int -> unit

(** {1 Accessors} *)

val n : t -> int
(** Number of nodes. *)

val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> Stdx.Bitset.t
(** The adjacency row of a node.  The returned bitset is the internal one:
    treat it as read-only. *)

val degree : t -> int -> int
val max_degree : t -> int
val edge_count : t -> int

val weight : t -> int -> int
val set_weight : t -> int -> int -> unit
(** Raises [Invalid_argument] on negative weights. *)

val total_weight : t -> int
(** Sum of all node weights. *)

val set_weight_of : t -> Stdx.Bitset.t -> int
(** [set_weight_of g s] is [Σ_{v ∈ s} w(v)] — the paper's [w(U)]. *)

val label : t -> int -> string
val set_label : t -> int -> string -> unit
(** Human-readable node names, used by the DOT/figure exporters; default is
    the node index. *)

(** {1 Iteration} *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list

val iter_nodes : (int -> unit) -> t -> unit

(** {1 Derived graphs} *)

val induced : t -> Stdx.Bitset.t -> t * int array
(** [induced g s] is the subgraph induced by [s] together with the array
    mapping new node indices to original ones.  Weights and labels are
    carried over. *)

val disjoint_union : t -> t -> t * int
(** [disjoint_union g h] is the union with [h]'s nodes shifted by [n g];
    returns the shift. *)

val complement : t -> t
(** Same nodes and weights; edge set complemented. *)

(** {1 Comparison and formatting} *)

val equal : t -> t -> bool
(** Same size, weights and edge sets (labels ignored). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: nodes, edges, total weight, max degree. *)

val pp_adjacency : Format.formatter -> t -> unit
(** Full adjacency listing, one node per line — only sensible for small
    graphs (figures). *)
