module Bitset = Stdx.Bitset
module Dynvec = Stdx.Dynvec

type t = {
  size : int;
  xadj : int array;  (* length size+1; row v is adj.[xadj.(v) .. xadj.(v+1)) *)
  adj : int array;  (* each row sorted ascending, duplicates removed *)
  weights : int array;
  labels : string array option;  (* None: every label is the node index *)
}

let n g = g.size

let check g v =
  if v < 0 || v >= g.size then
    invalid_arg (Printf.sprintf "Csr: node %d out of range [0, %d)" v g.size)

(* ------------------------------------------------------------------ *)
(* Builder *)

module Builder = struct
  type csr = t

  type t = {
    b_size : int;
    e_src : int Dynvec.t;
    e_dst : int Dynvec.t;
    b_weights : int array;
    mutable b_labels : string array option;
  }

  let create ?(default_weight = 1) size =
    if size < 0 then invalid_arg "Csr.Builder.create: negative size";
    if default_weight < 0 then invalid_arg "Csr.Builder.create: negative weight";
    {
      b_size = size;
      e_src = Dynvec.create ();
      e_dst = Dynvec.create ();
      b_weights = Array.make size default_weight;
      b_labels = None;
    }

  let check b v =
    if v < 0 || v >= b.b_size then
      invalid_arg
        (Printf.sprintf "Csr.Builder: node %d out of range [0, %d)" v b.b_size)

  let add_edge b u v =
    check b u;
    check b v;
    if u = v then invalid_arg "Csr.Builder.add_edge: self-loop";
    Dynvec.push b.e_src u;
    Dynvec.push b.e_dst v

  let set_weight b v w =
    check b v;
    if w < 0 then invalid_arg "Csr.Builder.set_weight: negative weight";
    b.b_weights.(v) <- w

  let set_label b v s =
    check b v;
    let labels =
      match b.b_labels with
      | Some l -> l
      | None ->
          let l = Array.init b.b_size string_of_int in
          b.b_labels <- Some l;
          l
    in
    labels.(v) <- s

  (* Sort adj[lo, hi) ascending, in place, no allocation: insertion sort
     for short rows (builder output is mostly ascending runs), heapsort
     above that — gadget rows concatenate several ascending blocks in
     descending block order, which is the insertion-sort worst case. *)
  let insertion_sort a lo hi =
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done

  let heap_sort a lo hi =
    let len = hi - lo in
    let sift root last =
      (* max-heap over a[lo+0 .. lo+last] *)
      let i = ref root in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l > last then continue := false
        else begin
          let c = if l + 1 <= last && a.(lo + l + 1) > a.(lo + l) then l + 1 else l in
          if a.(lo + c) > a.(lo + !i) then begin
            let tmp = a.(lo + c) in
            a.(lo + c) <- a.(lo + !i);
            a.(lo + !i) <- tmp;
            i := c
          end
          else continue := false
        end
      done
    in
    for root = (len / 2) - 1 downto 0 do
      sift root (len - 1)
    done;
    for last = len - 1 downto 1 do
      let tmp = a.(lo) in
      a.(lo) <- a.(lo + last);
      a.(lo + last) <- tmp;
      sift 0 (last - 1)
    done

  let sort_range a lo hi =
    if hi - lo <= 32 then insertion_sort a lo hi else heap_sort a lo hi

  let finish ?shard b : csr =
    let size = b.b_size in
    let ne = Dynvec.length b.e_src in
    (* Degree count, both directions. *)
    let deg = Array.make (max size 1) 0 in
    for i = 0 to ne - 1 do
      let u = Dynvec.get b.e_src i and v = Dynvec.get b.e_dst i in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    done;
    let xadj = Array.make (size + 1) 0 in
    for v = 0 to size - 1 do
      xadj.(v + 1) <- xadj.(v) + deg.(v)
    done;
    let adj = Array.make (max xadj.(size) 1) 0 in
    let fill = Array.copy xadj in
    for i = 0 to ne - 1 do
      let u = Dynvec.get b.e_src i and v = Dynvec.get b.e_dst i in
      adj.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1
    done;
    (* Sort every row — the dominant cost of [finish] at gadget scale.
       Rows are disjoint slices of [adj], so an injected [shard] may run
       the row ranges on separate domains; sorted output is identical
       either way, keeping the final CSR bytes shard-independent. *)
    let sort_rows lo hi =
      for v = lo to hi - 1 do
        sort_range adj xadj.(v) xadj.(v + 1)
      done
    in
    (match shard with
    | None -> sort_rows 0 size
    | Some run -> run ~lo:0 ~hi:size sort_rows);
    (* Compact duplicates in one sweep.  [w] chases [r] through the
       whole array; xadj is rewritten as rows close. *)
    let w = ref 0 in
    let xadj' = Array.make (size + 1) 0 in
    for v = 0 to size - 1 do
      let lo = xadj.(v) and hi = xadj.(v + 1) in
      xadj'.(v) <- !w;
      let prev = ref (-1) in
      for r = lo to hi - 1 do
        if adj.(r) <> !prev then begin
          prev := adj.(r);
          adj.(!w) <- adj.(r);
          incr w
        end
      done
    done;
    xadj'.(size) <- !w;
    let adj =
      if !w = Array.length adj then adj else Array.sub adj 0 (max !w 1)
    in
    {
      size;
      xadj = xadj';
      adj;
      weights = Array.copy b.b_weights;
      labels = Option.map Array.copy b.b_labels;
    }
end

(* ------------------------------------------------------------------ *)
(* Conversion *)

let of_graph g =
  let size = Graph.n g in
  let xadj = Array.make (size + 1) 0 in
  for v = 0 to size - 1 do
    xadj.(v + 1) <- xadj.(v) + Graph.degree g v
  done;
  let adj = Array.make (max xadj.(size) 1) 0 in
  let pos = ref 0 in
  for v = 0 to size - 1 do
    Bitset.iter
      (fun u ->
        adj.(!pos) <- u;
        incr pos)
      (Graph.neighbors g v)
  done;
  let weights = Array.init size (Graph.weight g) in
  let labels = Array.init size (Graph.label g) in
  { size; xadj; adj; weights; labels = Some labels }

let to_graph c =
  let g = Graph.create c.size in
  for v = 0 to c.size - 1 do
    Graph.set_weight g v c.weights.(v)
  done;
  (match c.labels with
  | None -> ()
  | Some l ->
      for v = 0 to c.size - 1 do
        Graph.set_label g v l.(v)
      done);
  for v = 0 to c.size - 1 do
    for r = c.xadj.(v) to c.xadj.(v + 1) - 1 do
      let u = c.adj.(r) in
      if v < u then Graph.add_edge g v u
    done
  done;
  g

(* ------------------------------------------------------------------ *)
(* Accessors *)

let degree g v =
  check g v;
  g.xadj.(v + 1) - g.xadj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.size - 1 do
    d := max !d (g.xadj.(v + 1) - g.xadj.(v))
  done;
  !d

let edge_count g = g.xadj.(g.size) / 2

let has_edge g u v =
  check g u;
  check g v;
  let lo = ref g.xadj.(u) and hi = ref g.xadj.(u + 1) in
  let found = ref false in
  while !lo < !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let x = g.adj.(mid) in
    if x = v then found := true
    else if x < v then lo := mid + 1
    else hi := mid
  done;
  !found

let weight g v =
  check g v;
  g.weights.(v)

let total_weight g = Array.fold_left ( + ) 0 g.weights

let set_weight_of g s = Bitset.fold (fun v acc -> acc + weight g v) s 0

let label g v =
  check g v;
  match g.labels with None -> string_of_int v | Some l -> l.(v)

let iter_neighbors f g v =
  check g v;
  for r = g.xadj.(v) to g.xadj.(v + 1) - 1 do
    f g.adj.(r)
  done

let fold_neighbors f g v init =
  check g v;
  let acc = ref init in
  for r = g.xadj.(v) to g.xadj.(v + 1) - 1 do
    acc := f g.adj.(r) !acc
  done;
  !acc

let neighbors_array g v =
  check g v;
  Array.sub g.adj g.xadj.(v) (g.xadj.(v + 1) - g.xadj.(v))

let iter_edges f g =
  for v = 0 to g.size - 1 do
    for r = g.xadj.(v) to g.xadj.(v + 1) - 1 do
      let u = g.adj.(r) in
      if v < u then f v u
    done
  done

let iter_nodes f g =
  for v = 0 to g.size - 1 do
    f v
  done

let equal a b =
  a.size = b.size
  && Array.for_all2 ( = ) a.weights b.weights
  && Array.for_all2 ( = ) a.xadj b.xadj
  && (a.xadj.(a.size) = 0 || Array.for_all2 ( = ) a.adj b.adj)

let reweight g f =
  { g with weights = Array.init g.size f }

let resident_words g =
  Array.length g.xadj + Array.length g.adj + Array.length g.weights
  + (match g.labels with
    | None -> 0
    | Some l -> Array.fold_left (fun acc s -> acc + 2 + (String.length s / 8)) 0 l)

let pp ppf g =
  Format.fprintf ppf "csr(n=%d, m=%d, W=%d, maxdeg=%d)" g.size (edge_count g)
    (total_weight g) (max_degree g)
