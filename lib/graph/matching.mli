(** Maximum bipartite matching (Hopcroft–Karp).

    Property 2 of the paper states that for distinct codewords [m₁ ≠ m₂] the
    bipartite graph [(Codeⁱ_{m₁}, Codeʲ_{m₂})] contains a matching of size
    at least [ℓ].  We verify it by computing the {e maximum} matching of
    that bipartite subgraph. *)

type result = {
  size : int;  (** cardinality of the maximum matching *)
  pairs : (int * int) list;  (** matched (left, right) node pairs *)
}

val max_bipartite_matching : Graph.t -> left:int array -> right:int array -> result
(** Maximum matching of the bipartite graph whose edges are the edges of
    [g] between [left] and [right] nodes.  [left] and [right] must be
    disjoint; edges inside either side are ignored.  Runs Hopcroft–Karp in
    [O(E·√V)]. *)

val is_matching : Graph.t -> (int * int) list -> bool
(** The pairs are vertex-disjoint edges of [g]. *)
