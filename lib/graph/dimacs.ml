let to_string ?comment ?partition g =
  let buf = Buffer.create 4096 in
  (match comment with
  | Some c ->
      String.split_on_char '\n' c
      |> List.iter (fun line -> Buffer.add_string buf ("c " ^ line ^ "\n"))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.edge_count g));
  (match partition with
  | Some part ->
      Array.iteri
        (fun v p ->
          Buffer.add_string buf (Printf.sprintf "c partition %d %d\n" (v + 1) p))
        part
  | None -> ());
  for v = 0 to Graph.n g - 1 do
    if Graph.weight g v <> 1 then
      Buffer.add_string buf (Printf.sprintf "n %d %d\n" (v + 1) (Graph.weight g v))
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)))
    g;
  Buffer.contents buf

let write_file path ?comment ?partition g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?comment ?partition g))

let parse text =
  let graph = ref None in
  let partition : (int * int) list ref = ref [] in
  let fail lineno msg = failwith (Printf.sprintf "Dimacs.parse: line %d: %s" lineno msg) in
  let get lineno =
    match !graph with
    | Some g -> g
    | None -> fail lineno "edge/node line before the p line"
  in
  let words line =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let int_of lineno s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail lineno (Printf.sprintf "expected an integer, got %S" s)
  in
  String.split_on_char '\n' text
  |> List.iteri (fun idx line ->
         let lineno = idx + 1 in
         match words line with
         | [] -> ()
         | "c" :: rest -> (
             match rest with
             | [ "partition"; v; p ] ->
                 partition := (int_of lineno v - 1, int_of lineno p) :: !partition
             | _ -> ())
         | [ "p"; "edge"; n; _m ] ->
             if !graph <> None then fail lineno "duplicate p line";
             graph := Some (Graph.create (int_of lineno n))
         | [ "n"; v; w ] ->
             Graph.set_weight (get lineno) (int_of lineno v - 1) (int_of lineno w)
         | [ "e"; u; v ] ->
             Graph.add_edge (get lineno) (int_of lineno u - 1) (int_of lineno v - 1)
         | w :: _ -> fail lineno (Printf.sprintf "unknown record %S" w));
  match !graph with
  | None -> failwith "Dimacs.parse: no p line"
  | Some g ->
      let part =
        match !partition with
        | [] -> None
        | entries ->
            let arr = Array.make (Graph.n g) 0 in
            List.iter
              (fun (v, p) ->
                if v < 0 || v >= Graph.n g then
                  failwith "Dimacs.parse: partition node out of range";
                arr.(v) <- p)
              entries;
            Some arr
      in
      (g, part)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse (really_input_string ic len))
