let validate g part =
  if Array.length part <> Graph.n g then
    invalid_arg "Cut: partition length differs from node count";
  Array.iter (fun p -> if p < 0 then invalid_arg "Cut: negative part index") part

let edges g part =
  validate g part;
  let acc = ref [] in
  Graph.iter_edges
    (fun u v -> if part.(u) <> part.(v) then acc := (u, v) :: !acc)
    g;
  List.rev !acc

let size g part =
  validate g part;
  let c = ref 0 in
  Graph.iter_edges (fun u v -> if part.(u) <> part.(v) then incr c) g;
  !c

let parts part = Array.fold_left (fun acc p -> max acc (p + 1)) 0 part

let part_nodes part i =
  let acc = ref [] in
  for v = Array.length part - 1 downto 0 do
    if part.(v) = i then acc := v :: !acc
  done;
  !acc

let part_sizes part =
  let k = parts part in
  let sizes = Array.make k 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) part;
  sizes

let is_internal part u v = part.(u) = part.(v)
