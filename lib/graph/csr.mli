(** Compressed-sparse-row graphs: the large-n twin of {!Graph}.

    {!Graph.t} stores adjacency as an n×n bitset matrix — word-parallel
    intersections for the branch-and-bound solver, but Θ(n²/62) words of
    memory and Θ(n) per row scan, which tops out around 10³–10⁴ nodes.
    This module stores the same vertex-weighted undirected graphs in CSR
    form: one offsets array of length [n+1] and one neighbors array of
    length [2m], each row sorted ascending.  Memory is O(n + m) and a
    row scan is O(degree), so the CONGEST runtime and the gadget
    builders reach n in the 10⁵–10⁶ range (see docs/PERF.md).

    A CSR graph is immutable once built: construct through {!Builder}
    (or convert with {!of_graph}) and share freely.  Conversion both
    ways is total and exact — [to_graph (of_graph g)] equals [g] up to
    labels, and every accessor agrees with its {!Graph} counterpart;
    [test/test_csr.ml] pins that equivalence property-by-property.

    Node labels are materialized lazily: a fresh CSR graph answers
    {!label} with the node index without allocating n strings. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t
  (** A mutable edge accumulator.  Node count and weights are fixed at
      creation; edges arrive in any order, duplicates are deduplicated
      and self-loops rejected exactly as in {!Graph.add_edge}. *)

  val create : ?default_weight:int -> int -> t
  (** [create n] starts an edgeless builder on [n] nodes, all weights
      [default_weight] (default [1]).  Raises [Invalid_argument] when
      [n < 0] or the weight is [< 0]. *)

  val add_edge : t -> int -> int -> unit
  (** Queue the undirected edge [{u,v}].  Idempotent at {!finish} time.
      Raises [Invalid_argument] on out-of-range nodes or when [u = v]. *)

  val set_weight : t -> int -> int -> unit
  (** Raises [Invalid_argument] on negative weights. *)

  val set_label : t -> int -> string -> unit

  val finish :
    ?shard:(lo:int -> hi:int -> (int -> int -> unit) -> unit) -> t -> graph
  (** Freeze into a CSR graph: count degrees, prefix-sum offsets, fill
      and sort every row, drop duplicate edges.  O(n + m log d).  The
      builder may keep accumulating edges afterwards; a later [finish]
      produces a fresh snapshot.

      [shard] parallelizes the row-sorting pass — the dominant cost at
      gadget scale.  It receives the node range [0, n) and a body that
      sorts the disjoint rows [lo, hi); pass
      [fun ~lo ~hi f -> Exec.Pool.run_range pool ~lo ~hi f] to fan the
      rows across a domain pool (this library deliberately has no
      [exec] dependency — the executor is injected).  The resulting CSR
      is bit-identical with or without sharding, at any width. *)
end

val of_graph : Graph.t -> t
(** Exact conversion, weights and labels included.  O(n + m) thanks to
    the word-skipping bitset iteration. *)

val to_graph : t -> Graph.t
(** Exact inverse (allocates the n²-bit adjacency matrix — only sensible
    at small n). *)

(** {1 Accessors — the {!Graph} vocabulary} *)

val n : t -> int
val has_edge : t -> int -> int -> bool
(** Binary search in the row: O(log degree). *)

val degree : t -> int -> int
val max_degree : t -> int
val edge_count : t -> int

val weight : t -> int -> int
val total_weight : t -> int

val set_weight_of : t -> Stdx.Bitset.t -> int
(** [Σ_{v ∈ s} w(v)] over a bitset vertex set, as in
    {!Graph.set_weight_of}. *)

val label : t -> int -> string
(** The builder-assigned label, or the node index when none was set. *)

(** {1 Iteration} *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** Ascending, no allocation. *)

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

val neighbors_array : t -> int -> int array
(** A fresh sorted array of the row — the per-node view handed to
    CONGEST program instances. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each undirected edge once, with [u < v], ascending. *)

val iter_nodes : (int -> unit) -> t -> unit

val reweight : t -> (int -> int) -> t
(** [reweight g f] is a graph with weight [f v] at every node, sharing
    [g]'s structure arrays — O(n), no copy of the edge data.  This is how
    gadget instances re-weight the fixed construction. *)

(** {1 Comparison, sizing, formatting} *)

val equal : t -> t -> bool
(** Same size, weights and edge sets (labels ignored), matching
    {!Graph.equal}. *)

val resident_words : t -> int
(** Approximate heap words held by the structure (offsets + neighbors +
    weights + labels) — the "peak words" denominator reported by the
    LARGEN bench. *)

val pp : Format.formatter -> t -> unit
(** One-line summary in the {!Graph.pp} format. *)
