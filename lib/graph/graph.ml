module Bitset = Stdx.Bitset

type t = {
  size : int;
  weights : int array;
  adj : Bitset.t array;
  labels : string array;
}

let create ?(default_weight = 1) size =
  if size < 0 then invalid_arg "Graph.create: negative size";
  if default_weight < 0 then invalid_arg "Graph.create: negative weight";
  {
    size;
    weights = Array.make size default_weight;
    adj = Array.init size (fun _ -> Bitset.create size);
    labels = Array.init size string_of_int;
  }

let copy g =
  {
    size = g.size;
    weights = Array.copy g.weights;
    adj = Array.map Bitset.copy g.adj;
    labels = Array.copy g.labels;
  }

let n g = g.size

let check g v =
  if v < 0 || v >= g.size then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0, %d)" v g.size)

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  Bitset.add g.adj.(u) v;
  Bitset.add g.adj.(v) u

let remove_edge g u v =
  check g u;
  check g v;
  Bitset.remove g.adj.(u) v;
  Bitset.remove g.adj.(v) u

let has_edge g u v =
  check g u;
  check g v;
  Bitset.mem g.adj.(u) v

let neighbors g v =
  check g v;
  g.adj.(v)

let degree g v = Bitset.cardinal (neighbors g v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.size - 1 do
    d := max !d (degree g v)
  done;
  !d

let edge_count g =
  let total = ref 0 in
  for v = 0 to g.size - 1 do
    total := !total + degree g v
  done;
  !total / 2

let weight g v =
  check g v;
  g.weights.(v)

let set_weight g v w =
  check g v;
  if w < 0 then invalid_arg "Graph.set_weight: negative weight";
  g.weights.(v) <- w

let total_weight g = Array.fold_left ( + ) 0 g.weights

let set_weight_of g s =
  Bitset.fold (fun v acc -> acc + weight g v) s 0

let label g v =
  check g v;
  g.labels.(v)

let set_label g v s =
  check g v;
  g.labels.(v) <- s

let iter_edges f g =
  for u = 0 to g.size - 1 do
    Bitset.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let iter_nodes f g =
  for v = 0 to g.size - 1 do
    f v
  done

let induced g s =
  let mapping = Bitset.to_array s in
  let m = Array.length mapping in
  let inverse = Array.make g.size (-1) in
  Array.iteri (fun new_idx old_idx -> inverse.(old_idx) <- new_idx) mapping;
  let h = create m in
  Array.iteri
    (fun new_idx old_idx ->
      h.weights.(new_idx) <- g.weights.(old_idx);
      h.labels.(new_idx) <- g.labels.(old_idx))
    mapping;
  iter_edges
    (fun u v ->
      if inverse.(u) >= 0 && inverse.(v) >= 0 then
        add_edge h inverse.(u) inverse.(v))
    g;
  (h, mapping)

let disjoint_union g h =
  let shift = g.size in
  let u = create (g.size + h.size) in
  Array.blit g.weights 0 u.weights 0 g.size;
  Array.blit h.weights 0 u.weights shift h.size;
  Array.blit g.labels 0 u.labels 0 g.size;
  Array.blit h.labels 0 u.labels shift h.size;
  iter_edges (fun a b -> add_edge u a b) g;
  iter_edges (fun a b -> add_edge u (a + shift) (b + shift)) h;
  (u, shift)

let complement g =
  let h = create g.size in
  Array.blit g.weights 0 h.weights 0 g.size;
  Array.blit g.labels 0 h.labels 0 g.size;
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not (Bitset.mem g.adj.(u) v) then add_edge h u v
    done
  done;
  h

let equal g h =
  g.size = h.size
  && Array.for_all2 ( = ) g.weights h.weights
  && Array.for_all2 Bitset.equal g.adj h.adj

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, W=%d, maxdeg=%d)" g.size (edge_count g)
    (total_weight g) (max_degree g)

let pp_adjacency ppf g =
  for v = 0 to g.size - 1 do
    Format.fprintf ppf "%s (w=%d): %a@." g.labels.(v) g.weights.(v) Bitset.pp
      g.adj.(v)
  done
