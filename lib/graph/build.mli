(** Structured graph builders.

    The paper's gadgets are assembled from three motifs: cliques ([E(C)] in
    the paper's notation), "all edges except the natural perfect matching"
    between two equal-size cliques (the inter-copy code connections of
    Figure 2), and complete bipartite connections (Remark 1's biclique
    between blown-up weight-ℓ nodes).  These helpers operate in place on an
    existing {!Graph.t} so the gadget assemblers can allocate one graph and
    wire regions of it. *)

val make_clique : Graph.t -> int list -> unit
(** [make_clique g nodes] adds all edges between distinct listed nodes. *)

val make_clique_array : Graph.t -> int array -> unit

val connect_all : Graph.t -> int list -> int list -> unit
(** [connect_all g xs ys] adds every edge in [xs × ys] (skipping [u = v]
    pairs, which would be self-loops). *)

val connect_complement_of_matching : Graph.t -> int array -> int array -> unit
(** [connect_complement_of_matching g xs ys] adds every edge between [xs]
    and [ys] {e except} the natural perfect matching [xs.(r) — ys.(r)]:
    exactly the inter-copy connection of Figure 2.  Raises
    [Invalid_argument] when lengths differ. *)

val path : int -> Graph.t
(** [path n]: nodes [0..n-1] in a path. *)

val cycle : int -> Graph.t

val complete : int -> Graph.t
(** [complete n] is the clique [K_n] with unit weights. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is [K_{a,b}] with the left part numbered
    [0..a-1]. *)

val star : int -> Graph.t
(** [star n]: node [0] joined to [1..n-1]. *)

val erdos_renyi : Stdx.Prng.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p]: each of the [n(n-1)/2] edges present
    independently with probability [p]. *)

val random_weights : Stdx.Prng.t -> Graph.t -> int -> unit
(** [random_weights rng g wmax] assigns each node a uniform weight in
    [1..wmax]. *)
