(* Hopcroft–Karp maximum bipartite matching.  Left/right nodes are given as
   arrays of graph node ids; internally we work with their indices in those
   arrays.  Standard BFS-layering + DFS-augmenting implementation. *)

type result = { size : int; pairs : (int * int) list }

let infinity_dist = max_int

let max_bipartite_matching g ~left ~right =
  let nl = Array.length left and nr = Array.length right in
  let right_index = Hashtbl.create (2 * nr) in
  Array.iteri (fun j v -> Hashtbl.replace right_index v j) right;
  (* adjacency from left index to right indices *)
  let adj =
    Array.map
      (fun u ->
        let nbrs = Graph.neighbors g u in
        let acc = ref [] in
        Stdx.Bitset.iter
          (fun v ->
            match Hashtbl.find_opt right_index v with
            | Some j -> acc := j :: !acc
            | None -> ())
          nbrs;
        Array.of_list (List.rev !acc))
      left
  in
  let match_l = Array.make nl (-1) in
  let match_r = Array.make nr (-1) in
  let dist = Array.make nl 0 in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found_free = ref false in
    for u = 0 to nl - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun j ->
          let u' = match_r.(j) in
          if u' = -1 then found_free := true
          else if dist.(u') = infinity_dist then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' queue
          end)
        adj.(u)
    done;
    !found_free
  in
  let rec dfs u =
    let rec try_edges i =
      if i >= Array.length adj.(u) then begin
        dist.(u) <- infinity_dist;
        false
      end
      else
        let j = adj.(u).(i) in
        let u' = match_r.(j) in
        if u' = -1 || (dist.(u') = dist.(u) + 1 && dfs u') then begin
          match_l.(u) <- j;
          match_r.(j) <- u;
          true
        end
        else try_edges (i + 1)
    in
    try_edges 0
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to nl - 1 do
      if match_l.(u) = -1 && dfs u then incr size
    done
  done;
  let pairs = ref [] in
  for u = nl - 1 downto 0 do
    if match_l.(u) >= 0 then pairs := (left.(u), right.(match_l.(u))) :: !pairs
  done;
  { size = !size; pairs = !pairs }

let is_matching g pairs =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun (u, v) ->
      let fresh = (not (Hashtbl.mem seen u)) && not (Hashtbl.mem seen v) in
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ();
      fresh && Graph.has_edge g u v)
    pairs
