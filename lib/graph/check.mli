(** Structural predicates on node sets.

    These are the verification primitives behind the paper's case analyses:
    Property 1 asserts a particular set is independent, the claims bound the
    weight of independent sets, and the family conditions require certain
    regions to be cliques. *)

val is_independent : Graph.t -> Stdx.Bitset.t -> bool
(** No two members adjacent. *)

val independence_violations : Graph.t -> Stdx.Bitset.t -> (int * int) list
(** All adjacent pairs inside the set — empty iff independent.  Useful in
    test failure messages. *)

val is_clique : Graph.t -> Stdx.Bitset.t -> bool
(** Every two distinct members adjacent. *)

val is_maximal_independent : Graph.t -> Stdx.Bitset.t -> bool
(** Independent, and no node outside can be added. *)

val is_vertex_cover : Graph.t -> Stdx.Bitset.t -> bool

val dominates : Graph.t -> Stdx.Bitset.t -> bool
(** Every node is in the set or adjacent to it. *)
