(** Cut edges with respect to a node partition.

    Definition 4 partitions [V = ∪ᵢ Vⁱ] among the [t] players;
    [cut(G_x̄) = E_x̄ \ ∪ᵢ (Vⁱ × Vⁱ)] is the set of edges crossing the
    partition, and the round lower bound of Theorem 5 divides by
    [|cut(G_x̄)|].  A partition is an array mapping each node to its part
    (player) index. *)

val edges : Graph.t -> int array -> (int * int) list
(** All cut edges ([u < v]).  Raises [Invalid_argument] when the partition
    array length differs from [Graph.n]. *)

val size : Graph.t -> int array -> int
(** [size g part = List.length (edges g part)], computed without building
    the list. *)

val parts : int array -> int
(** Number of parts, i.e. [1 + max part index] ([0] for an empty array). *)

val part_nodes : int array -> int -> int list
(** Nodes assigned to a given part, ascending. *)

val part_sizes : int array -> int array
(** [part_sizes part] has the cardinality of each part. *)

val is_internal : int array -> int -> int -> bool
(** Do both endpoints live in the same part? *)

val validate : Graph.t -> int array -> unit
(** Raises [Invalid_argument] unless the array has length [n] and part
    indices are non-negative. *)
