(** Export to Graphviz DOT and compact ASCII, for regenerating the paper's
    figures.

    Figures 1–6 of the paper are drawings of small gadget instances
    (ℓ = 2, α = 1, k = 3).  [bench/main.exe] and [bin/maxis_lb.exe figure]
    emit these graphs in DOT so they can be rendered and compared against
    the paper, plus a census (node/edge counts per region) that is checked
    in the test suite. *)

val to_dot :
  ?name:string ->
  ?partition:int array ->
  ?highlight:Stdx.Bitset.t ->
  Graph.t ->
  string
(** DOT source.  When [partition] is given, parts become clusters; when
    [highlight] is given, those nodes are drawn filled (used to show the
    independent sets of Figure 3). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val ascii_summary : Graph.t -> string
(** A textual census: n, m, weight, degree histogram — stable across runs,
    suitable for golden tests. *)
