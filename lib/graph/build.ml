module Prng = Stdx.Prng

let make_clique g nodes =
  let rec go = function
    | [] -> ()
    | u :: rest ->
        List.iter (fun v -> Graph.add_edge g u v) rest;
        go rest
  in
  go nodes

let make_clique_array g nodes =
  let n = Array.length nodes in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Graph.add_edge g nodes.(i) nodes.(j)
    done
  done

let connect_all g xs ys =
  List.iter
    (fun u -> List.iter (fun v -> if u <> v then Graph.add_edge g u v) ys)
    xs

let connect_complement_of_matching g xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then
    invalid_arg "Build.connect_complement_of_matching: length mismatch";
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then Graph.add_edge g xs.(i) ys.(j)
    done
  done

let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  let g = path n in
  if n >= 3 then Graph.add_edge g (n - 1) 0;
  g

let complete n =
  let g = Graph.create n in
  make_clique_array g (Array.init n Fun.id);
  g

let complete_bipartite a b =
  let g = Graph.create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let star n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let erdos_renyi rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

let random_weights rng g wmax =
  for v = 0 to Graph.n g - 1 do
    Graph.set_weight g v (1 + Prng.int rng wmax)
  done
