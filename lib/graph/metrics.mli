(** Graph metrics: distances, diameter, connectivity, degree profiles.

    The paper notes its hard instances have constant diameter; the metrics
    here let tests and the bench harness confirm that on the constructed
    families, and give the CONGEST simulator its round-count sanity checks
    (BFS must finish in [diameter] rounds). *)

val bfs_distances : Graph.t -> int -> int array
(** Unweighted distances from a source; unreachable nodes get [-1]. *)

val eccentricity : Graph.t -> int -> int
(** Max distance from the node; [-1] if the graph is disconnected from it. *)

val diameter : Graph.t -> int
(** Max eccentricity over all nodes (all-pairs BFS, [O(n·m)]).  Returns
    [-1] when disconnected, [0] for graphs with [<= 1] node. *)

val is_connected : Graph.t -> bool

val connected_components : Graph.t -> int array * int
(** Component id per node, and the number of components. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, ascending by degree. *)

val density : Graph.t -> float
(** [m / (n choose 2)]; [0] for [n <= 1]. *)
