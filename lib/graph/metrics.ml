module Bitset = Stdx.Bitset

let bfs_distances g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Bitset.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let eccentricity g v =
  let dist = bfs_distances g v in
  if Array.exists (fun d -> d < 0) dist then -1
  else Array.fold_left max 0 dist

let diameter g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let d = ref 0 in
    (try
       for v = 0 to n - 1 do
         let e = eccentricity g v in
         if e < 0 then begin
           d := -1;
           raise Exit
         end;
         d := max !d e
       done
     with Exit -> ());
    !d
  end

let connected_components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Bitset.iter
          (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          (Graph.neighbors g u)
      done
    end
  done;
  (comp, !count)

let is_connected g =
  Graph.n g <= 1 || snd (connected_components g) = 1

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  Graph.iter_nodes
    (fun v ->
      let d = Graph.degree g v in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    g;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

let density g =
  let n = Graph.n g in
  if n <= 1 then 0.0
  else
    float_of_int (Graph.edge_count g)
    /. (float_of_int n *. float_of_int (n - 1) /. 2.0)
