module Bitset = Stdx.Bitset

let independence_violations g s =
  let acc = ref [] in
  Bitset.iter
    (fun u ->
      Bitset.iter
        (fun v -> if u < v && Graph.has_edge g u v then acc := (u, v) :: !acc)
        s)
    s;
  List.rev !acc

let is_independent g s =
  (* Word-parallel: s is independent iff no member's neighborhood meets s. *)
  Bitset.for_all (fun u -> Bitset.disjoint (Graph.neighbors g u) s) s

let is_clique g s =
  Bitset.for_all
    (fun u ->
      let missing = Bitset.diff s (Graph.neighbors g u) in
      Bitset.remove missing u;
      Bitset.is_empty missing)
    s

let is_maximal_independent g s =
  is_independent g s
  &&
  let n = Graph.n g in
  let can_extend = ref false in
  for v = 0 to n - 1 do
    if (not (Bitset.mem s v)) && Bitset.disjoint (Graph.neighbors g v) s then
      can_extend := true
  done;
  not !can_extend

let is_vertex_cover g s =
  let ok = ref true in
  Graph.iter_edges (fun u v -> if (not (Bitset.mem s u)) && not (Bitset.mem s v) then ok := false) g;
  !ok

let dominates g s =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if (not (Bitset.mem s v)) && Bitset.disjoint (Graph.neighbors g v) s then
      ok := false
  done;
  !ok
