(** DIMACS-style serialization of weighted graphs.

    The standard exchange format for independent-set/clique benchmarks:
    downstream users can export the paper's hard instances and feed them
    to any off-the-shelf MaxIS/MWIS solver.  We write the classic
    undirected format

    {v
    c <comment lines>
    p edge <n> <m>
    n <node-1-based> <weight>      (one per node with weight <> 1)
    e <u-1-based> <v-1-based>      (one per edge)
    v}

    plus optional [c partition <node> <part>] comment lines carrying the
    player partition, which {!parse} recovers. *)

val to_string : ?comment:string -> ?partition:int array -> Graph.t -> string

val write_file : string -> ?comment:string -> ?partition:int array -> Graph.t -> unit

val parse : string -> Graph.t * int array option
(** Inverse of {!to_string}.  Raises [Failure] with a line-numbered message
    on malformed input.  Unknown comment lines are ignored; node weights
    default to 1. *)

val read_file : string -> Graph.t * int array option
