type t = { cp : Codes.Code_params.t; players : int }

let make ~alpha ~ell ~players =
  if players < 2 then invalid_arg "Params.make: need at least 2 players";
  { cp = Codes.Code_params.make ~alpha ~ell; players }

let figure_params ~players = make ~alpha:1 ~ell:2 ~players

let for_epsilon_linear ~alpha ~ell ~epsilon =
  if epsilon <= 0.0 || epsilon >= 0.5 then
    invalid_arg "Params.for_epsilon_linear: need 0 < epsilon < 1/2";
  let players = max 2 (int_of_float (ceil (2.0 /. epsilon))) in
  make ~alpha ~ell ~players

let for_epsilon_quadratic ~alpha ~ell ~epsilon =
  if epsilon <= 0.0 || epsilon >= 0.25 then
    invalid_arg "Params.for_epsilon_quadratic: need 0 < epsilon < 1/4";
  let players = max 2 (int_of_float (ceil ((3.0 /. (4.0 *. epsilon)) -. 1.0))) in
  make ~alpha ~ell ~players

let k p = p.cp.Codes.Code_params.k
let ell p = p.cp.Codes.Code_params.ell
let alpha p = p.cp.Codes.Code_params.alpha
let positions p = p.cp.Codes.Code_params.positions
let q p = p.cp.Codes.Code_params.q

let codeword p m = Codes.Code_params.codeword p.cp m

let pp ppf p =
  Format.fprintf ppf "%a, t=%d" Codes.Code_params.pp p.cp p.players
