(** The simulation argument of Theorem 5, executed.

    Given a family instance [G_x̄] with its player partition and {e any}
    CONGEST algorithm, the [t] players can jointly simulate the algorithm:
    player [i] runs the nodes of [Vⁱ] locally, and every message crossing
    the partition is written on the shared blackboard.  The transcript
    therefore costs at most [T · |cut(G_x̄)| · B] bits, where [B] is the
    per-edge-per-round bandwidth — that inequality {e is} Theorem 5, and
    this module measures both sides on real runs.

    [decide_disjointness] completes the reduction end to end: it runs the
    universal exact-MaxIS algorithm ({!Congest.Algo_gather}), classifies
    OPT with the gap predicate, and returns the promise-pairwise-
    disjointness answer, together with the full bit accounting. *)

type report = {
  algorithm : string;
  n : int;
  rounds : int;
  cut_size : int;
  bandwidth : int;  (** per-edge per-round bit budget [B] *)
  blackboard_bits : int;  (** measured bits crossing the partition *)
  blackboard_writes : int;
  bound_bits : int;  (** [rounds · cut_size · bandwidth] — Theorem 5's cap *)
  within_bound : bool;
  total_bits : int;  (** all traffic, crossing or not (for contrast) *)
}

val simulate :
  ?config:Congest.Runtime.config ->
  'out Congest.Program.t ->
  Family.instance ->
  'out Congest.Runtime.result * report
(** Run any program on the instance's graph and meter the cut traffic. *)

type decision = {
  report : report;
  opt : int;
  verdict : Predicate.verdict;
  answer : bool option;  (** the simulated players' output for [f(x̄)] *)
}

val decide_disjointness :
  ?config:Congest.Runtime.config ->
  Family.instance ->
  predicate:Predicate.t ->
  decision
(** The full Theorem-5 pipeline on the universal algorithm.  The runtime
    config's [max_rounds] must allow gathering to complete ([O(n + m)]
    rounds); the default config usually suffices for test-sized
    instances. *)
