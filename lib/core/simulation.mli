(** The simulation argument of Theorem 5, executed.

    Given a family instance [G_x̄] with its player partition and {e any}
    CONGEST algorithm, the [t] players can jointly simulate the algorithm:
    player [i] runs the nodes of [Vⁱ] locally, and every message crossing
    the partition is written on the shared blackboard.  The transcript
    therefore costs at most [T · |cut(G_x̄)| · B] bits, where [B] is the
    per-edge-per-round bandwidth — that inequality {e is} Theorem 5, and
    this module measures both sides on real runs.

    Under a fault plan ({!Congest.Faults}), attempted and delivered cut
    traffic are metered separately: the Theorem-5 cap bounds what the
    algorithm {e emits}, so it must — and does — hold on attempted traffic
    even when an adversarial plan drops part of it.

    [decide_disjointness] completes the reduction end to end: it runs the
    universal exact-MaxIS algorithm ({!Congest.Algo_gather}), classifies
    OPT with the gap predicate, and returns the promise-pairwise-
    disjointness answer, together with the full bit accounting. *)

type report = {
  algorithm : string;
  n : int;
  rounds : int;
  cut_size : int;
  bandwidth : int;  (** per-edge per-round bit budget [B] *)
  blackboard_bits : int;
      (** measured bits of {e attempted} sends crossing the partition *)
  blackboard_writes : int;
  blackboard_bits_dropped : int;
      (** cut-crossing bits a fault plan dropped (0 without faults) *)
  blackboard_bits_delivered : int;
      (** cut-crossing bits that actually arrived (includes duplicates) *)
  bound_bits : int;  (** [rounds · 2·cut_size · bandwidth] — Theorem 5's cap *)
  within_bound : bool;  (** attempted ≤ cap *)
  total_bits : int;  (** all traffic, crossing or not (for contrast) *)
  faults_injected : int;  (** injected events recorded in the trace *)
}

val simulate :
  ?config:Congest.Runtime.config ->
  'out Congest.Program.t ->
  Family.instance ->
  'out Congest.Runtime.result * report
(** Run any program on the instance's graph and meter the cut traffic.
    Raises as {!Congest.Runtime.run} on model violations. *)

val simulate_checked :
  ?config:Congest.Runtime.config ->
  'out Congest.Program.t ->
  Family.instance ->
  ('out Congest.Runtime.result * report, Congest.Runtime.failure) Stdlib.result
(** Like {!simulate}, but model violations come back as a structured
    failure (round/src/dst + trace prefix) instead of an exception. *)

type engine =
  | List_mode  (** the historical [(int * Msg.t) list] executor *)
  | Flat  (** {!Congest.Runtime.run_flat} on the CSR twin of the graph *)
  | Flat_par of Exec.Pool.t
      (** {!Congest.Runtime.run_flat_par} sharded across the pool *)

(** Which executor carries the gather protocol in
    {!decide_disjointness}.  All engines produce the same decision and
    the same report fields — rounds, cut traffic and outputs are
    engine-independent (pinned by stdout parity in test/test_cli.ml) —
    the flat ones just get there without per-message allocation.  Fault
    plans require [List_mode] (the flat executors reject them). *)

type decision = {
  report : report;
  opt : int;
  verdict : Predicate.verdict;
  answer : bool option;  (** the simulated players' output for [f(x̄)] *)
}

type error =
  | Runtime_failure of Congest.Runtime.failure
      (** the algorithm violated the model (oversend / non-neighbor /
          broadcast mismatch) *)
  | Incomplete of { rounds : int }
      (** gathering did not finish within [max_rounds] *)

val pp_error : Format.formatter -> error -> unit

val decide_disjointness :
  ?config:Congest.Runtime.config ->
  ?engine:engine ->
  Family.instance ->
  predicate:Predicate.t ->
  decision
(** The full Theorem-5 pipeline on the universal algorithm.  The runtime
    config's [max_rounds] must allow gathering to complete ([O(n + m)]
    rounds); the default config usually suffices for test-sized
    instances.  Raises [Invalid_argument] on failure — prefer
    {!decide_disjointness_checked} in drivers. *)

val decide_disjointness_checked :
  ?config:Congest.Runtime.config ->
  ?engine:engine ->
  Family.instance ->
  predicate:Predicate.t ->
  (decision, error) Stdlib.result
(** As {!decide_disjointness}, with graceful degradation: failures carry
    structured context for report-and-continue drivers. *)
