(** Families of lower bound graphs (Definition 4).

    A family with respect to a function [f] and predicate [P] assigns to
    every input vector [x̄] a graph [G_x̄] with a node partition
    [V = ∪ᵢ Vⁱ] such that:

    + only the weights of nodes in [Vⁱ] and edges inside [Vⁱ × Vⁱ] depend
      on [xⁱ] (so player [i] can build its region alone), and
    + [G_x̄ ⊨ P  ⟺  f(x̄) = TRUE].

    Both conditions are machine-checkable and checked here: condition 1 by
    a differential test (vary one player's string, diff the graphs),
    condition 2 by exact MaxIS + the gap predicate. *)

type instance = {
  graph : Wgraph.Graph.t;
  partition : int array;  (** node ↦ owning player, in [0, t) *)
  params : Params.t;
}

type spec = {
  name : string;
  string_length : int;  (** the [k] (or [k²]) of the input strings *)
  players : int;
  build : Commcx.Inputs.t -> instance;
  predicate : Predicate.t;
  func : Commcx.Inputs.t -> bool;  (** the [f] being reduced from *)
}

val cut_size : instance -> int
(** [|cut(G_x̄)|]. *)

val validate_inputs : spec -> Commcx.Inputs.t -> unit
(** Raises [Invalid_argument] unless the input vector has the spec's
    string length and player count. *)

(** {1 Condition 1: locality of the input dependence} *)

type locality_report = {
  player_changed : int;
  foreign_weight_diffs : int list;  (** nodes outside Vⁱ whose weight changed *)
  foreign_edge_diffs : (int * int) list;
      (** edges not inside Vⁱ × Vⁱ whose presence changed *)
  ok : bool;
}

val check_condition1 :
  spec -> Commcx.Inputs.t -> Commcx.Inputs.t -> player:int -> locality_report
(** The two inputs must differ only in [player]'s string (raises
    [Invalid_argument] otherwise); the report lists any part of the graph
    outside that player's region that nevertheless changed. *)

(** {1 Condition 2: the predicate decides [f]} *)

type gap_report = {
  opt : int;
  verdict : Predicate.verdict;
  expected : bool;  (** [f(x̄)] *)
  decided : bool option;
  ok : bool;
}

val check_condition2 : spec -> Commcx.Inputs.t -> gap_report
(** Builds the instance, solves MaxIS exactly, and checks the predicate's
    answer equals [f(x̄)]. *)
