type t = { name : string; high : int; low : int }

let make ~name ~high ~low =
  if low < 0 || low >= high then
    invalid_arg
      (Printf.sprintf "Predicate.make: need 0 <= low < high (got %d, %d)" low
         high);
  { name; high; low }

let gamma p = float_of_int p.low /. float_of_int p.high

type verdict = [ `High | `Low | `Gap_violation ]

let classify p opt =
  if opt >= p.high then `High
  else if opt <= p.low then `Low
  else `Gap_violation

let decides_to p opt =
  match classify p opt with
  | `Low -> Some true
  | `High -> Some false
  | `Gap_violation -> None

let pp ppf p =
  Format.fprintf ppf "%s: OPT>=%d vs OPT<=%d (gamma=%.4f)" p.name p.high p.low
    (gamma p)
