(** Gap predicates (Definition 6).

    A γ-approximate MaxIS family needs a predicate [P] that distinguishes
    graphs with maximum independent set of weight at least [β] ("high")
    from graphs where it is at most [γ·β] ("low").  The gadget instances
    always fall on one side or the other; anything strictly between would
    witness a bug in the construction, so classification reports it as
    [`Gap_violation]. *)

type t = {
  name : string;
  high : int;  (** the [β] of Definition 6: intersecting ⇒ OPT ≥ high *)
  low : int;  (** the [γ·β]: pairwise disjoint ⇒ OPT ≤ low *)
}

val make : name:string -> high:int -> low:int -> t
(** Raises [Invalid_argument] unless [0 <= low < high]. *)

val gamma : t -> float
(** [low / high] — the approximation factor the family defeats: any
    algorithm achieving a ratio strictly above [gamma] distinguishes the
    two sides. *)

type verdict = [ `High | `Low | `Gap_violation ]

val classify : t -> int -> verdict
(** Classify a measured OPT value. *)

val decides_to : t -> int -> bool option
(** Map a measured OPT to the Boolean the reduction outputs:
    [`Low ↦ Some true] (pairwise disjoint), [`High ↦ Some false]
    (uniquely intersecting), gap violation [↦ None]. *)

val pp : Format.formatter -> t -> unit
