(** The paper's asymptotic parameter regime, as a calculator.

    Section 4.2.1 fixes [ℓ = log k − log k/log log k] and
    [α = log k/log log k] so that [(ℓ+α)^α = k]; Theorems 1 and 2 then
    take [k = Θ(n)] resp. [k² = Θ(n²)].  This module computes the concrete
    (α, ℓ, t) the proofs would use at a target size, together with the
    consistency diagnostics the benches report: how close the realized
    [k = (ℓ+α)^α] lands to the target, the [q]-vs-[ℓ+α] prime-padding gap,
    and whether the formal gaps separate at the chosen [t]. *)

type t = {
  target_k : int;
  params : Params.t;  (** α, ℓ from the paper's formulas; the given [t] *)
  realized_k : int;  (** [(ℓ+α)^α] — usually not exactly the target *)
  k_ratio : float;  (** realized / target *)
  prime_padding : int;  (** [q − (ℓ+α)] — 0 when ℓ+α is already prime *)
  linear_gap_valid : bool;  (** [ℓ > αt] *)
  quadratic_gap_valid : bool;
}

val at : target_k:int -> players:int -> t
(** Raises [Invalid_argument] when [target_k < 2] or [players < 2]. *)

val nodes_linear : t -> int
(** [n] of the linear construction at these parameters. *)

val nodes_quadratic : t -> int

val pp : Format.formatter -> t -> unit
