let params ~ell = Params.make ~alpha:1 ~ell ~players:2

let predicate p =
  if p.Params.players <> 2 then
    invalid_arg "Two_party.predicate: need exactly two players";
  Predicate.make
    ~name:"two-party gap (Claims 1-2)"
    ~high:((4 * Params.ell p) + (2 * Params.alpha p))
    ~low:((3 * Params.ell p) + (2 * Params.alpha p) + 1)

let spec p =
  {
    Family.name = "two-party warm-up (Lemma 1)";
    string_length = Params.k p;
    players = 2;
    build = Linear_family.instance p;
    predicate = predicate p;
    func = Commcx.Functions.two_party_disjointness;
  }

type bound = {
  k : int;
  n : int;
  cut : int;
  cc_bits : float;
  rounds_lower_bound : float;
  gamma_defeated : float;
}

let round_bound p =
  if p.Params.players <> 2 then
    invalid_arg "Two_party.round_bound: need exactly two players";
  let k = Params.k p in
  let n = Linear_family.n_nodes p in
  let cut = Linear_family.expected_cut_size p in
  let cc_bits =
    Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.two_party_disjointness ~k ~t:2
  in
  let log_n = Stdx.Mathx.log2 (float_of_int (max 2 n)) in
  {
    k;
    n;
    cut;
    cc_bits;
    rounds_lower_bound = cc_bits /. (2.0 *. float_of_int cut *. log_n);
    gamma_defeated = 0.75;
  }

let barrier_ratio = 0.5
