(** The round lower bounds of Theorems 1 and 2, as computable reports.

    Corollary 1 turns a γ-approximate MaxIS family into a round bound:

    {[ rounds = Ω( CC_f(k', t) / (|cut| · log |V|) ) ]}

    with [CC_f(k', t) = Ω(k'/(t log t))] by Theorem 3, where [k' = k] for
    the linear family and [k' = k²] for the quadratic one.  The functions
    here instantiate that with measured cut sizes and the constant-1
    convention of {!Commcx.Cc_bounds}, so the tables in the benches show
    exactly the paper's bound shapes [n/log³n] and [n²/log³n]. *)

type report = {
  theorem : string;
  gamma_defeated : float;  (** approximation ratio the bound applies to *)
  k : int;  (** base parameter (A-clique size) *)
  string_length : int;  (** k or k² *)
  t : int;
  n : int;  (** nodes of the instance *)
  cut : int;  (** measured [|cut(G_x̄)|] *)
  cc_bits : float;  (** CC lower bound on the strings *)
  log_n : float;
  rounds_lower_bound : float;  (** cc / (2·cut·log n) *)
  shape : float;  (** the paper's headline shape: n/log³n or n²/log³n *)
}

val linear : Params.t -> report
(** Theorem 1's bound at these parameters.  The cut size uses the closed
    form [C(t,2)·(ℓ+α)·q(q−1)], which the test suite pins equal to the
    measured cut of the fixed construction. *)

val quadratic : Params.t -> report
(** Theorem 2's bound. *)

(** {1 ε-level statements}

    The theorems quantify over constant ε; these helpers package "for this
    ε, with [t] players, any (ratio+ε)-approximation needs [rounds_at n]
    rounds" — with the [t·log t] dependence of Theorem 3 kept explicit so
    the ε-dependence of the constant is visible (the paper hides it in
    Ω(·)). *)

type epsilon_statement = {
  epsilon : float;
  players_used : int;  (** the [t] the proof picks for this ε *)
  defeated_ratio : float;  (** (1/2+ε) or (3/4+ε) *)
  rounds_at : n:float -> float;
      (** [n ↦ n^d / (t·log t · log³ n)] with [d ∈ {1, 2}] — the bound with
          the ε-dependent constant spelled out *)
}

val theorem1_statement : epsilon:float -> epsilon_statement
(** [t = ⌈2/ε⌉] (Lemma 2's choice).  Raises [Invalid_argument] unless
    [0 < ε < 1/2]. *)

val theorem2_statement : epsilon:float -> epsilon_statement
(** [t = max 2 ⌈3/(4ε) − 1⌉].  Raises [Invalid_argument] unless
    [0 < ε < 1/4]. *)

val linear_shape : n:float -> float
(** [n / log₂³ n] — the asymptotic form of Theorem 1. *)

val quadratic_shape : n:float -> float
(** [n² / log₂³ n]. *)

val pp : Format.formatter -> report -> unit
