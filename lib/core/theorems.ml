type report = {
  theorem : string;
  gamma_defeated : float;
  k : int;
  string_length : int;
  t : int;
  n : int;
  cut : int;
  cc_bits : float;
  log_n : float;
  rounds_lower_bound : float;
  shape : float;
}

let log2 = Stdx.Mathx.log2

let linear_shape ~n = n /. (log2 n ** 3.0)
let quadratic_shape ~n = n *. n /. (log2 n ** 3.0)

let build ~theorem ~gamma ~k ~string_length ~t ~n ~cut ~shape =
  let cc_bits =
    Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness
      ~k:string_length ~t
  in
  let log_n = log2 (float_of_int (max 2 n)) in
  {
    theorem;
    gamma_defeated = gamma;
    k;
    string_length;
    t;
    n;
    cut;
    cc_bits;
    log_n;
    (* Each undirected cut edge carries O(log n) bits per round in each
       direction, hence the factor 2. *)
    rounds_lower_bound = cc_bits /. (2.0 *. float_of_int cut *. log_n);
    shape;
  }

let linear p =
  let n = Linear_family.n_nodes p in
  (* The closed form equals the measured cut on every instance (pinned by
     the test suite); using it keeps the calculator O(1) even at parameter
     points whose graphs would not fit in memory. *)
  let cut = Linear_family.expected_cut_size p in
  let t = p.Params.players in
  build ~theorem:"Theorem 1 (linear)"
    ~gamma:(0.5 +. (1.0 /. float_of_int t))
    ~k:(Params.k p) ~string_length:(Params.k p) ~t ~n ~cut
    ~shape:(linear_shape ~n:(float_of_int n))

let quadratic p =
  let n = Quadratic_family.n_nodes p in
  let cut = Quadratic_family.expected_cut_size p in
  let t = p.Params.players in
  build ~theorem:"Theorem 2 (quadratic)"
    ~gamma:(0.75 +. (1.0 /. float_of_int t))
    ~k:(Params.k p)
    ~string_length:(Quadratic_family.string_length p)
    ~t ~n ~cut
    ~shape:(quadratic_shape ~n:(float_of_int n))

type epsilon_statement = {
  epsilon : float;
  players_used : int;
  defeated_ratio : float;
  rounds_at : n:float -> float;
}

let statement ~epsilon ~players_used ~base_ratio ~degree =
  let t = float_of_int players_used in
  let logt = Float.max 1.0 (log2 t) in
  {
    epsilon;
    players_used;
    defeated_ratio = base_ratio +. epsilon;
    rounds_at =
      (fun ~n -> (n ** float_of_int degree) /. (t *. logt *. (log2 n ** 3.0)));
  }

let theorem1_statement ~epsilon =
  if epsilon <= 0.0 || epsilon >= 0.5 then
    invalid_arg "Theorems.theorem1_statement: need 0 < epsilon < 1/2";
  let players_used = max 2 (int_of_float (ceil (2.0 /. epsilon))) in
  statement ~epsilon ~players_used ~base_ratio:0.5 ~degree:1

let theorem2_statement ~epsilon =
  if epsilon <= 0.0 || epsilon >= 0.25 then
    invalid_arg "Theorems.theorem2_statement: need 0 < epsilon < 1/4";
  let players_used =
    max 2 (int_of_float (ceil ((3.0 /. (4.0 *. epsilon)) -. 1.0)))
  in
  statement ~epsilon ~players_used ~base_ratio:0.75 ~degree:2

let pp ppf r =
  Format.fprintf ppf
    "%s: k=%d strings=%d t=%d n=%d cut=%d cc=%.1f rounds>=%.2f (shape %.2f)"
    r.theorem r.k r.string_length r.t r.n r.cut r.cc_bits r.rounds_lower_bound
    r.shape
