module Bitset = Stdx.Bitset

type result = {
  name : string;
  holds : bool;
  measured : int;
  bound : int;
  detail : string;
}

let property1 p ~m =
  let g, _ = Linear_family.fixed p in
  let set = Linear_family.property1_set p ~m in
  let violations = Wgraph.Check.independence_violations g set in
  {
    name = Printf.sprintf "Property 1 (m=%d)" m;
    holds = violations = [];
    measured = List.length violations;
    bound = 0;
    detail =
      (match violations with
      | [] -> "independent"
      | (u, v) :: _ ->
          Printf.sprintf "%d adjacent pairs, e.g. (%d,%d)"
            (List.length violations) u v);
  }

let property2 p ~i ~j ~m1 ~m2 =
  if i = j then invalid_arg "Properties.property2: need i <> j";
  if m1 = m2 then invalid_arg "Properties.property2: need m1 <> m2";
  let g, _ = Linear_family.fixed p in
  let left =
    Base_graph.code_nodes p ~offset:(Linear_family.copy_offset p i) ~m:m1
  in
  let right =
    Base_graph.code_nodes p ~offset:(Linear_family.copy_offset p j) ~m:m2
  in
  let matching = Wgraph.Matching.max_bipartite_matching g ~left ~right in
  {
    name = Printf.sprintf "Property 2 (i=%d,j=%d,m1=%d,m2=%d)" i j m1 m2;
    holds = matching.Wgraph.Matching.size >= Params.ell p;
    measured = matching.Wgraph.Matching.size;
    bound = Params.ell p;
    detail =
      Printf.sprintf "max matching %d, ell=%d" matching.Wgraph.Matching.size
        (Params.ell p);
  }

let property3 p ~i ~j ~m1 ~m2 ~set =
  if i = j then invalid_arg "Properties.property3: need i <> j";
  if m1 = m2 then invalid_arg "Properties.property3: need m1 <> m2";
  let w1 = Params.codeword p m1 and w2 = Params.codeword p m2 in
  let count = ref 0 in
  for h = 0 to Params.positions p - 1 do
    let u =
      Base_graph.sigma_node p ~offset:(Linear_family.copy_offset p i) ~h
        ~r:w1.(h)
    and v =
      Base_graph.sigma_node p ~offset:(Linear_family.copy_offset p j) ~h
        ~r:w2.(h)
    in
    if Bitset.mem set u && Bitset.mem set v then incr count
  done;
  {
    name = Printf.sprintf "Property 3 (i=%d,j=%d,m1=%d,m2=%d)" i j m1 m2;
    holds = !count <= Params.alpha p;
    measured = !count;
    bound = Params.alpha p;
    detail = Printf.sprintf "%d double positions, alpha=%d" !count (Params.alpha p);
  }

let check_all_property1 p =
  List.init (Params.k p) (fun m -> property1 p ~m)

let check_sampled_property2 rng p ~samples =
  let t = p.Params.players and k = Params.k p in
  if k < 2 then invalid_arg "Properties.check_sampled_property2: k < 2";
  List.init samples (fun _ ->
      let i = Stdx.Prng.int rng t in
      let j = (i + 1 + Stdx.Prng.int rng (t - 1)) mod t in
      let m1 = Stdx.Prng.int rng k in
      let m2 = (m1 + 1 + Stdx.Prng.int rng (k - 1)) mod k in
      property2 p ~i ~j ~m1 ~m2)
