(** The "Limitations of the two-party framework" argument, executed.

    The paper observes that [t] players can always get a (1/t)-approximate
    MaxIS value with [O(t log n)] bits: each player computes the optimum of
    its own region [G[Vⁱ]] locally and writes the value; the maximum of
    the [t] values is at least [OPT/t] because the global optimum splits
    among the regions.  This is precisely why the two-party framework
    cannot defeat ratio 1/2 — and why going multi-party pushes the barrier
    to 1/t.

    This module runs that protocol on family instances and reports the
    achieved ratio and cost; the benches confirm the 1/t floor is real
    (the protocol's ratio never falls below 1/t) and cheap (bits are
    logarithmic while the reduction needs nearly the whole string
    length). *)

type report = {
  players : int;
  local_opts : int array;  (** OPT(G[Vⁱ]) per player *)
  best_local : int;
  global_opt : int;
  ratio : float;  (** best_local / global_opt — always ≥ 1/t *)
  bits : int;  (** blackboard bits used (t values of ⌈log₂(W+1)⌉ bits) *)
}

val run : Family.instance -> report
(** Solves each region and the full graph exactly. *)

val as_protocol : Family.spec -> Commcx.Protocol.t
(** The same idea packaged as a blackboard protocol deciding nothing about
    disjointness — it only estimates OPT — but usable for cost accounting
    within the [commcx] machinery: each player writes its local optimum.
    The returned protocol's Boolean output is whether the best local value
    already reaches the predicate's [high] threshold. *)
