module Inputs = Commcx.Inputs
module Prng = Stdx.Prng

type item = { name : string; ok : bool; detail : string }

let item name ok detail = { name; ok; detail }

let of_property (r : Properties.result) =
  item r.Properties.name r.Properties.holds r.Properties.detail

let of_claim (c : Claims.check) =
  item c.Claims.name c.Claims.holds
    (Printf.sprintf "opt=%d %s bound=%d" c.Claims.opt
       (match c.Claims.kind with `Lower -> ">=" | `Upper -> "<=")
       c.Claims.bound)

(* ------------------------------------------------------------------ *)
(* Result caching.

   The expensive checks (exact MaxIS solves behind the claims and
   Property 3) are pure functions of the generated inputs, so their
   [item]s can be cached under a digest of those inputs.  Input
   {e generation} always runs — only solves are skipped — so the PRNG
   stream, and with it every sampled input, is identical with or without
   a cache. *)

let encode_item i =
  Printf.sprintf "%s\n%b\n%s" (String.escaped i.name) i.ok
    (String.escaped i.detail)

let decode_item s =
  match String.split_on_char '\n' s with
  | [ name; ok; detail ] -> (
      match bool_of_string_opt ok with
      | Some ok -> (
          try Some { name = Scanf.unescaped name; ok; detail = Scanf.unescaped detail }
          with _ -> None)
      | None -> None)
  | _ -> None

let cached_item cache ~params ~solver ~extra compute =
  let key =
    Exec.Cache.key ~family:"verify-linear" ~params ~seed:0 ~solver ~extra ()
  in
  Exec.Cache.memo_value cache key ~encode:encode_item ~decode:decode_item
    compute

let fp_input x = Exec.Cache.fingerprint (Inputs.canonical x)

let code_check p =
  match Codes.Code_mapping.verify p.Params.cp.Codes.Code_params.code with
  | Ok () -> item "code distance (Theorem 4)" true "all pairs verified"
  | Error e -> item "code distance (Theorem 4)" false e

let property_checks ~cache rng p ~samples =
  let params = Format.asprintf "%a" Params.pp p in
  let p1 = List.map of_property (Properties.check_all_property1 p) in
  let p2 =
    List.map of_property (Properties.check_sampled_property2 rng p ~samples)
  in
  (* Property 3 on an exact optimum of a random instance.  The index
     draws are hoisted above the (cacheable) solve; neither consumes the
     other's randomness, so the PRNG stream is unchanged. *)
  let p3 =
    if Params.k p < 2 then []
    else begin
      let x =
        Inputs.gen_promise rng ~k:(Params.k p) ~t:p.Params.players
          ~intersecting:false
      in
      let t = p.Params.players in
      let i = Prng.int rng t in
      let j = (i + 1 + Prng.int rng (t - 1)) mod t in
      let m1 = Prng.int rng (Params.k p) in
      let m2 = (m1 + 1 + Prng.int rng (Params.k p - 1)) mod Params.k p in
      let extra = Printf.sprintf "%s|i=%d;j=%d;m1=%d;m2=%d" (fp_input x) i j m1 m2 in
      [
        cached_item cache ~params ~solver:"property3" ~extra (fun () ->
            let sol =
              Mis.Exact.solve (Linear_family.instance p x).Family.graph
            in
            of_property
              (Properties.property3 p ~i ~j ~m1 ~m2 ~set:sol.Mis.Exact.set));
      ]
    end
  in
  p1 @ p2 @ p3

let claim_checks ~pool ~cache rng p ~samples =
  let t = p.Params.players in
  let k = Params.k p in
  let params = Format.asprintf "%a" Params.pp p in
  (* Generation stays sequential on [rng]; only the claim evaluations
     (each an exact MaxIS solve) fan out, reassembled in draw order. *)
  let one _i =
    let xi = Inputs.gen_promise rng ~k ~t ~intersecting:true in
    let xd = Inputs.gen_promise rng ~k ~t ~intersecting:false in
    let base =
      [
        ("claim3", fp_input xi, fun () -> of_claim (Claims.claim3 p xi));
        ("claim5", fp_input xd, fun () -> of_claim (Claims.claim5 p xd));
      ]
    in
    let warmup =
      if t = 2 then
        [
          ("claim1", fp_input xi, fun () -> of_claim (Claims.claim1 p xi));
          ("claim2", fp_input xd, fun () -> of_claim (Claims.claim2 p xd));
        ]
      else []
    in
    let tuples =
      if k >= t then
        let ms = Array.of_list (Prng.sample_without_replacement rng k t) in
        let fp_ms =
          Exec.Cache.fingerprint
            (String.concat "," (List.map string_of_int (Array.to_list ms)))
        in
        [
          ("claim4", fp_ms, fun () -> of_claim (Claims.claim4 p ~ms));
          ("corollary2", fp_ms, fun () -> of_claim (Claims.corollary2 p ~ms));
        ]
      else []
    in
    base @ warmup @ tuples
  in
  let tasks = List.concat_map one (List.init samples Fun.id) in
  Exec.Pool.map_list pool
    (fun (solver, extra, compute) ->
      cached_item cache ~params ~solver ~extra compute)
    tasks

let condition_checks rng p =
  let spec = Linear_family.spec p in
  let k = Params.k p in
  let t = p.Params.players in
  (* Condition 1: flip one bit of one player's string. *)
  let x = Inputs.gen_promise rng ~k ~t ~intersecting:true in
  let player = Prng.int rng t in
  let strings =
    List.init t (fun i -> Stdx.Bitset.copy (Inputs.string_of_player x i))
  in
  let s = List.nth strings player in
  let bit = Prng.int rng k in
  if Stdx.Bitset.mem s bit then Stdx.Bitset.remove s bit
  else Stdx.Bitset.add s bit;
  let x' = Inputs.make ~k strings in
  let r1 = Family.check_condition1 spec x x' ~player in
  let c1 =
    item "Definition 4, condition 1" r1.Family.ok
      (Printf.sprintf "varied player %d: %d foreign weight diffs, %d foreign edge diffs"
         (player + 1)
         (List.length r1.Family.foreign_weight_diffs)
         (List.length r1.Family.foreign_edge_diffs))
  in
  (* Condition 2 on both sides. *)
  let c2 =
    List.map
      (fun intersecting ->
        let x = Inputs.gen_promise rng ~k ~t ~intersecting in
        let r = Family.check_condition2 spec x in
        item
          (Printf.sprintf "Definition 4, condition 2 (intersecting=%b)" intersecting)
          r.Family.ok
          (Printf.sprintf "OPT=%d expected f=%b decided=%s" r.Family.opt
             r.Family.expected
             (match r.Family.decided with
             | Some b -> string_of_bool b
             | None -> "gap violation")))
      [ true; false ]
  in
  c1 :: c2

let reduction_checks rng p =
  let spec = Linear_family.spec p in
  let x =
    Inputs.gen_promise rng ~k:(Params.k p) ~t:p.Params.players
      ~intersecting:(Prng.bool rng)
  in
  let inst = spec.Family.build x in
  let truth = Commcx.Functions.promise_pairwise_disjointness x in
  let d = Simulation.decide_disjointness inst ~predicate:spec.Family.predicate in
  let answer, outcome =
    Player_sim.decide_disjointness inst ~predicate:spec.Family.predicate
  in
  [
    item "Theorem 5: trace-metered reduction"
      (d.Simulation.answer = Some truth
      && d.Simulation.report.Simulation.within_bound)
      (Printf.sprintf "OPT=%d, %d blackboard bits <= %d" d.Simulation.opt
         d.Simulation.report.Simulation.blackboard_bits
         d.Simulation.report.Simulation.bound_bits);
    item "Theorem 5: player protocol agrees"
      (answer = Some truth
      && Commcx.Blackboard.bits_written outcome.Player_sim.board
         = d.Simulation.report.Simulation.blackboard_bits)
      (Printf.sprintf "protocol transcript %d bits"
         (Commcx.Blackboard.bits_written outcome.Player_sim.board));
  ]

let run ?(seed = 0xa0d17) ?(samples = 4) ?pool ?cache p =
  let pool =
    match pool with Some p -> p | None -> Exec.Pool.create ~jobs:1
  in
  let cache =
    match cache with Some c -> c | None -> Exec.Cache.disabled ()
  in
  let rng = Prng.create seed in
  List.concat
    [
      [ code_check p ];
      property_checks ~cache rng p ~samples;
      claim_checks ~pool ~cache rng p ~samples;
      (if Linear_family.formal_gap_valid p then
         condition_checks rng p @ reduction_checks rng p
       else
         [
           item "Definition 4, conditions + reduction" true
             (Printf.sprintf
                "skipped: formal gap needs ell > alpha*t (ell=%d, alpha*t=%d)"
                (Params.ell p)
                (Params.alpha p * p.Params.players));
         ]);
    ]

let all_ok items = List.for_all (fun i -> i.ok) items

let pp_item ppf i =
  Format.fprintf ppf "%-45s %s  %s" i.name (if i.ok then "ok" else "FAIL") i.detail
