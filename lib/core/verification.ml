module Inputs = Commcx.Inputs
module Prng = Stdx.Prng

type status =
  | Pass
  | Fail
  | Inconclusive of { reason : string; lb : int; ub : int }

type item = { name : string; status : status; detail : string }

let item name ok detail = { name; status = (if ok then Pass else Fail); detail }

let passed i = i.status = Pass

let failed i = i.status = Fail

let inconclusive i =
  match i.status with Inconclusive _ -> true | Pass | Fail -> false

let of_property (r : Properties.result) =
  item r.Properties.name r.Properties.holds r.Properties.detail

let of_claim (c : Claims.check) =
  item c.Claims.name c.Claims.holds
    (Printf.sprintf "opt=%d %s bound=%d" c.Claims.opt
       (match c.Claims.kind with `Lower -> ">=" | `Upper -> "<=")
       c.Claims.bound)

let of_outcome = function
  | Claims.Decided c -> of_claim c
  | Claims.Unresolved u ->
      {
        name = u.Claims.u_name;
        status =
          Inconclusive
            {
              reason = Exec.Budget.reason_to_string u.Claims.reason;
              lb = u.Claims.lb;
              ub = u.Claims.ub;
            };
        detail =
          Printf.sprintf "OPT in [%d,%d], bound=%d undecided" u.Claims.lb
            u.Claims.ub u.Claims.u_bound;
      }

(* ------------------------------------------------------------------ *)
(* Result caching.

   The expensive checks (exact MaxIS solves behind the claims and
   Property 3) are pure functions of the generated inputs and the budget,
   so their [item]s can be cached under a digest of those inputs (the
   budget fingerprint joins the key whenever it is finite — a budgeted
   interval must never answer for an exact solve, or vice versa).  Input
   {e generation} always runs — only solves are skipped — so the PRNG
   stream, and with it every sampled input, is identical with or without
   a cache. *)

let encode_status = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Inconclusive { reason; lb; ub } ->
      Printf.sprintf "inconclusive\t%s\t%d\t%d" (String.escaped reason) lb ub

let decode_status s =
  match String.split_on_char '\t' s with
  | [ "pass" ] -> Some Pass
  | [ "fail" ] -> Some Fail
  | [ "inconclusive"; reason; lb; ub ] -> (
      match (int_of_string_opt lb, int_of_string_opt ub) with
      | Some lb, Some ub -> (
          try Some (Inconclusive { reason = Scanf.unescaped reason; lb; ub })
          with _ -> None)
      | _ -> None)
  | _ -> None

let encode_item i =
  Printf.sprintf "%s\n%s\n%s" (String.escaped i.name) (encode_status i.status)
    (String.escaped i.detail)

let decode_item s =
  match String.split_on_char '\n' s with
  | [ name; status; detail ] -> (
      match decode_status status with
      | Some status -> (
          try
            Some
              { name = Scanf.unescaped name; status; detail = Scanf.unescaped detail }
          with _ -> None)
      | None -> None)
  | _ -> None

let cached_item ~journal cache ~budget ~params ~solver ~extra compute =
  let extra =
    match Exec.Budget.fingerprint budget with
    | "" -> extra
    | fp -> extra ^ "|budget=" ^ fp
  in
  let key =
    Exec.Cache.key ~family:"verify-linear" ~params ~seed:0 ~solver ~extra ()
  in
  Exec.Journal.memo_value journal cache key ~encode:encode_item
    ~decode:decode_item compute

let fp_input x = Exec.Cache.fingerprint (Inputs.canonical x)

let code_check p =
  match Codes.Code_mapping.verify p.Params.cp.Codes.Code_params.code with
  | Ok () -> item "code distance (Theorem 4)" true "all pairs verified"
  | Error e -> item "code distance (Theorem 4)" false e

let property_checks ~journal ~cache ~budget rng p ~samples =
  let params = Format.asprintf "%a" Params.pp p in
  let p1 = List.map of_property (Properties.check_all_property1 p) in
  let p2 =
    List.map of_property (Properties.check_sampled_property2 rng p ~samples)
  in
  (* Property 3 on an exact optimum of a random instance.  The index
     draws are hoisted above the (cacheable) solve; neither consumes the
     other's randomness, so the PRNG stream is unchanged.  The property
     quantifies over a {e maximum} independent set, so a budget-exhausted
     solve cannot check it — the incumbent certifies only [lb] — and the
     item degrades to [Inconclusive]. *)
  let p3 =
    if Params.k p < 2 then []
    else begin
      let x =
        Inputs.gen_promise rng ~k:(Params.k p) ~t:p.Params.players
          ~intersecting:false
      in
      let t = p.Params.players in
      let i = Prng.int rng t in
      let j = (i + 1 + Prng.int rng (t - 1)) mod t in
      let m1 = Prng.int rng (Params.k p) in
      let m2 = (m1 + 1 + Prng.int rng (Params.k p - 1)) mod Params.k p in
      let extra = Printf.sprintf "%s|i=%d;j=%d;m1=%d;m2=%d" (fp_input x) i j m1 m2 in
      [
        cached_item ~journal cache ~budget ~params ~solver:"property3" ~extra
          (fun () ->
            match
              Mis.Exact.solve_budgeted ~budget
                (Linear_family.instance p x).Family.graph
            with
            | Mis.Exact.Complete sol ->
                of_property
                  (Properties.property3 p ~i ~j ~m1 ~m2 ~set:sol.Mis.Exact.set)
            | Mis.Exact.Exhausted e ->
                {
                  name = Printf.sprintf "Property 3 (i=%d,j=%d,m1=%d,m2=%d)" i j m1 m2;
                  status =
                    Inconclusive
                      {
                        reason = Exec.Budget.reason_to_string e.Mis.Exact.reason;
                        lb = e.Mis.Exact.lb;
                        ub = e.Mis.Exact.ub;
                      };
                  detail = "needs an exact optimum; got certified interval only";
                });
      ]
    end
  in
  p1 @ p2 @ p3

let claim_checks ~pool ~journal ~cache ~budget rng p ~samples =
  let t = p.Params.players in
  let k = Params.k p in
  let params = Format.asprintf "%a" Params.pp p in
  (* Generation stays sequential on [rng]; only the claim evaluations
     (each an exact MaxIS solve) fan out, reassembled in draw order. *)
  let one _i =
    let xi = Inputs.gen_promise rng ~k ~t ~intersecting:true in
    let xd = Inputs.gen_promise rng ~k ~t ~intersecting:false in
    let base =
      [
        ( "claim3",
          fp_input xi,
          fun () -> of_outcome (Claims.claim3_budgeted ~budget p xi) );
        ( "claim5",
          fp_input xd,
          fun () -> of_outcome (Claims.claim5_budgeted ~budget p xd) );
      ]
    in
    let warmup =
      if t = 2 then
        [
          ( "claim1",
            fp_input xi,
            fun () -> of_outcome (Claims.claim1_budgeted ~budget p xi) );
          ( "claim2",
            fp_input xd,
            fun () -> of_outcome (Claims.claim2_budgeted ~budget p xd) );
        ]
      else []
    in
    let tuples =
      if k >= t then
        let ms = Array.of_list (Prng.sample_without_replacement rng k t) in
        let fp_ms =
          Exec.Cache.fingerprint
            (String.concat "," (List.map string_of_int (Array.to_list ms)))
        in
        [
          ( "claim4",
            fp_ms,
            fun () -> of_outcome (Claims.claim4_budgeted ~budget p ~ms) );
          ( "corollary2",
            fp_ms,
            fun () -> of_outcome (Claims.corollary2_budgeted ~budget p ~ms) );
        ]
      else []
    in
    base @ warmup @ tuples
  in
  let tasks = List.concat_map one (List.init samples Fun.id) in
  Exec.Pool.map_list pool
    (fun (solver, extra, compute) ->
      cached_item ~journal cache ~budget ~params ~solver ~extra compute)
    tasks

let condition_checks rng p =
  let spec = Linear_family.spec p in
  let k = Params.k p in
  let t = p.Params.players in
  (* Condition 1: flip one bit of one player's string. *)
  let x = Inputs.gen_promise rng ~k ~t ~intersecting:true in
  let player = Prng.int rng t in
  let strings =
    List.init t (fun i -> Stdx.Bitset.copy (Inputs.string_of_player x i))
  in
  let s = List.nth strings player in
  let bit = Prng.int rng k in
  if Stdx.Bitset.mem s bit then Stdx.Bitset.remove s bit
  else Stdx.Bitset.add s bit;
  let x' = Inputs.make ~k strings in
  let r1 = Family.check_condition1 spec x x' ~player in
  let c1 =
    item "Definition 4, condition 1" r1.Family.ok
      (Printf.sprintf "varied player %d: %d foreign weight diffs, %d foreign edge diffs"
         (player + 1)
         (List.length r1.Family.foreign_weight_diffs)
         (List.length r1.Family.foreign_edge_diffs))
  in
  (* Condition 2 on both sides. *)
  let c2 =
    List.map
      (fun intersecting ->
        let x = Inputs.gen_promise rng ~k ~t ~intersecting in
        let r = Family.check_condition2 spec x in
        item
          (Printf.sprintf "Definition 4, condition 2 (intersecting=%b)" intersecting)
          r.Family.ok
          (Printf.sprintf "OPT=%d expected f=%b decided=%s" r.Family.opt
             r.Family.expected
             (match r.Family.decided with
             | Some b -> string_of_bool b
             | None -> "gap violation")))
      [ true; false ]
  in
  c1 :: c2

let reduction_checks rng p =
  let spec = Linear_family.spec p in
  let x =
    Inputs.gen_promise rng ~k:(Params.k p) ~t:p.Params.players
      ~intersecting:(Prng.bool rng)
  in
  let inst = spec.Family.build x in
  let truth = Commcx.Functions.promise_pairwise_disjointness x in
  let d = Simulation.decide_disjointness inst ~predicate:spec.Family.predicate in
  let answer, outcome =
    Player_sim.decide_disjointness inst ~predicate:spec.Family.predicate
  in
  [
    item "Theorem 5: trace-metered reduction"
      (d.Simulation.answer = Some truth
      && d.Simulation.report.Simulation.within_bound)
      (Printf.sprintf "OPT=%d, %d blackboard bits <= %d" d.Simulation.opt
         d.Simulation.report.Simulation.blackboard_bits
         d.Simulation.report.Simulation.bound_bits);
    item "Theorem 5: player protocol agrees"
      (answer = Some truth
      && Commcx.Blackboard.bits_written outcome.Player_sim.board
         = d.Simulation.report.Simulation.blackboard_bits)
      (Printf.sprintf "protocol transcript %d bits"
         (Commcx.Blackboard.bits_written outcome.Player_sim.board));
  ]

let run ?(seed = 0xa0d17) ?(samples = 4) ?pool ?cache ?budget ?journal p =
  let pool =
    match pool with Some p -> p | None -> Exec.Pool.create ~jobs:1 ()
  in
  let cache =
    match cache with Some c -> c | None -> Exec.Cache.disabled ()
  in
  let budget = match budget with Some b -> b | None -> Exec.Budget.unlimited in
  let journal =
    match journal with Some j -> j | None -> Exec.Journal.disabled ()
  in
  let rng = Prng.create seed in
  List.concat
    [
      [ code_check p ];
      property_checks ~journal ~cache ~budget rng p ~samples;
      claim_checks ~pool ~journal ~cache ~budget rng p ~samples;
      (if Linear_family.formal_gap_valid p then
         condition_checks rng p @ reduction_checks rng p
       else
         [
           item "Definition 4, conditions + reduction" true
             (Printf.sprintf
                "skipped: formal gap needs ell > alpha*t (ell=%d, alpha*t=%d)"
                (Params.ell p)
                (Params.alpha p * p.Params.players));
         ]);
    ]

let all_ok items = List.for_all passed items

let exit_code items =
  if List.exists failed items then 2
  else if List.exists inconclusive items then 3
  else 0

let pp_item ppf i =
  match i.status with
  | Pass -> Format.fprintf ppf "%-45s ok  %s" i.name i.detail
  | Fail -> Format.fprintf ppf "%-45s FAIL  %s" i.name i.detail
  | Inconclusive { reason; lb; ub } ->
      Format.fprintf ppf "%-45s INCONCLUSIVE  %s (%s; certified OPT in [%d,%d])"
        i.name i.detail reason lb ub
