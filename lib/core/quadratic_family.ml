module Graph = Wgraph.Graph
module Inputs = Commcx.Inputs

let copy_offset p ~player ~side =
  if side < 0 || side > 1 then invalid_arg "Quadratic_family.copy_offset: side";
  ((2 * player) + side) * Base_graph.copy_size p

let n_nodes p = 2 * p.Params.players * Base_graph.copy_size p

let string_length p = Params.k p * Params.k p

let pair_index p ~m1 ~m2 =
  let k = Params.k p in
  if m1 < 0 || m1 >= k || m2 < 0 || m2 >= k then
    invalid_arg "Quadratic_family.pair_index";
  (m1 * k) + m2

(* Inter-player code connections within one side b (the copies of G's
   connections), as in the linear family. *)
let connect_side p g ~side =
  let t = p.Params.players in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      for h = 0 to Params.positions p - 1 do
        Wgraph.Build.connect_complement_of_matching g
          (Base_graph.code_clique p ~offset:(copy_offset p ~player:i ~side) ~h)
          (Base_graph.code_clique p ~offset:(copy_offset p ~player:j ~side) ~h)
      done
    done
  done

let fixed p =
  let g = Graph.create (n_nodes p) in
  for i = 0 to p.Params.players - 1 do
    for side = 0 to 1 do
      Base_graph.build_into p g
        ~offset:(copy_offset p ~player:i ~side)
        ~copy_name:(Printf.sprintf "^(%d,%d)" (i + 1) (side + 1))
    done
  done;
  connect_side p g ~side:0;
  connect_side p g ~side:1;
  (* Fixed weights: every A node weighs ℓ, independent of the inputs. *)
  for i = 0 to p.Params.players - 1 do
    for side = 0 to 1 do
      Array.iter
        (fun v -> Graph.set_weight g v (Params.ell p))
        (Base_graph.a_nodes p ~offset:(copy_offset p ~player:i ~side))
    done
  done;
  let partition =
    Array.init (n_nodes p) (fun v -> v / (2 * Base_graph.copy_size p))
  in
  (g, partition)

(* CSR construction path: same node layout, same edge set, built without
   the n²-bit adjacency matrix so Theorem-2 sweeps reach the same n range
   as the linear family.  Unlike the linear family the instance is not a
   pure reweighting — the inputs add A–A edges between the two sides —
   so the input-dependent edges go into the builder before [finish]. *)

let connect_side_csr p b ~side =
  let module B = Wgraph.Csr.Builder in
  let t = p.Params.players in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      for h = 0 to Params.positions p - 1 do
        let xs = Base_graph.code_clique p ~offset:(copy_offset p ~player:i ~side) ~h in
        let ys = Base_graph.code_clique p ~offset:(copy_offset p ~player:j ~side) ~h in
        let q = Array.length xs in
        for a = 0 to q - 1 do
          for c = 0 to q - 1 do
            if a <> c then B.add_edge b xs.(a) ys.(c)
          done
        done
      done
    done
  done

(* The fixed structure staged into a builder, shared by [fixed_csr] and
   [instance_csr] (which must add its input edges before [finish]). *)
let fixed_csr_builder ~labels p =
  let b = Wgraph.Csr.Builder.create (n_nodes p) in
  for i = 0 to p.Params.players - 1 do
    for side = 0 to 1 do
      Base_graph.build_csr_into ~labels p b
        ~offset:(copy_offset p ~player:i ~side)
        ~copy_name:(Printf.sprintf "^(%d,%d)" (i + 1) (side + 1))
    done
  done;
  connect_side_csr p b ~side:0;
  connect_side_csr p b ~side:1;
  for i = 0 to p.Params.players - 1 do
    for side = 0 to 1 do
      Array.iter
        (fun v -> Wgraph.Csr.Builder.set_weight b v (Params.ell p))
        (Base_graph.a_nodes p ~offset:(copy_offset p ~player:i ~side))
    done
  done;
  b

let partition_csr p =
  Array.init (n_nodes p) (fun v -> v / (2 * Base_graph.copy_size p))

let fixed_csr ?(labels = false) ?shard p =
  let b = fixed_csr_builder ~labels p in
  (Wgraph.Csr.Builder.finish ?shard b, partition_csr p)

let instance_csr ?shard p x =
  if Inputs.t_players x <> p.Params.players then
    invalid_arg "Quadratic_family.instance_csr: wrong number of players";
  if x.Inputs.k <> string_length p then
    invalid_arg "Quadratic_family.instance_csr: wrong string length";
  let b = fixed_csr_builder ~labels:false p in
  let k = Params.k p in
  for i = 0 to p.Params.players - 1 do
    let off1 = copy_offset p ~player:i ~side:0
    and off2 = copy_offset p ~player:i ~side:1 in
    for m1 = 0 to k - 1 do
      for m2 = 0 to k - 1 do
        if not (Inputs.bit x ~player:i (pair_index p ~m1 ~m2)) then
          Wgraph.Csr.Builder.add_edge b
            (Base_graph.a_node p ~offset:off1 ~m:m1)
            (Base_graph.a_node p ~offset:off2 ~m:m2)
      done
    done
  done;
  (Wgraph.Csr.Builder.finish ?shard b, partition_csr p)

let instance p x =
  if Inputs.t_players x <> p.Params.players then
    invalid_arg "Quadratic_family.instance: wrong number of players";
  if x.Inputs.k <> string_length p then
    invalid_arg "Quadratic_family.instance: wrong string length";
  let g, partition = fixed p in
  let k = Params.k p in
  for i = 0 to p.Params.players - 1 do
    let off1 = copy_offset p ~player:i ~side:0
    and off2 = copy_offset p ~player:i ~side:1 in
    for m1 = 0 to k - 1 do
      for m2 = 0 to k - 1 do
        if not (Inputs.bit x ~player:i (pair_index p ~m1 ~m2)) then
          Graph.add_edge g
            (Base_graph.a_node p ~offset:off1 ~m:m1)
            (Base_graph.a_node p ~offset:off2 ~m:m2)
      done
    done
  done;
  { Family.graph = g; partition; params = p }

let expected_cut_size p =
  let t = p.Params.players in
  let q = Params.q p in
  2 * (t * (t - 1) / 2) * Params.positions p * q * (q - 1)

let high_weight p =
  let t = p.Params.players in
  (4 * t * Params.ell p) + (2 * Params.alpha p * t)

let low_weight p =
  let t = p.Params.players in
  (3 * (t + 1) * Params.ell p) + (3 * Params.alpha p * t * t * t)

let formal_gap_valid p = low_weight p < high_weight p

let predicate p =
  if not (formal_gap_valid p) then
    invalid_arg
      "Quadratic_family.predicate: claim bounds do not separate at these \
       parameters (need ell >> alpha*t^3)";
  Predicate.make
    ~name:(Printf.sprintf "quadratic gap (t=%d)" p.Params.players)
    ~high:(high_weight p) ~low:(low_weight p)

let spec p =
  {
    Family.name = "quadratic (Section 5)";
    string_length = string_length p;
    players = p.Params.players;
    build = instance p;
    predicate = predicate p;
    func = Commcx.Functions.promise_pairwise_disjointness;
  }
