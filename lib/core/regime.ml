type t = {
  target_k : int;
  params : Params.t;
  realized_k : int;
  k_ratio : float;
  prime_padding : int;
  linear_gap_valid : bool;
  quadratic_gap_valid : bool;
}

let at ~target_k ~players =
  let cp = Codes.Code_params.paper_regime ~k:target_k in
  let params =
    Params.make ~alpha:cp.Codes.Code_params.alpha ~ell:cp.Codes.Code_params.ell
      ~players
  in
  let realized_k = Params.k params in
  {
    target_k;
    params;
    realized_k;
    k_ratio = float_of_int realized_k /. float_of_int target_k;
    prime_padding = Params.q params - Params.positions params;
    linear_gap_valid = Linear_family.formal_gap_valid params;
    quadratic_gap_valid = Quadratic_family.formal_gap_valid params;
  }

let nodes_linear r = Linear_family.n_nodes r.params

let nodes_quadratic r = Quadratic_family.n_nodes r.params

let pp ppf r =
  Format.fprintf ppf
    "regime(target k=%d -> %a, realized k=%d (x%.2f), padding=%d, gaps \
     lin=%b quad=%b)"
    r.target_k Params.pp r.params r.realized_k r.k_ratio r.prime_padding
    r.linear_gap_valid r.quadratic_gap_valid
