(** Machine checks of Properties 1–3 of Section 4.1.

    These are the structural facts about the fixed construction [G] that
    the claim proofs lean on; each function returns a [result] that states
    whether the property held and carries the measured quantity for test
    messages and bench tables. *)

type result = {
  name : string;
  holds : bool;
  measured : int;  (** the quantity the property bounds (see each check) *)
  bound : int;  (** the bound the property asserts *)
  detail : string;
}

val property1 : Params.t -> m:int -> result
(** Property 1: [(∪ᵢ Codeⁱ_m) ∪ {vⁱ_m}] is independent in the fixed
    linear construction.  [measured] = number of adjacent pairs inside the
    set (bound 0). *)

val property2 : Params.t -> i:int -> j:int -> m1:int -> m2:int -> result
(** Property 2: for [i ≠ j] and [m₁ ≠ m₂], the bipartite graph
    [(Codeⁱ_{m₁}, Codeʲ_{m₂})] has a matching of size [≥ ℓ].
    [measured] = maximum matching size (Hopcroft–Karp); [bound] = ℓ.
    [holds] iff [measured >= bound].
    Raises [Invalid_argument] when [i = j] or [m₁ = m₂]. *)

val property3 :
  Params.t -> i:int -> j:int -> m1:int -> m2:int -> set:Stdx.Bitset.t -> result
(** Property 3: for any independent set [I], at most [α] positions [h]
    have both [σⁱ_{(h,C(m₁)_h)} ∈ I] and [σʲ_{(h,C(m₂)_h)} ∈ I].
    [measured] = number of such positions for the given set; [bound] = α.
    (The caller supplies the independent set; checking independence is the
    caller's business — tests feed exact solutions and random independent
    sets.) *)

val check_all_property1 : Params.t -> result list
(** Property 1 for every [m ∈ [0, k)]. *)

val check_sampled_property2 :
  Stdx.Prng.t -> Params.t -> samples:int -> result list
(** Random (i, j, m₁, m₂) tuples. *)
