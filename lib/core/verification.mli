(** One-call verification: audit everything the paper asserts at a given
    parameter point.

    This is the library behind [maxis_lb verify]: it runs the code-distance
    check (Theorem 4), Properties 1–3, the claims on sampled promise inputs
    from both promise sides, Corollary 2 / Claim 4 on random index tuples,
    both Definition-4 conditions (condition 1 differentially), and — when
    the formal gap separates — the full Theorem-5 reduction through both
    simulator implementations, cross-checked against each other.

    Every check is returned as an [item]; the list is the audit trail. *)

type status =
  | Pass
  | Fail  (** the paper's assertion was checked and is violated *)
  | Inconclusive of { reason : string; lb : int; ub : int }
      (** the budget exhausted before the check could be decided; the
          solver certified [lb <= OPT <= ub], which straddles the claimed
          bound.  Never produced under {!Exec.Budget.unlimited}. *)

type item = {
  name : string;
  status : status;
  detail : string;  (** human-readable evidence, e.g. measured vs bound *)
}

val passed : item -> bool
val failed : item -> bool
val inconclusive : item -> bool

val run :
  ?seed:int ->
  ?samples:int ->
  ?pool:Exec.Pool.t ->
  ?cache:Exec.Cache.t ->
  ?budget:Exec.Budget.t ->
  ?journal:Exec.Journal.t ->
  Params.t ->
  item list
(** [run p] audits the linear family at [p] ([samples] controls the
    randomized checks; default 4).  Raises nothing: failures are reported
    as [Fail] items.

    With [~pool] the exact-solve-heavy claim checks fan out across the
    pool; with [~cache] their results (and Property 3's) are read and
    written through the given {!Exec.Cache}.  Input generation always
    consumes the PRNG in the same order, so the returned items are
    identical for every pool width and cache state.

    With a finite [~budget] each claim solve runs under it; a solve that
    exhausts still decides its claim when the certified interval clears
    the bound, and degrades to [Inconclusive] otherwise.  The budget
    fingerprint is folded into the cache keys, so budgeted and exact
    results never answer for each other.  With [~journal] every cached
    check records completion for crash-safe resumption (see
    {!Exec.Journal}). *)

val all_ok : item list -> bool
(** Every item passed ([Inconclusive] is not ok). *)

val exit_code : item list -> int
(** The CLI contract: [0] if all passed, [2] if any check {e failed}
    (a claimed bound is violated), [3] if none failed but at least one is
    [Inconclusive] (budget exhausted). *)

val pp_item : Format.formatter -> item -> unit
