(** One-call verification: audit everything the paper asserts at a given
    parameter point.

    This is the library behind [maxis_lb verify]: it runs the code-distance
    check (Theorem 4), Properties 1–3, the claims on sampled promise inputs
    from both promise sides, Corollary 2 / Claim 4 on random index tuples,
    both Definition-4 conditions (condition 1 differentially), and — when
    the formal gap separates — the full Theorem-5 reduction through both
    simulator implementations, cross-checked against each other.

    Every check is returned as an [item]; the list is the audit trail. *)

type item = {
  name : string;
  ok : bool;
  detail : string;  (** human-readable evidence, e.g. measured vs bound *)
}

val run :
  ?seed:int ->
  ?samples:int ->
  ?pool:Exec.Pool.t ->
  ?cache:Exec.Cache.t ->
  Params.t ->
  item list
(** [run p] audits the linear family at [p] ([samples] controls the
    randomized checks; default 4).  Raises nothing: failures are reported
    as [ok = false] items.

    With [~pool] the exact-solve-heavy claim checks fan out across the
    pool; with [~cache] their results (and Property 3's) are read and
    written through the given {!Exec.Cache}.  Input generation always
    consumes the PRNG in the same order, so the returned items are
    identical for every pool width and cache state. *)

val all_ok : item list -> bool

val pp_item : Format.formatter -> item -> unit
