(** The linear lower-bound family (Section 4): [t] copies of [H] with
    inter-copy code connections, weighted by the input strings.

    The fixed construction [G] contains copies [H¹, ..., Hᵗ]; for every
    pair [i ≠ j] and every position [h], the cliques [Cⁱ_h] and [Cʲ_h] are
    joined by all edges {e except} the natural perfect matching.  Given
    [x̄ ∈ ({0,1}^k)ᵗ], the instance [G_x̄] sets [w(vⁱ_m) = ℓ] when
    [xⁱ_m = 1] and [1] otherwise; all code nodes have weight 1.

    Gap (Claims 3 and 5): uniquely intersecting inputs admit an
    independent set of weight [t(2ℓ+α)]; pairwise-disjoint inputs admit at
    most [(t+1)ℓ + αt²].  As [t] grows the ratio approaches 1/2 — Lemma 2,
    and with Corollary 1, Theorem 1's [Ω(n/log³n)] for
    (1/2+ε)-approximation. *)

val copy_offset : Params.t -> int -> int
(** Start of copy [i ∈ [0, t)] in the node numbering. *)

val n_nodes : Params.t -> int
(** [t · (k + (ℓ+α)q)]. *)

val fixed : Params.t -> Wgraph.Graph.t * int array
(** The fixed construction [G] (unit weights) and the player partition
    [node ↦ i]. *)

val instance : Params.t -> Commcx.Inputs.t -> Family.instance
(** [G_x̄]: the fixed graph re-weighted by the inputs.  Raises
    [Invalid_argument] if the inputs don't match the parameters ([t]
    strings of length [k]). *)

val fixed_csr :
  ?labels:bool ->
  ?shard:(lo:int -> hi:int -> (int -> int -> unit) -> unit) ->
  Params.t ->
  Wgraph.Csr.t * int array
(** CSR twin of {!fixed}: identical edge set and partition, built through
    {!Base_graph.build_csr_into} without the n²-bit adjacency matrix, so
    Theorem-1 sweeps reach n in the 10⁵–10⁶ range.  Labels off by
    default (they dominate build cost at scale); test/test_csr.ml pins
    [Csr.equal (fst (fixed_csr p)) (Csr.of_graph (fst (fixed p)))].
    [shard] is forwarded to {!Wgraph.Csr.Builder.finish} to sort the
    adjacency rows across a domain pool; the CSR is bit-identical at
    any width. *)

val instance_csr :
  ?shard:(lo:int -> hi:int -> (int -> int -> unit) -> unit) ->
  Params.t ->
  Commcx.Inputs.t ->
  Wgraph.Csr.t * int array
(** CSR twin of {!instance}: the fixed CSR construction re-weighted (by
    structure-sharing {!Wgraph.Csr.reweight}) according to the input
    strings.  Same [Invalid_argument] conditions as {!instance}. *)

val property1_set : Params.t -> m:int -> Stdx.Bitset.t
(** The set [(∪ᵢ Codeⁱ_m) ∪ {vⁱ_m | i}] of Property 1 — independent in
    [G] for every [m]. *)

val expected_cut_size : Params.t -> int
(** [C(t,2) · (ℓ+α) · q · (q−1)]: the inter-copy connection count, which
    is the entire cut — [Θ(t² log² k)] in the paper's regime. *)

val high_weight : Params.t -> int
(** Claim 3's bound [t(2ℓ+α)]. *)

val low_weight : Params.t -> int
(** Claim 5's bound [(t+1)ℓ + αt²]. *)

val formal_gap_valid : Params.t -> bool
(** Whether [low_weight < high_weight], i.e. [ℓ > αt].  (The paper's
    regime [ℓ ≈ log k ≫ α·t] always satisfies it; tiny figure-sized
    parameters may not, in which case only the one-sided claims — not the
    gap predicate — apply.) *)

val predicate : Params.t -> Predicate.t
(** Raises [Invalid_argument] when the formal gap is not valid. *)

val spec : Params.t -> Family.spec
(** The full Definition-4 package: [build = instance], [f] = promise
    pairwise disjointness, [P] = the gap predicate above. *)
