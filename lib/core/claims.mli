(** Machine checks of the paper's Claims 1–7 and Corollary 2.

    Every claim relates the structure of the input vector to the exact
    maximum independent set weight of a constructed instance; here each is
    a function from concrete inputs to a checked inequality.  The checks
    compute OPT with the exact solver — they are the executable versions of
    the paper's case analyses, and the test suite runs them over exhaustive
    small inputs and random promise inputs. *)

type check = {
  name : string;
  holds : bool;
  opt : int;  (** the measured quantity (usually exact OPT) *)
  bound : int;  (** the claimed bound *)
  kind : [ `Lower | `Upper ];
      (** [`Lower]: claim asserts [opt >= bound]; [`Upper]: [opt <= bound] *)
}

val claim1 : Params.t -> Commcx.Inputs.t -> check
(** t = 2, intersecting strings ⇒ the linear instance has an independent
    set of weight ≥ [4ℓ + 2α].  Raises [Invalid_argument] unless the
    params/inputs have exactly two players and the strings intersect. *)

val claim2 : Params.t -> Commcx.Inputs.t -> check
(** t = 2, disjoint strings ⇒ every independent set of the linear
    instance weighs ≤ [3ℓ + 2α + 1]. *)

val claim3 : Params.t -> Commcx.Inputs.t -> check
(** Any [t], all strings sharing an index ⇒ linear OPT ≥ [t(2ℓ + α)]. *)

val claim5 : Params.t -> Commcx.Inputs.t -> check
(** Any [t], pairwise-disjoint strings ⇒ linear OPT ≤ [(t+1)ℓ + αt²]. *)

val claim4 : Params.t -> ms:int array -> check
(** Claim 4, the cardinality core of Corollary 2: with every [vⁱ_{mᵢ}]
    forced into the independent set, the number of {e code} nodes any
    independent set can additionally hold in [∪ᵢ Codeⁱ_{mᵢ}] is at most
    [ℓ + αt²].  Measured by an exact cardinality MIS over the surviving
    code candidates.  Same argument conventions as {!corollary2}. *)

val corollary2 : Params.t -> ms:int array -> check
(** Corollary 2: on the {e fixed} construction with every [vⁱ_{mᵢ}] forced
    heavy and into the independent set (the [mᵢ] distinct), the best
    completion weighs ≤ [(t+1)ℓ + αt²].  [ms.(i)] is player [i]'s index;
    raises [Invalid_argument] unless they are distinct and of length
    [t]. *)

val claim6 : Params.t -> Commcx.Inputs.t -> check
(** Quadratic family, uniquely intersecting ⇒ OPT ≥ [4tℓ + 2αt]. *)

val claim7 : Params.t -> Commcx.Inputs.t -> check
(** Quadratic family, pairwise disjoint ⇒ OPT ≤ [3(t+1)ℓ + 3αt³]. *)

(** {1 Budgeted checks}

    Each [claimN_budgeted] runs the same check under an {!Exec.Budget}.
    When the solver completes (always, under {!Exec.Budget.unlimited})
    the outcome is [Decided] and identical to the unbudgeted check.  When
    the budget exhausts, the solver's certified interval [lb <= OPT <= ub]
    may still clear the claimed bound from one side — then the claim is
    [Decided] (with [opt] reporting the deciding interval end rather than
    the unknown true optimum) — otherwise it is [Unresolved], carrying
    the interval and the exhaustion reason. *)

type unresolved = {
  u_name : string;
  u_kind : [ `Lower | `Upper ];
  u_bound : int;
  lb : int;  (** certified: an incumbent independent set achieves it *)
  ub : int;  (** certified relaxation bound *)
  reason : Exec.Budget.reason;
}

type outcome = Decided of check | Unresolved of unresolved

val claim1_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val claim2_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val claim3_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val claim5_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val claim4_budgeted : budget:Exec.Budget.t -> Params.t -> ms:int array -> outcome

val corollary2_budgeted :
  budget:Exec.Budget.t -> Params.t -> ms:int array -> outcome

val claim6_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val claim7_budgeted :
  budget:Exec.Budget.t -> Params.t -> Commcx.Inputs.t -> outcome

val pp : Format.formatter -> check -> unit
val pp_outcome : Format.formatter -> outcome -> unit
