(** Remark 1: the unweighted transformation.

    The hard instances are weighted; Remark 1 converts them to unweighted
    graphs at the cost of a logarithmic factor in the round bound.  Every
    node of weight [w > 1] is replaced by an independent set [I(v)] of [w]
    unit-weight nodes; a unit neighbor [u] of [v] connects to all of
    [I(v)], and two heavy neighbors are joined by the complete bipartite
    graph [I(u) × I(v)].

    Because [I(v)] is internally edgeless and its members have identical
    closed neighborhoods outside, an optimal independent set takes all of
    [I(v)] or none of it — so OPT is preserved exactly, node for node, and
    the same gap predicate applies to the transformed instance. *)

type t = {
  graph : Wgraph.Graph.t;  (** all weights 1 *)
  partition : int array;  (** blown-up nodes inherit their owner *)
  origin : int array;  (** new node ↦ original node *)
  clones : int array array;  (** original node ↦ its I(v) (new nodes) *)
}

val transform : Wgraph.Graph.t -> int array -> t
(** [transform g part]: blow up [g] (with node partition [part]) as in
    Remark 1.  Raises [Invalid_argument] when a node has weight 0. *)

val transform_instance : Family.instance -> t

val lift_set : t -> Stdx.Bitset.t -> Stdx.Bitset.t
(** Map an independent set of the original graph to the transformed graph
    (each chosen node replaced by its full clone set); preserves
    independence and weight. *)

val project_set : t -> Stdx.Bitset.t -> Stdx.Bitset.t
(** Map a set of transformed nodes back to the original nodes whose clone
    sets are {e fully} contained. *)

val inflation : Wgraph.Graph.t -> int
(** Number of nodes after the transform: [Σ_v w(v)] — [Θ(kℓ)] on the hard
    instances, whence Remark 1's lost log factor. *)

val spec_linear : Params.t -> Family.spec
(** The unweighted linear family as a first-class Definition-4 package:
    [build] composes {!Linear_family.instance} with {!transform_instance},
    the predicate is unchanged (OPT is preserved exactly), and the
    partition is inherited — so the whole reduction pipeline (conditions,
    simulation, bounds) runs on unweighted instances too.  Raises like
    {!Linear_family.predicate} when the formal gap is invalid. *)
