module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type t = {
  graph : Graph.t;
  partition : int array;
  origin : int array;
  clones : int array array;
}

let inflation g = Graph.total_weight g

let transform g part =
  let n = Graph.n g in
  Wgraph.Cut.validate g part;
  let total = inflation g in
  let clones = Array.make n [||] in
  let origin = Array.make total 0 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let w = Graph.weight g v in
    if w = 0 then invalid_arg "Unweighted.transform: zero-weight node";
    clones.(v) <-
      Array.init w (fun _ ->
          let id = !next in
          incr next;
          origin.(id) <- v;
          id)
  done;
  let h = Graph.create total in
  Graph.iter_edges
    (fun u v ->
      (* Remark 1: unit–unit edges persist; a unit node joins all clones of
         a heavy neighbor; two heavy neighbors get the full biclique.  All
         three cases are "connect every clone of u to every clone of v"
         since unit nodes have a single clone. *)
      Array.iter
        (fun cu -> Array.iter (fun cv -> Graph.add_edge h cu cv) clones.(v))
        clones.(u))
    g;
  for v = 0 to n - 1 do
    Array.iteri
      (fun idx c ->
        Graph.set_label h c (Printf.sprintf "%s[%d]" (Graph.label g v) idx))
      clones.(v)
  done;
  let partition = Array.map (fun c -> part.(origin.(c))) (Array.init total Fun.id) in
  { graph = h; partition; origin; clones }

let transform_instance (inst : Family.instance) =
  transform inst.Family.graph inst.Family.partition

let lift_set t s =
  let lifted = Bitset.create (Graph.n t.graph) in
  Bitset.iter
    (fun v -> Array.iter (fun c -> Bitset.add lifted c) t.clones.(v))
    s;
  lifted

let spec_linear p =
  let base = Linear_family.spec p in
  {
    base with
    Family.name = "unweighted linear (Remark 1)";
    build =
      (fun x ->
        let t = transform_instance (Linear_family.instance p x) in
        { Family.graph = t.graph; partition = t.partition; params = p });
  }

let project_set t s =
  let n = Array.length t.clones in
  let projected = Bitset.create n in
  for v = 0 to n - 1 do
    if Array.for_all (fun c -> Bitset.mem s c) t.clones.(v) then
      Bitset.add projected v
  done;
  projected
