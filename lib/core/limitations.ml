module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type report = {
  players : int;
  local_opts : int array;
  best_local : int;
  global_opt : int;
  ratio : float;
  bits : int;
}

let region_sets (inst : Family.instance) =
  let g = inst.Family.graph in
  let t = inst.Family.params.Params.players in
  let sets = Array.init t (fun _ -> Bitset.create (Graph.n g)) in
  Array.iteri (fun v owner -> Bitset.add sets.(owner) v) inst.Family.partition;
  sets

let run (inst : Family.instance) =
  let g = inst.Family.graph in
  let t = inst.Family.params.Params.players in
  let sets = region_sets inst in
  let local_opts =
    Array.map (fun s -> (Mis.Exact.solve_induced g s).Mis.Exact.weight) sets
  in
  let best_local = Array.fold_left max 0 local_opts in
  let global_opt = Mis.Exact.opt g in
  let value_width =
    max 1 (Stdx.Mathx.ceil_log2 (Graph.total_weight g + 1))
  in
  {
    players = t;
    local_opts;
    best_local;
    global_opt;
    ratio =
      (if global_opt = 0 then 1.0
       else float_of_int best_local /. float_of_int global_opt);
    bits = t * value_width;
  }

let as_protocol (spec : Family.spec) =
  {
    Commcx.Protocol.name = "local-optima (1/t-approximation)";
    run =
      (fun x board ->
        let inst = spec.Family.build x in
        let g = inst.Family.graph in
        let sets = region_sets inst in
        let value_width =
          max 1 (Stdx.Mathx.ceil_log2 (Graph.total_weight g + 1))
        in
        let best = ref 0 in
        Array.iteri
          (fun i s ->
            let v = (Mis.Exact.solve_induced g s).Mis.Exact.weight in
            Commcx.Blackboard.write board ~author:i ~bits:value_width
              ~tag:"local-opt" v;
            if v > !best then best := v)
          sets;
        !best >= spec.Family.predicate.Predicate.high);
  }
