(** The base graph [H] of Section 4.1, and the node layout of its copies.

    [H = (V_H, E_H)] consists of:
    - a clique [A = {v₁, ..., v_k}] of [k = (ℓ+α)^α] nodes, and
    - the {e code gadget}: [ℓ+α] cliques [C₁, ..., C_{ℓ+α}], each of [q]
      nodes [σ_{(h,1)}, ..., σ_{(h,q)}] ([q = ℓ+α] when that is prime,
      otherwise the next prime — see DESIGN.md §4);
    - [v_m] is connected to every code node {e outside}
      [Code_m = {σ_{(h, C(m)_h)} | h}], the codeword's node set.

    The lower-bound constructions use [t] (or [2t]) disjoint copies of [H]
    laid out consecutively; all indexing here is relative to a copy
    [offset], so the same functions serve both families. *)

val copy_size : Params.t -> int
(** Number of nodes of one copy: [k + (ℓ+α)·q]. *)

val a_node : Params.t -> offset:int -> m:int -> int
(** The node [v_m] of the copy starting at [offset]; [m ∈ [0, k)]. *)

val sigma_node : Params.t -> offset:int -> h:int -> r:int -> int
(** The node [σ_{(h,r)}]; [h ∈ [0, ℓ+α)], [r ∈ [0, q)]. *)

val code_clique : Params.t -> offset:int -> h:int -> int array
(** All [q] nodes of the clique [C_h]. *)

val code_nodes : Params.t -> offset:int -> m:int -> int array
(** [Code_m]: the [ℓ+α] code nodes selected by the codeword [C(m)], one
    per position. *)

val all_code_nodes : Params.t -> offset:int -> int array
(** The whole code gadget of the copy. *)

val a_nodes : Params.t -> offset:int -> int array
(** The whole clique [A] of the copy. *)

val node_kind : Params.t -> offset:int -> int -> [ `A of int | `Sigma of int * int ]
(** Inverse of the layout within one copy: which role does a node play?
    Raises [Invalid_argument] if the node is outside the copy. *)

val build_csr_into :
  ?labels:bool ->
  Params.t ->
  Wgraph.Csr.Builder.t ->
  offset:int ->
  copy_name:string ->
  unit
(** CSR twin of [build_into], for large-n sweeps: identical edge set,
    built directly (the codeword's own code nodes are skipped rather than
    connected and removed).  Node labels are only materialized with
    [~labels:true] (default off — they dominate build cost at n ≥ 10⁵).
    test/test_csr.ml pins [Csr.equal] against [Csr.of_graph] of the
    bitset construction. *)

val build_into : Params.t -> Wgraph.Graph.t -> offset:int -> copy_name:string -> unit
(** Wire one copy of [H] into the graph at [offset]: the [A] clique, the
    code-gadget cliques, and the [v_m ↔ Code \ Code_m] edges; also sets
    node labels ["v^<copy>_<m>"] and ["s^<copy>_(h,r)"] (1-based like the
    paper). *)
