(** The Theorem-5 simulation, executed {e literally}: [t] player objects,
    each simulating only the CONGEST nodes of its own region [Vⁱ], with
    every cross-region message physically routed through a shared
    {!Commcx.Blackboard}.

    {!Simulation} meters cut traffic post hoc from the monolithic runtime's
    trace; this module instead re-implements the proof's protocol — player
    [i] steps its nodes, delivers [Vⁱ]-internal messages privately, and
    writes messages bound for other regions on the blackboard, where the
    destination's owner picks them up next round.  The two implementations
    must agree exactly (same outputs, same cross bits); the test suite pins
    that equivalence, which is strong evidence that the bit accounting
    behind the reproduced Theorem-5 numbers is faithful.

    Bit accounting matches the paper's: each blackboard write declares the
    message's own size ([O(log n)] bits); the edge addressing is part of
    the fixed protocol structure (players enumerate cut edges in a globally
    known order), so it costs no transcript bits. *)

type 'out outcome = {
  outputs : 'out option array;  (** per node, as {!Congest.Runtime.run} *)
  rounds : int;
  all_halted : bool;
  board : Commcx.Blackboard.t;
      (** the transcript: one entry per cross-region message, author = the
          sending player, bits = the message size *)
  internal_bits : int;  (** traffic that stayed inside regions (free) *)
}

val run :
  ?config:Congest.Runtime.config ->
  'out Congest.Program.t ->
  Family.instance ->
  'out outcome
(** Raises the same exceptions as {!Congest.Runtime.run} (bandwidth,
    illegal recipient, broadcast uniformity).  Raises [Invalid_argument]
    when [config.faults] is set: the player protocol is the fault-free
    referee that faulty {!Congest.Runtime} executions are compared
    against, so fault injection here would be circular. *)

val decide_disjointness :
  ?config:Congest.Runtime.config ->
  Family.instance ->
  predicate:Predicate.t ->
  bool option * int outcome
(** The reduction end to end through the player protocol: run the
    universal exact-MaxIS algorithm, classify OPT, return the promise
    pairwise disjointness answer and the full outcome. *)
