module Runtime = Congest.Runtime
module Program = Congest.Program
module Msg = Congest.Msg
module Graph = Wgraph.Graph
module Blackboard = Commcx.Blackboard

type 'out outcome = {
  outputs : 'out option array;
  rounds : int;
  all_halted : bool;
  board : Blackboard.t;
  internal_bits : int;
}

(* One player: the region's node set and the live node instances it
   simulates.  All state of region Vⁱ lives here; the only inter-player
   channel is the blackboard (plus the typed side-queue that decodes the
   written messages — the board carries the accounted bits). *)
type 'out player = {
  player_id : int;
  nodes : int list;  (** ascending *)
  instances : (int * 'out Program.instance) list;
}

type pending = { src : int; dst : int; msg : Msg.t }

let run ?(config = Runtime.default_config) (program : 'out Program.t)
    (inst : Family.instance) =
  (* The player protocol is the fault-free referee: its bit-for-bit
     equivalence with Runtime.run is the invariant fault injection is
     tested AGAINST, so a fault plan here would be circular.  Reject it
     explicitly rather than silently ignoring the field. *)
  if config.Runtime.faults <> None then
    invalid_arg
      "Player_sim.run: fault injection is out of scope for the player \
       protocol (run the faulty execution in Congest.Runtime and compare \
       against this fault-free referee)";
  let g = inst.Family.graph in
  let part = inst.Family.partition in
  let n = Graph.n g in
  let t = Wgraph.Cut.parts part in
  let limit = Runtime.bandwidth_bits config ~n in
  (* Spawn in ascending node order so the randomness streams match the
     monolithic runtime exactly. *)
  let master_rng = Stdx.Prng.create config.Runtime.seed in
  let all_instances = Array.make n None in
  for v = 0 to n - 1 do
    let view =
      {
        Program.id = v;
        n;
        weight = Graph.weight g v;
        neighbors = Stdx.Bitset.to_array (Graph.neighbors g v);
        rng = Stdx.Prng.split master_rng;
      }
    in
    all_instances.(v) <- Some (program.Program.spawn view)
  done;
  let instance_of v =
    match all_instances.(v) with
    | Some i -> i
    | None -> assert false
  in
  let players =
    List.init t (fun p ->
        let nodes = Wgraph.Cut.part_nodes part p in
        {
          player_id = p;
          nodes;
          instances = List.map (fun v -> (v, instance_of v)) nodes;
        })
  in
  let board = Blackboard.create () in
  let internal_bits = ref 0 in
  (* Next-round inboxes, filled by internal delivery and blackboard
     pickup. *)
  let inboxes : (int * Msg.t) list array = Array.make n [] in
  let next_inboxes : (int * Msg.t) list array = Array.make n [] in
  let cross_queue : pending Stdx.Dynvec.t = Stdx.Dynvec.create () in
  let sent_this_round : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let round = ref 0 in
  let all_halted () =
    Array.for_all
      (function Some i -> i.Program.halted () | None -> true)
      all_instances
  in
  while !round < config.Runtime.max_rounds && not (all_halted ()) do
    Hashtbl.reset sent_this_round;
    Array.fill next_inboxes 0 n [];
    Stdx.Dynvec.clear cross_queue;
    (* Each player steps its own nodes; internal messages are delivered
       privately, cross-region messages are written on the board. *)
    List.iter
      (fun player ->
        List.iter
          (fun (v, node) ->
            if not (node.Program.halted ()) then begin
              let outbox = node.Program.step ~round:!round ~inbox:inboxes.(v) in
              (match config.Runtime.mode with
              | Runtime.Unicast -> ()
              | Runtime.Broadcast -> (
                  match outbox with
                  | [] | [ _ ] -> ()
                  | (_, first) :: rest ->
                      List.iter
                        (fun (_, (m : Msg.t)) ->
                          if
                            m.Msg.payload <> first.Msg.payload
                            || m.Msg.bits <> first.Msg.bits
                          then
                            raise
                              (Runtime.Non_uniform_broadcast
                                 { round = !round; src = v }))
                        rest));
              List.iter
                (fun (dst, (m : Msg.t)) ->
                  if not (Graph.has_edge g v dst) then
                    raise
                      (Runtime.Illegal_recipient
                         { round = !round; src = v; dst });
                  let key = (v, dst) in
                  let total =
                    m.Msg.bits
                    + Option.value ~default:0
                        (Hashtbl.find_opt sent_this_round key)
                  in
                  if total > limit then
                    raise
                      (Runtime.Bandwidth_exceeded
                         { round = !round; src = v; dst; bits = total; limit });
                  Hashtbl.replace sent_this_round key total;
                  if part.(dst) = player.player_id then begin
                    (* Internal: player i simulates both endpoints. *)
                    internal_bits := !internal_bits + m.Msg.bits;
                    next_inboxes.(dst) <- (v, m) :: next_inboxes.(dst)
                  end
                  else begin
                    (* Cross: write on the blackboard.  The entry's value
                       encodes the directed edge; bits account the message
                       itself, as in the proof. *)
                    Blackboard.write board ~author:player.player_id
                      ~bits:m.Msg.bits
                      ~tag:(Printf.sprintf "round-%d" !round)
                      ((v * n) + dst);
                    Stdx.Dynvec.push cross_queue { src = v; dst; msg = m }
                  end)
                outbox
            end)
          player.instances)
      players;
    (* Every player reads the board and collects the messages addressed to
       its own nodes. *)
    Stdx.Dynvec.iter
      (fun { src; dst; msg } ->
        next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst))
      cross_queue;
    for v = 0 to n - 1 do
      inboxes.(v) <-
        List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(v)
    done;
    incr round
  done;
  {
    outputs =
      Array.map
        (function Some i -> i.Program.output () | None -> None)
        all_instances;
    rounds = !round;
    all_halted = all_halted ();
    board;
    internal_bits = !internal_bits;
  }

let decide_disjointness ?config (inst : Family.instance) ~predicate =
  let m = Graph.edge_count inst.Family.graph in
  let outcome = run ?config (Congest.Algo_gather.exact_maxis ~m) inst in
  match outcome.outputs.(0) with
  | None ->
      invalid_arg
        "Player_sim.decide_disjointness: gathering did not complete"
  | Some opt -> (Predicate.decides_to predicate opt, outcome)
