type entry = {
  source : string;
  ratio : float;
  rounds : n:float -> float;
  description : string;
}

let log2 = Stdx.Mathx.log2

let bachrach_linear =
  {
    source = "Bachrach et al. PODC 2019";
    ratio = 5.0 /. 6.0;
    rounds = (fun ~n -> n /. (log2 n ** 6.0));
    description = "(5/6+eps)-approx MaxIS needs Omega(n/log^6 n)";
  }

let bachrach_quadratic =
  {
    source = "Bachrach et al. PODC 2019";
    ratio = 7.0 /. 8.0;
    rounds = (fun ~n -> n *. n /. (log2 n ** 7.0));
    description = "(7/8+eps)-approx MaxIS needs Omega(n^2/log^7 n)";
  }

let censor_hillel_exact =
  {
    source = "Censor-Hillel, Khoury, Paz DISC 2017";
    ratio = 1.0;
    rounds = (fun ~n -> n *. n /. (log2 n ** 2.0));
    description = "exact MaxIS needs Omega(n^2/log^2 n)";
  }

let this_paper_linear =
  {
    source = "this paper, Theorem 1";
    ratio = 0.5;
    rounds = (fun ~n -> n /. (log2 n ** 3.0));
    description = "(1/2+eps)-approx MaxIS needs Omega(n/log^3 n)";
  }

let this_paper_quadratic =
  {
    source = "this paper, Theorem 2";
    ratio = 0.75;
    rounds = (fun ~n -> n *. n /. (log2 n ** 3.0));
    description = "(3/4+eps)-approx MaxIS needs Omega(n^2/log^3 n)";
  }

let all =
  [
    censor_hillel_exact;
    bachrach_linear;
    bachrach_quadratic;
    this_paper_linear;
    this_paper_quadratic;
  ]

let improvement_factor ~old_bound ~new_bound ~n =
  new_bound.rounds ~n /. old_bound.rounds ~n
