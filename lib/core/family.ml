module Graph = Wgraph.Graph
module Inputs = Commcx.Inputs

type instance = {
  graph : Graph.t;
  partition : int array;
  params : Params.t;
}

type spec = {
  name : string;
  string_length : int;
  players : int;
  build : Inputs.t -> instance;
  predicate : Predicate.t;
  func : Inputs.t -> bool;
}

let cut_size inst = Wgraph.Cut.size inst.graph inst.partition

let validate_inputs spec x =
  if x.Inputs.k <> spec.string_length then
    invalid_arg
      (Printf.sprintf "Family %s: expected strings of length %d, got %d"
         spec.name spec.string_length x.Inputs.k);
  if Inputs.t_players x <> spec.players then
    invalid_arg
      (Printf.sprintf "Family %s: expected %d players, got %d" spec.name
         spec.players (Inputs.t_players x))

type locality_report = {
  player_changed : int;
  foreign_weight_diffs : int list;
  foreign_edge_diffs : (int * int) list;
  ok : bool;
}

let check_condition1 spec x1 x2 ~player =
  validate_inputs spec x1;
  validate_inputs spec x2;
  for i = 0 to spec.players - 1 do
    let s1 = Inputs.string_of_player x1 i
    and s2 = Inputs.string_of_player x2 i in
    if i <> player && not (Stdx.Bitset.equal s1 s2) then
      invalid_arg
        "Family.check_condition1: inputs differ outside the varied player"
  done;
  let inst1 = spec.build x1 and inst2 = spec.build x2 in
  let g1 = inst1.graph and g2 = inst2.graph in
  if Graph.n g1 <> Graph.n g2 then
    invalid_arg "Family.check_condition1: instance sizes differ";
  let part = inst1.partition in
  let weight_diffs = ref [] in
  for v = Graph.n g1 - 1 downto 0 do
    if Graph.weight g1 v <> Graph.weight g2 v && part.(v) <> player then
      weight_diffs := v :: !weight_diffs
  done;
  let edge_diffs = ref [] in
  let record u v =
    (* An edge difference is foreign unless both endpoints belong to the
       varied player. *)
    if not (part.(u) = player && part.(v) = player) then
      edge_diffs := (u, v) :: !edge_diffs
  in
  Graph.iter_edges (fun u v -> if not (Graph.has_edge g2 u v) then record u v) g1;
  Graph.iter_edges (fun u v -> if not (Graph.has_edge g1 u v) then record u v) g2;
  {
    player_changed = player;
    foreign_weight_diffs = !weight_diffs;
    foreign_edge_diffs = List.rev !edge_diffs;
    ok = !weight_diffs = [] && !edge_diffs = [];
  }

type gap_report = {
  opt : int;
  verdict : Predicate.verdict;
  expected : bool;
  decided : bool option;
  ok : bool;
}

let check_condition2 spec x =
  validate_inputs spec x;
  let inst = spec.build x in
  let opt = Mis.Exact.opt inst.graph in
  let verdict = Predicate.classify spec.predicate opt in
  let expected = spec.func x in
  let decided = Predicate.decides_to spec.predicate opt in
  { opt; verdict; expected; decided; ok = decided = Some expected }
