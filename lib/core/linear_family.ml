module Graph = Wgraph.Graph
module Inputs = Commcx.Inputs
module Bitset = Stdx.Bitset

let copy_offset p i = i * Base_graph.copy_size p

let n_nodes p = p.Params.players * Base_graph.copy_size p

(* Inter-copy code connections: for i < j and every position h, all edges
   between C^i_h and C^j_h except the natural perfect matching (Figure 2). *)
let connect_copies p g =
  let t = p.Params.players in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      for h = 0 to Params.positions p - 1 do
        Wgraph.Build.connect_complement_of_matching g
          (Base_graph.code_clique p ~offset:(copy_offset p i) ~h)
          (Base_graph.code_clique p ~offset:(copy_offset p j) ~h)
      done
    done
  done

let fixed p =
  let g = Graph.create (n_nodes p) in
  for i = 0 to p.Params.players - 1 do
    Base_graph.build_into p g ~offset:(copy_offset p i)
      ~copy_name:(Printf.sprintf "^%d" (i + 1))
  done;
  connect_copies p g;
  let partition =
    Array.init (n_nodes p) (fun v -> v / Base_graph.copy_size p)
  in
  (g, partition)

(* CSR construction path: same node layout, same edge set, built without
   the n²-bit adjacency matrix so Theorem-1 sweeps reach n in the 10⁵–10⁶
   range. *)

let connect_copies_csr p b =
  let module B = Wgraph.Csr.Builder in
  let t = p.Params.players in
  for i = 0 to t - 1 do
    for j = i + 1 to t - 1 do
      for h = 0 to Params.positions p - 1 do
        let xs = Base_graph.code_clique p ~offset:(copy_offset p i) ~h in
        let ys = Base_graph.code_clique p ~offset:(copy_offset p j) ~h in
        let q = Array.length xs in
        for a = 0 to q - 1 do
          for c = 0 to q - 1 do
            if a <> c then B.add_edge b xs.(a) ys.(c)
          done
        done
      done
    done
  done

let fixed_csr ?(labels = false) ?shard p =
  let b = Wgraph.Csr.Builder.create (n_nodes p) in
  for i = 0 to p.Params.players - 1 do
    Base_graph.build_csr_into ~labels p b ~offset:(copy_offset p i)
      ~copy_name:(Printf.sprintf "^%d" (i + 1))
  done;
  connect_copies_csr p b;
  let partition =
    Array.init (n_nodes p) (fun v -> v / Base_graph.copy_size p)
  in
  (Wgraph.Csr.Builder.finish ?shard b, partition)

let instance_csr ?shard p x =
  if Inputs.t_players x <> p.Params.players then
    invalid_arg "Linear_family.instance_csr: wrong number of players";
  if x.Inputs.k <> Params.k p then
    invalid_arg "Linear_family.instance_csr: wrong string length";
  let g, partition = fixed_csr ?shard p in
  let size = Base_graph.copy_size p in
  let weight_of v =
    let i = v / size in
    match Base_graph.node_kind p ~offset:(i * size) v with
    | `A m -> if Inputs.bit x ~player:i m then Params.ell p else 1
    | `Sigma _ -> 1
  in
  (Wgraph.Csr.reweight g weight_of, partition)

let instance p x =
  if Inputs.t_players x <> p.Params.players then
    invalid_arg "Linear_family.instance: wrong number of players";
  if x.Inputs.k <> Params.k p then
    invalid_arg "Linear_family.instance: wrong string length";
  let g, partition = fixed p in
  for i = 0 to p.Params.players - 1 do
    for m = 0 to Params.k p - 1 do
      if Inputs.bit x ~player:i m then
        Graph.set_weight g
          (Base_graph.a_node p ~offset:(copy_offset p i) ~m)
          (Params.ell p)
    done
  done;
  { Family.graph = g; partition; params = p }

let property1_set p ~m =
  let s = Bitset.create (n_nodes p) in
  for i = 0 to p.Params.players - 1 do
    let offset = copy_offset p i in
    Bitset.add s (Base_graph.a_node p ~offset ~m);
    Array.iter (fun v -> Bitset.add s v) (Base_graph.code_nodes p ~offset ~m)
  done;
  s

let expected_cut_size p =
  let t = p.Params.players in
  let q = Params.q p in
  t * (t - 1) / 2 * Params.positions p * q * (q - 1)

let high_weight p =
  p.Params.players * ((2 * Params.ell p) + Params.alpha p)

let low_weight p =
  ((p.Params.players + 1) * Params.ell p)
  + (Params.alpha p * p.Params.players * p.Params.players)

let formal_gap_valid p = low_weight p < high_weight p

let predicate p =
  Predicate.make
    ~name:(Printf.sprintf "linear gap (t=%d)" p.Params.players)
    ~high:(high_weight p) ~low:(low_weight p)

let spec p =
  {
    Family.name = "linear (Section 4)";
    string_length = Params.k p;
    players = p.Params.players;
    build = instance p;
    predicate = predicate p;
    func = Commcx.Functions.promise_pairwise_disjointness;
  }
