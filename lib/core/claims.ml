module Inputs = Commcx.Inputs
module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type check = {
  name : string;
  holds : bool;
  opt : int;
  bound : int;
  kind : [ `Lower | `Upper ];
}

let finish name kind opt bound =
  let holds = match kind with `Lower -> opt >= bound | `Upper -> opt <= bound in
  { name; holds; opt; bound; kind }

let require_players p x n name =
  if p.Params.players <> n || Inputs.t_players x <> n then
    invalid_arg (name ^ ": wrong number of players")

let linear_opt p x =
  Mis.Exact.opt (Linear_family.instance p x).Family.graph

let quadratic_opt p x =
  Mis.Exact.opt (Quadratic_family.instance p x).Family.graph

let claim1 p x =
  require_players p x 2 "Claims.claim1";
  if Inputs.pairwise_disjoint x then
    invalid_arg "Claims.claim1: strings must intersect";
  finish "Claim 1" `Lower (linear_opt p x)
    ((4 * Params.ell p) + (2 * Params.alpha p))

let claim2 p x =
  require_players p x 2 "Claims.claim2";
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim2: strings must be disjoint";
  finish "Claim 2" `Upper (linear_opt p x)
    ((3 * Params.ell p) + (2 * Params.alpha p) + 1)

let claim3 p x =
  (match Inputs.uniquely_intersecting x with
  | Some _ -> ()
  | None -> invalid_arg "Claims.claim3: strings must share an index");
  finish "Claim 3" `Lower (linear_opt p x) (Linear_family.high_weight p)

let claim5 p x =
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim5: strings must be pairwise disjoint";
  finish "Claim 5" `Upper (linear_opt p x) (Linear_family.low_weight p)

let check_distinct_tuple name p ms =
  let t = p.Params.players in
  if Array.length ms <> t then invalid_arg (name ^ ": need t indices");
  let sorted = Array.copy ms in
  Array.sort compare sorted;
  for i = 0 to t - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg (name ^ ": indices must be distinct")
  done

let claim4 p ~ms =
  check_distinct_tuple "Claims.claim4" p ms;
  let t = p.Params.players in
  let g, _ = Linear_family.fixed p in
  (* Candidates: exactly the union of the forced codewords' node sets —
     the set Claim 4 counts over.  All weights are 1 in the fixed graph,
     so the exact MIS weight is the cardinality. *)
  let candidates = Bitset.create (Graph.n g) in
  Array.iteri
    (fun i m ->
      Array.iter
        (fun v -> Bitset.add candidates v)
        (Base_graph.code_nodes p ~offset:(Linear_family.copy_offset p i) ~m))
    ms;
  let sol = Mis.Exact.solve_induced g candidates in
  finish "Claim 4" `Upper sol.Mis.Exact.weight
    (Params.ell p + (Params.alpha p * t * t))

let corollary2 p ~ms =
  let t = p.Params.players in
  check_distinct_tuple "Claims.corollary2" p ms;
  let g, _ = Linear_family.fixed p in
  (* Force each v^i_{m_i} heavy and into the set: give it weight ℓ, and
     restrict the candidate set to the forced nodes plus non-neighbors. *)
  let forced =
    Array.mapi
      (fun i m ->
        Base_graph.a_node p ~offset:(Linear_family.copy_offset p i) ~m)
      ms
  in
  Array.iter (fun v -> Graph.set_weight g v (Params.ell p)) forced;
  let candidates = Bitset.full (Graph.n g) in
  Array.iter
    (fun v -> Bitset.diff_in_place candidates (Graph.neighbors g v))
    forced;
  (* The forced nodes are pairwise non-adjacent (distinct copies), so they
     all survive in [candidates]; any independent set within [candidates]
     containing them is an independent set of G containing them. *)
  (* [candidates] is exactly {forced} ∪ ∪ᵢ Codeⁱ_{mᵢ}: every other A node
     is clique-adjacent to a forced node and every other code node is
     adjacent to its copy's forced node.  The forced nodes conflict with
     nothing in [candidates], so the induced optimum always contains them
     and equals the best "I ⊇ {vⁱ_{mᵢ}}" completion the corollary bounds. *)
  let sol = Mis.Exact.solve_induced g candidates in
  finish "Corollary 2" `Upper sol.Mis.Exact.weight
    (((t + 1) * Params.ell p) + (Params.alpha p * t * t))

let claim6 p x =
  (match Inputs.uniquely_intersecting x with
  | Some _ -> ()
  | None -> invalid_arg "Claims.claim6: strings must share an index");
  finish "Claim 6" `Lower (quadratic_opt p x) (Quadratic_family.high_weight p)

let claim7 p x =
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim7: strings must be pairwise disjoint";
  finish "Claim 7" `Upper (quadratic_opt p x) (Quadratic_family.low_weight p)

let pp ppf c =
  Format.fprintf ppf "%s: opt=%d %s bound=%d [%s]" c.name c.opt
    (match c.kind with `Lower -> ">=" | `Upper -> "<=")
    c.bound
    (if c.holds then "holds" else "VIOLATED")
