module Inputs = Commcx.Inputs
module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type check = {
  name : string;
  holds : bool;
  opt : int;
  bound : int;
  kind : [ `Lower | `Upper ];
}

type unresolved = {
  u_name : string;
  u_kind : [ `Lower | `Upper ];
  u_bound : int;
  lb : int;
  ub : int;
  reason : Exec.Budget.reason;
}

type outcome = Decided of check | Unresolved of unresolved

let finish name kind opt bound =
  let holds = match kind with `Lower -> opt >= bound | `Upper -> opt <= bound in
  { name; holds; opt; bound; kind }

let require_players p x n name =
  if p.Params.players <> n || Inputs.t_players x <> n then
    invalid_arg (name ^ ": wrong number of players")

(* ------------------------------------------------------------------ *)
(* Shared evaluation.

   Every claim is (name, kind, bound, instance); the instance is solved
   exactly or under a budget.  A budgeted solve that exhausts may still
   decide the claim when the certified interval clears the bound from
   either side — only a bound strictly inside (lb, ub] for `Lower (or
   [lb, ub) for `Upper) is genuinely unresolved.  For an
   interval-decided claim [opt] reports the interval end that decided
   it, not the (unknown) true optimum. *)

type instance_ = Whole of Graph.t | Induced of Graph.t * Bitset.t

let solve_exact = function
  | Whole g -> Mis.Exact.opt g
  | Induced (g, cands) -> (Mis.Exact.solve_induced g cands).Mis.Exact.weight

let solve_under budget = function
  | Whole g -> Mis.Exact.solve_budgeted ~budget g
  | Induced (g, cands) -> Mis.Exact.solve_induced_budgeted ~budget g cands

let eval (name, kind, bound, inst) = finish name kind (solve_exact inst) bound

let eval_budgeted budget (name, kind, bound, inst) =
  match solve_under budget inst with
  | Mis.Exact.Complete s -> Decided (finish name kind s.Mis.Exact.weight bound)
  | Mis.Exact.Exhausted e -> (
      let lb = e.Mis.Exact.lb and ub = e.Mis.Exact.ub in
      match kind with
      | `Lower when lb >= bound -> Decided (finish name kind lb bound)
      | `Lower when ub < bound -> Decided (finish name kind ub bound)
      | `Upper when ub <= bound -> Decided (finish name kind ub bound)
      | `Upper when lb > bound -> Decided (finish name kind lb bound)
      | _ ->
          Unresolved
            {
              u_name = name;
              u_kind = kind;
              u_bound = bound;
              lb;
              ub;
              reason = e.Mis.Exact.reason;
            })

(* ------------------------------------------------------------------ *)
(* Claim specs *)

let linear_whole p x = Whole (Linear_family.instance p x).Family.graph

let quadratic_whole p x = Whole (Quadratic_family.instance p x).Family.graph

let claim1_spec p x =
  require_players p x 2 "Claims.claim1";
  if Inputs.pairwise_disjoint x then
    invalid_arg "Claims.claim1: strings must intersect";
  ("Claim 1", `Lower, (4 * Params.ell p) + (2 * Params.alpha p), linear_whole p x)

let claim2_spec p x =
  require_players p x 2 "Claims.claim2";
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim2: strings must be disjoint";
  ( "Claim 2",
    `Upper,
    (3 * Params.ell p) + (2 * Params.alpha p) + 1,
    linear_whole p x )

let claim3_spec p x =
  (match Inputs.uniquely_intersecting x with
  | Some _ -> ()
  | None -> invalid_arg "Claims.claim3: strings must share an index");
  ("Claim 3", `Lower, Linear_family.high_weight p, linear_whole p x)

let claim5_spec p x =
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim5: strings must be pairwise disjoint";
  ("Claim 5", `Upper, Linear_family.low_weight p, linear_whole p x)

let check_distinct_tuple name p ms =
  let t = p.Params.players in
  if Array.length ms <> t then invalid_arg (name ^ ": need t indices");
  let sorted = Array.copy ms in
  Array.sort compare sorted;
  for i = 0 to t - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg (name ^ ": indices must be distinct")
  done

let claim4_spec p ~ms =
  check_distinct_tuple "Claims.claim4" p ms;
  let t = p.Params.players in
  let g, _ = Linear_family.fixed p in
  (* Candidates: exactly the union of the forced codewords' node sets —
     the set Claim 4 counts over.  All weights are 1 in the fixed graph,
     so the exact MIS weight is the cardinality. *)
  let candidates = Bitset.create (Graph.n g) in
  Array.iteri
    (fun i m ->
      Array.iter
        (fun v -> Bitset.add candidates v)
        (Base_graph.code_nodes p ~offset:(Linear_family.copy_offset p i) ~m))
    ms;
  ( "Claim 4",
    `Upper,
    Params.ell p + (Params.alpha p * t * t),
    Induced (g, candidates) )

let corollary2_spec p ~ms =
  let t = p.Params.players in
  check_distinct_tuple "Claims.corollary2" p ms;
  let g, _ = Linear_family.fixed p in
  (* Force each v^i_{m_i} heavy and into the set: give it weight ℓ, and
     restrict the candidate set to the forced nodes plus non-neighbors. *)
  let forced =
    Array.mapi
      (fun i m ->
        Base_graph.a_node p ~offset:(Linear_family.copy_offset p i) ~m)
      ms
  in
  Array.iter (fun v -> Graph.set_weight g v (Params.ell p)) forced;
  let candidates = Bitset.full (Graph.n g) in
  Array.iter
    (fun v -> Bitset.diff_in_place candidates (Graph.neighbors g v))
    forced;
  (* The forced nodes are pairwise non-adjacent (distinct copies), so they
     all survive in [candidates]; any independent set within [candidates]
     containing them is an independent set of G containing them. *)
  (* [candidates] is exactly {forced} ∪ ∪ᵢ Codeⁱ_{mᵢ}: every other A node
     is clique-adjacent to a forced node and every other code node is
     adjacent to its copy's forced node.  The forced nodes conflict with
     nothing in [candidates], so the induced optimum always contains them
     and equals the best "I ⊇ {vⁱ_{mᵢ}}" completion the corollary bounds. *)
  ( "Corollary 2",
    `Upper,
    ((t + 1) * Params.ell p) + (Params.alpha p * t * t),
    Induced (g, candidates) )

let claim6_spec p x =
  (match Inputs.uniquely_intersecting x with
  | Some _ -> ()
  | None -> invalid_arg "Claims.claim6: strings must share an index");
  ("Claim 6", `Lower, Quadratic_family.high_weight p, quadratic_whole p x)

let claim7_spec p x =
  if not (Inputs.pairwise_disjoint x) then
    invalid_arg "Claims.claim7: strings must be pairwise disjoint";
  ("Claim 7", `Upper, Quadratic_family.low_weight p, quadratic_whole p x)

(* ------------------------------------------------------------------ *)
(* Public checkers *)

let claim1 p x = eval (claim1_spec p x)
let claim2 p x = eval (claim2_spec p x)
let claim3 p x = eval (claim3_spec p x)
let claim5 p x = eval (claim5_spec p x)
let claim4 p ~ms = eval (claim4_spec p ~ms)
let corollary2 p ~ms = eval (corollary2_spec p ~ms)
let claim6 p x = eval (claim6_spec p x)
let claim7 p x = eval (claim7_spec p x)

let claim1_budgeted ~budget p x = eval_budgeted budget (claim1_spec p x)
let claim2_budgeted ~budget p x = eval_budgeted budget (claim2_spec p x)
let claim3_budgeted ~budget p x = eval_budgeted budget (claim3_spec p x)
let claim5_budgeted ~budget p x = eval_budgeted budget (claim5_spec p x)
let claim4_budgeted ~budget p ~ms = eval_budgeted budget (claim4_spec p ~ms)

let corollary2_budgeted ~budget p ~ms =
  eval_budgeted budget (corollary2_spec p ~ms)

let claim6_budgeted ~budget p x = eval_budgeted budget (claim6_spec p x)
let claim7_budgeted ~budget p x = eval_budgeted budget (claim7_spec p x)

let pp ppf c =
  Format.fprintf ppf "%s: opt=%d %s bound=%d [%s]" c.name c.opt
    (match c.kind with `Lower -> ">=" | `Upper -> "<=")
    c.bound
    (if c.holds then "holds" else "VIOLATED")

let pp_outcome ppf = function
  | Decided c -> pp ppf c
  | Unresolved u ->
      Format.fprintf ppf "%s: OPT in [%d,%d] %s bound=%d [inconclusive: %a]"
        u.u_name u.lb u.ub
        (match u.u_kind with `Lower -> ">=" | `Upper -> "<=")
        u.u_bound Exec.Budget.pp_reason u.reason
