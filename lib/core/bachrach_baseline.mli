(** The prior state of the art this paper improves: Bachrach, Censor-Hillel,
    Dory, Efron, Leitersdorf & Paz [PODC 2019], plus the exact-MaxIS bound
    of Censor-Hillel, Khoury & Paz [DISC 2017].

    These are the baselines of the reproduction: the paper's contribution
    is a strictly better (ratio, rounds) frontier, and the `baseline` bench
    table prints both frontiers side by side at matched [n].  We reproduce
    the prior results as formulas (their constructions are superseded by
    the very families of Section 4, which for [t = 2] are "simplified
    versions" of [4] — Lemma 1 is this repository's constructive two-party
    baseline). *)

type entry = {
  source : string;
  ratio : float;  (** approximation ratio the bound defeats: (ratio + ε) *)
  rounds : n:float -> float;  (** the Ω(·) round bound, constant 1 *)
  description : string;
}

val bachrach_linear : entry
(** (5/6 + ε)-approx needs Ω(n / log⁶ n). *)

val bachrach_quadratic : entry
(** (7/8 + ε)-approx needs Ω(n² / log⁷ n). *)

val censor_hillel_exact : entry
(** Exact MaxIS needs Ω(n² / log² n). *)

val this_paper_linear : entry
(** (1/2 + ε)-approx needs Ω(n / log³ n) — Theorem 1. *)

val this_paper_quadratic : entry
(** (3/4 + ε)-approx needs Ω(n² / log³ n) — Theorem 2. *)

val all : entry list
(** All five, prior work first. *)

val improvement_factor : old_bound:entry -> new_bound:entry -> n:float -> float
(** Ratio of the new round bound to the old at a given [n] (> 1 means the
    new bound is stronger). *)
