module Graph = Wgraph.Graph

let copy_size p = Params.k p + (Params.positions p * Params.q p)

let a_node p ~offset ~m =
  if m < 0 || m >= Params.k p then invalid_arg "Base_graph.a_node: bad m";
  offset + m

let sigma_node p ~offset ~h ~r =
  if h < 0 || h >= Params.positions p then
    invalid_arg "Base_graph.sigma_node: bad position";
  if r < 0 || r >= Params.q p then invalid_arg "Base_graph.sigma_node: bad symbol";
  offset + Params.k p + (h * Params.q p) + r

let code_clique p ~offset ~h =
  Array.init (Params.q p) (fun r -> sigma_node p ~offset ~h ~r)

let code_nodes p ~offset ~m =
  let w = Params.codeword p m in
  Array.init (Params.positions p) (fun h -> sigma_node p ~offset ~h ~r:w.(h))

let all_code_nodes p ~offset =
  Array.init
    (Params.positions p * Params.q p)
    (fun i -> offset + Params.k p + i)

let a_nodes p ~offset = Array.init (Params.k p) (fun m -> a_node p ~offset ~m)

let node_kind p ~offset v =
  let rel = v - offset in
  if rel < 0 || rel >= copy_size p then
    invalid_arg "Base_graph.node_kind: node outside copy";
  if rel < Params.k p then `A rel
  else
    let c = rel - Params.k p in
    `Sigma (c / Params.q p, c mod Params.q p)

(* CSR twin of [build_into]: [Csr.Builder] has no edge removal, so the
   v_m ↔ Code \ Code_m connections are built directly — for each position
   the codeword's own symbol is skipped instead of added-then-removed.
   Labels are optional: at n ≥ 10⁵ the per-node strings cost more than
   the edges, and the large-n sweeps never read them. *)
let build_csr_into ?(labels = false) p b ~offset ~copy_name =
  let module B = Wgraph.Csr.Builder in
  let clique nodes =
    let n = Array.length nodes in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        B.add_edge b nodes.(i) nodes.(j)
      done
    done
  in
  clique (a_nodes p ~offset);
  for h = 0 to Params.positions p - 1 do
    clique (code_clique p ~offset ~h)
  done;
  for m = 0 to Params.k p - 1 do
    let vm = a_node p ~offset ~m in
    let w = Params.codeword p m in
    for h = 0 to Params.positions p - 1 do
      for r = 0 to Params.q p - 1 do
        if r <> w.(h) then B.add_edge b vm (sigma_node p ~offset ~h ~r)
      done
    done
  done;
  if labels then begin
    for m = 0 to Params.k p - 1 do
      B.set_label b (a_node p ~offset ~m)
        (Printf.sprintf "v%s_%d" copy_name (m + 1))
    done;
    for h = 0 to Params.positions p - 1 do
      for r = 0 to Params.q p - 1 do
        B.set_label b
          (sigma_node p ~offset ~h ~r)
          (Printf.sprintf "s%s_(%d,%d)" copy_name (h + 1) (r + 1))
      done
    done
  end

let build_into p g ~offset ~copy_name =
  (* The clique A. *)
  Wgraph.Build.make_clique_array g (a_nodes p ~offset);
  (* The code-gadget cliques C_h. *)
  for h = 0 to Params.positions p - 1 do
    Wgraph.Build.make_clique_array g (code_clique p ~offset ~h)
  done;
  (* v_m ↔ Code \ Code_m: connect v_m to every code node, then remove the
     codeword's own nodes. *)
  for m = 0 to Params.k p - 1 do
    let vm = a_node p ~offset ~m in
    Array.iter (fun u -> Graph.add_edge g vm u) (all_code_nodes p ~offset);
    Array.iter (fun u -> Graph.remove_edge g vm u) (code_nodes p ~offset ~m)
  done;
  (* Labels, 1-based like the paper. *)
  for m = 0 to Params.k p - 1 do
    Graph.set_label g (a_node p ~offset ~m)
      (Printf.sprintf "v%s_%d" copy_name (m + 1))
  done;
  for h = 0 to Params.positions p - 1 do
    for r = 0 to Params.q p - 1 do
      Graph.set_label g
        (sigma_node p ~offset ~h ~r)
        (Printf.sprintf "s%s_(%d,%d)" copy_name (h + 1) (r + 1))
    done
  done
