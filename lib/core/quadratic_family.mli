(** The quadratic lower-bound family (Section 5): two copies of the linear
    construction, with input-dependent edges {e inside} each player's
    region.

    The fixed graph [F] is [G¹ ∪ G²] (so [2t] copies of [H] in total);
    player [i] owns [Vⁱ = V^{(i,1)} ∪ V^{(i,2)}].  All [A] nodes have fixed
    weight [ℓ]; code nodes weight 1.  The input strings have length [k²],
    indexed by pairs [(m₁, m₂)]; player [i] adds the edge
    [{v^{(i,1)}_{m₁}, v^{(i,2)}_{m₂}}] iff [xⁱ_{(m₁,m₂)} = 0] — absence of
    the edge encodes a 1-bit.  Because the strings are [k² = Θ(n²)] bits
    long while the cut stays [Θ(log² n)], Corollary 1 yields the
    near-quadratic bound of Theorem 2.

    Gap (Claims 6 and 7): uniquely intersecting ⇒ OPT ≥ [4tℓ + 2αt];
    pairwise disjoint ⇒ OPT ≤ [3(t+1)ℓ + 3αt³]; ratio → 3/4. *)

val copy_offset : Params.t -> player:int -> side:int -> int
(** Start of copy [(i, b)]; [side ∈ {0, 1}] selects [G¹]/[G²]. *)

val n_nodes : Params.t -> int
(** [2t · (k + (ℓ+α)q)]. *)

val string_length : Params.t -> int
(** [k²]. *)

val pair_index : Params.t -> m1:int -> m2:int -> int
(** Position of the bit [x_{(m₁,m₂)}] in the length-[k²] string. *)

val fixed : Params.t -> Wgraph.Graph.t * int array
(** [F] with its fixed weights, and the player partition. *)

val instance : Params.t -> Commcx.Inputs.t -> Family.instance
(** [F_x̄]: [F] plus the input edges.  Raises [Invalid_argument] on
    mismatched inputs ([t] strings of length [k²]). *)

val fixed_csr :
  ?labels:bool ->
  ?shard:(lo:int -> hi:int -> (int -> int -> unit) -> unit) ->
  Params.t ->
  Wgraph.Csr.t * int array
(** CSR twin of {!fixed}: identical edge set, weights and partition,
    built without the n²-bit adjacency matrix so Theorem-2 sweeps reach
    the same n range as the linear family.  [shard] is forwarded to
    {!Wgraph.Csr.Builder.finish} to sort the adjacency rows across a
    domain pool; the CSR is bit-identical at any width.
    test/test_csr.ml pins
    [Csr.equal (fst (fixed_csr p)) (Csr.of_graph (fst (fixed p)))]. *)

val instance_csr :
  ?shard:(lo:int -> hi:int -> (int -> int -> unit) -> unit) ->
  Params.t ->
  Commcx.Inputs.t ->
  Wgraph.Csr.t * int array
(** CSR twin of {!instance}.  The input-dependent A–A edges go into the
    builder before [finish] (unlike the linear family, a Theorem-2
    instance is not a pure reweighting of its fixed graph).  Same
    [Invalid_argument] conditions as {!instance}. *)

val expected_cut_size : Params.t -> int
(** [2 · C(t,2) · (ℓ+α) · q(q−1)] — both copies' inter-player code
    connections; the input edges are internal to players and contribute
    nothing. *)

val high_weight : Params.t -> int
(** Claim 6's bound [4tℓ + 2αt]. *)

val low_weight : Params.t -> int
(** Claim 7's bound [3(t+1)ℓ + 3αt³]. *)

val formal_gap_valid : Params.t -> bool
(** Whether [low_weight < high_weight] — true only deep in the paper's
    asymptotic regime ([ℓ ≫ αt³]); the empirical gap (measured OPTs) is
    visible far earlier, which is what the benches report. *)

val predicate : Params.t -> Predicate.t
(** Raises [Invalid_argument] when the formal gap is not valid. *)

val spec : Params.t -> Family.spec
