(** Ablations: which design choices of the construction are load-bearing?

    The paper's gadget leans on a large-distance code (Theorem 4): Property
    2 needs every two codewords to disagree on at least [ℓ] positions, and
    the disjoint-side bounds (Claims 2 and 5) inherit that slack.  This
    module rebuilds the {e same} family with the code swapped out for a
    weak repetition code and measures what breaks:

    - the worst-pair matching drops below [ℓ] (Property 2 fails), and
    - adversarially chosen disjoint inputs push OPT {e above} the Claim-2
      bound — the gap narrows, weakening the hardness the family proves.

    (For [α = 1] every injective map into distinct symbols already has full
    distance, so the ablation needs [α ≥ 2] — which is also the paper's
    regime, where [α ≈ log k / log log k ≫ 1].) *)

type code_kind = Reed_solomon | Repetition

val code_name : code_kind -> string

val params_with_code :
  code_kind -> alpha:int -> ell:int -> players:int -> Params.t
(** Same layout (positions, q, k) for either kind; only the code mapping —
    and hence the [Code_m] node sets — differs.  Raises [Invalid_argument]
    on bad parameters (as {!Params.make}). *)

type report = {
  kind : code_kind;
  min_pairwise_distance : int;  (** over all [k(k-1)/2] codeword pairs *)
  worst_pair : int * int;  (** the messages realizing it *)
  worst_matching : int;  (** max matching for that pair (Property 2's quantity) *)
  ell : int;  (** the distance Property 2 requires *)
  property2_holds : bool;
  claim2_opt : int;  (** exact OPT on the adversarial disjoint input *)
  claim2_bound : int;  (** [3ℓ + 2α + 1] *)
  claim2_holds : bool;
  gap_ratio : float;  (** claim2_opt / (4ℓ+2α): the ratio the family still defeats *)
}

val analyze : code_kind -> alpha:int -> ell:int -> report
(** Two-player analysis: scans all codeword pairs for the minimum distance,
    feeds the worst pair as singleton inputs [({m₁}, {m₂})] into the
    linear family, and solves exactly.  Intended for [alpha = 2] and small
    [ℓ] (the scan is [O(k²·(ℓ+α))]). *)

val bandwidth_report :
  factors:int list -> Params.t -> intersecting:bool -> seed:int -> (int * Simulation.report) list
(** Second ablation: the [c] in the [c·⌈log n⌉] bandwidth only rescales
    Theorem 5's cap, never breaks it.  Runs the max-id flood under each
    bandwidth factor and returns the per-factor simulation reports. *)
