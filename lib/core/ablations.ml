module CP = Codes.Code_params
module CM = Codes.Code_mapping

type code_kind = Reed_solomon | Repetition

let code_name = function
  | Reed_solomon -> "reed-solomon"
  | Repetition -> "repetition"

let params_with_code kind ~alpha ~ell ~players =
  let base = Params.make ~alpha ~ell ~players in
  match kind with
  | Reed_solomon -> base
  | Repetition ->
      let cp = base.Params.cp in
      let weak =
        CM.repetition ~q:cp.CP.q ~l:cp.CP.alpha ~m:cp.CP.positions
      in
      { base with Params.cp = { cp with CP.code = weak } }

type report = {
  kind : code_kind;
  min_pairwise_distance : int;
  worst_pair : int * int;
  worst_matching : int;
  ell : int;
  property2_holds : bool;
  claim2_opt : int;
  claim2_bound : int;
  claim2_holds : bool;
  gap_ratio : float;
}

let analyze kind ~alpha ~ell =
  let p = params_with_code kind ~alpha ~ell ~players:2 in
  let k = Params.k p in
  (* Scan all pairs for the minimum codeword distance. *)
  let words = Array.init k (fun m -> Params.codeword p m) in
  let best = ref (max_int, (0, 1)) in
  for m1 = 0 to k - 1 do
    for m2 = m1 + 1 to k - 1 do
      let d = CM.distance words.(m1) words.(m2) in
      if d < fst !best then best := (d, (m1, m2))
    done
  done;
  let min_dist, (m1, m2) = !best in
  let matching =
    (Properties.property2 p ~i:0 ~j:1 ~m1 ~m2).Properties.measured
  in
  (* Feed the worst pair as the adversarial disjoint input. *)
  let x = Commcx.Inputs.of_bit_lists ~k [ [ m1 ]; [ m2 ] ] in
  let inst = Linear_family.instance p x in
  let opt = Mis.Exact.opt inst.Family.graph in
  let bound = (3 * ell) + (2 * alpha) + 1 in
  {
    kind;
    min_pairwise_distance = min_dist;
    worst_pair = (m1, m2);
    worst_matching = matching;
    ell;
    property2_holds = matching >= ell;
    claim2_opt = opt;
    claim2_bound = bound;
    claim2_holds = opt <= bound;
    gap_ratio = float_of_int opt /. float_of_int ((4 * ell) + (2 * alpha));
  }

let bandwidth_report ~factors p ~intersecting ~seed =
  let rng = Stdx.Prng.create seed in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(Params.k p) ~t:p.Params.players
      ~intersecting
  in
  let inst = Linear_family.instance p x in
  List.map
    (fun factor ->
      let config =
        { Congest.Runtime.default_config with Congest.Runtime.bandwidth_factor = factor }
      in
      let _, report =
        Simulation.simulate ~config (Congest.Algo_flood.max_id ~rounds:5) inst
      in
      (factor, report))
    factors
