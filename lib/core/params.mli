(** Instance parameters for the lower-bound families.

    A parameter pack couples the code parameters [(α, ℓ, q, k)] of
    Section 4.1 with the number of players [t].  The paper chooses
    [t = ⌈2/ε⌉] for Theorem 1 and [t = ⌈3/(4ε) − 1⌉] for Theorem 2;
    {!for_epsilon_linear} and {!for_epsilon_quadratic} reproduce those
    choices. *)

type t = {
  cp : Codes.Code_params.t;
  players : int;  (** the paper's [t]; at least 2 *)
}

val make : alpha:int -> ell:int -> players:int -> t
(** Raises [Invalid_argument] when [players < 2] (or on bad code
    parameters). *)

val figure_params : players:int -> t
(** The parameters of the paper's figures: [ℓ = 2], [α = 1], so [k = 3]
    and the code alphabet is exactly [Σ = {1,2,3}]. *)

val for_epsilon_linear : alpha:int -> ell:int -> epsilon:float -> t
(** [t = ⌈2/ε⌉] (Lemma 2's choice).  Raises [Invalid_argument] unless
    [0 < ε < 1/2]. *)

val for_epsilon_quadratic : alpha:int -> ell:int -> epsilon:float -> t
(** [t = max 2 ⌈3/(4ε) − 1⌉] (Lemma 3's choice).  Raises
    [Invalid_argument] unless [0 < ε < 1/4]. *)

(** {1 Accessors} *)

val k : t -> int
(** [(ℓ+α)^α] — clique size of each [Aⁱ] and the input-string length of the
    linear construction. *)

val ell : t -> int
val alpha : t -> int
val positions : t -> int
(** [ℓ + α]. *)

val q : t -> int
(** Code-gadget clique size (smallest prime [≥ ℓ+α]). *)

val codeword : t -> int -> int array
(** [C(m)], symbols 0-based in [0, q). *)

val pp : Format.formatter -> t -> unit
