module Runtime = Congest.Runtime
module Trace = Congest.Trace

type report = {
  algorithm : string;
  n : int;
  rounds : int;
  cut_size : int;
  bandwidth : int;
  blackboard_bits : int;
  blackboard_writes : int;
  bound_bits : int;
  within_bound : bool;
  total_bits : int;
}

let simulate ?(config = Runtime.default_config) program (inst : Family.instance) =
  let g = inst.Family.graph in
  let result = Runtime.run ~config program g in
  let n = Wgraph.Graph.n g in
  let cut_size = Family.cut_size inst in
  let bandwidth = Runtime.bandwidth_bits config ~n in
  let blackboard_bits = Trace.cut_bits result.Runtime.trace inst.Family.partition in
  let rounds = result.Runtime.rounds_executed in
  (* Directed cut capacity: each undirected cut edge carries up to B bits in
     each direction per round, matching the proof's O(T·|cut|·log n) with
     the constant made explicit. *)
  let bound_bits = rounds * (2 * cut_size) * bandwidth in
  let report =
    {
      algorithm = program.Congest.Program.name;
      n;
      rounds;
      cut_size;
      bandwidth;
      blackboard_bits;
      blackboard_writes =
        Trace.cut_messages result.Runtime.trace inst.Family.partition;
      bound_bits;
      within_bound = blackboard_bits <= bound_bits;
      total_bits = Trace.total_bits result.Runtime.trace;
    }
  in
  (result, report)

type decision = {
  report : report;
  opt : int;
  verdict : Predicate.verdict;
  answer : bool option;
}

let decide_disjointness ?config (inst : Family.instance) ~predicate =
  let g = inst.Family.graph in
  let m = Wgraph.Graph.edge_count g in
  let program = Congest.Algo_gather.exact_maxis ~m in
  let result, report = simulate ?config program inst in
  let opt =
    match result.Runtime.outputs.(0) with
    | Some v -> v
    | None ->
        invalid_arg
          "Simulation.decide_disjointness: gathering did not complete \
           (increase max_rounds)"
  in
  {
    report;
    opt;
    verdict = Predicate.classify predicate opt;
    answer = Predicate.decides_to predicate opt;
  }
