module Runtime = Congest.Runtime
module Trace = Congest.Trace

type report = {
  algorithm : string;
  n : int;
  rounds : int;
  cut_size : int;
  bandwidth : int;
  blackboard_bits : int;
  blackboard_writes : int;
  blackboard_bits_dropped : int;
  blackboard_bits_delivered : int;
  bound_bits : int;
  within_bound : bool;
  total_bits : int;
  faults_injected : int;
}

(* Theorem 5's currency, exported as first-class counters: total
   blackboard writes/bits, the per-player split of the written bits, and
   a per-round ("per-phase") bits histogram.  Bumped once per simulation
   from the already-computed trace aggregates, so observability adds
   nothing to the runtime's hot loop. *)
let round_bits_buckets = [| 16.; 64.; 256.; 1024.; 4096. |]

let meter_blackboard ~algo ~(report_bits : int) ~writes ~per_player ~per_round =
  let labels = [ ("algo", algo) ] in
  Obs.Metrics.inc (Obs.Metrics.counter ~labels "simulation_runs_total");
  Obs.Metrics.add (Obs.Metrics.counter ~labels "blackboard_bits_total") report_bits;
  Obs.Metrics.add (Obs.Metrics.counter ~labels "blackboard_writes_total") writes;
  Array.iteri
    (fun p bits ->
      Obs.Metrics.add
        (Obs.Metrics.counter
           ~labels:(("player", string_of_int p) :: labels)
           "blackboard_player_bits_total")
        bits)
    per_player;
  let h =
    Obs.Metrics.histogram ~labels ~buckets:round_bits_buckets
      "blackboard_round_bits"
  in
  Array.iter (fun bits -> Obs.Metrics.observe h (float_of_int bits)) per_round

let report_of ~config ~algo (inst : Family.instance)
    (result : _ Runtime.result) =
  let n = Wgraph.Graph.n inst.Family.graph in
  let cut_size = Family.cut_size inst in
  let bandwidth = Runtime.bandwidth_bits config ~n in
  let trace = result.Runtime.trace in
  let blackboard_bits = Trace.cut_bits trace inst.Family.partition in
  let rounds = result.Runtime.rounds_executed in
  meter_blackboard ~algo ~report_bits:blackboard_bits
    ~writes:(Trace.cut_messages trace inst.Family.partition)
    ~per_player:(Trace.cut_bits_by_side trace inst.Family.partition)
    ~per_round:(Trace.cut_bits_by_round trace inst.Family.partition);
  (* Directed cut capacity: each undirected cut edge carries up to B bits in
     each direction per round, matching the proof's O(T·|cut|·log n) with
     the constant made explicit.  The cap bounds ATTEMPTED traffic — what
     the algorithm emits — so it holds whether or not a fault plan then
     drops part of it. *)
  let bound_bits = rounds * (2 * cut_size) * bandwidth in
  {
    algorithm = algo;
    n;
    rounds;
    cut_size;
    bandwidth;
    blackboard_bits;
    blackboard_writes = Trace.cut_messages trace inst.Family.partition;
    blackboard_bits_dropped = Trace.cut_bits_dropped trace inst.Family.partition;
    blackboard_bits_delivered =
      Trace.cut_bits_delivered trace inst.Family.partition;
    bound_bits;
    within_bound = blackboard_bits <= bound_bits;
    total_bits = Trace.total_bits trace;
    faults_injected = Trace.total_faults trace;
  }

let simulate ?(config = Runtime.default_config) program (inst : Family.instance) =
  let result = Runtime.run ~config program inst.Family.graph in
  (result, report_of ~config ~algo:program.Congest.Program.name inst result)

let simulate_checked ?(config = Runtime.default_config) program
    (inst : Family.instance) =
  match Runtime.run_checked ~config program inst.Family.graph with
  | Ok result ->
      Ok (result, report_of ~config ~algo:program.Congest.Program.name inst result)
  | Error failure -> Error failure

type engine = List_mode | Flat | Flat_par of Exec.Pool.t

type decision = {
  report : report;
  opt : int;
  verdict : Predicate.verdict;
  answer : bool option;
}

type error =
  | Runtime_failure of Runtime.failure
  | Incomplete of { rounds : int }

let pp_error ppf = function
  | Runtime_failure f -> Runtime.pp_failure ppf f
  | Incomplete { rounds } ->
      Format.fprintf ppf
        "gathering did not complete within %d rounds (increase max_rounds)"
        rounds

let decide_disjointness_checked ?(config = Runtime.default_config)
    ?(engine = List_mode) (inst : Family.instance) ~predicate =
  let g = inst.Family.graph in
  let m = Wgraph.Graph.edge_count g in
  (* The flat engines run the CSR twin of the instance graph under the
     flat gather port; report aggregates (rounds, cut bits, outputs) are
     engine-independent, which test/test_cli.ml pins via stdout parity. *)
  let run_engine () =
    match engine with
    | List_mode ->
        let program = Congest.Algo_gather.exact_maxis ~m in
        (match Runtime.run_checked ~config program g with
        | Ok result ->
            Ok
              ( result,
                report_of ~config ~algo:program.Congest.Program.name inst
                  result )
        | Error failure -> Error failure)
    | Flat | Flat_par _ -> (
        let fp = Congest.Algo_gather.exact_maxis_flat ~m in
        let c = Wgraph.Csr.of_graph g in
        let checked =
          match engine with
          | Flat_par pool -> Runtime.run_flat_par_checked ~config ~pool fp c
          | _ -> Runtime.run_flat_checked ~config fp c
        in
        match checked with
        | Ok result ->
            Ok
              (result, report_of ~config ~algo:fp.Congest.Fastpath.fname inst result)
        | Error failure -> Error failure)
  in
  match run_engine () with
  | Error failure -> Error (Runtime_failure failure)
  | Ok (result, report) -> (
      match result.Runtime.outputs.(0) with
      | None -> Error (Incomplete { rounds = result.Runtime.rounds_executed })
      | Some opt ->
          Ok
            {
              report;
              opt;
              verdict = Predicate.classify predicate opt;
              answer = Predicate.decides_to predicate opt;
            })

let decide_disjointness ?config ?engine (inst : Family.instance) ~predicate =
  match decide_disjointness_checked ?config ?engine inst ~predicate with
  | Ok d -> d
  | Error (Incomplete _) ->
      invalid_arg
        "Simulation.decide_disjointness: gathering did not complete \
         (increase max_rounds)"
  | Error (Runtime_failure f) ->
      invalid_arg
        (Format.asprintf "Simulation.decide_disjointness: %a" Runtime.pp_failure
           f)
