(** The classic two-party ("Alice and Bob") framework the paper goes
    beyond — instantiated with this paper's own t = 2 warm-up family.

    For [t = 2] the promise machinery is unnecessary: {e every} pair of
    strings is either intersecting or disjoint, so Lemma 1's family is a
    family of lower bound graphs with respect to full two-party
    set-disjointness, whose communication complexity is Ω(k) (no
    [1/(t log t)] loss).  The resulting round bound has a better constant
    but is stuck at the (3/4+ε) ratio — the framework's 1/2-approximation
    barrier (Limitations section) is what the multi-party reduction
    removes.  This module packages that baseline framework so the benches
    can print the two frontiers side by side. *)

val params : ell:int -> Params.t
(** Two players, [α = 1] (the warm-up's regime); [ell >= 3] keeps the
    Claim 1/2 gap formal ([3ℓ+2α+1 < 4ℓ+2α ⟺ ℓ > 1]). *)

val spec : Params.t -> Family.spec
(** Definition 4 package w.r.t. {e two-party set-disjointness} (not the
    promise function) and the Claim 1/2 gap predicate
    ([high = 4ℓ+2α], [low = 3ℓ+2α+1]).  Raises [Invalid_argument] unless
    the parameters have exactly two players. *)

val predicate : Params.t -> Predicate.t

type bound = {
  k : int;
  n : int;
  cut : int;
  cc_bits : float;  (** Ω(k), constant 1 — two-party disjointness *)
  rounds_lower_bound : float;
  gamma_defeated : float;  (** 3/4 + ε *)
}

val round_bound : Params.t -> bound
(** The two-party analogue of Corollary 1: [k / (2·|cut|·log n)] rounds for
    (3/4+ε)-approximation — this repository's executable stand-in for the
    Bachrach-et-al.-style two-party baseline (their construction is the
    un-simplified ancestor of this one; see Section 1). *)

val barrier_ratio : float
(** 1/2 — the approximation ratio no two-party reduction can defeat
    (Limitations section). *)
