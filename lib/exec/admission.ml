type t = {
  max_inflight : int;
  default_nodes : int;
  max_nodes : int;
  clock : unit -> float;
  mutable inflight : int;
  mu : Mutex.t;
}

(* Registration is cheap and idempotent (handles are interned), but keep
   the hot decision path to plain atomic bumps. *)
let admitted_total = Obs.Metrics.counter "admission_admitted_total"

let rejected_capacity =
  Obs.Metrics.counter
    ~labels:[ ("reason", "capacity") ]
    "admission_rejected_total"

let rejected_budget =
  Obs.Metrics.counter ~labels:[ ("reason", "budget") ] "admission_rejected_total"

let inflight_gauge = Obs.Metrics.gauge "admission_inflight"

let create ?(max_inflight = 64) ?(default_nodes = 1_000_000)
    ?(max_nodes = 4_000_000) ?(clock = Sys.time) () =
  if max_inflight < 1 then
    invalid_arg "Exec.Admission.create: max_inflight must be >= 1";
  if default_nodes < 1 then
    invalid_arg "Exec.Admission.create: default_nodes must be >= 1";
  if max_nodes < 1 then
    invalid_arg "Exec.Admission.create: max_nodes must be >= 1";
  { max_inflight; default_nodes; max_nodes; clock; inflight = 0; mu = Mutex.create () }

type rejection =
  | Over_capacity of { inflight : int; limit : int }
  | Over_budget of { requested : int; limit : int }

let rejection_to_string = function
  | Over_capacity { inflight; limit } ->
      Printf.sprintf "over capacity: inflight=%d limit=%d" inflight limit
  | Over_budget { requested; limit } ->
      Printf.sprintf "budget too large: requested=%d nodes, limit=%d" requested
        limit

let admit ?requested_nodes ?deadline_s t =
  match requested_nodes with
  | Some r when r > t.max_nodes ->
      Obs.Metrics.inc rejected_budget;
      Error (Over_budget { requested = r; limit = t.max_nodes })
  | _ ->
      let nodes = Option.value requested_nodes ~default:t.default_nodes in
      Mutex.lock t.mu;
      let verdict =
        if t.inflight >= t.max_inflight then
          Error (Over_capacity { inflight = t.inflight; limit = t.max_inflight })
        else begin
          t.inflight <- t.inflight + 1;
          Ok ()
        end
      in
      let now_inflight = t.inflight in
      Mutex.unlock t.mu;
      (match verdict with
      | Ok () ->
          Obs.Metrics.inc admitted_total;
          Obs.Metrics.set inflight_gauge now_inflight
      | Error _ -> Obs.Metrics.inc rejected_capacity);
      Result.map
        (fun () ->
          Budget.create ~max_nodes:nodes ?deadline_s ~clock:t.clock ())
        verdict

let release t =
  Mutex.lock t.mu;
  let bad = t.inflight <= 0 in
  if not bad then t.inflight <- t.inflight - 1;
  let now = t.inflight in
  Mutex.unlock t.mu;
  if bad then invalid_arg "Exec.Admission.release: no slot outstanding";
  Obs.Metrics.set inflight_gauge now

let inflight t =
  Mutex.lock t.mu;
  let v = t.inflight in
  Mutex.unlock t.mu;
  v

let max_inflight t = t.max_inflight
let default_nodes t = t.default_nodes
let max_nodes t = t.max_nodes
