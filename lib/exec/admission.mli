(** Admission control for request-driven execution.

    A long-running service must bound two things before it lets a request
    reach the solver stack: the {b concurrency} it has accepted but not
    yet answered (the in-flight window — beyond it, requests are refused
    with a structured rejection, never queued unboundedly or left to
    hang), and the {b work} any single request may demand (every admitted
    request gets an {!Budget.t} whose node cap is clamped to a server-side
    ceiling, so a hostile or clumsy client cannot wedge a worker).

    The controller is deliberately tiny and lock-protected rather than
    lock-free: admission happens once per request, not once per solver
    node.  It is shared by the serve daemon's dispatcher, but carries no
    socket types — anything that admits work units can use it.

    Metrics ([admission_admitted_total], [admission_rejected_total]
    {%html:<code>{reason}</code>%}, [admission_inflight] gauge) are
    bumped on every decision. *)

type t

val create :
  ?max_inflight:int ->
  ?default_nodes:int ->
  ?max_nodes:int ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [create ()] — [max_inflight] (default 64) caps admitted-but-
    unanswered requests; [default_nodes] (default 1_000_000) is the node
    cap attached to requests that do not ask for one; [max_nodes]
    (default 4_000_000) is the ceiling a request may ask for — above it
    the request is rejected, not silently clamped, so clients learn the
    capacity contract.  [clock] (default [Sys.time]) seeds deadline
    budgets when {!admit} is given [~deadline_s].  Raises
    [Invalid_argument] on non-positive caps. *)

type rejection =
  | Over_capacity of { inflight : int; limit : int }
      (** the in-flight window is full — retry later *)
  | Over_budget of { requested : int; limit : int }
      (** the request asked for more nodes than the server ceiling *)

val rejection_to_string : rejection -> string

val admit :
  ?requested_nodes:int -> ?deadline_s:float -> t -> (Budget.t, rejection) result
(** Try to take one in-flight slot.  [Ok budget] transfers ownership of
    the slot to the caller, who must {!release} it exactly once when the
    request has been answered (any terminal reply — success, error, or
    exhaustion — counts).  The budget's node cap is [requested_nodes]
    when given (rejected if above the ceiling), else [default_nodes];
    [deadline_s] adds a best-effort clock deadline. *)

val release : t -> unit
(** Return one slot.  Raises [Invalid_argument] if called with no slot
    outstanding — a double release is an accounting bug, not a runtime
    condition to tolerate. *)

val inflight : t -> int
(** Slots currently out. *)

val max_inflight : t -> int

val default_nodes : t -> int

val max_nodes : t -> int
