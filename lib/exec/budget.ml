(* A budget is deliberately stateless about *spend*: the solver owns its
   own node counter and asks [check t ~nodes] whether that counter is
   still affordable.  Keeping the tally caller-side is what makes node
   budgets deterministic under parallel fan-out — each subproblem counts
   only its own nodes, so no scheduling order can leak into the answer.
   The only shared mutable state is the cancellation token, which exists
   precisely for the *non*-deterministic budget (the wall-clock
   deadline): whichever domain notices the deadline first trips the
   token and every sibling stops at its next checkpoint. *)

type reason = Nodes | Deadline | Cancelled

type t = {
  max_nodes : int;  (* [max_int] = no node budget *)
  deadline : float;  (* absolute clock value; [infinity] = none *)
  clock : unit -> float;
  every : int;  (* clock/token checkpoint period, in nodes *)
  cancelled : bool Atomic.t;
}

let unlimited =
  {
    max_nodes = max_int;
    deadline = infinity;
    clock = (fun () -> 0.0);
    every = max_int;
    cancelled = Atomic.make false;
  }

let create ?max_nodes ?deadline_s ?(clock = Sys.time) ?(every = 256) () =
  (match max_nodes with
  | Some n when n < 1 -> invalid_arg "Exec.Budget.create: max_nodes must be >= 1"
  | _ -> ());
  if every < 1 then invalid_arg "Exec.Budget.create: every must be >= 1";
  {
    max_nodes = Option.value max_nodes ~default:max_int;
    deadline =
      (match deadline_s with
      | None -> infinity
      | Some s when s < 0.0 ->
          invalid_arg "Exec.Budget.create: deadline_s must be >= 0"
      | Some s -> clock () +. s);
    clock;
    every;
    cancelled = Atomic.make false;
  }

let is_unlimited t =
  t == unlimited || (t.max_nodes = max_int && t.deadline = infinity)

let node_limit t = if t.max_nodes = max_int then None else Some t.max_nodes

let cancel t = Atomic.set t.cancelled true

let cancelled t = Atomic.get t.cancelled

let split t ~pieces =
  if pieces < 1 then invalid_arg "Exec.Budget.split: pieces must be >= 1";
  if t == unlimited then t
  else
    {
      t with
      max_nodes =
        (if t.max_nodes = max_int then max_int
         else Stdlib.max 1 ((t.max_nodes + pieces - 1) / pieces));
      (* [cancelled] is shared on purpose: one deadline trip stops all
         sibling subproblems. *)
    }

let check t ~nodes =
  if t == unlimited then None
  else if nodes > t.max_nodes then Some Nodes
  else if nodes mod t.every = 0 then
    if Atomic.get t.cancelled then Some Cancelled
    else if t.clock () > t.deadline then begin
      (* Trip the shared token so siblings sharing this budget stop at
         their own next checkpoint instead of running to their node
         limits. *)
      Atomic.set t.cancelled true;
      Some Deadline
    end
    else None
  else None

let reason_to_string = function
  | Nodes -> "nodes"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let pp ppf t =
  if is_unlimited t then Format.pp_print_string ppf "unlimited"
  else
    Format.fprintf ppf "nodes<=%s, deadline=%s"
      (if t.max_nodes = max_int then "inf" else string_of_int t.max_nodes)
      (if t.deadline = infinity then "none" else Printf.sprintf "%.3f" t.deadline)

let fingerprint t =
  if is_unlimited t then ""
  else
    Printf.sprintf "nodes=%s;deadline=%b"
      (if t.max_nodes = max_int then "inf" else string_of_int t.max_nodes)
      (t.deadline <> infinity)
