(** Cooperative compute budgets for long-running solves.

    A budget caps a search by {b node count} (deterministic: the solver
    counts its own explored nodes and compares against the cap, so the
    outcome is a pure function of the instance and the cap — never of
    scheduling) and/or by a {b clock deadline} (inherently
    non-deterministic; best-effort, checked every [every] nodes).  A
    shared {b cancellation token} lets one exhausted domain stop its
    siblings promptly: {!split} derives per-subproblem budgets that share
    the token, and a deadline trip in any subproblem cancels the rest.

    Budgets carry no spend state of their own — callers keep their own
    counters and ask {!check}.  This is what lets one budget value be
    reused across parallel subproblems without a shared (and
    order-dependent) tally. *)

type reason =
  | Nodes  (** the node cap was exceeded (deterministic) *)
  | Deadline  (** the clock deadline passed (best-effort) *)
  | Cancelled  (** the shared token was tripped by a sibling or caller *)

type t

val unlimited : t
(** The budget that never exhausts.  {!check} on it is one physical
    comparison, so threading it through a hot loop costs nothing — a
    solver run under [unlimited] behaves instruction-for-instruction
    like an unbudgeted one. *)

val create :
  ?max_nodes:int ->
  ?deadline_s:float ->
  ?clock:(unit -> float) ->
  ?every:int ->
  unit ->
  t
(** [create ~max_nodes ~deadline_s ()] — both caps optional.
    [deadline_s] is seconds from now as measured by [clock] (default
    [Sys.time], i.e. CPU seconds; pass [Unix.gettimeofday] for wall
    clock).  [every] (default 256) is how many nodes pass between
    token/clock checkpoints; the node cap itself is checked on every
    call.  Raises [Invalid_argument] on non-positive caps. *)

val is_unlimited : t -> bool

val node_limit : t -> int option

val check : t -> nodes:int -> reason option
(** [check t ~nodes] — is a search that has explored [nodes] nodes still
    within budget?  [Some reason] means stop now.  The node cap is
    compared on every call; the token and clock only when
    [nodes mod every = 0].  A deadline trip cancels the shared token as
    a side effect. *)

val cancel : t -> unit
(** Trip the token: every searcher sharing this budget (or a {!split} of
    it) reports [Cancelled] at its next checkpoint. *)

val cancelled : t -> bool

val split : t -> pieces:int -> t
(** Per-subproblem share for a parallel fan-out: the node cap is divided
    (ceiling) across [pieces], the deadline and the cancellation token
    are shared.  Splitting {!unlimited} returns {!unlimited}. *)

val reason_to_string : reason -> string

val pp_reason : Format.formatter -> reason -> unit

val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** Stable description of the budget's caps for cache keys: budgeted
    results must never collide with unbudgeted ones.  [""] iff
    {!is_unlimited}. *)
