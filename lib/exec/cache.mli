(** Content-addressed on-disk result cache.

    Exact maximum-weight independent-set solves dominate every sweep in
    the harness; their results depend only on (family, parameters, input)
    and never change, so they are perfect cache fodder.  An entry is keyed
    by the MD5 digest of a canonical string built from the cache schema
    version, the gadget family, the printed parameter pack, a seed, and a
    solver identifier (plus an optional extra component, typically the
    digest of a generated input vector).  Digests depend on nothing but
    that string, so keys are stable across processes and machines.

    Robustness contract:
    - writes are atomic (temp file + [Sys.rename] in the same directory),
      so a crashed or concurrent run never leaves a half-written entry
      visible;
    - reads are corruption-tolerant: an unreadable, truncated, digest-
      mismatched or key-mismatched entry is a {e miss} (counted in
      [errors]), never an exception;
    - a {!disabled} cache never touches the filesystem, so [--no-cache]
      runs are byte-identical to cached runs modulo the counters.

    All operations are safe to call from {!Pool} tasks running on several
    domains: counters are mutex-protected and entry files are written
    under unique temporary names. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;  (** corrupt / unreadable entries tolerated *)
  mutable bytes_read : int;
  mutable bytes_written : int;
}

val schema_version : int
(** Bumping this invalidates every existing entry (it is part of the
    key). *)

val default_dir : string
(** ["results/cache"]. *)

val create : ?fs:Fsio.t -> ?dir:string -> unit -> t
(** A live cache rooted at [dir] (default {!default_dir}).  The directory
    is created lazily on the first store.  [fs] (default {!Fsio.real})
    routes every filesystem operation — the chaos suite passes
    {!Fsio.chaos} here to exercise the corruption-tolerance claims under
    injected faults. *)

val disabled : unit -> t
(** A cache that never hits and never stores; all counters stay 0. *)

val enabled : t -> bool

val stats : t -> stats
(** Live counters of this cache value (shared, mutated in place). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Keys} *)

type key

val key :
  ?extra:string ->
  family:string ->
  params:string ->
  seed:int ->
  solver:string ->
  unit ->
  key
(** Canonical key of one solved instance.  [extra] carries anything else
    the result depends on — conventionally [fingerprint] of the generated
    input. *)

val canonical : key -> string
(** The canonical string the digest is computed from (embeds
    {!schema_version}). *)

val digest_hex : key -> string
(** 32-char lowercase MD5 hex of {!canonical}; the entry's address. *)

val fingerprint : string -> string
(** MD5 hex of an arbitrary string — the conventional way to fold a
    printed input vector into [?extra]. *)

(** {1 Lookup and storage} *)

val find : t -> key -> string option
(** The stored payload, or [None] (miss).  Never raises. *)

val store : t -> key -> string -> unit
(** Atomically persist [payload] under [key].  IO failures are counted in
    [errors] and otherwise ignored — the cache is an accelerator, never a
    correctness dependency. *)

val memo : t -> key -> (unit -> string) -> string
(** [memo t k compute] is [find t k], or [compute ()] stored under [k]. *)

val memo_value :
  t ->
  key ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a
(** Typed {!memo}: a payload that [decode] rejects counts as a corrupt
    entry (miss + error) and is recomputed. *)

val clear : t -> unit
(** Delete every entry under the cache directory (and the directory
    itself).  A disabled cache is a no-op. *)

val mkdir_p : ?fs:Fsio.t -> string -> unit
(** [mkdir] with parents, racing-writer tolerant.  Shared with
    {!Journal} (and anything else persisting under [results/]). *)

val validate_file : ?fs:Fsio.t -> string -> (string, string) result
(** [validate_file path] structurally checks one on-disk entry without a
    key in hand: magic line, header shape, payload digest, and that the
    file's basename matches the MD5 of the canonical key it claims to
    hold.  [Ok canonical] when sound; [Error reason] otherwise.  The
    scanner behind [maxis_lb fsck] ({!Fsck}). *)
