type kind =
  | Cache_io of string
  | Journal_io of string
  | Worker_death of string
  | Net_io of string
  | Io of string

exception Error of kind

let to_string = function
  | Cache_io m -> "cache I/O: " ^ m
  | Journal_io m -> "journal I/O: " ^ m
  | Worker_death m -> "worker domain: " ^ m
  | Net_io m -> "network I/O: " ^ m
  | Io m -> "I/O: " ^ m

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Transient = plausibly succeeds on retry (interrupted syscall, racing
   writer, momentarily missing resource).  Everything else — logic
   errors, assertion failures, user interrupts — must escape
   immediately. *)
let transient = function
  | Error (Cache_io _ | Journal_io _ | Io _ | Worker_death _ | Net_io _) -> true
  | Sys_error _ -> true
  | End_of_file -> true
  | _ -> false

(* The exec library makes no direct unix calls (unix only arrives
   transitively, via stdx), so the fallback backoff
   sleep is a clock spin.  It only ever runs on the rare retry path and
   for a bounded total (attempts are capped); drivers that do link unix
   install [Unix.sleepf] once via [set_default_sleep] so the backoff
   yields the CPU instead of spinning. *)
let spin_sleep seconds =
  if seconds > 0.0 then begin
    let t0 = Sys.time () in
    while Sys.time () -. t0 < seconds do
      ignore (Sys.opaque_identity ())
    done
  end

let default_sleep_ref = ref spin_sleep

let set_default_sleep f = default_sleep_ref := f

let default_sleep d = !default_sleep_ref d

let with_retries ?(attempts = 3) ?(base_delay_s = 0.002) ?sleep ~label f =
  if attempts < 1 then invalid_arg "Exec.Error.with_retries: attempts must be >= 1";
  let sleep = match sleep with Some s -> s | None -> default_sleep in
  let rec go i =
    try f ()
    with e when transient e && i < attempts ->
      (* Interning takes a lock, but only the rare retry path reaches it
         (docs/OBSERVABILITY.md: exec_retries_total{label}). *)
      Obs.Metrics.inc
        (Obs.Metrics.counter ~labels:[ ("label", label) ] "exec_retries_total");
      (* Exponential backoff: base, 2*base, 4*base, ... *)
      sleep (base_delay_s *. float_of_int (1 lsl (i - 1)));
      go (i + 1)
  in
  go 1
