type kind =
  | Cache_io of string
  | Journal_io of string
  | Worker_death of string
  | Io of string

exception Error of kind

let to_string = function
  | Cache_io m -> "cache I/O: " ^ m
  | Journal_io m -> "journal I/O: " ^ m
  | Worker_death m -> "worker domain: " ^ m
  | Io m -> "I/O: " ^ m

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Transient = plausibly succeeds on retry (interrupted syscall, racing
   writer, momentarily missing resource).  Everything else — logic
   errors, assertion failures, user interrupts — must escape
   immediately. *)
let transient = function
  | Error (Cache_io _ | Journal_io _ | Io _ | Worker_death _) -> true
  | Sys_error _ -> true
  | End_of_file -> true
  | _ -> false

(* The exec library carries no unix dependency, so the default backoff
   sleep is a clock spin.  It only ever runs on the rare retry path and
   for a bounded total (attempts are capped), and callers with unix
   linked can inject [Unix.sleepf]. *)
let spin_sleep seconds =
  if seconds > 0.0 then begin
    let t0 = Sys.time () in
    while Sys.time () -. t0 < seconds do
      ignore (Sys.opaque_identity ())
    done
  end

let with_retries ?(attempts = 3) ?(base_delay_s = 0.002) ?(sleep = spin_sleep)
    ~label f =
  if attempts < 1 then invalid_arg "Exec.Error.with_retries: attempts must be >= 1";
  ignore (label : string) (* context for debuggers/backtraces only *);
  let rec go i =
    try f ()
    with e when transient e && i < attempts ->
      (* Exponential backoff: base, 2*base, 4*base, ... *)
      sleep (base_delay_s *. float_of_int (1 lsl (i - 1)));
      go (i + 1)
  in
  go 1
