(** Structured failure taxonomy + bounded retry for the execution
    engine.

    The sweeps this repository runs are hours of deterministic compute;
    the failures that threaten them are mostly {e transient} — an
    interrupted write, a racing renamer, a worker domain that failed to
    spawn under memory pressure.  The policy is uniform: classify,
    retry a bounded number of times with exponential backoff, and only
    then let the error escape (or degrade, where the caller has a sound
    degraded mode — cache writes are dropped, pools shrink). *)

type kind =
  | Cache_io of string  (** result-cache read/write/rename failure *)
  | Journal_io of string  (** sweep-journal open/append failure *)
  | Worker_death of string
      (** a pool worker domain died, could not be spawned, or a poison
          task was quarantined after killing its executors *)
  | Net_io of string
      (** a socket operation failed (accept/connect/read/write on the
          serving layer's wire or scrape sockets, whether kernel-born or
          injected by a [Stdx.Netio] fault plan) — the kind
          [Serve.Balancer] treats as its failover trigger *)
  | Io of string  (** other I/O (CSV writes, figure exports) *)

exception Error of kind

val to_string : kind -> string

val pp : Format.formatter -> kind -> unit

val transient : exn -> bool
(** Worth retrying?  [true] for {!Error} of any kind, [Sys_error] and
    [End_of_file]; [false] for everything else (logic errors must escape
    immediately). *)

val with_retries :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?sleep:(float -> unit) ->
  label:string ->
  (unit -> 'a) ->
  'a
(** [with_retries ~label f] runs [f], retrying up to [attempts] (default
    3) total tries while {!transient} holds, sleeping
    [base_delay_s · 2ⁱ] between tries (default base 2 ms; [sleep]
    defaults to the process-wide sleep of {!set_default_sleep}).
    Every retry bumps the [exec_retries_total{label}] counter, so chaos
    runs can assert that injected transient faults were in fact
    absorbed by this policy.  Non-transient exceptions, and the last
    transient one, propagate unchanged. *)

val set_default_sleep : (float -> unit) -> unit
(** Install the process-wide backoff sleep used when a [with_retries]
    call does not pass its own.  The library default is a [Sys.time]
    clock spin (exec makes no direct unix calls); [bin/] and [bench/]
    install
    [Unix.sleepf] at startup so retry backoff yields the CPU. *)

val default_sleep : float -> unit
(** The currently-installed process-wide sleep ({!set_default_sleep});
    also the default watchdog sleep of {!Pool.create}. *)
