(** Offline integrity scan ("fsck") for the execution engine's on-disk
    state: the result cache tree and the sweep journals.

    The hot paths already degrade gracefully — a corrupt cache entry
    reads as a miss, a torn journal tail stops the resume load — but
    they do so {e silently}, on every run.  [fsck] makes the damage
    explicit and one-time: invalid cache entries are moved to
    [<cache_dir>/quarantine/], stray [.tmp-*] droppings from crashed
    stores are removed, and a journal with a corrupt tail is atomically
    rewritten to its valid prefix with the dropped bytes preserved in
    [<journal_dir>/quarantine/<name>.dropped].  Nothing is destroyed:
    quarantined bytes stay on disk for post-mortems.

    A pass is idempotent (a second scan of a repaired tree quarantines
    nothing), and after a pass every surviving cache entry is a
    guaranteed hit for its key.  Each quarantine bumps
    [fsck_quarantined_total{kind}]. *)

type report = {
  cache_scanned : int;  (** [*.entry] files examined *)
  cache_valid : int;  (** entries passing {!Cache.validate_file} *)
  cache_quarantined : int;  (** invalid entries moved to quarantine *)
  cache_tmp_removed : int;  (** unpublished [.tmp-*] files removed *)
  journals_scanned : int;  (** [*.journal] files examined *)
  journal_lines_valid : int;  (** digest-valid cell lines across journals *)
  journal_lines_dropped : int;  (** invalid lines truncated away *)
}

val empty_report : report

val clean : report -> bool
(** No cache entries quarantined and no journal lines dropped — the
    tree was (or now is) fully valid. *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?fs:Fsio.t ->
  ?cache_dir:string ->
  ?journal_dir:string ->
  ?on_quarantine:(kind:string -> path:string -> unit) ->
  unit ->
  report
(** Scan [cache_dir] (default {!Cache.default_dir}) and [journal_dir]
    (default {!Journal.default_dir}), repairing as described above.
    Missing directories scan as empty.  [on_quarantine] is called once
    per quarantined item with the damage [kind]
    ([cache_entry], [journal_tail], [journal_header],
    [journal_unreadable]) and the offending path; quarantine kinds also
    aggregate in [fsck_quarantined_total{kind}].  Scan order is sorted,
    so reports are deterministic for a given tree. *)
