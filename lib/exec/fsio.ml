(* The execution engine's view of Stdx.Fsio: the same interface and
   plans, plus Obs metering — injections surface as
   fsio_faults_injected_total{kind} so a chaos run's fault pressure is
   visible next to the recovery counters it provokes (cache errors,
   retries, quarantines). *)

include Stdx.Fsio

(* Pre-interned per kind: injection sits on cache/journal hot paths. *)
let m_fault kind =
  Obs.Metrics.counter ~labels:[ ("kind", kind) ] "fsio_faults_injected_total"

let meters =
  lazy
    (List.map
       (fun k -> (k, m_fault k))
       [ "eintr"; "enospc"; "torn"; "flip"; "rename" ])

let chaos ?(on_fault = fun _ -> ()) inj =
  let meters = Lazy.force meters in
  Stdx.Fsio.faulty
    ~on_fault:(fun kind ->
      (match List.assoc_opt kind meters with
      | Some c -> Obs.Metrics.inc c
      | None -> ());
      on_fault kind)
    inj
