(** The execution engine's filesystem interface.

    A re-export of [Stdx.Fsio] (the pluggable operation record, the real
    backend, seeded fault plans) plus {!chaos}, the fault-injecting
    backend the chaos harness feeds to {!Cache}, {!Journal},
    [Obs.Export] and [Stdx.Tablefmt]: every injected fault additionally
    bumps [fsio_faults_injected_total{kind}] in the process-wide metrics
    registry, so a chaos run's fault pressure is visible next to the
    recovery counters it provokes. *)

include module type of struct
  include Stdx.Fsio
end

val chaos : ?on_fault:(string -> unit) -> injector -> t
(** [Stdx.Fsio.faulty] with Obs metering; [on_fault] composes after the
    metric bump. *)
