(** Deterministic, self-healing fixed-size domain worker pool.

    The execution engine behind every fan-out in the repository: parameter
    sweeps, per-trial exact MaxIS solves, the parallel branch-and-bound
    split, the verification audit.  The design goal is a hard determinism
    contract, because the bench harness promises byte-identical tables for
    any [--jobs] setting:

    - {!map} assigns every item a stable index and reassembles results in
      input order, so the caller observes exactly the sequential result no
      matter how tasks were scheduled across domains;
    - when a task raises, {!map} re-raises the exception of the
      {e lowest-index} failing task — the same exception a sequential loop
      would have surfaced first (later tasks may still have run; their
      results are discarded);
    - a pool of [jobs = 1] spawns no domains at all and degrades to a plain
      loop, so the default configuration is exactly the pre-pool code path.

    Pools hold [jobs - 1] worker domains blocked on a condition variable;
    the calling domain participates in every batch, so [jobs] is the true
    parallel width.  Tasks must not themselves call {!map} on the same pool
    (that raises [Invalid_argument] rather than deadlocking).

    {2 Supervision}

    The pool survives its own workers.  A worker that dies mid-task (its
    task raised {!Chaos_kill} — OCaml has no other way to lose a domain
    short of a runtime crash) runs a death protocol: the slot it was
    executing is re-enqueued and drained by the surviving workers or by
    the calling domain, so the batch still completes with results
    byte-identical to [jobs = 1].  Dead workers are replaced by fresh
    domains before the next batch ([pool_worker_restarts_total] counts
    replacements), so the pool heals back to full width.

    A slot whose executions have killed {!create}[ ~kill_limit] workers is
    a {e poison task}: it is quarantined — its result becomes
    [Error.Error (Worker_death _)], which {!map} re-raises under the
    lowest-index rule — instead of being retried forever.  This holds at
    every width, including [jobs = 1], so a deterministic crasher yields
    the identical exception regardless of [--jobs].

    With [~watchdog_s] the calling domain additionally polls worker
    heartbeats between supervision sleeps: a worker holding a task whose
    heartbeat has not advanced within the window is {e condemned} — its
    slot re-enqueued exactly as if it had died, the domain (unkillable
    from outside) leaked and replaced at the next batch.  Without a
    watchdog a genuinely wedged task blocks its batch forever; enable it
    wherever tasks are not trusted to terminate. *)

type t

exception Chaos_kill
(** Chaos-harness hook: a task raising [Chaos_kill] kills its executing
    worker domain (simulating a crash) instead of being recorded as an
    ordinary task failure.  Never raise it outside fault-injection
    tests. *)

val create :
  ?watchdog_s:float ->
  ?kill_limit:int ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  jobs:int ->
  unit ->
  t
(** [create ~jobs ()] spawns [jobs - 1] supervised worker domains
    ([jobs >= 1], else [Invalid_argument]).  The pool registers itself in
    a process-wide exit registry (one [at_exit] hook total), so
    forgetting {!shutdown} never leaves blocked domains behind.  A worker
    that cannot be spawned (after {!Error.with_retries}-bounded retries)
    leaves the pool width-degraded for the current batch — {!map} still
    completes, executed by the workers that do exist plus the calling
    domain — and the spawn is retried before each subsequent batch.

    [kill_limit] (default 2) is the number of workers one slot may kill
    before it is quarantined as a poison task.  [watchdog_s] (default
    off) enables heartbeat supervision with the given stall window, in
    seconds of [clock] (default [Sys.time] — process CPU time; drivers
    that link unix pass [Unix.gettimeofday]); [sleep] (default the
    process-wide {!Error.default_sleep}) paces the supervision poll. *)

val jobs : t -> int
(** The parallel width the pool was created with. *)

val live_workers : t -> int
(** Workers currently believed alive, plus the calling domain: the
    effective width of the next batch before respawning. *)

val restarts : t -> int
(** Worker domains respawned over the pool's lifetime (also aggregated
    process-wide in [pool_worker_restarts_total]). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [Array.map f xs], computed by up to [jobs pool]
    domains.  Results are in input order; see the determinism and
    supervision contracts above for exceptions and worker deaths.
    Raises [Invalid_argument] on a nested or concurrent [map] over the
    same pool, or (at any width, including 1) after {!shutdown}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; same contract. *)

val run_range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [run_range pool ~lo ~hi f] is the reusable barrier primitive behind
    the domain-sharded flat executor (docs/PERF.md).  The interval
    [\[lo, hi)] is split into exactly [jobs pool] contiguous chunks (see
    {!chunk_bounds}); every pool slot — the persistent workers plus the
    calling domain — executes [f clo chi] for one chunk, and the call
    returns only once all chunks have published.  Empty chunks still
    invoke [f clo clo], so per-shard state is reset at every width.

    The barrier reuses one preallocated batch record per pool: a settled
    call allocates no closures and no per-call arrays, which is what
    keeps the parallel round loop at zero minor words per round.

    Exception contract: a chunk body that raises an ordinary exception
    records it; after the barrier the {e lowest-index} failure is
    re-raised (ascending chunks = ascending node ranges, so this is the
    exception ascending sequential execution would have raised first).
    Unlike {!map}, a chunk whose worker dies ({!Chaos_kill}) is {e never
    retried} — range bodies mutate shared state in place, so the first
    kill quarantines the chunk and the call raises
    [Error.Error (Worker_death _)] with a width-independent message:
    the identical exception at every [jobs], including 1.

    Raises [Invalid_argument] if [hi < lo], on a nested or concurrent
    batch over the same pool, or after {!shutdown}. *)

val chunk_bounds : jobs:int -> lo:int -> hi:int -> int -> int * int
(** [chunk_bounds ~jobs ~lo ~hi i] is the half-open interval
    [(clo, chi)] that chunk [i] of a [jobs]-way {!run_range} over
    [\[lo, hi)] covers: sizes differ by at most one and concatenate to
    the whole range in ascending order.  Pure — callers use it to map a
    chunk's [clo] back to its shard index.  Raises [Invalid_argument]
    unless [0 <= i < jobs]. *)

val shutdown : t -> unit
(** Stop and join the worker domains (condemned-but-wedged domains are
    leaked — they cannot be joined without blocking).  Idempotent; a
    [jobs = 1] pool is a no-op.  Subsequent {!map} calls raise. *)

val with_pool :
  ?watchdog_s:float ->
  ?kill_limit:int ->
  ?clock:(unit -> float) ->
  ?sleep:(float -> unit) ->
  jobs:int ->
  (t -> 'a) ->
  'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on any
    exit path. *)

val default_jobs : unit -> int
(** Parallel width requested by the environment: [MAXIS_JOBS] as a
    positive integer, ["auto"] or ["0"] for
    [Domain.recommended_domain_count ()], anything else (or unset) is [1].
    The bench harness sizes its shared pool with this. *)
