(** Deterministic fixed-size domain worker pool.

    The execution engine behind every fan-out in the repository: parameter
    sweeps, per-trial exact MaxIS solves, the parallel branch-and-bound
    split, the verification audit.  The design goal is a hard determinism
    contract, because the bench harness promises byte-identical tables for
    any [--jobs] setting:

    - {!map} assigns every item a stable index and reassembles results in
      input order, so the caller observes exactly the sequential result no
      matter how tasks were scheduled across domains;
    - when a task raises, {!map} re-raises the exception of the
      {e lowest-index} failing task — the same exception a sequential loop
      would have surfaced first (later tasks may still have run; their
      results are discarded);
    - a pool of [jobs = 1] spawns no domains at all and degrades to a plain
      loop, so the default configuration is exactly the pre-pool code path.

    Pools hold [jobs - 1] worker domains blocked on a condition variable;
    the calling domain participates in every batch, so [jobs] is the true
    parallel width.  Tasks must not themselves call {!map} on the same pool
    (that raises [Invalid_argument] rather than deadlocking). *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1], else
    [Invalid_argument]).  The pool is registered for shutdown at process
    exit, so forgetting {!shutdown} never leaves blocked domains behind.
    A worker that cannot be spawned (after {!Error.with_retries}-bounded
    retries) degrades the pool's effective width rather than raising:
    {!map} still completes, executed by the workers that do exist plus
    the calling domain, with the same deterministic results. *)

val jobs : t -> int
(** The parallel width the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [Array.map f xs], computed by up to [jobs pool]
    domains.  Results are in input order; see the determinism contract
    above for exceptions.  Raises [Invalid_argument] on a nested or
    concurrent [map] over the same pool, or after {!shutdown}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; same contract. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; a [jobs = 1] pool is a
    no-op.  Subsequent {!map} calls with [jobs > 1] raise. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on any
    exit path. *)

val default_jobs : unit -> int
(** Parallel width requested by the environment: [MAXIS_JOBS] as a
    positive integer, ["auto"] or ["0"] for
    [Domain.recommended_domain_count ()], anything else (or unset) is [1].
    The bench harness sizes its shared pool with this. *)
