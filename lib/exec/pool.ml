(* A fixed-size pool of worker domains fed by a per-batch atomic task
   counter.  Determinism does not come from scheduling (tasks are claimed
   first-come-first-served) but from indexing: task [i] writes only slot
   [i] of the result array, and the caller reassembles slots in input
   order.  The mutex/condition handshake that ends a batch establishes the
   happens-before edge that makes those slot writes visible to the
   caller. *)

type job = { run : int -> unit; count : int }

type shared = {
  m : Mutex.t;
  ready : Condition.t;  (* a new batch was published (gen bumped) *)
  finished : Condition.t;  (* a worker drained its share of the batch *)
  mutable job : job option;
  mutable gen : int;  (* batch generation; workers chase it *)
  mutable busy_workers : int;  (* workers not yet done with current batch *)
  mutable stop : bool;
  next : int Atomic.t;  (* next unclaimed task index of the batch *)
}

type t = {
  jobs : int;
  shared : shared option;  (* None iff jobs = 1 *)
  mutable domains : unit Domain.t array;
  mutable alive : bool;
}

let jobs t = t.jobs

(* Pool metrics (docs/OBSERVABILITY.md).  One histogram observation per
   [map] batch — never per task — so instrumentation stays off the
   steal-free claim path. *)
let m_batches = Obs.Metrics.counter "pool_batches_total"

let m_tasks = Obs.Metrics.counter "pool_tasks_total"

let m_workers = Obs.Metrics.gauge "pool_workers"

let m_map_seconds =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.default_latency_buckets
    "pool_map_seconds"

let timed_batch ~count f =
  Obs.Metrics.inc m_batches;
  Obs.Metrics.add m_tasks count;
  let t0 = Obs.Span.now () in
  let r = f () in
  Obs.Metrics.observe m_map_seconds (Obs.Span.now () -. t0);
  r

let drain sh job =
  let rec go () =
    let i = Atomic.fetch_and_add sh.next 1 in
    if i < job.count then begin
      job.run i;
      go ()
    end
  in
  go ()

let rec worker_loop sh seen =
  Mutex.lock sh.m;
  let rec await () =
    if sh.stop then None
    else if sh.gen <> seen then Some (sh.gen, Option.get sh.job)
    else begin
      Condition.wait sh.ready sh.m;
      await ()
    end
  in
  match await () with
  | None -> Mutex.unlock sh.m
  | Some (gen, job) ->
      Mutex.unlock sh.m;
      drain sh job;
      Mutex.lock sh.m;
      sh.busy_workers <- sh.busy_workers - 1;
      if sh.busy_workers = 0 then Condition.broadcast sh.finished;
      Mutex.unlock sh.m;
      worker_loop sh gen

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    match t.shared with
    | None -> ()
    | Some sh ->
        Mutex.lock sh.m;
        sh.stop <- true;
        Condition.broadcast sh.ready;
        Mutex.unlock sh.m;
        Array.iter Domain.join t.domains;
        t.domains <- [||]
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
  if jobs = 1 then { jobs; shared = None; domains = [||]; alive = true }
  else begin
    let sh =
      {
        m = Mutex.create ();
        ready = Condition.create ();
        finished = Condition.create ();
        job = None;
        gen = 0;
        busy_workers = 0;
        stop = false;
        next = Atomic.make 0;
      }
    in
    let t = { jobs; shared = Some sh; domains = [||]; alive = true } in
    (* Spawning can fail transiently (thread limits, memory pressure).
       Retry each worker briefly; a worker that still cannot spawn
       degrades the pool's width instead of killing the run — [map]
       counts the workers that actually exist, and the calling domain
       always participates, so a fully degraded pool is a plain loop. *)
    let spawned = ref [] in
    for _ = 1 to jobs - 1 do
      match
        Error.with_retries ~label:"pool.spawn" (fun () ->
            try Domain.spawn (fun () -> worker_loop sh 0)
            with e ->
              raise (Error.Error (Error.Worker_death (Printexc.to_string e))))
      with
      | d -> spawned := d :: !spawned
      | exception Error.Error (Error.Worker_death _) -> ()
    done;
    t.domains <- Array.of_list !spawned;
    Obs.Metrics.set m_workers (Array.length t.domains + 1);
    (* Domains left blocked at process exit would make [exit] hang; make
       every pool self-collecting. *)
    at_exit (fun () -> shutdown t);
    t
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    timed_batch ~count:n @@ fun () ->
    match t.shared with
    | None -> Array.map f xs
    | Some sh ->
        if not t.alive then invalid_arg "Exec.Pool.map: pool was shut down";
        let slots = Array.make n None in
        let run i =
          slots.(i) <-
            Some
              (try Ok (f xs.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()))
        in
        let job = { run; count = n } in
        Mutex.lock sh.m;
        if sh.job <> None then begin
          Mutex.unlock sh.m;
          invalid_arg "Exec.Pool.map: nested or concurrent map on one pool"
        end;
        Atomic.set sh.next 0;
        sh.job <- Some job;
        sh.gen <- sh.gen + 1;
        sh.busy_workers <- Array.length t.domains;
        Condition.broadcast sh.ready;
        Mutex.unlock sh.m;
        (* The calling domain is worker number [jobs]. *)
        drain sh job;
        Mutex.lock sh.m;
        while sh.busy_workers > 0 do
          Condition.wait sh.finished sh.m
        done;
        sh.job <- None;
        Mutex.unlock sh.m;
        (* Reassemble in input order; re-raise the lowest-index failure
           (what a sequential loop would have raised first). *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) -> ()
            | None -> assert false)
          slots;
        Array.map
          (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
          slots

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "MAXIS_JOBS" with
  | None -> 1
  | Some s -> (
      match String.trim (String.lowercase_ascii s) with
      | "" -> 1
      | "auto" | "0" -> Domain.recommended_domain_count ()
      | s -> (
          match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 1))
