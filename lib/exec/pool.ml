(* A fixed-size, self-healing pool of worker domains fed by a per-batch
   atomic task counter.

   Determinism does not come from scheduling (tasks are claimed
   first-come-first-served) but from indexing: task [i] publishes only
   slot [i] of the result array, and the caller reassembles slots in
   input order.  Slot publication is CAS-once ([pub.(i)]: 0 -> 1), so a
   slot re-enqueued after a worker death and then raced by the
   not-actually-dead original executor still gets exactly one result.
   The [Atomic.incr filled] after a winning CAS is the happens-before
   edge that makes the (nonatomic) slot write visible to whoever later
   reads [filled = count].

   Supervision model.  OCaml domains cannot be killed from outside, so
   "supervision" means three things:

   - a worker whose task raises {!Chaos_kill} (the chaos harness's
     simulated crash) runs a death protocol on the way out: its claimed
     slot is re-enqueued for survivors, its kill is charged to that
     slot, and the caller is woken;
   - the caller itself drains re-enqueued slots (it can always make
     progress even if every worker is gone), and with [~watchdog_s] it
     additionally polls worker heartbeats: a worker holding a claim
     whose heartbeat has not moved within the window is {e condemned} —
     marked dead for accounting, its slot re-enqueued — and since a
     wedged domain cannot be interrupted, the domain itself is leaked
     (never joined) and merely re-checked for a late exit;
   - a slot whose executions have killed [kill_limit] workers is a
     {e poison task}: it is quarantined by publishing
     [Error.Worker_death] as its result instead of re-enqueueing, so a
     deterministic crasher terminates the batch instead of eating the
     whole pool.

   Dead workers are replaced between batches (never mid-batch, so a
   batch's worker array is stable), counted in
   [pool_worker_restarts_total]. *)

exception Chaos_kill

type batch = {
  count : int;
  mutable exec : int -> unit;
      (* compute + publish slot i; may raise Chaos_kill.  Mutable only
         so the reusable [run_range] batch can be wired up after the
         record exists; [map] never reassigns it. *)
  mutable poison : int -> int -> unit;
      (* publish Worker_death for (slot, kills) *)
  next : int Atomic.t;  (* next unclaimed primary index *)
  requeued : int Queue.t;  (* slots orphaned by dead workers; under [m] *)
  kills : int array;  (* worker deaths charged per slot; under [m] *)
  retry : bool;
      (* re-enqueue a killed slot (map semantics)?  [run_range] sets
         false: its tasks mutate shared state in place, so a partially
         executed chunk must never run twice — the first kill poisons. *)
}

type shared = {
  m : Mutex.t;
  ready : Condition.t;  (* a new batch was published (gen bumped) *)
  finished : Condition.t;  (* batch progress: idle worker, death, requeue *)
  mutable job : batch option;
  mutable gen : int;  (* batch generation; workers chase it *)
  mutable stop : bool;
  kill_limit : int;
}

(* One worker incarnation.  Records are immutable per incarnation — a
   respawn installs a fresh record, so a leaked (condemned, wedged)
   domain still owns its old record and cannot confuse its successor. *)
type worker = {
  mutable domain : unit Domain.t option;
  alive : bool Atomic.t;  (* false once dead or condemned *)
  exited : bool Atomic.t;  (* domain body returned; safe to join *)
  condemned : bool Atomic.t;  (* watchdog verdict; checked between tasks *)
  heartbeat : int Atomic.t;  (* bumped on every claim and publish *)
  claim : int Atomic.t;  (* slot being executed, or -1 *)
}

(* Reusable state for {!run_range}: one chunk per pool slot, rebuilt
   never — the same batch record, publication flags and error slots are
   reset in place each call, so a settled barrier round allocates
   nothing (the closures below are created once per pool, not per
   call). *)
type range_state = {
  mutable rs_f : int -> int -> unit;  (* body for the current call *)
  mutable rs_lo : int;
  mutable rs_hi : int;
  mutable rs_gen : int;  (* generation the current call is wired for *)
  rs_pub : int Atomic.t array;
      (* chunk publication, generation-tagged because the record is
         reused: [g] = open for generation [g], [-g] = published for
         generation [g], [0] = never opened (matches no generation, so
         nothing can publish before the first call). *)
  rs_err : (exn * Printexc.raw_backtrace) option array;
  rs_filled : int Atomic.t;
  rs_batch : batch;
  mutable rs_job : batch option;  (* preallocated [Some rs_batch] *)
  rs_hb : int array;  (* watchdog scratch, sized [jobs - 1] *)
  rs_move : float array;
}

type t = {
  jobs : int;
  id : int;
  shared : shared option;  (* None iff jobs = 1 *)
  mutable workers : worker array;
  mutable alive : bool;
  mutable restarts : int;  (* workers respawned over the pool's life *)
  mutable range : range_state option;  (* lazily built on first run_range *)
  kill_limit : int;
  watchdog_s : float option;
  clock : unit -> float;
  sleep : float -> unit;
}

let jobs t = t.jobs

let restarts t = t.restarts

(* Pool metrics (docs/OBSERVABILITY.md).  One histogram observation per
   [map] batch — never per task — so instrumentation stays off the
   steal-free claim path. *)
let m_batches = Obs.Metrics.counter "pool_batches_total"

let m_tasks = Obs.Metrics.counter "pool_tasks_total"

let m_workers = Obs.Metrics.gauge "pool_workers"

let m_restarts = Obs.Metrics.counter "pool_worker_restarts_total"

let m_requeued = Obs.Metrics.counter "pool_tasks_requeued_total"

let m_map_seconds =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.default_latency_buckets
    "pool_map_seconds"

let timed_batch ~count f =
  Obs.Metrics.inc m_batches;
  Obs.Metrics.add m_tasks count;
  let t0 = Obs.Span.now () in
  let r = f () in
  Obs.Metrics.observe m_map_seconds (Obs.Span.now () -. t0);
  r

let live_workers t =
  Array.fold_left
    (fun n (w : worker) -> if Atomic.get w.alive then n + 1 else n)
    0 t.workers
  + 1 (* the calling domain always participates *)

(* ------------------------------------------------------------------ *)
(* Batch mechanics *)

(* Claim the next slot: the primary counter first, then (under the lock)
   a slot orphaned by a dead worker. *)
let claim sh b =
  let i = Atomic.fetch_and_add b.next 1 in
  if i < b.count then Some i
  else begin
    Mutex.lock sh.m;
    let r = if Queue.is_empty b.requeued then None else Some (Queue.pop b.requeued) in
    Mutex.unlock sh.m;
    r
  end

(* Charge a worker death to slot [i]: re-enqueue it for survivors, or —
   once it has killed [kill_limit] workers — quarantine it as poison by
   publishing [Worker_death].  Call with [sh.m] held. *)
let handle_kill (sh : shared) b i =
  b.kills.(i) <- b.kills.(i) + 1;
  if (not b.retry) || b.kills.(i) >= sh.kill_limit then b.poison i b.kills.(i)
  else begin
    Queue.push i b.requeued;
    Obs.Metrics.inc m_requeued
  end

let poison_message i k =
  Printf.sprintf "poison task: slot %d killed %d worker(s); quarantined" i k

(* Worker's share of a batch.  Heartbeat bumps bracket every task so the
   watchdog can tell "slow task, still moving" from "wedged". *)
let rec drain_worker sh w b =
  if Atomic.get w.condemned then `Condemned
  else
    match claim sh b with
    | None -> `Done
    | Some i -> (
        Atomic.set w.claim i;
        Atomic.incr w.heartbeat;
        match b.exec i with
        | () ->
            Atomic.set w.claim (-1);
            Atomic.incr w.heartbeat;
            drain_worker sh w b
        | exception _ -> `Died i)

let rec worker_loop sh w seen =
  Mutex.lock sh.m;
  let rec await seen =
    if sh.stop then None
    else if sh.gen <> seen then (
      match sh.job with
      | Some b -> Some (sh.gen, b)
      | None -> await sh.gen (* batch came and went while we were idle *))
    else begin
      Condition.wait sh.ready sh.m;
      await seen
    end
  in
  match await seen with
  | None ->
      Mutex.unlock sh.m;
      Atomic.set w.exited true
  | Some (gen, b) -> (
      Mutex.unlock sh.m;
      match drain_worker sh w b with
      | `Done ->
          (* Broadcast even when the batch is not finished: the caller
             may be waiting for requeued work another death produced. *)
          Mutex.lock sh.m;
          Condition.broadcast sh.finished;
          Mutex.unlock sh.m;
          worker_loop sh w gen
      | `Condemned ->
          (* The watchdog already handled our claim; just get out so the
             corpse can be reaped at the next respawn. *)
          Atomic.set w.exited true
      | `Died i ->
          Atomic.set w.alive false;
          Mutex.lock sh.m;
          handle_kill sh b i;
          Condition.broadcast sh.finished;
          Mutex.unlock sh.m;
          Atomic.set w.exited true)

(* ------------------------------------------------------------------ *)
(* Spawning and supervision *)

let fresh_worker () =
  {
    domain = None;
    alive = Atomic.make true;
    exited = Atomic.make false;
    condemned = Atomic.make false;
    heartbeat = Atomic.make 0;
    claim = Atomic.make (-1);
  }

(* Spawning can fail transiently (thread limits, memory pressure).
   Retry briefly; a worker that still cannot spawn is returned dead
   (domain = None) — the pool runs width-degraded and retries the
   respawn before the next batch. *)
let spawn_worker sh =
  let w = fresh_worker () in
  let seen = (Mutex.lock sh.m; let g = sh.gen in Mutex.unlock sh.m; g) in
  (match
     Error.with_retries ~label:"pool.spawn" (fun () ->
         try Domain.spawn (fun () -> worker_loop sh w seen)
         with e -> raise (Error.Error (Error.Worker_death (Printexc.to_string e))))
   with
  | d -> w.domain <- Some d
  | exception Error.Error (Error.Worker_death _) ->
      Atomic.set w.alive false;
      Atomic.set w.exited true);
  w

(* Replace dead workers (between batches only, so a batch's worker array
   is stable).  A dead worker whose body returned is joined; a condemned
   wedge that never exited is leaked — OCaml gives no way to kill it —
   and its slot gets a fresh incarnation regardless. *)
let respawn_dead t sh =
  Array.iteri
    (fun k (w : worker) ->
      if not (Atomic.get w.alive) then begin
        (match w.domain with
        | Some d when Atomic.get w.exited -> ( try Domain.join d with _ -> ())
        | Some _ | None -> ());
        t.workers.(k) <- spawn_worker sh;
        t.restarts <- t.restarts + 1;
        Obs.Metrics.inc m_restarts
      end)
    t.workers;
  Obs.Metrics.set m_workers (live_workers t)

(* ------------------------------------------------------------------ *)
(* Process-exit registry *)

(* One process-wide at_exit hook over a registry of live pools (domains
   left blocked at process exit would make [exit] hang), instead of one
   closure pinned per pool forever. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 8

let registry_m = Mutex.create ()

let next_pool_id = Atomic.make 0

let rec registry_hook = lazy (at_exit shutdown_all)

and shutdown_all () =
  Mutex.lock registry_m;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
  Mutex.unlock registry_m;
  List.iter shutdown pools

and register t =
  Lazy.force registry_hook;
  Mutex.lock registry_m;
  Hashtbl.replace registry t.id t;
  Mutex.unlock registry_m

and unregister t =
  Mutex.lock registry_m;
  Hashtbl.remove registry t.id;
  Mutex.unlock registry_m

and shutdown t =
  if t.alive then begin
    t.alive <- false;
    unregister t;
    match t.shared with
    | None -> ()
    | Some sh ->
        Mutex.lock sh.m;
        sh.stop <- true;
        Condition.broadcast sh.ready;
        Mutex.unlock sh.m;
        Array.iter
          (fun w ->
            match w.domain with
            | Some d when not (Atomic.get w.condemned) || Atomic.get w.exited
              -> (
                try Domain.join d with _ -> ())
            | Some _ | None -> () (* condemned wedge: leaked *))
          t.workers;
        t.workers <- [||]
  end

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ?watchdog_s ?(kill_limit = 2) ?(clock = Sys.time)
    ?(sleep = Error.default_sleep) ~jobs () =
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
  if kill_limit < 1 then invalid_arg "Exec.Pool.create: kill_limit must be >= 1";
  (match watchdog_s with
  | Some s when s <= 0.0 ->
      invalid_arg "Exec.Pool.create: watchdog_s must be positive"
  | _ -> ());
  let t =
    {
      jobs;
      id = Atomic.fetch_and_add next_pool_id 1;
      shared =
        (if jobs = 1 then None
         else
           Some
             {
               m = Mutex.create ();
               ready = Condition.create ();
               finished = Condition.create ();
               job = None;
               gen = 0;
               stop = false;
               kill_limit;
             });
      workers = [||];
      alive = true;
      restarts = 0;
      range = None;
      kill_limit;
      watchdog_s;
      clock;
      sleep;
    }
  in
  (match t.shared with
  | None -> ()
  | Some sh ->
      t.workers <- Array.init (jobs - 1) (fun _ -> spawn_worker sh);
      Obs.Metrics.set m_workers (live_workers t);
      register t);
  t

(* ------------------------------------------------------------------ *)
(* map *)

(* Sequential fallback honoring the same crash semantics as the pooled
   path: the caller cannot die, so each Chaos_kill counts as one worker
   kill against the slot, and the kill limit quarantines it — identical
   results (and identical poison error) to any [jobs] width. *)
let map_seq t f xs =
  Array.mapi
    (fun i x ->
      let rec attempt k =
        match f x with
        | v -> v
        | exception Chaos_kill ->
            let k = k + 1 in
            if k >= t.kill_limit then
              raise (Error.Error (Error.Worker_death (poison_message i k)))
            else attempt k
      in
      attempt 0)
    xs

let map t f xs =
  if not t.alive then invalid_arg "Exec.Pool.map: pool was shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else
    timed_batch ~count:n @@ fun () ->
    match t.shared with
    | None -> map_seq t f xs
    | Some sh ->
        respawn_dead t sh;
        let slots = Array.make n None in
        let pub = Array.init n (fun _ -> Atomic.make 0) in
        let filled = Atomic.make 0 in
        let publish i r =
          if Atomic.compare_and_set pub.(i) 0 1 then begin
            slots.(i) <- Some r;
            Atomic.incr filled
          end
        in
        let exec i =
          let r =
            try Ok (f xs.(i))
            with
            | Chaos_kill as e -> raise e
            | e -> Error (e, Printexc.get_raw_backtrace ())
          in
          publish i r
        in
        let poison i k =
          publish i
            (Error
               ( Error.Error (Error.Worker_death (poison_message i k)),
                 Printexc.get_callstack 0 ))
        in
        let b =
          {
            count = n;
            exec;
            poison;
            next = Atomic.make 0;
            requeued = Queue.create ();
            kills = Array.make n 0;
            retry = true;
          }
        in
        Mutex.lock sh.m;
        if sh.job <> None then begin
          Mutex.unlock sh.m;
          invalid_arg "Exec.Pool.map: nested or concurrent map on one pool"
        end;
        sh.job <- Some b;
        sh.gen <- sh.gen + 1;
        Condition.broadcast sh.ready;
        Mutex.unlock sh.m;
        (* The calling domain is worker number [jobs]: it drains the
           primary counter alongside the workers, absorbs its own
           Chaos_kills (the caller cannot die — each one is charged as a
           kill and the slot re-enqueued or poisoned), and afterwards
           supervises: draining orphaned slots and, with a watchdog,
           condemning wedged workers. *)
        let rec drain_caller () =
          match claim sh b with
          | None -> ()
          | Some i ->
              (try b.exec i
               with Chaos_kill ->
                 Mutex.lock sh.m;
                 handle_kill sh b i;
                 Mutex.unlock sh.m);
              drain_caller ()
        in
        let condemn (w : worker) =
          Atomic.set w.condemned true;
          Atomic.set w.alive false;
          Mutex.lock sh.m;
          let c = Atomic.get w.claim in
          if c >= 0 then handle_kill sh b c;
          Mutex.unlock sh.m
        in
        let nw = Array.length t.workers in
        let last_hb = Array.make nw 0 in
        let last_move = Array.make nw 0.0 in
        let watchdog_init () =
          let now = t.clock () in
          Array.iteri
            (fun k w ->
              last_hb.(k) <- Atomic.get w.heartbeat;
              last_move.(k) <- now)
            t.workers
        in
        let watchdog_check window =
          let now = t.clock () in
          Array.iteri
            (fun k (w : worker) ->
              if Atomic.get w.alive && not (Atomic.get w.condemned) then begin
                let hb = Atomic.get w.heartbeat in
                if hb <> last_hb.(k) then begin
                  last_hb.(k) <- hb;
                  last_move.(k) <- now
                end
                else if Atomic.get w.claim >= 0 && now -. last_move.(k) > window
                then condemn w
              end)
            t.workers
        in
        (match t.watchdog_s with Some _ -> watchdog_init () | None -> ());
        let rec supervise () =
          drain_caller ();
          if Atomic.get filled < n then begin
            (match t.watchdog_s with
            | None ->
                (* Every progress event (publish-then-idle, death,
                   requeue) broadcasts [finished] under [sh.m], and the
                   predicate is rechecked under [sh.m], so no wakeup can
                   be lost. *)
                Mutex.lock sh.m;
                if Atomic.get filled < n && Queue.is_empty b.requeued then
                  Condition.wait sh.finished sh.m;
                Mutex.unlock sh.m
            | Some window ->
                watchdog_check window;
                t.sleep (Float.max 1e-3 (window /. 4.)));
            supervise ()
          end
        in
        supervise ();
        Mutex.lock sh.m;
        sh.job <- None;
        Mutex.unlock sh.m;
        (* Reassemble in input order; re-raise the lowest-index failure
           (what a sequential loop would have raised first). *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) -> ()
            | None -> assert false)
          slots;
        Array.map
          (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
          slots

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* run_range: the barrier primitive behind the domain-sharded flat
   executor (docs/PERF.md).  [lo, hi) is split into exactly [jobs]
   contiguous chunks; every pool slot (workers + caller) executes one
   chunk as [f clo chi] and the call returns only when all chunks have
   published.  Unlike [map], a killed chunk is NEVER retried: range
   bodies mutate shared state in place (staging arenas, per-shard
   tallies, node state), so re-running a half-executed chunk would
   corrupt it.  The first kill quarantines the chunk with a
   width-independent [Worker_death] — the same exception at every
   [jobs], including 1. *)

let m_range_batches = Obs.Metrics.counter "pool_range_batches_total"

let range_poison_message =
  "range chunk killed its worker; quarantined without retry"

let chunk_bounds ~jobs ~lo ~hi i =
  if jobs < 1 then invalid_arg "Exec.Pool.chunk_bounds: jobs must be >= 1";
  if i < 0 || i >= jobs then
    invalid_arg "Exec.Pool.chunk_bounds: chunk index out of range";
  let len = hi - lo in
  let q = len / jobs and r = len mod jobs in
  let clo = lo + (i * q) + min i r in
  (clo, clo + q + if i < r then 1 else 0)

let dummy_range_f _ _ = ()

let dummy_exec (_ : int) = ()

let dummy_poison (_ : int) (_ : int) = ()

(* Publication is generation-tagged: a slot opened for generation [gen]
   holds [gen] and publishes by CAS [gen -> -gen].  A condemned-but-
   wedged worker that resumes during a LATER call still carries the
   generation it read at chunk entry, so its CAS fails against the new
   slot value and the stale execution can neither mark a fresh chunk
   complete nor clobber its error slot: [rs_err] is written only after
   a winning CAS, and the [rs_filled] increment after that write is the
   happens-before edge publishing it to the caller. *)
let publish_range rs gen err i =
  if Atomic.compare_and_set rs.rs_pub.(i) gen (-gen) then begin
    rs.rs_err.(i) <- err;
    Atomic.incr rs.rs_filled
  end

(* Built once per pool; closes over [rs] only.  Generation and bounds
   are read at entry, so a worker that wedges inside [rs_f] and resumes
   after the watchdog condemned it publishes with the generation it
   started under — and is rejected if that call has since ended. *)
let range_exec rs i =
  let gen = rs.rs_gen in
  let jobs = Array.length rs.rs_pub in
  let len = rs.rs_hi - rs.rs_lo in
  let q = len / jobs and r = len mod jobs in
  let clo = rs.rs_lo + (i * q) + if i < r then i else r in
  let chi = clo + q + if i < r then 1 else 0 in
  let err =
    try
      rs.rs_f clo chi;
      None
    with
    | Chaos_kill as e -> raise e
    | e -> Some (e, Printexc.get_raw_backtrace ())
  in
  publish_range rs gen err i

(* Reached via [handle_kill] while the batch being poisoned is the
   current one, so [rs_gen] is the generation the kill belongs to. *)
let range_poison rs i _kills =
  publish_range rs rs.rs_gen
    (Some
       ( Error.Error (Error.Worker_death range_poison_message),
         Printexc.get_callstack 0 ))
    i

let range_state t =
  match t.range with
  | Some rs -> rs
  | None ->
      let jobs = t.jobs in
      let rs =
        {
          rs_f = dummy_range_f;
          rs_lo = 0;
          rs_hi = 0;
          rs_gen = 0;
          rs_pub = Array.init jobs (fun _ -> Atomic.make 0);
          rs_err = Array.make jobs None;
          rs_filled = Atomic.make 0;
          rs_batch =
            {
              count = jobs;
              exec = dummy_exec;
              poison = dummy_poison;
              next = Atomic.make 0;
              requeued = Queue.create ();
              kills = Array.make jobs 0;
              retry = false;
            };
          rs_job = None;
          rs_hb = Array.make (max 1 (jobs - 1)) 0;
          rs_move = Array.make (max 1 (jobs - 1)) 0.0;
        }
      in
      (* Wire the once-per-pool closures after the record exists (the
         batch and the state reference each other). *)
      rs.rs_batch.exec <- range_exec rs;
      rs.rs_batch.poison <- range_poison rs;
      rs.rs_job <- Some rs.rs_batch;
      t.range <- Some rs;
      rs

(* Caller's share: claim chunks off the primary counter (no requeue
   exists when [retry = false]) and absorb its own Chaos_kills as
   immediate poison, mirroring a worker death. *)
let rec range_drain_caller sh (b : batch) =
  let i = Atomic.fetch_and_add b.next 1 in
  if i < b.count then begin
    (try b.exec i
     with Chaos_kill ->
       Mutex.lock sh.m;
       handle_kill sh b i;
       Mutex.unlock sh.m);
    range_drain_caller sh b
  end

let range_condemn sh (b : batch) (w : worker) =
  Atomic.set w.condemned true;
  Atomic.set w.alive false;
  Mutex.lock sh.m;
  let c = Atomic.get w.claim in
  if c >= 0 then handle_kill sh b c;
  Mutex.unlock sh.m

let range_watchdog_init t rs =
  let now = t.clock () in
  Array.iteri
    (fun k (w : worker) ->
      rs.rs_hb.(k) <- Atomic.get w.heartbeat;
      rs.rs_move.(k) <- now)
    t.workers

let range_watchdog_check t sh rs window =
  let now = t.clock () in
  Array.iteri
    (fun k (w : worker) ->
      if Atomic.get w.alive && not (Atomic.get w.condemned) then begin
        let hb = Atomic.get w.heartbeat in
        if hb <> rs.rs_hb.(k) then begin
          rs.rs_hb.(k) <- hb;
          rs.rs_move.(k) <- now
        end
        else if Atomic.get w.claim >= 0 && now -. rs.rs_move.(k) > window then
          range_condemn sh rs.rs_batch w
      end)
    t.workers

let rec range_supervise t sh rs =
  range_drain_caller sh rs.rs_batch;
  if Atomic.get rs.rs_filled < rs.rs_batch.count then begin
    (match t.watchdog_s with
    | None ->
        Mutex.lock sh.m;
        if Atomic.get rs.rs_filled < rs.rs_batch.count then
          Condition.wait sh.finished sh.m;
        Mutex.unlock sh.m
    | Some window ->
        range_watchdog_check t sh rs window;
        t.sleep (Float.max 1e-3 (window /. 4.)));
    range_supervise t sh rs
  end

let rec range_reraise rs i =
  if i < Array.length rs.rs_err then
    match rs.rs_err.(i) with
    | Some (e, bt) ->
        rs.rs_err.(i) <- None;
        Printexc.raise_with_backtrace e bt
    | None -> range_reraise rs (i + 1)

let run_range t ~lo ~hi f =
  if not t.alive then invalid_arg "Exec.Pool.run_range: pool was shut down";
  if hi < lo then invalid_arg "Exec.Pool.run_range: hi < lo";
  Obs.Metrics.inc m_range_batches;
  match t.shared with
  | None -> (
      (* jobs = 1: the chunk is the whole range, executed in place.  A
         Chaos_kill quarantines exactly as the pooled path would —
         identical exception at every width, and no retry. *)
      try f lo hi
      with Chaos_kill ->
        raise (Error.Error (Error.Worker_death range_poison_message)))
  | Some sh ->
      if Array.exists (fun (w : worker) -> not (Atomic.get w.alive)) t.workers
      then respawn_dead t sh;
      let rs = range_state t in
      let jobs = t.jobs in
      Mutex.lock sh.m;
      (* The nested/concurrent check must precede every write to [rs]:
         the range state is preallocated and shared, so a nested call
         from inside a chunk body would otherwise clobber the in-flight
         batch's cursors before discovering it must raise. *)
      if sh.job <> None then begin
        Mutex.unlock sh.m;
        invalid_arg "Exec.Pool.run_range: nested or concurrent batch on one pool"
      end;
      sh.gen <- sh.gen + 1;
      rs.rs_f <- f;
      rs.rs_lo <- lo;
      rs.rs_hi <- hi;
      rs.rs_gen <- sh.gen;
      Array.fill rs.rs_batch.kills 0 jobs 0;
      for i = 0 to jobs - 1 do
        Atomic.set rs.rs_pub.(i) rs.rs_gen;
        rs.rs_err.(i) <- None
      done;
      Atomic.set rs.rs_filled 0;
      sh.job <- rs.rs_job;
      (* The primary counter is reset LAST.  A worker from the previous
         barrier sitting between its final publish and its next claim
         does not hold [sh.m], so until this store it must keep seeing
         the exhausted old counter (>= count — every chunk is claimed
         through [next] exactly once, so completion implies exhaustion)
         and exit cleanly.  Resetting [next] any earlier would let that
         worker claim a chunk of THIS call while the publication slots
         are still mid-reset: the chunk would execute but its publish
         would be lost (CAS against a stale tag, or the filled
         increment wiped by the reset below it), and with no retry the
         barrier would hang forever.  This store is also the
         publication edge: a claim that does observe the fresh counter
         happens-after it and therefore sees the new
         [rs_f]/[rs_lo]/[rs_hi]/[rs_gen]. *)
      Atomic.set rs.rs_batch.next 0;
      Condition.broadcast sh.ready;
      Mutex.unlock sh.m;
      (match t.watchdog_s with
      | Some _ -> range_watchdog_init t rs
      | None -> ());
      range_supervise t sh rs;
      Mutex.lock sh.m;
      sh.job <- None;
      Mutex.unlock sh.m;
      rs.rs_f <- dummy_range_f;
      (* Lowest-index failure first: what ascending sequential chunk
         execution would have raised. *)
      range_reraise rs 0

let with_pool ?watchdog_s ?kill_limit ?clock ?sleep ~jobs f =
  let t = create ?watchdog_s ?kill_limit ?clock ?sleep ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "MAXIS_JOBS" with
  | None -> 1
  | Some s -> (
      match String.trim (String.lowercase_ascii s) with
      | "" -> 1
      | "auto" | "0" -> Domain.recommended_domain_count ()
      | s -> (
          match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 1))
