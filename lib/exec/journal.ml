(* The journal is an append-only set of completed sweep cells, one line
   per cell:

     maxis-journal v1\n               (header, written at creation)
     <digest hex> <escaped canonical key>\n
     ...

   Each line is self-validating: the digest is the MD5 of the unescaped
   canonical key (exactly [Cache.digest_hex]), so a line torn by a crash
   mid-append fails re-derivation and loading stops there — every line
   before the tear is still trusted.  Appends go through
   [Fsio.append_line] — open-append, write, flush, close per cell — so
   each is durable the moment [record] returns, concurrent writers
   within one process (pool workers) serialize under the mutex, and a
   SIGKILL can lose at most the line being written, never corrupt
   earlier ones.  Routing through [Fsio] also puts the torn-tail claim
   under the chaos suite's injected-fault microscope.

   The journal records *completion*, not values: values re-materialize
   from [Exec.Cache], which is written before the journal line (store
   then record), so a journaled cell always has its cache entry on disk
   modulo cache eviction — and a missing entry merely recomputes. *)

let schema_version = 1

let magic = Printf.sprintf "maxis-journal v%d" schema_version

let default_dir = Filename.concat "results" "journal"

type t = {
  path : string option;  (* None = disabled *)
  fs : Fsio.t;
  mutable writable : bool;  (* false after [close] *)
  completed : (string, unit) Hashtbl.t;  (* digest hex -> () *)
  mutable resumed : int;  (* entries loaded from disk at open *)
  mutable appended : int;  (* entries written by this process *)
  mutable skipped : int;  (* memo calls answered by a journaled cell *)
  lock : Mutex.t;
}

(* Process-wide twins of the per-journal counters, aggregated across
   journal instances for the --metrics export. *)
let m_appends = Obs.Metrics.counter "journal_appends_total"

let m_resumed = Obs.Metrics.counter "journal_resumed_total"

let m_skipped = Obs.Metrics.counter "journal_skipped_total"

let disabled () =
  {
    path = None;
    fs = Fsio.real;
    writable = false;
    completed = Hashtbl.create 1;
    resumed = 0;
    appended = 0;
    skipped = 0;
    lock = Mutex.create ();
  }

let enabled t = t.path <> None

let path t = t.path

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Parse one journal line; [None] on any mismatch (torn tail, foreign
   bytes, truncated digest). *)
let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
      let digest = String.sub line 0 i in
      let escaped = String.sub line (i + 1) (String.length line - i - 1) in
      if String.length digest <> 32 then None
      else (
        match
          try Some (Scanf.unescaped escaped) with Scanf.Scan_failure _ | Failure _ -> None
        with
        | None -> None
        | Some canonical ->
            if Digest.to_hex (Digest.string canonical) = digest then Some digest
            else None)

(* Split raw journal bytes into the header and the newline-terminated
   body lines; the final chunk, if not newline-terminated, is a torn
   append and is returned as-is (it will fail [parse_line]). *)
let split_lines contents =
  let n = String.length contents in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match String.index_from_opt contents pos '\n' with
      | Some nl -> go (nl + 1) (String.sub contents pos (nl - pos) :: acc)
      | None -> List.rev (String.sub contents pos (n - pos) :: acc)
  in
  go 0 []

(* The number of leading journal lines (header excluded) that are
   individually valid; loading and fsck both stop at the first bad
   line — everything after it is untrusted.  Exposed for {!Fsck}. *)
let valid_prefix lines =
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        match parse_line line with
        | Some digest -> go ((line, digest) :: acc) rest
        | None -> List.rev acc)
  in
  go [] lines

let load_existing t p =
  let contents =
    try t.fs.Fsio.read_file p
    with Sys_error m -> raise (Error.Error (Error.Journal_io m))
  in
  match split_lines contents with
  | [] -> raise (Error.Error (Error.Journal_io (p ^ ": empty journal file")))
  | header :: lines ->
      if header <> magic then
        raise (Error.Error (Error.Journal_io (p ^ ": not a journal (bad header)")));
      List.iter
        (fun (_line, digest) ->
          if not (Hashtbl.mem t.completed digest) then begin
            Hashtbl.replace t.completed digest ();
            Obs.Metrics.inc m_resumed;
            t.resumed <- t.resumed + 1
          end)
        (valid_prefix lines)

let open_ ?(fs = Fsio.real) ?(dir = default_dir) ?(resume = true) ~run_id () =
  if run_id = "" then invalid_arg "Exec.Journal.open_: empty run_id";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Exec.Journal.open_: run_id %S: use [A-Za-z0-9._-]"
               run_id))
    run_id;
  let p = Filename.concat dir (run_id ^ ".journal") in
  let t = { (disabled ()) with path = Some p; fs } in
  Error.with_retries ~label:"journal.open" (fun () ->
      try
        Cache.mkdir_p ~fs dir;
        let existing = fs.Fsio.file_exists p in
        if resume && existing then load_existing t p
        else fs.Fsio.write_file p (magic ^ "\n");
        t.writable <- true;
        t
      with Sys_error m -> raise (Error.Error (Error.Journal_io m)))

let completed t key = Hashtbl.mem t.completed (Cache.digest_hex key)

let completed_count t = locked t (fun () -> Hashtbl.length t.completed)

let resumed_count t = t.resumed

let appended_count t = t.appended

let skipped_count t = t.skipped

let record t key =
  match t.path with
  | None -> ()
  | Some p ->
      if t.writable then begin
        let digest = Cache.digest_hex key in
        locked t (fun () ->
            if not (Hashtbl.mem t.completed digest) then begin
              let line =
                Printf.sprintf "%s %s\n" digest (String.escaped (Cache.canonical key))
              in
              Error.with_retries ~label:"journal.append" (fun () ->
                  try t.fs.Fsio.append_line p line
                  with Sys_error m -> raise (Error.Error (Error.Journal_io m)));
              Hashtbl.replace t.completed digest ();
              Obs.Metrics.inc m_appends;
              t.appended <- t.appended + 1
            end)
      end

let memo t cache key compute =
  let was_completed = completed t key in
  let payload = Cache.memo cache key compute in
  if was_completed then begin
    Obs.Metrics.inc m_skipped;
    locked t (fun () -> t.skipped <- t.skipped + 1)
  end;
  record t key;
  payload

let memo_value t cache key ~encode ~decode compute =
  let was_completed = completed t key in
  let v = Cache.memo_value cache key ~encode ~decode compute in
  if was_completed then begin
    Obs.Metrics.inc m_skipped;
    locked t (fun () -> t.skipped <- t.skipped + 1)
  end;
  record t key;
  v

let close t = t.writable <- false

(* pp_stats is called from signal handlers: no locks here, a slightly
   stale counter beats a deadlock. *)
let pp_stats ppf t =
  match t.path with
  | None -> Format.pp_print_string ppf "journal disabled"
  | Some p ->
      Format.fprintf ppf "path=%s resumed=%d appended=%d skipped=%d" p t.resumed
        t.appended t.skipped

(* ------------------------------------------------------------------ *)
(* Termination signals *)

let signal_exit_code s = if s = Sys.sigterm then 143 else 130

let on_termination f =
  List.iter
    (fun s ->
      try
        Sys.set_signal s
          (Sys.Signal_handle
             (fun s ->
               (try f s with _ -> ());
               exit (signal_exit_code s)))
      with Invalid_argument _ | Sys_error _ -> () (* unsupported platform *))
    [ Sys.sigint; Sys.sigterm ]
