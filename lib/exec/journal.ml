(* The journal is an append-only set of completed sweep cells, one line
   per cell:

     maxis-journal v1\n               (header, written at creation)
     <digest hex> <escaped canonical key>\n
     ...

   Each line is self-validating: the digest is the MD5 of the unescaped
   canonical key (exactly [Cache.digest_hex]), so a line torn by a crash
   mid-append fails re-derivation and loading stops there — every line
   before the tear is still trusted.  Appends are single [output_string]
   calls on an append-mode channel followed by a flush, so concurrent
   writers within one process (pool workers) serialize under the mutex
   and a SIGKILL can lose at most the line being written, never corrupt
   earlier ones.

   The journal records *completion*, not values: values re-materialize
   from [Exec.Cache], which is written before the journal line (store
   then record), so a journaled cell always has its cache entry on disk
   modulo cache eviction — and a missing entry merely recomputes. *)

let schema_version = 1

let magic = Printf.sprintf "maxis-journal v%d" schema_version

let default_dir = Filename.concat "results" "journal"

type t = {
  path : string option;  (* None = disabled *)
  mutable oc : out_channel option;
  completed : (string, unit) Hashtbl.t;  (* digest hex -> () *)
  mutable resumed : int;  (* entries loaded from disk at open *)
  mutable appended : int;  (* entries written by this process *)
  mutable skipped : int;  (* memo calls answered by a journaled cell *)
  lock : Mutex.t;
}

(* Process-wide twins of the per-journal counters, aggregated across
   journal instances for the --metrics export. *)
let m_appends = Obs.Metrics.counter "journal_appends_total"

let m_resumed = Obs.Metrics.counter "journal_resumed_total"

let m_skipped = Obs.Metrics.counter "journal_skipped_total"

let disabled () =
  {
    path = None;
    oc = None;
    completed = Hashtbl.create 1;
    resumed = 0;
    appended = 0;
    skipped = 0;
    lock = Mutex.create ();
  }

let enabled t = t.path <> None

let path t = t.path

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Parse one journal line; [None] on any mismatch (torn tail, foreign
   bytes, truncated digest). *)
let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
      let digest = String.sub line 0 i in
      let escaped = String.sub line (i + 1) (String.length line - i - 1) in
      if String.length digest <> 32 then None
      else (
        match
          try Some (Scanf.unescaped escaped) with Scanf.Scan_failure _ | Failure _ -> None
        with
        | None -> None
        | Some canonical ->
            if Digest.to_hex (Digest.string canonical) = digest then Some digest
            else None)

let load_existing t p =
  let ic =
    try open_in_bin p
    with Sys_error m -> raise (Error.Error (Error.Journal_io m))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match input_line ic with
      | header when header = magic -> ()
      | _ -> raise (Error.Error (Error.Journal_io (p ^ ": not a journal (bad header)")))
      | exception End_of_file ->
          raise (Error.Error (Error.Journal_io (p ^ ": empty journal file"))));
      let stop = ref false in
      while not !stop do
        match input_line ic with
        | exception End_of_file -> stop := true
        | line -> (
            match parse_line line with
            | Some digest ->
                if not (Hashtbl.mem t.completed digest) then begin
                  Hashtbl.replace t.completed digest ();
                  Obs.Metrics.inc m_resumed;
                  t.resumed <- t.resumed + 1
                end
            | None ->
                (* A torn or foreign line: everything after it is
                   untrusted.  The cells it would have recorded simply
                   re-run. *)
                stop := true)
      done)

let open_ ?(dir = default_dir) ?(resume = true) ~run_id () =
  if run_id = "" then invalid_arg "Exec.Journal.open_: empty run_id";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Exec.Journal.open_: run_id %S: use [A-Za-z0-9._-]"
               run_id))
    run_id;
  let p = Filename.concat dir (run_id ^ ".journal") in
  let t = { (disabled ()) with path = Some p } in
  Error.with_retries ~label:"journal.open" (fun () ->
      try
        Cache.mkdir_p dir;
        let existing = Sys.file_exists p in
        if resume && existing then load_existing t p;
        let oc =
          open_out_gen
            [ Open_wronly; Open_creat; Open_binary;
              (if resume && existing then Open_append else Open_trunc) ]
            0o644 p
        in
        if not (resume && existing) then begin
          output_string oc (magic ^ "\n");
          flush oc
        end;
        t.oc <- Some oc;
        t
      with Sys_error m -> raise (Error.Error (Error.Journal_io m)))

let completed t key = Hashtbl.mem t.completed (Cache.digest_hex key)

let completed_count t = locked t (fun () -> Hashtbl.length t.completed)

let resumed_count t = t.resumed

let appended_count t = t.appended

let skipped_count t = t.skipped

let record t key =
  match t.oc with
  | None -> ()
  | Some oc ->
      let digest = Cache.digest_hex key in
      locked t (fun () ->
          if not (Hashtbl.mem t.completed digest) then begin
            let line =
              Printf.sprintf "%s %s\n" digest (String.escaped (Cache.canonical key))
            in
            Error.with_retries ~label:"journal.append" (fun () ->
                output_string oc line;
                flush oc);
            Hashtbl.replace t.completed digest ();
            Obs.Metrics.inc m_appends;
            t.appended <- t.appended + 1
          end)

let memo t cache key compute =
  let was_completed = completed t key in
  let payload = Cache.memo cache key compute in
  if was_completed then begin
    Obs.Metrics.inc m_skipped;
    locked t (fun () -> t.skipped <- t.skipped + 1)
  end;
  record t key;
  payload

let memo_value t cache key ~encode ~decode compute =
  let was_completed = completed t key in
  let v = Cache.memo_value cache key ~encode ~decode compute in
  if was_completed then begin
    Obs.Metrics.inc m_skipped;
    locked t (fun () -> t.skipped <- t.skipped + 1)
  end;
  record t key;
  v

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      (try flush oc with Sys_error _ -> ());
      close_out_noerr oc

(* pp_stats is called from signal handlers: no locks here, a slightly
   stale counter beats a deadlock. *)
let pp_stats ppf t =
  match t.path with
  | None -> Format.pp_print_string ppf "journal disabled"
  | Some p ->
      Format.fprintf ppf "path=%s resumed=%d appended=%d skipped=%d" p t.resumed
        t.appended t.skipped

(* ------------------------------------------------------------------ *)
(* Termination signals *)

let signal_exit_code s = if s = Sys.sigterm then 143 else 130

let on_termination f =
  List.iter
    (fun s ->
      try
        Sys.set_signal s
          (Sys.Signal_handle
             (fun s ->
               (try f s with _ -> ());
               exit (signal_exit_code s)))
      with Invalid_argument _ | Sys_error _ -> () (* unsupported platform *))
    [ Sys.sigint; Sys.sigterm ]
