(** Crash-safe sweep journal: which cells of a parameter sweep are done.

    A sweep is a set of {e cells} — one [(family, params, seed, solver)]
    result each, addressed by the same {!Cache.key} the result cache
    uses.  The journal under [results/journal/<run_id>.journal] records
    each cell the moment it completes, via a self-validating atomic
    append, so a killed run (SIGKILL included — no handler needed) can be
    resumed: journaled cells are skipped and their values re-materialize
    from {!Cache}, and the resumed run's outputs are byte-identical to an
    uninterrupted run's.

    Division of labor with {!Cache}: the cache stores {e values} keyed by
    content, shared across runs; the journal stores {e completion} of one
    named run.  [record] is called only after the value is safely in the
    cache, so "journaled" implies "re-materializable" (and if the cache
    was cleared meanwhile, the cell merely recomputes — identical bytes
    either way, by the cache-transparency contract).

    Loading tolerates a torn final line (the only damage a crash
    mid-append can cause): parsing stops at the first line whose digest
    does not re-derive, and the cells after it simply re-run. *)

type t

val default_dir : string
(** [results/journal]. *)

val disabled : unit -> t
(** Records nothing, completes nothing; all operations are no-ops. *)

val open_ :
  ?fs:Fsio.t -> ?dir:string -> ?resume:bool -> run_id:string -> unit -> t
(** [open_ ~run_id ()] opens (creating directories as needed)
    [dir/<run_id>.journal].  With [resume = true] (default) an existing
    file is loaded — its cells report {!completed} — and appends extend
    it; with [resume = false] an existing file is truncated and the run
    starts fresh.  [run_id] must match [[A-Za-z0-9._-]+].  All I/O goes
    through [fs] (default {!Fsio.real}); each {!record} is one
    open-append-close, so no file handle outlives a call.  Raises
    {!Error.Error} [(Journal_io _)] if the file cannot be opened or is
    not a journal. *)

val enabled : t -> bool

val path : t -> string option

val record : t -> Cache.key -> unit
(** Mark the cell complete: one atomic append + flush (retried on
    transient failure), deduplicated against cells already recorded or
    loaded.  Thread-safe. *)

val completed : t -> Cache.key -> bool

val memo : t -> Cache.t -> Cache.key -> (unit -> string) -> string
(** [memo j cache key compute] is {!Cache.memo} followed by {!record}:
    the sweep-cell idiom.  On a resumed run a journaled cell is answered
    by the cache without recomputing (counted in {!skipped_count}). *)

val memo_value :
  t ->
  Cache.t ->
  Cache.key ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a
(** Typed {!memo}, via {!Cache.memo_value}. *)

val completed_count : t -> int
(** Cells known complete (loaded + recorded). *)

val resumed_count : t -> int
(** Cells loaded from an existing journal at {!open_} — 0 on a fresh
    run. *)

val appended_count : t -> int
(** Cells recorded by this process. *)

val skipped_count : t -> int
(** {!memo} calls answered for already-journaled cells. *)

val close : t -> unit

val pp_stats : Format.formatter -> t -> unit
(** Lock-free (safe inside signal handlers). *)

(** {1 Format introspection (for {!Fsck})} *)

val magic : string
(** The header line a journal file must start with. *)

val parse_line : string -> string option
(** [parse_line l] is [Some digest_hex] iff [l] is a structurally valid
    journal line whose digest re-derives from its escaped canonical key;
    [None] for torn or foreign lines. *)

val split_lines : string -> string list
(** Split raw file bytes on ['\n']; a final non-terminated chunk (a torn
    append) is returned as-is and will fail {!parse_line}. *)

val valid_prefix : string list -> (string * string) list
(** [(line, digest)] for the leading run of individually valid lines;
    stops at the first invalid one — everything after it is
    untrusted. *)

(** {1 Termination} *)

val on_termination : (int -> unit) -> unit
(** [on_termination f] installs SIGINT/SIGTERM handlers that run [f
    signal] (exceptions swallowed) and then [exit] with the conventional
    code (130 for SIGINT, 143 for SIGTERM) — which runs [at_exit] hooks,
    so pools shut down and counters print.  Use it to flush partial
    tables and point the user at [--resume].  Journal appends themselves
    need no handler: they are already durable per cell. *)

val signal_exit_code : int -> int
