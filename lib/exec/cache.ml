(* Entries live at [dir/<d0d1>/<digest>.entry] (two-hex-char shards keep
   directories small on big sweeps).  The on-disk format is four header
   lines followed by the raw payload bytes:

     maxis-exec-cache v<schema>\n
     <escaped canonical key>\n
     <payload md5 hex>\n
     <payload byte length>\n
     <payload>

   Every read re-derives the payload digest and compares the stored key,
   so a truncated file, a hash collision, a schema change or random bit
   rot all degrade to a miss. *)

let schema_version = 1

let default_dir = Filename.concat "results" "cache"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let fresh_stats () =
  { hits = 0; misses = 0; stores = 0; errors = 0; bytes_read = 0; bytes_written = 0 }

(* Process-wide twins of the per-cache [stats]: the struct stays the
   source of truth for [pp_stats], the Obs counters aggregate across
   every cache instance for the --metrics export. *)
let m_hits = Obs.Metrics.counter "cache_hits_total"

let m_misses = Obs.Metrics.counter "cache_misses_total"

let m_stores = Obs.Metrics.counter "cache_stores_total"

let m_errors = Obs.Metrics.counter "cache_errors_total"

let m_bytes_read = Obs.Metrics.counter "cache_read_bytes_total"

let m_bytes_written = Obs.Metrics.counter "cache_written_bytes_total"

type t = {
  dir : string option;  (* None = disabled *)
  stats : stats;
  lock : Mutex.t;
  mutable tmp_seq : int;  (* uniquifies temp names within the process *)
}

let create ?(dir = default_dir) () =
  { dir = Some dir; stats = fresh_stats (); lock = Mutex.create (); tmp_seq = 0 }

let disabled () =
  { dir = None; stats = fresh_stats (); lock = Mutex.create (); tmp_seq = 0 }

let enabled t = t.dir <> None

let stats t = t.stats

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d stores=%d errors=%d read=%dB written=%dB"
    s.hits s.misses s.stores s.errors s.bytes_read s.bytes_written

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Keys *)

type key = { canonical : string; digest : string }

let fingerprint s = Digest.to_hex (Digest.string s)

let key ?(extra = "") ~family ~params ~seed ~solver () =
  let canonical =
    Printf.sprintf "v%d|family=%s|params=%s|seed=%d|solver=%s|extra=%s"
      schema_version family params seed solver extra
  in
  { canonical; digest = fingerprint canonical }

let canonical k = k.canonical

let digest_hex k = k.digest

(* ------------------------------------------------------------------ *)
(* Paths *)

let magic = Printf.sprintf "maxis-exec-cache v%d" schema_version

let shard_dir dir k = Filename.concat dir (String.sub k.digest 0 2)

let entry_path dir k = Filename.concat (shard_dir dir k) (k.digest ^ ".entry")

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ -> () (* lost a race with a concurrent mkdir: fine *)
  end

(* ------------------------------------------------------------------ *)
(* Lookup *)

let read_entry path k =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      if input_line ic <> magic then None
      else if input_line ic <> String.escaped k.canonical then None
      else begin
        let payload_md5 = input_line ic in
        match int_of_string_opt (input_line ic) with
        | None -> None
        | Some len when len < 0 -> None
        | Some len ->
            let payload = really_input_string ic len in
            if Digest.to_hex (Digest.string payload) = payload_md5 then
              Some payload
            else None
      end)

let find t k =
  match t.dir with
  | None -> None
  | Some dir ->
      let path = entry_path dir k in
      if not (Sys.file_exists path) then begin
        Obs.Metrics.inc m_misses;
        locked t (fun () -> t.stats.misses <- t.stats.misses + 1);
        None
      end
      else begin
        let result = try read_entry path k with _ -> None in
        locked t (fun () ->
            match result with
            | Some payload ->
                Obs.Metrics.inc m_hits;
                Obs.Metrics.add m_bytes_read (String.length payload);
                t.stats.hits <- t.stats.hits + 1;
                t.stats.bytes_read <- t.stats.bytes_read + String.length payload
            | None ->
                Obs.Metrics.inc m_misses;
                Obs.Metrics.inc m_errors;
                t.stats.misses <- t.stats.misses + 1;
                t.stats.errors <- t.stats.errors + 1);
        result
      end

(* ------------------------------------------------------------------ *)
(* Storage *)

(* Uniquifies temp names across processes sharing one cache directory.
   The exec library deliberately avoids a unix dependency, so instead of
   getpid we hash per-process state that two racing processes will not
   share. *)
let process_token =
  lazy (Hashtbl.hash (Sys.executable_name, Sys.time (), Random.State.make_self_init ()) land 0xFFFFFF)

let store t k payload =
  match t.dir with
  | None -> ()
  | Some dir -> (
      let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
      let attempt () =
        let shard = shard_dir dir k in
        mkdir_p shard;
        let tmp =
          Filename.concat shard
            (Printf.sprintf ".tmp-%s-%d-%d" k.digest (Lazy.force process_token) seq)
        in
        let oc = open_out_bin tmp in
        (try
           output_string oc magic;
           output_char oc '\n';
           output_string oc (String.escaped k.canonical);
           output_char oc '\n';
           output_string oc (Digest.to_hex (Digest.string payload));
           output_char oc '\n';
           output_string oc (string_of_int (String.length payload));
           output_char oc '\n';
           output_string oc payload;
           close_out oc
         with e ->
           close_out_noerr oc;
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        Sys.rename tmp (entry_path dir k)
      in
      (* A full disk or a racing cleaner can fail one attempt without
         poisoning the sweep: retry transient failures briefly, then
         drop the write — the cache is an accelerator, not a correctness
         dependency. *)
      try
        Error.with_retries ~label:"cache.store" attempt;
        Obs.Metrics.inc m_stores;
        Obs.Metrics.add m_bytes_written (String.length payload);
        locked t (fun () ->
            t.stats.stores <- t.stats.stores + 1;
            t.stats.bytes_written <- t.stats.bytes_written + String.length payload)
      with _ ->
        Obs.Metrics.inc m_errors;
        locked t (fun () -> t.stats.errors <- t.stats.errors + 1))

let memo t k compute =
  match find t k with
  | Some payload -> payload
  | None ->
      let payload = compute () in
      store t k payload;
      payload

let memo_value t k ~encode ~decode compute =
  let recompute () =
    let v = compute () in
    store t k (encode v);
    v
  in
  match find t k with
  | None -> recompute ()
  | Some payload -> (
      match decode payload with
      | Some v -> v
      | None ->
          (* Obs counters are monotone: the raw payload hit above stays
             counted; the decode rejection surfaces as an error + miss. *)
          Obs.Metrics.inc m_errors;
          Obs.Metrics.inc m_misses;
          locked t (fun () ->
              t.stats.errors <- t.stats.errors + 1;
              t.stats.hits <- t.stats.hits - 1;
              t.stats.misses <- t.stats.misses + 1);
          recompute ())

(* ------------------------------------------------------------------ *)
(* Maintenance *)

let clear t =
  match t.dir with
  | None -> ()
  | Some dir ->
      let rec rm path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
            try Sys.rmdir path with Sys_error _ -> ()
          end
          else try Sys.remove path with Sys_error _ -> ()
      in
      rm dir
