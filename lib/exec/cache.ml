(* Entries live at [dir/<d0d1>/<digest>.entry] (two-hex-char shards keep
   directories small on big sweeps).  The on-disk format is four header
   lines followed by the raw payload bytes:

     maxis-exec-cache v<schema>\n
     <escaped canonical key>\n
     <payload md5 hex>\n
     <payload byte length>\n
     <payload>

   Every read re-derives the payload digest and compares the stored key,
   so a truncated file, a hash collision, a schema change or random bit
   rot all degrade to a miss.  All I/O goes through an [Fsio.t] backend
   so the chaos suite can inject filesystem faults under exactly these
   claims. *)

let schema_version = 1

let default_dir = Filename.concat "results" "cache"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable errors : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let fresh_stats () =
  { hits = 0; misses = 0; stores = 0; errors = 0; bytes_read = 0; bytes_written = 0 }

(* Process-wide twins of the per-cache [stats]: the struct stays the
   source of truth for [pp_stats], the Obs counters aggregate across
   every cache instance for the --metrics export. *)
let m_hits = Obs.Metrics.counter "cache_hits_total"

let m_misses = Obs.Metrics.counter "cache_misses_total"

let m_stores = Obs.Metrics.counter "cache_stores_total"

let m_errors = Obs.Metrics.counter "cache_errors_total"

let m_bytes_read = Obs.Metrics.counter "cache_read_bytes_total"

let m_bytes_written = Obs.Metrics.counter "cache_written_bytes_total"

type t = {
  dir : string option;  (* None = disabled *)
  fs : Fsio.t;
  stats : stats;
  lock : Mutex.t;
  mutable tmp_seq : int;  (* uniquifies temp names within the process *)
}

let create ?(fs = Fsio.real) ?(dir = default_dir) () =
  { dir = Some dir; fs; stats = fresh_stats (); lock = Mutex.create (); tmp_seq = 0 }

let disabled () =
  {
    dir = None;
    fs = Fsio.real;
    stats = fresh_stats ();
    lock = Mutex.create ();
    tmp_seq = 0;
  }

let enabled t = t.dir <> None

let stats t = t.stats

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d stores=%d errors=%d read=%dB written=%dB"
    s.hits s.misses s.stores s.errors s.bytes_read s.bytes_written

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Keys *)

type key = { canonical : string; digest : string }

let fingerprint s = Digest.to_hex (Digest.string s)

let key ?(extra = "") ~family ~params ~seed ~solver () =
  let canonical =
    Printf.sprintf "v%d|family=%s|params=%s|seed=%d|solver=%s|extra=%s"
      schema_version family params seed solver extra
  in
  { canonical; digest = fingerprint canonical }

let canonical k = k.canonical

let digest_hex k = k.digest

(* ------------------------------------------------------------------ *)
(* Paths *)

let magic = Printf.sprintf "maxis-exec-cache v%d" schema_version

let shard_dir dir k = Filename.concat dir (String.sub k.digest 0 2)

let entry_path dir k = Filename.concat (shard_dir dir k) (k.digest ^ ".entry")

let mkdir_p ?fs path = Stdx.Fsio.mkdir_p ?fs path

(* ------------------------------------------------------------------ *)
(* Entry format *)

let encode_entry canonical payload =
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (String.escaped canonical);
  Buffer.add_char b '\n';
  Buffer.add_string b (Digest.to_hex (Digest.string payload));
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (String.length payload));
  Buffer.add_char b '\n';
  Buffer.add_string b payload;
  Buffer.contents b

(* Parse the four header lines + payload out of raw file contents.
   Returns [(escaped_key, payload)]; [Error reason] on any structural or
   digest mismatch. *)
let decode_entry contents =
  let next_line pos =
    match String.index_from_opt contents pos '\n' with
    | None -> None
    | Some nl -> Some (String.sub contents pos (nl - pos), nl + 1)
  in
  match next_line 0 with
  | Some (m, pos) when m = magic -> (
      match next_line pos with
      | None -> Error "truncated header (no key line)"
      | Some (escaped_key, pos) -> (
          match next_line pos with
          | None -> Error "truncated header (no digest line)"
          | Some (payload_md5, pos) -> (
              match next_line pos with
              | None -> Error "truncated header (no length line)"
              | Some (len_line, pos) -> (
                  match int_of_string_opt len_line with
                  | None -> Error "unparsable payload length"
                  | Some len when len < 0 -> Error "negative payload length"
                  | Some len ->
                      if String.length contents - pos < len then
                        Error "truncated payload"
                      else
                        let payload = String.sub contents pos len in
                        if Digest.to_hex (Digest.string payload) = payload_md5
                        then Ok (escaped_key, payload)
                        else Error "payload digest mismatch"))))
  | Some _ -> Error "bad magic"
  | None -> Error "empty file"

let read_entry fs path k =
  match decode_entry (fs.Fsio.read_file path) with
  | Error _ -> None
  | Ok (escaped_key, payload) ->
      if escaped_key = String.escaped k.canonical then Some payload else None

(* Standalone structural validation for fsck: checks magic, header
   shape, payload digest, and that the file's basename matches the MD5
   of the canonical key it claims to hold. *)
let validate_file ?(fs = Fsio.real) path =
  match fs.Fsio.read_file path with
  | exception Sys_error m -> Error ("unreadable: " ^ m)
  | contents -> (
      match decode_entry contents with
      | Error reason -> Error reason
      | Ok (escaped_key, _payload) -> (
          match Scanf.unescaped escaped_key with
          | exception (Scanf.Scan_failure _ | Failure _) ->
              Error "unparsable canonical key"
          | canonical ->
              let expected = fingerprint canonical ^ ".entry" in
              if Filename.basename path = expected then Ok canonical
              else Error "filename does not match key digest"))

(* ------------------------------------------------------------------ *)
(* Lookup *)

let find t k =
  match t.dir with
  | None -> None
  | Some dir ->
      let path = entry_path dir k in
      if not (t.fs.Fsio.file_exists path) then begin
        Obs.Metrics.inc m_misses;
        locked t (fun () -> t.stats.misses <- t.stats.misses + 1);
        None
      end
      else begin
        let result = try read_entry t.fs path k with _ -> None in
        locked t (fun () ->
            match result with
            | Some payload ->
                Obs.Metrics.inc m_hits;
                Obs.Metrics.add m_bytes_read (String.length payload);
                t.stats.hits <- t.stats.hits + 1;
                t.stats.bytes_read <- t.stats.bytes_read + String.length payload
            | None ->
                Obs.Metrics.inc m_misses;
                Obs.Metrics.inc m_errors;
                t.stats.misses <- t.stats.misses + 1;
                t.stats.errors <- t.stats.errors + 1);
        result
      end

(* ------------------------------------------------------------------ *)
(* Storage *)

(* Uniquifies temp names across processes sharing one cache directory.
   The exec library deliberately avoids a unix dependency, so instead of
   getpid we hash per-process state that two racing processes will not
   share. *)
let process_token =
  lazy (Hashtbl.hash (Sys.executable_name, Sys.time (), Random.State.make_self_init ()) land 0xFFFFFF)

let store t k payload =
  match t.dir with
  | None -> ()
  | Some dir -> (
      let seq = locked t (fun () -> t.tmp_seq <- t.tmp_seq + 1; t.tmp_seq) in
      let attempt () =
        let shard = shard_dir dir k in
        mkdir_p ~fs:t.fs shard;
        let tmp =
          Filename.concat shard
            (Printf.sprintf ".tmp-%s-%d-%d" k.digest (Lazy.force process_token) seq)
        in
        (try t.fs.Fsio.write_file tmp (encode_entry k.canonical payload)
         with e ->
           (try t.fs.Fsio.remove tmp with Sys_error _ -> ());
           raise e);
        t.fs.Fsio.rename tmp (entry_path dir k)
      in
      (* A full disk or a racing cleaner can fail one attempt without
         poisoning the sweep: retry transient failures briefly, then
         drop the write — the cache is an accelerator, not a correctness
         dependency. *)
      try
        Error.with_retries ~label:"cache.store" attempt;
        Obs.Metrics.inc m_stores;
        Obs.Metrics.add m_bytes_written (String.length payload);
        locked t (fun () ->
            t.stats.stores <- t.stats.stores + 1;
            t.stats.bytes_written <- t.stats.bytes_written + String.length payload)
      with _ ->
        Obs.Metrics.inc m_errors;
        locked t (fun () -> t.stats.errors <- t.stats.errors + 1))

let memo t k compute =
  match find t k with
  | Some payload -> payload
  | None ->
      let payload = compute () in
      store t k payload;
      payload

let memo_value t k ~encode ~decode compute =
  let recompute () =
    let v = compute () in
    store t k (encode v);
    v
  in
  match find t k with
  | None -> recompute ()
  | Some payload -> (
      match decode payload with
      | Some v -> v
      | None ->
          (* Obs counters are monotone: the raw payload hit above stays
             counted; the decode rejection surfaces as an error + miss. *)
          Obs.Metrics.inc m_errors;
          Obs.Metrics.inc m_misses;
          locked t (fun () ->
              t.stats.errors <- t.stats.errors + 1;
              t.stats.hits <- t.stats.hits - 1;
              t.stats.misses <- t.stats.misses + 1);
          recompute ())

(* ------------------------------------------------------------------ *)
(* Maintenance *)

let clear t =
  match t.dir with
  | None -> ()
  | Some dir ->
      let fs = t.fs in
      let rec rm path =
        if fs.Fsio.file_exists path then
          if fs.Fsio.is_directory path then begin
            Array.iter (fun f -> rm (Filename.concat path f)) (fs.Fsio.readdir path);
            try fs.Fsio.rmdir path with Sys_error _ -> ()
          end
          else try fs.Fsio.remove path with Sys_error _ -> ()
      in
      rm dir
