(* Offline integrity scan for the on-disk execution state: every cache
   entry under [cache_dir] and every journal under [journal_dir] is
   re-validated against the same invariants the hot paths enforce
   (Cache.validate_file, Journal.parse_line).  Damage is quarantined,
   never deleted:

   - an invalid cache entry is renamed to
     [<cache_dir>/quarantine/<basename>] so the next [Cache.find] is a
     clean miss instead of a per-read parse failure;
   - stray [.tmp-*] files (crashed mid-store) are removed — they were
     never published, nothing references them;
   - a journal with a torn or corrupt tail is atomically rewritten to
     its valid prefix, the dropped bytes saved to
     [<journal_dir>/quarantine/<name>.dropped].

   The scan is idempotent: a second pass over a repaired tree reports
   zero quarantines.  All I/O goes through [Fsio.t], so the chaos suite
   can check that fsck itself survives injected faults. *)

type report = {
  cache_scanned : int;
  cache_valid : int;
  cache_quarantined : int;
  cache_tmp_removed : int;
  journals_scanned : int;
  journal_lines_valid : int;
  journal_lines_dropped : int;
}

let empty_report =
  {
    cache_scanned = 0;
    cache_valid = 0;
    cache_quarantined = 0;
    cache_tmp_removed = 0;
    journals_scanned = 0;
    journal_lines_valid = 0;
    journal_lines_dropped = 0;
  }

let clean r = r.cache_quarantined = 0 && r.journal_lines_dropped = 0

let pp_report ppf r =
  Format.fprintf ppf
    "cache: scanned=%d valid=%d quarantined=%d tmp_removed=%d@ journal: \
     files=%d lines_valid=%d lines_dropped=%d"
    r.cache_scanned r.cache_valid r.cache_quarantined r.cache_tmp_removed
    r.journals_scanned r.journal_lines_valid r.journal_lines_dropped

let m_quarantined kind =
  Obs.Metrics.counter ~labels:[ ("kind", kind) ] "fsck_quarantined_total"

let quarantine_dir_name = "quarantine"

let has_suffix ~suffix s =
  let ls = String.length suffix and n = String.length s in
  n >= ls && String.sub s (n - ls) ls = suffix

let has_prefix ~prefix s =
  let lp = String.length prefix and n = String.length s in
  n >= lp && String.sub s 0 lp = prefix

let sorted_entries fs dir =
  if fs.Fsio.file_exists dir && fs.Fsio.is_directory dir then begin
    let a = fs.Fsio.readdir dir in
    Array.sort compare a;
    a
  end
  else [||]

(* Move [path] into [root/quarantine/], keeping the basename.  Rename
   within one filesystem; failures are swallowed (a second fsck pass
   will retry) but still counted as quarantined — the entry is known
   bad either way. *)
let quarantine_file ?on_quarantine fs ~root ~kind path =
  let qdir = Filename.concat root quarantine_dir_name in
  (try Stdx.Fsio.mkdir_p ~fs qdir with Sys_error _ -> ());
  (try fs.Fsio.rename path (Filename.concat qdir (Filename.basename path))
   with Sys_error _ -> ());
  Obs.Metrics.inc (m_quarantined kind);
  match on_quarantine with Some f -> f ~kind ~path | None -> ()

(* ------------------------------------------------------------------ *)
(* Cache tree *)

let scan_cache ?on_quarantine fs dir r =
  let r = ref r in
  Array.iter
    (fun shard ->
      if shard <> quarantine_dir_name then begin
        let shard_path = Filename.concat dir shard in
        if fs.Fsio.is_directory shard_path then
          Array.iter
            (fun name ->
              let path = Filename.concat shard_path name in
              if has_prefix ~prefix:".tmp-" name then begin
                (try fs.Fsio.remove path with Sys_error _ -> ());
                r := { !r with cache_tmp_removed = !r.cache_tmp_removed + 1 }
              end
              else if has_suffix ~suffix:".entry" name then begin
                r := { !r with cache_scanned = !r.cache_scanned + 1 };
                match Cache.validate_file ~fs path with
                | Ok _canonical ->
                    r := { !r with cache_valid = !r.cache_valid + 1 }
                | Error _reason ->
                    quarantine_file ?on_quarantine fs ~root:dir
                      ~kind:"cache_entry" path;
                    r :=
                      { !r with cache_quarantined = !r.cache_quarantined + 1 }
              end)
            (sorted_entries fs shard_path)
      end)
    (sorted_entries fs dir);
  !r

(* ------------------------------------------------------------------ *)
(* Journal tree *)

(* Rewrite a damaged journal to its valid prefix via write-temp + rename
   (the same publication discipline the cache uses), saving the dropped
   tail bytes beside the quarantined cache entries. *)
let repair_journal ?on_quarantine fs ~root path ~valid ~dropped_bytes =
  let qdir = Filename.concat root quarantine_dir_name in
  (try Stdx.Fsio.mkdir_p ~fs qdir with Sys_error _ -> ());
  let dropped_path =
    Filename.concat qdir (Filename.basename path ^ ".dropped")
  in
  (try fs.Fsio.write_file dropped_path dropped_bytes with Sys_error _ -> ());
  let b = Buffer.create 4096 in
  Buffer.add_string b Journal.magic;
  Buffer.add_char b '\n';
  List.iter
    (fun (line, _digest) ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    valid;
  let tmp = path ^ ".fsck-tmp" in
  (try
     fs.Fsio.write_file tmp (Buffer.contents b);
     fs.Fsio.rename tmp path
   with Sys_error _ -> ( try fs.Fsio.remove tmp with Sys_error _ -> ()));
  Obs.Metrics.inc (m_quarantined "journal_tail");
  match on_quarantine with
  | Some f -> f ~kind:"journal_tail" ~path
  | None -> ()

let scan_journal ?on_quarantine fs ~root path r =
  match fs.Fsio.read_file path with
  | exception Sys_error _ ->
      quarantine_file ?on_quarantine fs ~root ~kind:"journal_unreadable" path;
      { r with journals_scanned = r.journals_scanned + 1 }
  | contents -> (
      let r = { r with journals_scanned = r.journals_scanned + 1 } in
      match Journal.split_lines contents with
      | header :: lines when header = Journal.magic ->
          let valid = Journal.valid_prefix lines in
          let n_valid = List.length valid in
          let n_dropped = List.length lines - n_valid in
          let r =
            { r with journal_lines_valid = r.journal_lines_valid + n_valid }
          in
          if n_dropped = 0 then r
          else begin
            (* Byte offset where the first invalid line starts: header +
               every valid line, each '\n'-terminated. *)
            let ok_bytes =
              List.fold_left
                (fun acc (line, _) -> acc + String.length line + 1)
                (String.length header + 1)
                valid
            in
            let dropped_bytes =
              String.sub contents ok_bytes (String.length contents - ok_bytes)
            in
            repair_journal ?on_quarantine fs ~root path ~valid ~dropped_bytes;
            { r with journal_lines_dropped = r.journal_lines_dropped + n_dropped }
          end
      | _ ->
          (* Not a journal at all (bad or missing header): quarantine the
             whole file rather than guess at its contents. *)
          quarantine_file ?on_quarantine fs ~root ~kind:"journal_header" path;
          r)

let scan_journals ?on_quarantine fs dir r =
  let r = ref r in
  Array.iter
    (fun name ->
      if has_suffix ~suffix:".journal" name then
        r := scan_journal ?on_quarantine fs ~root:dir (Filename.concat dir name) !r)
    (sorted_entries fs dir);
  !r

(* ------------------------------------------------------------------ *)

let run ?(fs = Fsio.real) ?(cache_dir = Cache.default_dir)
    ?(journal_dir = Journal.default_dir) ?on_quarantine () =
  let r = scan_cache ?on_quarantine fs cache_dir empty_report in
  scan_journals ?on_quarantine fs journal_dir r
