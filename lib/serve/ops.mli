(** Op implementations shared by the serve daemon and the offline CLI.

    The serving layer's parity contract — a [solve] reply's payload is
    byte-identical to the offline [maxis_lb solve] answer for the same
    instance and budget, cold or warm cache, at any [--jobs] width —
    holds because both callers funnel through these functions: one
    payload formatter, one cache key, one (sequential, budgeted) solver
    entry point per request.  Parallelism comes from batching many
    requests across an [Exec.Pool], never from splitting one request, so
    a payload can never depend on the pool width.

    Every function here is pure in its parameters modulo the cache
    (which is a transparent accelerator), safe to run inside a pool
    task, and must {e not} touch any [Exec.Pool] itself (pool maps do
    not nest). *)

type solve_outcome = {
  payload : string;
      (** ["OPT <w>"], or ["EXHAUSTED lb=<l> ub=<u> reason=<r>"] when the
          budget ran out — exactly the offline CLI's stdout line *)
  exhausted : bool;
}

val solve :
  cache:Exec.Cache.t -> budget:Exec.Budget.t -> Proto.solve_params -> solve_outcome
(** Build the requested gadget instance (linear or quadratic family,
    seeded promise input) and solve it under [budget] with the
    {e sequential} budgeted solver.  The payload string is what gets
    cached, keyed by family, parameters, seed, the input fingerprint and
    the budget fingerprint — so budgeted and unbudgeted answers never
    collide, and a warm hit returns the identical bytes. *)

val bounds :
  cache:Exec.Cache.t -> alpha:int -> ell:int -> players:int -> string
(** The Theorem 1/2 round-bound reports at the given parameters, joined
    by a newline — the same report strings (and the same cache keys) as
    [maxis_lb bounds]. *)

type verify_outcome = {
  v_payload : string;  (** one audit-item line per check + a summary line *)
  exit_code : int;  (** the CLI contract: 0 passed, 2 failed, 3 inconclusive *)
}

val claim_verify :
  cache:Exec.Cache.t -> budget:Exec.Budget.t -> Proto.verify_params -> verify_outcome
(** Run the full [Verification.run] audit (sequentially — no pool) at
    the requested parameters under [budget]. *)
