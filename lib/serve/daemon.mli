(** The `maxis_lb serve` daemon: a batched, budgeted, cache-backed solve
    service.

    One single-threaded event loop owns every socket: it accepts
    connections on the wire address, reads newline-delimited JSON
    requests ({!Proto}), admits each through {!Exec.Admission} (per-
    request {!Exec.Budget} node caps + a global in-flight window;
    overload and over-ceiling budgets get structured [rejected] replies,
    never a hang), batches the admitted compute ops, fans each batch out
    over an {!Exec.Pool} (one request = one sequential budgeted solve,
    so payloads are width-independent), answers warm requests straight
    from {!Exec.Cache}, and writes replies back in arrival order per
    connection.  A second listener serves the Prometheus rendering of
    the process metrics registry to any connection that scrapes it.

    Failure containment: a request whose execution raises gets an
    [error] reply and the connection lives on; a task that kills its
    pool worker ({!Exec.Pool.Chaos_kill} — enabled only with
    [allow_chaos]) is absorbed by pool supervision and, if quarantined,
    the batch re-executes on the event loop so only the poison request
    errors.  Socket failures are classified as
    {!Exec.Error.kind.Net_io}: a dead client costs its connection,
    nothing else.

    Connection lifecycle (the {!Exec.Pool} watchdog idiom, applied to
    sockets; every deadline reads the injectable [clock]): at most
    [max_conns] connections are held at once — excess accepts are shed
    with a structured error line and closed, never silently dropped; a
    connection holding a partial request line longer than
    [read_deadline_s] without new bytes is evicted (slow-loris); a
    connection with pending output that accepts no bytes for
    [write_deadline_s] is evicted (slow writer — the generalization of
    the scrape write deadline); a connection with no traffic and nothing
    owed for [idle_timeout_s] is evicted.  Evictions are counted in
    [serve_evictions_total{reason="idle"|"slow-writer"|"capacity"|"drain"}]
    and the live connection count is the [serve_conns] gauge.  All
    socket operations go through the pluggable [netio] record, so the
    netchaos harness can inject seeded faults ({!Serve.Netio.chaos}) on
    a live daemon.

    Shutdown: {!stop} (or SIGINT/SIGTERM in the CLI wrapper, which calls
    it) drains — listeners close, already-received bytes are parsed,
    every admitted request runs to its terminal reply (budget caps bound
    the wait), buffers flush for at most [drain_deadline_s], sockets
    close, the pool shuts down.  Metrics: [serve_*] counters/gauges/
    histograms, catalogued in docs/SERVING.md. *)

type config = {
  listen : Proto.addr;
  metrics : Proto.addr option;  (** scrape listener; off when [None] *)
  jobs : int;  (** pool width for batch dispatch *)
  cache : Exec.Cache.t;
  max_inflight : int;  (** admission window, across all connections *)
  default_budget_nodes : int;  (** node cap when a request names none *)
  max_budget_nodes : int;  (** requests asking above this are rejected *)
  max_line_bytes : int;
      (** longer request lines are answered with an error and skipped;
          the connection survives *)
  batch_max : int;  (** most requests one pool batch may carry *)
  tick_s : float;  (** event-loop poll period (drain/stop latency) *)
  allow_chaos : bool;  (** honor [chaos-kill] requests (tests/benches) *)
  max_conns : int;
      (** connection cap; accepts beyond it are shed with a structured
          error reply and counted as [capacity] evictions *)
  idle_timeout_s : float;
      (** a connection with no traffic and nothing owed either way for
          this long is evicted ([idle]) *)
  read_deadline_s : float;
      (** a partial request line must grow within this long of its last
          byte, or the connection is evicted ([idle]) — the slow-loris
          bound *)
  write_deadline_s : float;
      (** pending output must make progress within this long, or the
          connection is evicted ([slow-writer]); also bounds scrape
          responses and capacity-shed error lines *)
  drain_deadline_s : float;
      (** grace period for flushing replies during shutdown drain;
          connections still holding bytes at the deadline are dropped
          and counted as [drain] evictions *)
  netio : Netio.t;
      (** socket backend; {!Netio.real} in production,
          {!Serve.Netio.chaos} under fault injection *)
  clock : unit -> float;
      (** time source for deadlines, admission, and latency metrics;
          injectable for deterministic lifecycle tests *)
}

val default_config : ?cache:Exec.Cache.t -> listen:Proto.addr -> unit -> config
(** jobs 1, no metrics listener, disabled cache unless given, window 64,
    default budget 1M nodes, ceiling 4M, 1 MiB lines, batches of 64,
    20 ms ticks, chaos off, 1024 connections, 300 s idle timeout, 30 s
    read deadline, 5 s write deadline, 5 s drain deadline, real sockets,
    [Unix.gettimeofday]. *)

type t

val create : config -> t
(** Bind and listen on the configured addresses (an existing Unix-domain
    socket {e file} at the path is replaced if stale).  Raises
    {!Exec.Error.Error}[ (Net_io _)] when a socket cannot be bound, and
    [Invalid_argument] on [jobs < 1] or [max_conns < 1]. *)

val run : t -> unit
(** The blocking event loop; returns after {!stop} has been honoured and
    the drain completed.  Idempotent sockets cleanup: the Unix socket
    files are unlinked on exit.  May be called once. *)

val stop : t -> unit
(** Request graceful drain; safe from signal handlers and other threads
    or domains.  {!run} returns once every in-flight request has its
    terminal reply. *)

val stopped : t -> bool

val requests_served : t -> int
(** Terminal replies written over the daemon's lifetime (ok + rejected +
    error) — a convenience for tests; the full picture is in the
    [serve_*] metrics. *)
