module J = Stdx.Jsonx

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

let addr_of_string s =
  let prefixed p =
    String.length s > String.length p
    && String.sub s 0 (String.length p) = p
  in
  if prefixed "unix:" then Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if prefixed "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s))
    | None -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s)
  end
  else if s <> "" && not (String.contains s ':') then Ok (Unix_sock s)
  else Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          (* First stream address of any family, so IPv6 literals and
             IPv6-only hosts resolve too; callers derive the socket
             domain from the returned sockaddr. *)
          match Unix.getaddrinfo host "" [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Exec.Error.Error (Exec.Error.Net_io ("cannot resolve " ^ host))))
      in
      Unix.ADDR_INET (ip, port)

type solve_params = {
  alpha : int;
  ell : int;
  players : int;
  seed : int;
  intersecting : bool;
  quadratic : bool;
  budget_nodes : int option;
}

type verify_params = {
  v_alpha : int;
  v_ell : int;
  v_players : int;
  v_seed : int;
  v_samples : int;
  v_budget_nodes : int option;
}

type op =
  | Ping
  | Stats
  | Solve of solve_params
  | Bounds of { b_alpha : int; b_ell : int; b_players : int }
  | Claim_verify of verify_params
  | Chaos_kill

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Solve _ -> "solve"
  | Bounds _ -> "bounds"
  | Claim_verify _ -> "claim-verify"
  | Chaos_kill -> "chaos-kill"

type request = { id : J.t; op : op }

(* Field defaults mirror the CLI's cmdliner defaults, so a request that
   says nothing gets the same instance the bare CLI would build. *)
let solve_defaults =
  {
    alpha = 1;
    ell = 4;
    players = 3;
    seed = 2020;
    intersecting = false;
    quadratic = false;
    budget_nodes = None;
  }

let verify_defaults =
  {
    v_alpha = 1;
    v_ell = 4;
    v_players = 3;
    v_seed = 2020;
    v_samples = 4;
    v_budget_nodes = None;
  }

(* ------------------------------------------------------------------ *)
(* Encoding *)

let opt_nodes = function
  | None -> []
  | Some n -> [ ("budget_nodes", J.Int n) ]

let encode_request { id; op } =
  let fields =
    match op with
    | Ping | Stats | Chaos_kill -> []
    | Solve p ->
        [
          ("alpha", J.Int p.alpha);
          ("ell", J.Int p.ell);
          ("players", J.Int p.players);
          ("seed", J.Int p.seed);
          ("intersecting", J.Bool p.intersecting);
          ("quadratic", J.Bool p.quadratic);
        ]
        @ opt_nodes p.budget_nodes
    | Bounds { b_alpha; b_ell; b_players } ->
        [
          ("alpha", J.Int b_alpha);
          ("ell", J.Int b_ell);
          ("players", J.Int b_players);
        ]
    | Claim_verify p ->
        [
          ("alpha", J.Int p.v_alpha);
          ("ell", J.Int p.v_ell);
          ("players", J.Int p.v_players);
          ("seed", J.Int p.v_seed);
          ("samples", J.Int p.v_samples);
        ]
        @ opt_nodes p.v_budget_nodes
  in
  J.to_string (J.Obj ((("id", id) :: ("op", J.Str (op_name op)) :: fields)))

(* ------------------------------------------------------------------ *)
(* Decoding *)

let ( let* ) = Result.bind

let field_int j k ~default =
  match J.member k j with
  | None -> Ok default
  | Some v -> (
      match J.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" k))

let field_bool j k ~default =
  match J.member k j with
  | None -> Ok default
  | Some v -> (
      match J.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S must be a boolean" k))

let field_nodes j =
  match J.member "budget_nodes" j with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_int v with
      | Some i when i >= 1 -> Ok (Some i)
      | Some _ -> Error "field \"budget_nodes\" must be >= 1"
      | None -> Error "field \"budget_nodes\" must be an integer")

let decode_solve j =
  let d = solve_defaults in
  let* alpha = field_int j "alpha" ~default:d.alpha in
  let* ell = field_int j "ell" ~default:d.ell in
  let* players = field_int j "players" ~default:d.players in
  let* seed = field_int j "seed" ~default:d.seed in
  let* intersecting = field_bool j "intersecting" ~default:d.intersecting in
  let* quadratic = field_bool j "quadratic" ~default:d.quadratic in
  let* budget_nodes = field_nodes j in
  Ok (Solve { alpha; ell; players; seed; intersecting; quadratic; budget_nodes })

let decode_bounds j =
  let d = solve_defaults in
  let* b_alpha = field_int j "alpha" ~default:d.alpha in
  let* b_ell = field_int j "ell" ~default:d.ell in
  let* b_players = field_int j "players" ~default:d.players in
  Ok (Bounds { b_alpha; b_ell; b_players })

let decode_verify j =
  let d = verify_defaults in
  let* v_alpha = field_int j "alpha" ~default:d.v_alpha in
  let* v_ell = field_int j "ell" ~default:d.v_ell in
  let* v_players = field_int j "players" ~default:d.v_players in
  let* v_seed = field_int j "seed" ~default:d.v_seed in
  let* v_samples = field_int j "samples" ~default:d.v_samples in
  let* v_budget_nodes = field_nodes j in
  Ok (Claim_verify { v_alpha; v_ell; v_players; v_seed; v_samples; v_budget_nodes })

let decode_request line =
  match J.parse line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok (J.Obj _ as j) -> (
      let id = Option.value (J.member "id" j) ~default:J.Null in
      match J.mem_str "op" j with
      | None -> Error "missing or non-string \"op\""
      | Some name ->
          let* op =
            match name with
            | "ping" -> Ok Ping
            | "stats" -> Ok Stats
            | "solve" -> decode_solve j
            | "bounds" -> decode_bounds j
            | "claim-verify" -> decode_verify j
            | "chaos-kill" -> Ok Chaos_kill
            | other -> Error (Printf.sprintf "unknown op %S" other)
          in
          Ok { id; op })
  | Ok _ -> Error "request must be a json object"

(* ------------------------------------------------------------------ *)
(* Replies *)

type reply =
  | Ok_reply of { id : J.t; op : string; payload : string }
  | Rejected of { id : J.t; op : string; reason : string }
  | Error_reply of { id : J.t; op : string; reason : string }

let reply_id = function
  | Ok_reply { id; _ } | Rejected { id; _ } | Error_reply { id; _ } -> id

let reply_op = function
  | Ok_reply { op; _ } | Rejected { op; _ } | Error_reply { op; _ } -> op

let reply_status = function
  | Ok_reply _ -> "ok"
  | Rejected _ -> "rejected"
  | Error_reply _ -> "error"

let reply_payload = function Ok_reply { payload; _ } -> Some payload | _ -> None

let reply_reason = function
  | Rejected { reason; _ } | Error_reply { reason; _ } -> Some reason
  | Ok_reply _ -> None

let encode_reply r =
  let tail =
    match r with
    | Ok_reply { payload; _ } -> [ ("payload", J.Str payload) ]
    | Rejected { reason; _ } | Error_reply { reason; _ } ->
        [ ("reason", J.Str reason) ]
  in
  J.to_string
    (J.Obj
       ([
          ("id", reply_id r);
          ("op", J.Str (reply_op r));
          ("status", J.Str (reply_status r));
        ]
       @ tail))

let decode_reply line =
  match J.parse line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok (J.Obj _ as j) -> (
      let id = Option.value (J.member "id" j) ~default:J.Null in
      let op = Option.value (J.mem_str "op" j) ~default:"?" in
      match J.mem_str "status" j with
      | Some "ok" -> (
          match J.mem_str "payload" j with
          | Some payload -> Ok (Ok_reply { id; op; payload })
          | None -> Error "ok reply without \"payload\"")
      | Some "rejected" ->
          Ok
            (Rejected
               { id; op; reason = Option.value (J.mem_str "reason" j) ~default:"" })
      | Some "error" ->
          Ok
            (Error_reply
               { id; op; reason = Option.value (J.mem_str "reason" j) ~default:"" })
      | Some other -> Error (Printf.sprintf "unknown status %S" other)
      | None -> Error "missing \"status\"")
  | Ok _ -> Error "reply must be a json object"

(* ------------------------------------------------------------------ *)
(* Constructors *)

let ping ?(id = J.Null) () = { id; op = Ping }
let stats ?(id = J.Null) () = { id; op = Stats }
let solve ?(id = J.Null) p = { id; op = Solve p }

let bounds ?(id = J.Null) ~alpha ~ell ~players () =
  { id; op = Bounds { b_alpha = alpha; b_ell = ell; b_players = players } }

let claim_verify ?(id = J.Null) p = { id; op = Claim_verify p }
let chaos_kill ?(id = J.Null) () = { id; op = Chaos_kill }
