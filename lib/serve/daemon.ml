module J = Stdx.Jsonx

type config = {
  listen : Proto.addr;
  metrics : Proto.addr option;
  jobs : int;
  cache : Exec.Cache.t;
  max_inflight : int;
  default_budget_nodes : int;
  max_budget_nodes : int;
  max_line_bytes : int;
  batch_max : int;
  tick_s : float;
  allow_chaos : bool;
  max_conns : int;
  idle_timeout_s : float;
  read_deadline_s : float;
  write_deadline_s : float;
  drain_deadline_s : float;
  netio : Netio.t;
  clock : unit -> float;
}

let default_config ?cache ~listen () =
  {
    listen;
    metrics = None;
    jobs = 1;
    cache = (match cache with Some c -> c | None -> Exec.Cache.disabled ());
    max_inflight = 64;
    default_budget_nodes = 1_000_000;
    max_budget_nodes = 4_000_000;
    max_line_bytes = 1 lsl 20;
    batch_max = 64;
    tick_s = 0.02;
    allow_chaos = false;
    max_conns = 1024;
    idle_timeout_s = 300.0;
    read_deadline_s = 30.0;
    write_deadline_s = 5.0;
    drain_deadline_s = 5.0;
    netio = Netio.real;
    clock = Unix.gettimeofday;
  }

(* ------------------------------------------------------------------ *)
(* Metrics (catalogued in docs/SERVING.md) *)

let m_connections = Obs.Metrics.counter "serve_connections_total"
let m_scrapes = Obs.Metrics.counter "serve_scrapes_total"
let m_request_bytes = Obs.Metrics.counter "serve_request_bytes_total"
let m_reply_bytes = Obs.Metrics.counter "serve_reply_bytes_total"
let m_batches = Obs.Metrics.counter "serve_batches_total"
let m_batch_fallbacks = Obs.Metrics.counter "serve_batch_fallbacks_total"
let m_io_errors = Obs.Metrics.counter "serve_io_errors_total"
let m_queue_depth = Obs.Metrics.gauge "serve_queue_depth"
let m_conns = Obs.Metrics.gauge "serve_conns"

(* Pre-interned: evictions happen on the event-loop hot path. *)
let m_evict_idle =
  Obs.Metrics.counter ~labels:[ ("reason", "idle") ] "serve_evictions_total"

let m_evict_slow_writer =
  Obs.Metrics.counter
    ~labels:[ ("reason", "slow-writer") ]
    "serve_evictions_total"

let m_evict_capacity =
  Obs.Metrics.counter ~labels:[ ("reason", "capacity") ] "serve_evictions_total"

let m_evict_drain =
  Obs.Metrics.counter ~labels:[ ("reason", "drain") ] "serve_evictions_total"

let m_evictions = function
  | "idle" -> m_evict_idle
  | "slow-writer" -> m_evict_slow_writer
  | "capacity" -> m_evict_capacity
  | "drain" -> m_evict_drain
  | reason -> Obs.Metrics.counter ~labels:[ ("reason", reason) ] "serve_evictions_total"

let m_latency =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.default_latency_buckets
    "serve_latency_seconds"

let m_requests ~op ~outcome =
  Obs.Metrics.counter
    ~labels:[ ("op", op); ("outcome", outcome) ]
    "serve_requests_total"

(* ------------------------------------------------------------------ *)
(* Connections and work items *)

type slot = { mutable out : string option }  (* encoded reply, sans newline *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  slots : slot Queue.t;  (* arrival order; replies flush strictly FIFO *)
  outbuf : Buffer.t;
  mutable outpos : int;
  mutable skipping : bool;  (* discarding the tail of an oversized line *)
  mutable eof : bool;
  mutable last_read : float;   (* last byte arrival (watchdog: read deadline, idle) *)
  mutable last_wmove : float;  (* last outbound progress (watchdog: slow writer) *)
}

type work = {
  w_slot : slot;
  w_op : Proto.op;
  w_id : J.t;
  w_budget : Exec.Budget.t;
  w_t0 : float;
}

type t = {
  cfg : config;
  pool : Exec.Pool.t;
  admission : Exec.Admission.t;
  wire : Unix.file_descr;
  scrape : Unix.file_descr option;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  queue : work Queue.t;
  stop_flag : bool Atomic.t;
  mutable draining : bool;
  mutable served : int;
  mutable ran : bool;
}

let net_io fmt = Printf.ksprintf (fun m -> Exec.Error.Error (Exec.Error.Net_io m)) fmt

let unix_msg e fn = Printf.sprintf "%s: %s" fn (Unix.error_message e)

(* Bind + listen, replacing a stale Unix-domain socket file (the trace a
   killed daemon leaves behind).  A path occupied by a non-socket is an
   error — never delete something we did not create. *)
let listen_on addr =
  (match addr with
  | Proto.Unix_sock path when Sys.file_exists path -> (
      match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> raise (net_io "socket path %s exists and is not a socket" path))
  | _ -> ());
  let sa = Proto.sockaddr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  try
    (match addr with
    | Proto.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Proto.Unix_sock _ -> ());
    Unix.bind fd sa;
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  with Unix.Unix_error (e, fn, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (net_io "cannot listen on %s (%s)" (Format.asprintf "%a" Proto.pp_addr addr) (unix_msg e fn))

let create cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.Daemon.create: jobs must be >= 1";
  if cfg.max_conns < 1 then
    invalid_arg "Serve.Daemon.create: max_conns must be >= 1";
  let wire = listen_on cfg.listen in
  let scrape =
    match cfg.metrics with
    | None -> None
    | Some a -> (
        try Some (listen_on a)
        with e ->
          (try Unix.close wire with Unix.Unix_error _ -> ());
          raise e)
  in
  {
    cfg;
    pool = Exec.Pool.create ~jobs:cfg.jobs ();
    admission =
      Exec.Admission.create ~max_inflight:cfg.max_inflight
        ~default_nodes:cfg.default_budget_nodes ~max_nodes:cfg.max_budget_nodes
        ~clock:cfg.clock ();
    wire;
    scrape;
    conns = Hashtbl.create 16;
    queue = Queue.create ();
    stop_flag = Atomic.make false;
    draining = false;
    served = 0;
    ran = false;
  }

let stop d = Atomic.set d.stop_flag true

let stopped d = Atomic.get d.stop_flag

let requests_served d = d.served

(* ------------------------------------------------------------------ *)
(* Replies *)

let fill d slot reply ~op ~t0 =
  slot.out <- Some (Proto.encode_reply reply);
  d.served <- d.served + 1;
  Obs.Metrics.inc (m_requests ~op ~outcome:(Proto.reply_status reply));
  Obs.Metrics.observe m_latency (d.cfg.clock () -. t0)

let reply_now d conn reply ~op ~t0 =
  let slot = { out = None } in
  Queue.add slot conn.slots;
  fill d slot reply ~op ~t0

let failure_reason = function
  | Exec.Error.Error k -> Exec.Error.to_string k
  | Exec.Pool.Chaos_kill -> "worker killed (chaos)"
  | Invalid_argument m -> "invalid request: " ^ m
  | Failure m -> m
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Request handling *)

let stats_payload d =
  Printf.sprintf "served=%d inflight=%d queue=%d connections=%d jobs=%d"
    d.served
    (Exec.Admission.inflight d.admission)
    (Queue.length d.queue)
    (Hashtbl.length d.conns)
    (Exec.Pool.jobs d.pool)

let handle_line d conn line =
  let line =
    (* tolerate CRLF clients *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then ()
  else begin
    Obs.Metrics.add m_request_bytes (String.length line + 1);
    let t0 = d.cfg.clock () in
    match Proto.decode_request line with
    | Error reason ->
        reply_now d conn (Proto.Error_reply { id = J.Null; op = "?"; reason })
          ~op:"?" ~t0
    | Ok { Proto.id; op } -> (
        let name = Proto.op_name op in
        match op with
        | Proto.Ping ->
            reply_now d conn (Proto.Ok_reply { id; op = name; payload = "pong" })
              ~op:name ~t0
        | Proto.Stats ->
            reply_now d conn
              (Proto.Ok_reply { id; op = name; payload = stats_payload d })
              ~op:name ~t0
        | Proto.Chaos_kill when not d.cfg.allow_chaos ->
            reply_now d conn
              (Proto.Error_reply
                 { id; op = name; reason = "chaos ops disabled on this server" })
              ~op:name ~t0
        | Proto.Solve _ | Proto.Bounds _ | Proto.Claim_verify _ | Proto.Chaos_kill
          -> (
            let requested_nodes =
              match op with
              | Proto.Solve { Proto.budget_nodes; _ } -> budget_nodes
              | Proto.Claim_verify { Proto.v_budget_nodes; _ } -> v_budget_nodes
              | _ -> None
            in
            match Exec.Admission.admit ?requested_nodes d.admission with
            | Error rejection ->
                reply_now d conn
                  (Proto.Rejected
                     {
                       id;
                       op = name;
                       reason = Exec.Admission.rejection_to_string rejection;
                     })
                  ~op:name ~t0
            | Ok budget ->
                let slot = { out = None } in
                Queue.add slot conn.slots;
                Queue.add
                  { w_slot = slot; w_op = op; w_id = id; w_budget = budget; w_t0 = t0 }
                  d.queue;
                Obs.Metrics.set m_queue_depth (Queue.length d.queue)))
  end

(* Split buffered input into lines; oversized lines are answered with a
   structured error and skipped up to their terminating newline, so the
   connection (and the replies already owed to it) survives. *)
let process_input d conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length data in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt data !i '\n' with
    | Some j ->
        let line = String.sub data !i (j - !i) in
        if conn.skipping then conn.skipping <- false
        else if String.length line > d.cfg.max_line_bytes then
          reply_now d conn
            (Proto.Error_reply
               {
                 id = J.Null;
                 op = "?";
                 reason =
                   Printf.sprintf "oversized request line (%d > %d bytes)"
                     (String.length line) d.cfg.max_line_bytes;
               })
            ~op:"?" ~t0:(d.cfg.clock ())
        else handle_line d conn line;
        i := j + 1
    | None ->
        let rest = n - !i in
        if conn.skipping then ()  (* keep discarding until a newline shows *)
        else if rest > d.cfg.max_line_bytes then begin
          reply_now d conn
            (Proto.Error_reply
               {
                 id = J.Null;
                 op = "?";
                 reason =
                   Printf.sprintf "oversized request line (> %d bytes)"
                     d.cfg.max_line_bytes;
               })
            ~op:"?" ~t0:(d.cfg.clock ());
          conn.skipping <- true
        end
        else Buffer.add_substring conn.inbuf data !i rest;
        i := n
  done

(* ------------------------------------------------------------------ *)
(* Dispatch: batch the admitted queue across the pool.  Tasks never let
   an exception escape — except Chaos_kill, which must reach the pool's
   supervision.  If the batch-level map still fails (a quarantined
   poison task, or a width-1 chaos kill), re-execute each request on the
   event loop so only the genuinely failing request errors. *)

let execute d w =
  match w.w_op with
  | Proto.Solve p -> (Ops.solve ~cache:d.cfg.cache ~budget:w.w_budget p).Ops.payload
  | Proto.Bounds { b_alpha; b_ell; b_players } ->
      Ops.bounds ~cache:d.cfg.cache ~alpha:b_alpha ~ell:b_ell ~players:b_players
  | Proto.Claim_verify p ->
      (Ops.claim_verify ~cache:d.cfg.cache ~budget:w.w_budget p).Ops.v_payload
  | Proto.Chaos_kill -> raise Exec.Pool.Chaos_kill
  | Proto.Ping | Proto.Stats -> assert false (* answered inline, never queued *)

let dispatch d =
  while not (Queue.is_empty d.queue) do
    let batch = Queue.create () in
    while
      (not (Queue.is_empty d.queue)) && Queue.length batch < d.cfg.batch_max
    do
      Queue.add (Queue.pop d.queue) batch
    done;
    Obs.Metrics.set m_queue_depth (Queue.length d.queue);
    let works = Array.of_seq (Queue.to_seq batch) in
    Obs.Metrics.inc m_batches;
    let results =
      try
        Exec.Pool.map d.pool
          (fun w ->
            try Ok (execute d w)
            with
            | Exec.Pool.Chaos_kill as e -> raise e
            | e -> Error e)
          works
      with _batch_failure ->
        Obs.Metrics.inc m_batch_fallbacks;
        Array.map (fun w -> try Ok (execute d w) with e -> Error e) works
    in
    Array.iteri
      (fun i w ->
        let op = Proto.op_name w.w_op in
        let reply =
          match results.(i) with
          | Ok payload -> Proto.Ok_reply { id = w.w_id; op; payload }
          | Error e ->
              Proto.Error_reply { id = w.w_id; op; reason = failure_reason e }
        in
        fill d w.w_slot reply ~op ~t0:w.w_t0;
        Exec.Admission.release d.admission)
      works
  done

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_conn d conn =
  Hashtbl.remove d.conns conn.fd;
  close_fd conn.fd;
  Obs.Metrics.set m_conns (Hashtbl.length d.conns)

(* The one write-with-deadline loop (satellite of the scrape-only
   deadline this generalizes): push [data] down a nonblocking [fd],
   waiting on select between partial writes, for at most [deadline_s].
   [true] iff every byte went out.  Used by the scrape path, capacity
   shedding, and eviction courtesy lines — anywhere the event loop must
   write without letting a non-reading peer stall request serving. *)
let write_with_deadline d ?deadline_s fd data =
  let deadline_s =
    match deadline_s with Some s -> s | None -> d.cfg.write_deadline_s
  in
  let n = String.length data in
  let deadline = d.cfg.clock () +. deadline_s in
  let off = ref 0 in
  let stalled = ref false in
  (try
     while !off < n && not !stalled do
       match d.cfg.netio.Netio.write fd data !off (n - !off) with
       | w -> off := !off + w
       | exception
           Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
         -> (
           let left = deadline -. d.cfg.clock () in
           if left <= 0.0 then stalled := true
           else
             match Unix.select [] [ fd ] [] (Float.min left 0.05) with
             | _ -> ()
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
     done
   with Unix.Unix_error _ -> stalled := true);
  !off >= n && not !stalled

(* Move filled FIFO-head replies into the outgoing byte buffer. *)
let promote_replies conn =
  let rec go () =
    match Queue.peek_opt conn.slots with
    | Some { out = Some line } ->
        ignore (Queue.pop conn.slots);
        Buffer.add_string conn.outbuf line;
        Buffer.add_char conn.outbuf '\n';
        Obs.Metrics.add m_reply_bytes (String.length line + 1);
        go ()
    | Some { out = None } | None -> ()
  in
  go ()

(* Write as much of the out buffer as the socket takes; [true] while the
   connection is still healthy. *)
let try_write d conn =
  let data = Buffer.contents conn.outbuf in
  let n = String.length data in
  if conn.outpos >= n then begin
    if n > 0 then begin
      Buffer.clear conn.outbuf;
      conn.outpos <- 0
    end;
    true
  end
  else
    match
      d.cfg.netio.Netio.write conn.fd data conn.outpos (n - conn.outpos)
    with
    | written ->
        conn.outpos <- conn.outpos + written;
        if written > 0 then conn.last_wmove <- d.cfg.clock ();
        if conn.outpos >= n then begin
          Buffer.clear conn.outbuf;
          conn.outpos <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) ->
        (* A vanished client costs its connection, nothing else — the
           Net_io taxonomy's degraded mode for the write path. *)
        Obs.Metrics.inc m_io_errors;
        drop_conn d conn;
        false

let read_chunk = Bytes.create 65536

(* [true] when more bytes may come later, [false] at EOF. *)
let read_into d conn =
  match d.cfg.netio.Netio.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
      conn.eof <- true;
      false
  | n ->
      Buffer.add_subbytes conn.inbuf read_chunk 0 n;
      conn.last_read <- d.cfg.clock ();
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      false
  | exception Unix.Unix_error (_, _, _) ->
      Obs.Metrics.inc m_io_errors;
      conn.eof <- true;
      false

(* Reject-and-close at capacity: the shed peer gets a structured error
   line (bounded by the write deadline), never a silent close, and the
   shed is accounted as an eviction.  The cap bounds select() fan-in and
   memory, so one flood cannot starve established connections. *)
let shed_conn d fd =
  Obs.Metrics.inc m_evict_capacity;
  let line =
    Proto.encode_reply
      (Proto.Error_reply
         {
           id = J.Null;
           op = "?";
           reason =
             Printf.sprintf "server at connection capacity (max_conns=%d)"
               d.cfg.max_conns;
         })
    ^ "\n"
  in
  ignore (write_with_deadline d fd line);
  close_fd fd

let accept_wire d =
  let rec go () =
    match d.cfg.netio.Netio.accept d.wire with
    | fd, _ ->
        Unix.set_nonblock fd;
        Obs.Metrics.inc m_connections;
        if Hashtbl.length d.conns >= d.cfg.max_conns then shed_conn d fd
        else begin
          let now = d.cfg.clock () in
          Hashtbl.replace d.conns fd
            {
              fd;
              inbuf = Buffer.create 256;
              slots = Queue.create ();
              outbuf = Buffer.create 256;
              outpos = 0;
              skipping = false;
              eof = false;
              last_read = now;
              last_wmove = now;
            };
          Obs.Metrics.set m_conns (Hashtbl.length d.conns)
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> Obs.Metrics.inc m_io_errors
  in
  go ()

(* One scrape = one connection: accept, write the Prometheus rendering
   of the live registry as a minimal HTTP response, close.  The scrape
   shares the single event-loop thread, so it uses the shared
   write-with-deadline loop: a scraper that connects and never reads
   gets dropped instead of stalling request serving. *)
let serve_scrape d fd =
  match d.cfg.netio.Netio.accept fd with
  | client, _ ->
      Obs.Metrics.inc m_scrapes;
      let body = Obs.Export.prometheus (Obs.Metrics.snapshot ()) in
      let data =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      (try Unix.set_nonblock client with Unix.Unix_error _ -> ());
      if not (write_with_deadline d client data) then
        Obs.Metrics.inc m_io_errors;
      close_fd client
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The event loop *)

let flushable conn =
  Buffer.length conn.outbuf > conn.outpos
  || match Queue.peek_opt conn.slots with Some { out = Some _ } -> true | _ -> false

(* An in-flight request (admitted, no reply yet) exempts a connection
   from idle eviction: the client is waiting on us, not vice versa. *)
let awaiting_us conn =
  (not (Queue.is_empty conn.slots)) || Buffer.length conn.outbuf > conn.outpos

let evict d conn reason =
  Obs.Metrics.inc (m_evictions reason);
  (* Courtesy line, best-effort with a token deadline: an evicted peer
     that still reads learns why; one that does not cannot stall us. *)
  (if reason = "idle" then
     let line =
       Proto.encode_reply
         (Proto.Error_reply
            {
              id = J.Null;
              op = "?";
              reason = "connection evicted: " ^ reason ^ " past deadline";
            })
       ^ "\n"
     in
     ignore (write_with_deadline d ~deadline_s:0.05 conn.fd line));
  drop_conn d conn

(* The watchdog sweep (the Exec.Pool supervision idiom, applied to
   connections): once per tick, against the injectable clock. *)
let sweep_lifecycle d now =
  let victims = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      let reason =
        if flushable conn && now -. conn.last_wmove > d.cfg.write_deadline_s
        then Some "slow-writer"
        else if
          (not conn.eof)
          && (Buffer.length conn.inbuf > 0 || conn.skipping)
          && now -. conn.last_read > d.cfg.read_deadline_s
        then Some "idle"  (* a partial request line, stalled mid-frame *)
        else if
          (not conn.eof)
          && (not (awaiting_us conn))
          && Buffer.length conn.inbuf = 0
          && now -. conn.last_read > d.cfg.idle_timeout_s
        then Some "idle"  (* no traffic, nothing owed either way *)
        else None
      in
      match reason with
      | Some r -> victims := (conn, r) :: !victims
      | None -> ())
    d.conns;
  List.iter (fun (conn, r) -> evict d conn r) !victims

let run d =
  if d.ran then invalid_arg "Serve.Daemon.run: already ran";
  d.ran <- true;
  (* A client that disconnects mid-reply must cost EPIPE, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let finished = ref false in
  while not !finished do
    (* Entering drain: close the front door, take one last sweep of the
       bytes already queued on accepted connections, then answer
       everything admitted. *)
    if Atomic.get d.stop_flag && not d.draining then begin
      d.draining <- true;
      close_fd d.wire;
      (match d.scrape with Some fd -> close_fd fd | None -> ());
      (match d.cfg.listen with
      | Proto.Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Proto.Tcp _ -> ());
      (match d.cfg.metrics with
      | Some (Proto.Unix_sock path) ->
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      Hashtbl.iter
        (fun _ conn ->
          while (not conn.eof) && read_into d conn do
            ()
          done;
          conn.eof <- true;
          process_input d conn)
        d.conns
    end;
    if not d.draining then begin
      let read_fds =
        d.wire
        :: (match d.scrape with Some fd -> [ fd ] | None -> [])
        @ Hashtbl.fold (fun fd c acc -> if c.eof then acc else fd :: acc) d.conns []
      in
      let write_fds =
        Hashtbl.fold (fun fd c acc -> if flushable c then fd :: acc else acc) d.conns []
      in
      (match Unix.select read_fds write_fds [] d.cfg.tick_s with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = d.wire then accept_wire d
              else if d.scrape = Some fd then serve_scrape d fd
              else
                match Hashtbl.find_opt d.conns fd with
                | None -> ()
                | Some conn ->
                    while (not conn.eof) && read_into d conn do
                      ()
                    done;
                    process_input d conn)
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end;
    dispatch d;
    (* Flush replies; reap connections that are done. *)
    let now = d.cfg.clock () in
    let done_conns = ref [] in
    Hashtbl.iter
      (fun _ conn ->
        let was_flushable = flushable conn in
        promote_replies conn;
        (* The slow-writer watchdog starts when output first appears —
           not from the last write of a long-quiet connection. *)
        if (not was_flushable) && flushable conn then conn.last_wmove <- now;
        if try_write d conn then
          if
            conn.eof
            && Queue.is_empty conn.slots
            && Buffer.length conn.outbuf <= conn.outpos
          then done_conns := conn :: !done_conns)
      d.conns;
    List.iter (drop_conn d) !done_conns;
    if not d.draining then sweep_lifecycle d (d.cfg.clock ());
    if d.draining then begin
      (* Everything is admitted and dispatched; all that remains is
         pushing bytes.  A peer that never drains its socket gets a
         bounded grace period, then is dropped — and accounted. *)
      let deadline = d.cfg.clock () +. d.cfg.drain_deadline_s in
      let rec final_flush () =
        let pending =
          Hashtbl.fold (fun _ c acc -> if flushable c then c :: acc else acc) d.conns []
        in
        if pending <> [] && d.cfg.clock () < deadline then begin
          (match
             Unix.select [] (List.map (fun c -> c.fd) pending) [] d.cfg.tick_s
           with
          | _, writable, _ ->
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt d.conns fd with
                  | Some c ->
                      promote_replies c;
                      ignore (try_write d c)
                  | None -> ())
                writable
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          final_flush ()
        end
      in
      final_flush ();
      Hashtbl.iter
        (fun _ conn ->
          if flushable conn then Obs.Metrics.inc m_evict_drain;
          close_fd conn.fd)
        d.conns;
      Hashtbl.reset d.conns;
      Obs.Metrics.set m_conns 0;
      finished := true
    end
  done;
  Exec.Pool.shutdown d.pool
