module J = Stdx.Jsonx

type config = {
  listen : Proto.addr;
  metrics : Proto.addr option;
  jobs : int;
  cache : Exec.Cache.t;
  max_inflight : int;
  default_budget_nodes : int;
  max_budget_nodes : int;
  max_line_bytes : int;
  batch_max : int;
  tick_s : float;
  allow_chaos : bool;
}

let default_config ?cache ~listen () =
  {
    listen;
    metrics = None;
    jobs = 1;
    cache = (match cache with Some c -> c | None -> Exec.Cache.disabled ());
    max_inflight = 64;
    default_budget_nodes = 1_000_000;
    max_budget_nodes = 4_000_000;
    max_line_bytes = 1 lsl 20;
    batch_max = 64;
    tick_s = 0.02;
    allow_chaos = false;
  }

(* ------------------------------------------------------------------ *)
(* Metrics (catalogued in docs/SERVING.md) *)

let m_connections = Obs.Metrics.counter "serve_connections_total"
let m_scrapes = Obs.Metrics.counter "serve_scrapes_total"
let m_request_bytes = Obs.Metrics.counter "serve_request_bytes_total"
let m_reply_bytes = Obs.Metrics.counter "serve_reply_bytes_total"
let m_batches = Obs.Metrics.counter "serve_batches_total"
let m_batch_fallbacks = Obs.Metrics.counter "serve_batch_fallbacks_total"
let m_io_errors = Obs.Metrics.counter "serve_io_errors_total"
let m_queue_depth = Obs.Metrics.gauge "serve_queue_depth"

let m_latency =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.default_latency_buckets
    "serve_latency_seconds"

let m_requests ~op ~outcome =
  Obs.Metrics.counter
    ~labels:[ ("op", op); ("outcome", outcome) ]
    "serve_requests_total"

(* ------------------------------------------------------------------ *)
(* Connections and work items *)

type slot = { mutable out : string option }  (* encoded reply, sans newline *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  slots : slot Queue.t;  (* arrival order; replies flush strictly FIFO *)
  outbuf : Buffer.t;
  mutable outpos : int;
  mutable skipping : bool;  (* discarding the tail of an oversized line *)
  mutable eof : bool;
}

type work = {
  w_slot : slot;
  w_op : Proto.op;
  w_id : J.t;
  w_budget : Exec.Budget.t;
  w_t0 : float;
}

type t = {
  cfg : config;
  pool : Exec.Pool.t;
  admission : Exec.Admission.t;
  wire : Unix.file_descr;
  scrape : Unix.file_descr option;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  queue : work Queue.t;
  stop_flag : bool Atomic.t;
  mutable draining : bool;
  mutable served : int;
  mutable ran : bool;
}

let net_io fmt = Printf.ksprintf (fun m -> Exec.Error.Error (Exec.Error.Net_io m)) fmt

let unix_msg e fn = Printf.sprintf "%s: %s" fn (Unix.error_message e)

(* Bind + listen, replacing a stale Unix-domain socket file (the trace a
   killed daemon leaves behind).  A path occupied by a non-socket is an
   error — never delete something we did not create. *)
let listen_on addr =
  (match addr with
  | Proto.Unix_sock path when Sys.file_exists path -> (
      match (Unix.lstat path).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> raise (net_io "socket path %s exists and is not a socket" path))
  | _ -> ());
  let sa = Proto.sockaddr addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  try
    (match addr with
    | Proto.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Proto.Unix_sock _ -> ());
    Unix.bind fd sa;
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  with Unix.Unix_error (e, fn, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (net_io "cannot listen on %s (%s)" (Format.asprintf "%a" Proto.pp_addr addr) (unix_msg e fn))

let create cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.Daemon.create: jobs must be >= 1";
  let wire = listen_on cfg.listen in
  let scrape =
    match cfg.metrics with
    | None -> None
    | Some a -> (
        try Some (listen_on a)
        with e ->
          (try Unix.close wire with Unix.Unix_error _ -> ());
          raise e)
  in
  {
    cfg;
    pool = Exec.Pool.create ~jobs:cfg.jobs ();
    admission =
      Exec.Admission.create ~max_inflight:cfg.max_inflight
        ~default_nodes:cfg.default_budget_nodes ~max_nodes:cfg.max_budget_nodes
        ~clock:Unix.gettimeofday ();
    wire;
    scrape;
    conns = Hashtbl.create 16;
    queue = Queue.create ();
    stop_flag = Atomic.make false;
    draining = false;
    served = 0;
    ran = false;
  }

let stop d = Atomic.set d.stop_flag true

let stopped d = Atomic.get d.stop_flag

let requests_served d = d.served

(* ------------------------------------------------------------------ *)
(* Replies *)

let fill d slot reply ~op ~t0 =
  slot.out <- Some (Proto.encode_reply reply);
  d.served <- d.served + 1;
  Obs.Metrics.inc (m_requests ~op ~outcome:(Proto.reply_status reply));
  Obs.Metrics.observe m_latency (Unix.gettimeofday () -. t0)

let reply_now d conn reply ~op ~t0 =
  let slot = { out = None } in
  Queue.add slot conn.slots;
  fill d slot reply ~op ~t0

let failure_reason = function
  | Exec.Error.Error k -> Exec.Error.to_string k
  | Exec.Pool.Chaos_kill -> "worker killed (chaos)"
  | Invalid_argument m -> "invalid request: " ^ m
  | Failure m -> m
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Request handling *)

let stats_payload d =
  Printf.sprintf "served=%d inflight=%d queue=%d connections=%d jobs=%d"
    d.served
    (Exec.Admission.inflight d.admission)
    (Queue.length d.queue)
    (Hashtbl.length d.conns)
    (Exec.Pool.jobs d.pool)

let handle_line d conn line =
  let line =
    (* tolerate CRLF clients *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then ()
  else begin
    Obs.Metrics.add m_request_bytes (String.length line + 1);
    let t0 = Unix.gettimeofday () in
    match Proto.decode_request line with
    | Error reason ->
        reply_now d conn (Proto.Error_reply { id = J.Null; op = "?"; reason })
          ~op:"?" ~t0
    | Ok { Proto.id; op } -> (
        let name = Proto.op_name op in
        match op with
        | Proto.Ping ->
            reply_now d conn (Proto.Ok_reply { id; op = name; payload = "pong" })
              ~op:name ~t0
        | Proto.Stats ->
            reply_now d conn
              (Proto.Ok_reply { id; op = name; payload = stats_payload d })
              ~op:name ~t0
        | Proto.Chaos_kill when not d.cfg.allow_chaos ->
            reply_now d conn
              (Proto.Error_reply
                 { id; op = name; reason = "chaos ops disabled on this server" })
              ~op:name ~t0
        | Proto.Solve _ | Proto.Bounds _ | Proto.Claim_verify _ | Proto.Chaos_kill
          -> (
            let requested_nodes =
              match op with
              | Proto.Solve { Proto.budget_nodes; _ } -> budget_nodes
              | Proto.Claim_verify { Proto.v_budget_nodes; _ } -> v_budget_nodes
              | _ -> None
            in
            match Exec.Admission.admit ?requested_nodes d.admission with
            | Error rejection ->
                reply_now d conn
                  (Proto.Rejected
                     {
                       id;
                       op = name;
                       reason = Exec.Admission.rejection_to_string rejection;
                     })
                  ~op:name ~t0
            | Ok budget ->
                let slot = { out = None } in
                Queue.add slot conn.slots;
                Queue.add
                  { w_slot = slot; w_op = op; w_id = id; w_budget = budget; w_t0 = t0 }
                  d.queue;
                Obs.Metrics.set m_queue_depth (Queue.length d.queue)))
  end

(* Split buffered input into lines; oversized lines are answered with a
   structured error and skipped up to their terminating newline, so the
   connection (and the replies already owed to it) survives. *)
let process_input d conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length data in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt data !i '\n' with
    | Some j ->
        let line = String.sub data !i (j - !i) in
        if conn.skipping then conn.skipping <- false
        else if String.length line > d.cfg.max_line_bytes then
          reply_now d conn
            (Proto.Error_reply
               {
                 id = J.Null;
                 op = "?";
                 reason =
                   Printf.sprintf "oversized request line (%d > %d bytes)"
                     (String.length line) d.cfg.max_line_bytes;
               })
            ~op:"?" ~t0:(Unix.gettimeofday ())
        else handle_line d conn line;
        i := j + 1
    | None ->
        let rest = n - !i in
        if conn.skipping then ()  (* keep discarding until a newline shows *)
        else if rest > d.cfg.max_line_bytes then begin
          reply_now d conn
            (Proto.Error_reply
               {
                 id = J.Null;
                 op = "?";
                 reason =
                   Printf.sprintf "oversized request line (> %d bytes)"
                     d.cfg.max_line_bytes;
               })
            ~op:"?" ~t0:(Unix.gettimeofday ());
          conn.skipping <- true
        end
        else Buffer.add_substring conn.inbuf data !i rest;
        i := n
  done

(* ------------------------------------------------------------------ *)
(* Dispatch: batch the admitted queue across the pool.  Tasks never let
   an exception escape — except Chaos_kill, which must reach the pool's
   supervision.  If the batch-level map still fails (a quarantined
   poison task, or a width-1 chaos kill), re-execute each request on the
   event loop so only the genuinely failing request errors. *)

let execute d w =
  match w.w_op with
  | Proto.Solve p -> (Ops.solve ~cache:d.cfg.cache ~budget:w.w_budget p).Ops.payload
  | Proto.Bounds { b_alpha; b_ell; b_players } ->
      Ops.bounds ~cache:d.cfg.cache ~alpha:b_alpha ~ell:b_ell ~players:b_players
  | Proto.Claim_verify p ->
      (Ops.claim_verify ~cache:d.cfg.cache ~budget:w.w_budget p).Ops.v_payload
  | Proto.Chaos_kill -> raise Exec.Pool.Chaos_kill
  | Proto.Ping | Proto.Stats -> assert false (* answered inline, never queued *)

let dispatch d =
  while not (Queue.is_empty d.queue) do
    let batch = Queue.create () in
    while
      (not (Queue.is_empty d.queue)) && Queue.length batch < d.cfg.batch_max
    do
      Queue.add (Queue.pop d.queue) batch
    done;
    Obs.Metrics.set m_queue_depth (Queue.length d.queue);
    let works = Array.of_seq (Queue.to_seq batch) in
    Obs.Metrics.inc m_batches;
    let results =
      try
        Exec.Pool.map d.pool
          (fun w ->
            try Ok (execute d w)
            with
            | Exec.Pool.Chaos_kill as e -> raise e
            | e -> Error e)
          works
      with _batch_failure ->
        Obs.Metrics.inc m_batch_fallbacks;
        Array.map (fun w -> try Ok (execute d w) with e -> Error e) works
    in
    Array.iteri
      (fun i w ->
        let op = Proto.op_name w.w_op in
        let reply =
          match results.(i) with
          | Ok payload -> Proto.Ok_reply { id = w.w_id; op; payload }
          | Error e ->
              Proto.Error_reply { id = w.w_id; op; reason = failure_reason e }
        in
        fill d w.w_slot reply ~op ~t0:w.w_t0;
        Exec.Admission.release d.admission)
      works
  done

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_conn d conn =
  Hashtbl.remove d.conns conn.fd;
  close_fd conn.fd

(* Move filled FIFO-head replies into the outgoing byte buffer. *)
let promote_replies conn =
  let rec go () =
    match Queue.peek_opt conn.slots with
    | Some { out = Some line } ->
        ignore (Queue.pop conn.slots);
        Buffer.add_string conn.outbuf line;
        Buffer.add_char conn.outbuf '\n';
        Obs.Metrics.add m_reply_bytes (String.length line + 1);
        go ()
    | Some { out = None } | None -> ()
  in
  go ()

(* Write as much of the out buffer as the socket takes; [true] while the
   connection is still healthy. *)
let try_write d conn =
  let data = Buffer.contents conn.outbuf in
  let n = String.length data in
  if conn.outpos >= n then begin
    if n > 0 then begin
      Buffer.clear conn.outbuf;
      conn.outpos <- 0
    end;
    true
  end
  else
    match
      Unix.write_substring conn.fd data conn.outpos (n - conn.outpos)
    with
    | written ->
        conn.outpos <- conn.outpos + written;
        if conn.outpos >= n then begin
          Buffer.clear conn.outbuf;
          conn.outpos <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) ->
        (* A vanished client costs its connection, nothing else — the
           Net_io taxonomy's degraded mode for the write path. *)
        Obs.Metrics.inc m_io_errors;
        drop_conn d conn;
        false

let read_chunk = Bytes.create 65536

(* [true] when more bytes may come later, [false] at EOF. *)
let read_into d conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
      conn.eof <- true;
      false
  | n ->
      Buffer.add_subbytes conn.inbuf read_chunk 0 n;
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      false
  | exception Unix.Unix_error (_, _, _) ->
      Obs.Metrics.inc m_io_errors;
      conn.eof <- true;
      false

let accept_wire d =
  let rec go () =
    match Unix.accept d.wire with
    | fd, _ ->
        Unix.set_nonblock fd;
        Obs.Metrics.inc m_connections;
        Hashtbl.replace d.conns fd
          {
            fd;
            inbuf = Buffer.create 256;
            slots = Queue.create ();
            outbuf = Buffer.create 256;
            outpos = 0;
            skipping = false;
            eof = false;
          };
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> Obs.Metrics.inc m_io_errors
  in
  go ()

(* One scrape = one connection: accept, write the Prometheus rendering
   of the live registry as a minimal HTTP response, close.  The scrape
   shares the single event-loop thread, so writes are nonblocking under
   a short deadline: a scraper that connects and never reads gets
   dropped instead of stalling request serving. *)
let scrape_write_deadline_s = 1.0

let serve_scrape fd =
  match Unix.accept fd with
  | client, _ ->
      Obs.Metrics.inc m_scrapes;
      let body = Obs.Export.prometheus (Obs.Metrics.snapshot ()) in
      let data =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      (try
         Unix.set_nonblock client;
         let n = String.length data in
         let deadline = Unix.gettimeofday () +. scrape_write_deadline_s in
         let off = ref 0 in
         let stalled = ref false in
         while !off < n && not !stalled do
           match Unix.write_substring client data !off (n - !off) with
           | w -> off := !off + w
           | exception
               Unix.Unix_error
                 ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> (
               let left = deadline -. Unix.gettimeofday () in
               if left <= 0.0 then begin
                 stalled := true;
                 Obs.Metrics.inc m_io_errors
               end
               else
                 match Unix.select [] [ client ] [] (Float.min left 0.05) with
                 | _ -> ()
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
         done
       with Unix.Unix_error _ -> Obs.Metrics.inc m_io_errors);
      close_fd client
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The event loop *)

let flushable conn =
  Buffer.length conn.outbuf > conn.outpos
  || match Queue.peek_opt conn.slots with Some { out = Some _ } -> true | _ -> false

let run d =
  if d.ran then invalid_arg "Serve.Daemon.run: already ran";
  d.ran <- true;
  (* A client that disconnects mid-reply must cost EPIPE, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let finished = ref false in
  while not !finished do
    (* Entering drain: close the front door, take one last sweep of the
       bytes already queued on accepted connections, then answer
       everything admitted. *)
    if Atomic.get d.stop_flag && not d.draining then begin
      d.draining <- true;
      close_fd d.wire;
      (match d.scrape with Some fd -> close_fd fd | None -> ());
      (match d.cfg.listen with
      | Proto.Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Proto.Tcp _ -> ());
      (match d.cfg.metrics with
      | Some (Proto.Unix_sock path) ->
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      Hashtbl.iter
        (fun _ conn ->
          while (not conn.eof) && read_into d conn do
            ()
          done;
          conn.eof <- true;
          process_input d conn)
        d.conns
    end;
    if not d.draining then begin
      let read_fds =
        d.wire
        :: (match d.scrape with Some fd -> [ fd ] | None -> [])
        @ Hashtbl.fold (fun fd c acc -> if c.eof then acc else fd :: acc) d.conns []
      in
      let write_fds =
        Hashtbl.fold (fun fd c acc -> if flushable c then fd :: acc else acc) d.conns []
      in
      (match Unix.select read_fds write_fds [] d.cfg.tick_s with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = d.wire then accept_wire d
              else if d.scrape = Some fd then serve_scrape fd
              else
                match Hashtbl.find_opt d.conns fd with
                | None -> ()
                | Some conn ->
                    while (not conn.eof) && read_into d conn do
                      ()
                    done;
                    process_input d conn)
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end;
    dispatch d;
    (* Flush replies; reap connections that are done. *)
    let done_conns = ref [] in
    Hashtbl.iter
      (fun _ conn ->
        promote_replies conn;
        if try_write d conn then
          if
            conn.eof
            && Queue.is_empty conn.slots
            && Buffer.length conn.outbuf <= conn.outpos
          then done_conns := conn :: !done_conns)
      d.conns;
    List.iter (drop_conn d) !done_conns;
    if d.draining then begin
      (* Everything is admitted and dispatched; all that remains is
         pushing bytes.  A peer that never drains its socket gets a
         bounded grace period, then is dropped. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec final_flush () =
        let pending =
          Hashtbl.fold (fun _ c acc -> if flushable c then c :: acc else acc) d.conns []
        in
        if pending <> [] && Unix.gettimeofday () < deadline then begin
          (match
             Unix.select [] (List.map (fun c -> c.fd) pending) [] d.cfg.tick_s
           with
          | _, writable, _ ->
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt d.conns fd with
                  | Some c ->
                      promote_replies c;
                      ignore (try_write d c)
                  | None -> ())
                writable
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          final_flush ()
        end
      in
      final_flush ();
      Hashtbl.iter (fun _ conn -> close_fd conn.fd) d.conns;
      Hashtbl.reset d.conns;
      finished := true
    end
  done;
  Exec.Pool.shutdown d.pool
