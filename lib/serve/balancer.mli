(** Replicated failover client: one {!Client} per endpoint, a circuit
    breaker per endpoint, blind re-send on [Net_io].

    Failover-by-resend is safe because every serve op is idempotent and
    cache-keyed: the same request line yields byte-identical payloads on
    any replica ({!Ops}'s parity contract), and a request that died
    mid-flight at worst warmed a cache.  N daemons behind one balancer
    therefore survive the loss of N−1: each {!request} walks the
    endpoint rotation (round-robin cursor, so load spreads) and returns
    the first reply, re-sending on every [Net_io] along the way.

    Breaker state machine (per endpoint, against the injectable clock):

    {v
    Closed --[failure_threshold consecutive Net_io]--> Open
    Open --[cooldown_s elapsed; next request probes]--> Half_open
    Half_open --[probe succeeds]--> Closed
    Half_open --[probe fails]--> Open (fresh cooldown)
    any --[success]--> Closed (failure count reset)
    v}

    An [Open] breaker inside its cooldown is skipped — no connect
    timeout is paid to a replica known down.  If {e every} usable
    endpoint fails, a desperation pass retries the open ones anyway
    (a wrong breaker verdict must not turn a degraded fleet into an
    outage); only when that too fails does {!request} raise
    [Error (Net_io "all N replica(s) unavailable ...")].

    Metrics: [balancer_failovers_total] (a failed attempt with another
    candidate remaining), [balancer_breaker_transitions_total{to}].

    Not thread-safe: one balancer per thread/domain, like {!Client}. *)

type t

val create :
  ?clock:(unit -> float) ->
  ?cooldown_s:float ->
  ?failure_threshold:int ->
  ?connect_retries:int ->
  ?netio:Netio.t ->
  Proto.addr list ->
  t
(** Defaults: [Unix.gettimeofday], 1 s cooldown, 3 consecutive failures
    to open, 2 connect attempts per dial (failover {e between} replicas
    is the primary retry loop, so per-replica dial retries stay low),
    real sockets.  Connections are dialed lazily, per endpoint, on first
    use.  Raises [Invalid_argument] on an empty endpoint list or
    [failure_threshold < 1]. *)

val request : t -> Proto.request -> Proto.reply
(** Send on the first available endpoint in rotation, failing over on
    [Net_io]; raises [Error (Net_io _)] only when every replica —
    including breaker-open ones on the desperation pass — refused.
    Non-[Net_io] exceptions propagate untouched. *)

val check_health : t -> (Proto.addr * bool) list
(** Ping every endpoint (including breaker-open ones — health checks are
    how an open breaker heals without waiting for live traffic), feeding
    each outcome through the breaker. *)

val endpoints : t -> Proto.addr list

val states : t -> (Proto.addr * string) list
(** Breaker states as [("closed" | "open" | "half-open")] per endpoint,
    in creation order — for tests, logs, and verdict tables. *)

val close : t -> unit
(** Close every live connection (breaker state is retained). *)
