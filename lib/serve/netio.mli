(** The serving layer's socket interface.

    A re-export of [Stdx.Netio] (the pluggable socket operation record,
    the real backend, seeded fault plans) plus {!chaos}, the
    fault-injecting backend the netchaos harness feeds to
    {!Serve.Daemon}, {!Serve.Client} and {!Serve.Balancer}: every
    injected fault additionally bumps
    [netio_faults_injected_total{kind}] in the process-wide metrics
    registry, so a chaos run's network fault pressure is visible next to
    the recovery counters it provokes ([serve_io_errors_total],
    [serve_evictions_total], [balancer_failovers_total],
    [exec_retries_total]). *)

include module type of struct
  include Stdx.Netio
end

val chaos : ?on_fault:(string -> unit) -> injector -> t
(** [Stdx.Netio.faulty] with Obs metering; [on_fault] composes after the
    metric bump. *)
