module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module Family = Maxis_core.Family

type solve_outcome = { payload : string; exhausted : bool }

let solve ~cache ~budget (sp : Proto.solve_params) =
  let p = P.make ~alpha:sp.Proto.alpha ~ell:sp.Proto.ell ~players:sp.Proto.players in
  let quadratic = sp.Proto.quadratic in
  let seed = sp.Proto.seed in
  let intersecting = sp.Proto.intersecting in
  (* The input fingerprint is part of the key, so the input must be
     generated even on a warm hit; the graph is only built on a miss. *)
  let rng = Stdx.Prng.create seed in
  let x =
    if quadratic then
      Commcx.Inputs.gen_promise rng ~k:(QF.string_length p) ~t:p.P.players
        ~intersecting
    else Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting
  in
  let key =
    Exec.Cache.key
      ~family:(if quadratic then "serve-solve-quadratic" else "serve-solve-linear")
      ~params:(Format.asprintf "%a" P.pp p)
      ~seed
      ~solver:"exact-budgeted"
      ~extra:
        (Exec.Cache.fingerprint (Commcx.Inputs.canonical x)
        ^ Exec.Budget.fingerprint budget)
      ()
  in
  let payload =
    Exec.Cache.memo cache key (fun () ->
        let inst =
          if quadratic then QF.instance p x else LF.instance p x
        in
        match Mis.Exact.solve_budgeted ~budget inst.Family.graph with
        | Mis.Exact.Complete s -> Printf.sprintf "OPT %d" s.Mis.Exact.weight
        | Mis.Exact.Exhausted e ->
            Printf.sprintf "EXHAUSTED lb=%d ub=%d reason=%s" e.Mis.Exact.lb
              e.Mis.Exact.ub
              (Exec.Budget.reason_to_string e.Mis.Exact.reason))
  in
  let exhausted = String.length payload >= 9 && String.sub payload 0 9 = "EXHAUSTED" in
  { payload; exhausted }

(* Same keys as the CLI's bounds subcommand, so the daemon and an
   offline `maxis_lb bounds` run warm each other's caches and always
   agree byte-for-byte. *)
let bounds ~cache ~alpha ~ell ~players =
  let p = P.make ~alpha ~ell ~players in
  let report (solver, theorem) =
    let key =
      Exec.Cache.key ~family:"bounds"
        ~params:(Format.asprintf "%a" P.pp p)
        ~seed:0 ~solver ()
    in
    Exec.Cache.memo cache key (fun () ->
        Format.asprintf "%a" Maxis_core.Theorems.pp (theorem p))
  in
  String.concat "\n"
    (List.map report
       [
         ("theorem1-linear", Maxis_core.Theorems.linear);
         ("theorem2-quadratic", Maxis_core.Theorems.quadratic);
       ])

type verify_outcome = { v_payload : string; exit_code : int }

let claim_verify ~cache ~budget (vp : Proto.verify_params) =
  let p =
    P.make ~alpha:vp.Proto.v_alpha ~ell:vp.Proto.v_ell ~players:vp.Proto.v_players
  in
  let items =
    Maxis_core.Verification.run ~seed:vp.Proto.v_seed ~samples:vp.Proto.v_samples
      ~cache ~budget p
  in
  let lines =
    List.map (Format.asprintf "%a" Maxis_core.Verification.pp_item) items
  in
  let count pred = List.length (List.filter pred items) in
  let exit_code = Maxis_core.Verification.exit_code items in
  let summary =
    Printf.sprintf "checks=%d passed=%d failed=%d inconclusive=%d"
      (List.length items)
      (count Maxis_core.Verification.passed)
      (count Maxis_core.Verification.failed)
      (count Maxis_core.Verification.inconclusive)
  in
  { v_payload = String.concat "\n" (lines @ [ summary ]); exit_code }
