(** The `maxis_lb serve` wire protocol: newline-delimited JSON.

    One request per line, one reply line per request, replies in arrival
    order per connection.  Every request names an [op] and may carry an
    [id] (any JSON value), which the reply echoes verbatim — clients that
    pipeline correlate by id, clients that lockstep can ignore it.

    Requests:
    {v
    {"id":1,"op":"ping"}
    {"id":2,"op":"solve","alpha":1,"ell":4,"players":3,"seed":2020,
     "intersecting":false,"quadratic":false,"budget_nodes":100000}
    {"id":3,"op":"bounds","alpha":1,"ell":4,"players":3}
    {"id":4,"op":"claim-verify","ell":3,"players":2,"samples":1}
    {"id":5,"op":"stats"}
    v}

    Replies carry ["status"]: ["ok"] (with ["payload"], a printable
    string byte-identical to the offline CLI's answer for the same op),
    ["rejected"] (admission refused the request — overload or an
    over-ceiling budget; ["reason"] says which), or ["error"] (malformed
    request, unknown op, or a failure while serving; the connection
    survives).  Exactly one terminal reply per request, always.

    Field defaults mirror the CLI: [alpha=1], [ell=4], [players=3],
    [seed=2020], [samples=4], booleans false.  The full specification
    lives in docs/SERVING.md. *)

module J = Stdx.Jsonx

(** {1 Addresses} *)

type addr =
  | Unix_sock of string  (** path to a Unix-domain stream socket *)
  | Tcp of string * int  (** host, port *)

val pp_addr : Format.formatter -> addr -> unit

val addr_of_string : string -> (addr, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (treated as a
    Unix socket).  Inverse of {!pp_addr}. *)

val sockaddr : addr -> Unix.sockaddr

(** {1 Requests} *)

type solve_params = {
  alpha : int;
  ell : int;
  players : int;
  seed : int;
  intersecting : bool;
  quadratic : bool;
  budget_nodes : int option;
}

type verify_params = {
  v_alpha : int;
  v_ell : int;
  v_players : int;
  v_seed : int;
  v_samples : int;
  v_budget_nodes : int option;
}

type op =
  | Ping
  | Stats
  | Solve of solve_params
  | Bounds of { b_alpha : int; b_ell : int; b_players : int }
  | Claim_verify of verify_params
  | Chaos_kill
      (** fault-injection hook: the daemon executes it as a worker-killing
          task ({!Exec.Pool.Chaos_kill}); refused unless the daemon was
          started with chaos ops enabled *)

val op_name : op -> string
(** The wire name: ["ping"], ["stats"], ["solve"], ["bounds"],
    ["claim-verify"], ["chaos-kill"]. *)

type request = { id : J.t; op : op }

val encode_request : request -> string
(** One line (no trailing newline), every field explicit. *)

val decode_request : string -> (request, string) result
(** [Error reason] on anything that cannot be served: bad JSON, a
    non-object, a missing or unknown ["op"], malformed fields.  The
    reason is safe to echo into an error reply. *)

(** {1 Replies} *)

type reply =
  | Ok_reply of { id : J.t; op : string; payload : string }
  | Rejected of { id : J.t; op : string; reason : string }
  | Error_reply of { id : J.t; op : string; reason : string }

val reply_id : reply -> J.t
val reply_op : reply -> string
val reply_status : reply -> string  (** ["ok"] / ["rejected"] / ["error"] *)

val reply_payload : reply -> string option
(** The payload of an [Ok_reply]; [None] otherwise. *)

val reply_reason : reply -> string option

val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

(** {1 Request constructors} *)

val solve_defaults : solve_params
val verify_defaults : verify_params

val ping : ?id:J.t -> unit -> request
val stats : ?id:J.t -> unit -> request
val solve : ?id:J.t -> solve_params -> request
val bounds : ?id:J.t -> alpha:int -> ell:int -> players:int -> unit -> request
val claim_verify : ?id:J.t -> verify_params -> request
val chaos_kill : ?id:J.t -> unit -> request
