type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable closed : bool;
}

let net_io fmt = Printf.ksprintf (fun m -> Exec.Error.Error (Exec.Error.Net_io m)) fmt

let connect ?(retries = 5) addr =
  let dial () =
    let sa = Proto.sockaddr addr in
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd sa;
      fd
    with Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise
        (net_io "connect %s: %s: %s"
           (Format.asprintf "%a" Proto.pp_addr addr)
           fn (Unix.error_message e))
  in
  let fd =
    Exec.Error.with_retries ~attempts:retries ~label:"serve-connect" dial
  in
  { fd; ic = Unix.in_channel_of_descr fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* closing the channel closes the underlying fd *)
    try close_in t.ic with Sys_error _ -> ()
  end

let write_line t line =
  if t.closed then raise (net_io "connection closed");
  let data = line ^ "\n" in
  let n = String.length data in
  let off = ref 0 in
  try
    while !off < n do
      match Unix.write_substring t.fd data !off (n - !off) with
      | w -> off := !off + w
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with Unix.Unix_error (e, fn, _) ->
    raise (net_io "send: %s: %s" fn (Unix.error_message e))

let send t req = write_line t (Proto.encode_request req)

let send_raw t line = write_line t line

let recv_raw t =
  if t.closed then raise (net_io "connection closed");
  match input_line t.ic with
  | line -> line
  | exception End_of_file -> raise (net_io "connection closed by server")
  | exception Sys_error m -> raise (net_io "recv: %s" m)

let recv t =
  let line = recv_raw t in
  match Proto.decode_reply line with
  | Ok r -> r
  | Error e -> raise (net_io "undecodable reply (%s): %s" e line)

let request t req =
  send t req;
  recv t

let scrape addr =
  let c = connect addr in
  Fun.protect
    ~finally:(fun () -> close c)
    (fun () ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf c.ic 1
         done
       with End_of_file -> ());
      let all = Buffer.contents buf in
      (* strip the HTTP header block; tolerate a bare body too *)
      let sep = "\r\n\r\n" in
      let limit = String.length all - String.length sep in
      let rec find i =
        if i > limit then None
        else if String.sub all i (String.length sep) = sep then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> String.sub all (i + 4) (String.length all - i - 4)
      | None -> all)
