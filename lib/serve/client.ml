(* Fd-level, netio-threaded: every socket operation goes through the
   pluggable Netio record so the netchaos harness can inject seeded
   faults (EINTR, stalls, short reads, torn writes, resets) into a live
   client.  Blocking semantics are preserved by looping: EINTR retries,
   EAGAIN waits on select — both genuine kernel behaviors the injector
   merely makes frequent. *)

type t = {
  fd : Unix.file_descr;
  net : Netio.t;
  rbuf : Buffer.t;  (* received bytes not yet consumed as lines *)
  scratch : Bytes.t;
  mutable closed : bool;
}

let net_io fmt = Printf.ksprintf (fun m -> Exec.Error.Error (Exec.Error.Net_io m)) fmt

let connect ?(retries = 5) ?(netio = Netio.real) addr =
  let dial () =
    let sa = Proto.sockaddr addr in
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    try
      netio.Netio.connect fd sa;
      fd
    with Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise
        (net_io "connect %s: %s: %s"
           (Format.asprintf "%a" Proto.pp_addr addr)
           fn (Unix.error_message e))
  in
  let fd =
    Exec.Error.with_retries ~attempts:retries ~label:"serve-connect" dial
  in
  { fd; net = netio; rbuf = Buffer.create 256; scratch = Bytes.create 65536; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let wait_fd ~read fd =
  let r, w = if read then ([ fd ], []) else ([], [ fd ]) in
  match Unix.select r w [] 1.0 with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Verbatim bytes, no newline appended: partial-frame and slow-loris
   tests dribble request fragments through here. *)
let send_bytes t data =
  if t.closed then raise (net_io "connection closed");
  let n = String.length data in
  let off = ref 0 in
  try
    while !off < n do
      match t.net.Netio.write t.fd data !off (n - !off) with
      | w -> off := !off + w
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait_fd ~read:false t.fd
    done
  with Unix.Unix_error (e, fn, _) ->
    raise (net_io "send: %s: %s" fn (Unix.error_message e))

let write_line t line = send_bytes t (line ^ "\n")

let send t req = write_line t (Proto.encode_request req)

let send_raw t line = write_line t line

(* Pop one newline-terminated line off the receive buffer, or None when
   no full line is buffered yet. *)
let pop_line t =
  let data = Buffer.contents t.rbuf in
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (i + 1) (String.length data - i - 1);
      Some (String.sub data 0 i)

(* EOF with buffered bytes means the peer vanished mid-frame — a fault
   the balancer should fail over from; EOF on a frame boundary is a
   clean shutdown (daemon drained).  The two get distinct messages so
   failover logs and tests can tell them apart. *)
let eof_error t =
  let pending = Buffer.length t.rbuf in
  if pending = 0 then net_io "connection closed by server (clean eof)"
  else
    net_io
      "connection torn mid-frame (%d byte(s) of a partial reply buffered)"
      pending

let recv_raw t =
  if t.closed then raise (net_io "connection closed");
  let rec go () =
    match pop_line t with
    | Some line -> line
    | None -> (
        match t.net.Netio.read t.fd t.scratch 0 (Bytes.length t.scratch) with
        | 0 -> raise (eof_error t)
        | n ->
            Buffer.add_subbytes t.rbuf t.scratch 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            wait_fd ~read:true t.fd;
            go ()
        | exception Unix.Unix_error (e, fn, _) ->
            let pending = Buffer.length t.rbuf in
            if pending = 0 then
              raise (net_io "recv: %s: %s" fn (Unix.error_message e))
            else
              raise
                (net_io
                   "recv: %s: %s (connection torn mid-frame, %d byte(s) of a \
                    partial reply buffered)"
                   fn (Unix.error_message e) pending))
  in
  go ()

let recv t =
  let line = recv_raw t in
  match Proto.decode_reply line with
  | Ok r -> r
  | Error e -> raise (net_io "undecodable reply (%s): %s" e line)

let request t req =
  send t req;
  recv t

let scrape ?netio addr =
  let c = connect ?netio addr in
  Fun.protect
    ~finally:(fun () -> close c)
    (fun () ->
      let buf = Buffer.create 4096 in
      let eof = ref false in
      while not !eof do
        match c.net.Netio.read c.fd c.scratch 0 (Bytes.length c.scratch) with
        | 0 -> eof := true
        | n -> Buffer.add_subbytes buf c.scratch 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            wait_fd ~read:true c.fd
        | exception Unix.Unix_error _ ->
            (* a torn scrape yields what arrived — scrapes are periodic
               and self-healing, so permissiveness beats an exception *)
            eof := true
      done;
      let all = Buffer.contents buf in
      (* strip the HTTP header block; tolerate a bare body too *)
      let sep = "\r\n\r\n" in
      let limit = String.length all - String.length sep in
      let rec find i =
        if i > limit then None
        else if String.sub all i (String.length sep) = sep then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> String.sub all (i + 4) (String.length all - i - 4)
      | None -> all)
