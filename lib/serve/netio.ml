(* The serving layer's view of Stdx.Netio: the same interface and plans,
   plus Obs metering — injections surface as
   netio_faults_injected_total{kind} so a netchaos run's fault pressure
   is visible next to the recovery counters it provokes (io errors,
   evictions, failovers, retries). *)

include Stdx.Netio

(* Pre-interned per kind: injection sits on the wire hot path. *)
let m_fault kind =
  Obs.Metrics.counter ~labels:[ ("kind", kind) ] "netio_faults_injected_total"

let meters =
  lazy
    (List.map
       (fun k -> (k, m_fault k))
       [ "eintr"; "refuse"; "reset"; "short_read"; "torn_write"; "stall" ])

let chaos ?(on_fault = fun _ -> ()) inj =
  let meters = Lazy.force meters in
  Stdx.Netio.faulty
    ~on_fault:(fun kind ->
      (match List.assoc_opt kind meters with
      | Some c -> Obs.Metrics.inc c
      | None -> ());
      on_fault kind)
    inj
