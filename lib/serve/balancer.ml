(* Failover is safe to do by blind re-send because every serve op is
   idempotent and cache-keyed: the same request line yields the same
   payload bytes on any replica (the byte-parity contract in Serve.Ops),
   and a request that died mid-flight at worst warmed a cache.  So the
   balancer's job reduces to picking a live replica — the breakers exist
   to stop paying connect timeouts to one that is down. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type endpoint = {
  addr : Proto.addr;
  mutable client : Client.t option;
  mutable state : state;
  mutable failures : int;  (* consecutive *)
  mutable open_until : float;
}

type t = {
  endpoints : endpoint array;
  clock : unit -> float;
  cooldown_s : float;
  failure_threshold : int;
  connect_retries : int;
  netio : Netio.t;
  mutable rr : int;  (* round-robin cursor *)
}

let net_io fmt = Printf.ksprintf (fun m -> Exec.Error.Error (Exec.Error.Net_io m)) fmt

let m_failovers = Obs.Metrics.counter "balancer_failovers_total"

let m_transition to_ =
  Obs.Metrics.counter ~labels:[ ("to", to_) ] "balancer_breaker_transitions_total"

let create ?(clock = Unix.gettimeofday) ?(cooldown_s = 1.0)
    ?(failure_threshold = 3) ?(connect_retries = 2) ?(netio = Netio.real) addrs =
  if addrs = [] then invalid_arg "Serve.Balancer.create: no endpoints";
  if failure_threshold < 1 then
    invalid_arg "Serve.Balancer.create: failure_threshold must be >= 1";
  {
    endpoints =
      Array.of_list
        (List.map
           (fun addr ->
             { addr; client = None; state = Closed; failures = 0; open_until = 0.0 })
           addrs);
    clock;
    cooldown_s;
    failure_threshold;
    connect_retries;
    netio;
    rr = 0;
  }

let endpoints t = Array.to_list (Array.map (fun e -> e.addr) t.endpoints)

let states t =
  Array.to_list (Array.map (fun e -> (e.addr, state_name e.state)) t.endpoints)

let transition ep to_ =
  if ep.state <> to_ then begin
    ep.state <- to_;
    Obs.Metrics.inc (m_transition (state_name to_))
  end

let drop_client ep =
  match ep.client with
  | None -> ()
  | Some c ->
      ep.client <- None;
      Client.close c

let record_success ep =
  ep.failures <- 0;
  transition ep Closed

(* A Half_open probe failing re-opens immediately; a Closed endpoint
   opens after [failure_threshold] consecutive failures — transient
   single faults (one injected reset) do not condemn a healthy replica. *)
let record_failure t ep =
  ep.failures <- ep.failures + 1;
  drop_client ep;
  if ep.state = Half_open || ep.failures >= t.failure_threshold then begin
    ep.open_until <- t.clock () +. t.cooldown_s;
    transition ep Open
  end

(* An Open breaker past its cooldown admits one probe (Half_open). *)
let usable t ep =
  match ep.state with
  | Closed | Half_open -> true
  | Open ->
      if t.clock () >= ep.open_until then begin
        transition ep Half_open;
        true
      end
      else false

let client_of t ep =
  match ep.client with
  | Some c -> c
  | None ->
      let c = Client.connect ~retries:t.connect_retries ~netio:t.netio ep.addr in
      ep.client <- Some c;
      c

let attempt t ep req =
  let c = client_of t ep in
  Client.request c req

(* Endpoints in round-robin order starting at the cursor (advanced per
   request, so load spreads across healthy replicas). *)
let rotation t =
  let n = Array.length t.endpoints in
  let start = t.rr in
  t.rr <- (t.rr + 1) mod n;
  List.init n (fun i -> t.endpoints.((start + i) mod n))

let request t req =
  let order = rotation t in
  let last_err = ref "" in
  let try_one ep ~rest_available k =
    match attempt t ep req with
    | reply ->
        record_success ep;
        Some reply
    | exception Exec.Error.Error (Exec.Error.Net_io m) ->
        last_err := Format.asprintf "%a: %s" Proto.pp_addr ep.addr m;
        record_failure t ep;
        if rest_available then Obs.Metrics.inc m_failovers;
        k ()
  in
  let rec pass1 = function
    | [] -> None
    | ep :: rest ->
        if usable t ep then
          try_one ep
            ~rest_available:(rest <> [] || List.exists (fun e -> e.state = Open) order)
            (fun () -> pass1 rest)
        else pass1 rest
  and pass2 = function
    (* Desperation: every usable endpoint failed, so breakers stop
       mattering — a wrong "open" verdict must not turn a degraded
       fleet into an outage.  Try the still-open ones anyway. *)
    | [] -> None
    | ep :: rest ->
        if ep.state = Open then
          try_one ep ~rest_available:(rest <> []) (fun () -> pass2 rest)
        else pass2 rest
  in
  match pass1 order with
  | Some reply -> reply
  | None -> (
      match pass2 order with
      | Some reply -> reply
      | None ->
          raise
            (net_io "all %d replica(s) unavailable (last: %s)"
               (Array.length t.endpoints)
               (if !last_err = "" then "no endpoint attempted" else !last_err)))

let check_health t =
  Array.to_list
    (Array.map
       (fun ep ->
         let ok =
           match attempt t ep (Proto.ping ()) with
           | reply ->
               let healthy = Proto.reply_status reply = "ok" in
               if healthy then record_success ep else record_failure t ep;
               healthy
           | exception Exec.Error.Error (Exec.Error.Net_io _) ->
               record_failure t ep;
               false
         in
         (ep.addr, ok))
       t.endpoints)

let close t = Array.iter drop_client t.endpoints
