(** Blocking line-protocol client for the serve daemon.

    The test suite, the load-generator bench, the smoke script and the
    replicated {!Balancer} all talk to the daemon through this one
    module, so the framing rules (one request per line, replies in
    arrival order per connection) are encoded exactly once.

    Every socket operation goes through a pluggable {!Netio.t} backend
    (default {!Netio.real}), so the netchaos harness can inject seeded
    faults into a live client; transient injected failures ([EINTR],
    stalls) are absorbed by the client's own retry/wait loops, exactly
    as their kernel-born counterparts are.

    Connection failures and torn sockets raise
    {!Exec.Error.Error}[ (Net_io _)] — a {e transient} kind, so
    {!connect}'s internal retry loop and any caller-side
    {!Exec.Error.with_retries} wrapper both apply to it. *)

type t

val connect : ?retries:int -> ?netio:Netio.t -> Proto.addr -> t
(** Dial the daemon, retrying transient connection failures
    ([retries] attempts total, default 5, geometric backoff via
    {!Exec.Error.with_retries}) — a client racing daemon startup is the
    normal case in scripts.  Raises [Error (Net_io _)] when the daemon
    never answers. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Proto.request -> unit
(** Encode and write one request line. *)

val send_raw : t -> string -> unit
(** Write an arbitrary line (malformed-input tests).  A terminating
    newline is appended. *)

val send_bytes : t -> string -> unit
(** Write bytes verbatim — {e no} newline appended.  Partial-frame and
    slow-loris tests dribble request fragments through this. *)

val recv : t -> Proto.reply
(** Block for the next reply line and decode it.  Raises
    [Error (Net_io _)] on EOF or a reply that does not decode — a
    healthy daemon never sends one.  The EOF message distinguishes a
    {e clean eof} (the connection died on a frame boundary — a drained
    daemon) from a {e torn mid-frame} disconnect (partial reply bytes
    were buffered — a fault), so failover logs can tell shutdown from
    breakage. *)

val recv_raw : t -> string
(** The next reply line, undecoded. *)

val request : t -> Proto.request -> Proto.reply
(** {!send} then {!recv} — the one-shot convenience for closed-loop
    callers. *)

val scrape : ?netio:Netio.t -> Proto.addr -> string
(** Connect to the metrics listener and return the Prometheus body (the
    HTTP header block is stripped).  Permissive: a torn scrape yields
    the bytes that arrived. *)
