(** Flat CONGEST programs: the zero-allocation twin of {!Program}.

    {!Program.step} speaks in [(int * Msg.t) list], which allocates a
    cons cell, a tuple and a [Msg.t] record per message per round — the
    dominant cost at n ≥ 10⁵.  A flat program stages messages as
    [(src, tag, bits, word)] int quads in preallocated buffers that
    {!Runtime.run_flat} reuses across rounds: once buffer sizes settle, a
    round allocates nothing.  test/test_perf_guard.ml pins that.

    The ports below are exact mirrors of the list-mode algorithms — same
    message bits, same PRNG draw conditions — so [run_flat] on a CSR
    graph produces the same outputs, round count, and traced bit totals
    as [run] of the list version on the equivalent graph (differentially
    tested in test/test_csr.ml).

    Inbox order is ascending sender, ties in emit order; the three
    library algorithms are order-insensitive, and new flat programs
    should be too.  Fault plans and [Broadcast] mode stay on the
    list-mode path ({!Runtime.run_flat} rejects both). *)

(** {1 Message tags} *)

val tag_int : int
(** [word] is an integer payload of [bits] bits ([Msg.Int]). *)

val tag_true : int
(** A 1-bit [Msg.Bool true]; [word] ignored. *)

val tag_false : int
(** A 1-bit [Msg.Bool false]; [word] ignored. *)

(** {1 Buffers}

    Concrete so the executor and tests can read them; programs only ever
    index [0 .. i_len-1] and call {!emit}. *)

type inbox = {
  mutable i_buf : int array;
      (** interleaved (src, tag, word) triples: entry [k] at
          [3(i_off+k) .. 3(i_off+k)+2].  Read through
          {!in_src}/{!in_tag}/{!in_word} — the packing is a
          cache-locality contract, not an API. *)
  mutable i_off : int;
      (** window start, in entries: the executor aims one reused view at
          successive slices of its per-round delivery arena.  [0] in a
          standalone inbox. *)
  mutable i_len : int;
}

type emitter = {
  mutable e_dst : int array;
  mutable e_tag : int array;
  mutable e_bits : int array;
  mutable e_word : int array;
  mutable e_len : int;
}

val make_inbox : unit -> inbox
val make_emitter : unit -> emitter

val in_src : inbox -> int -> int
(** Sender of entry [k].  Unchecked: the caller keeps [k < i_len]. *)

val in_tag : inbox -> int -> int
val in_word : inbox -> int -> int

val emit : emitter -> dst:int -> tag:int -> bits:int -> word:int -> unit
(** Stage one message.  Amortized O(1), allocation-free once the buffer
    has grown to the program's working size. *)

val push_inbox : inbox -> src:int -> tag:int -> word:int -> unit
(** Append one (src, tag, word) entry; used by tests to build inboxes by
    hand (the executor delivers via its own counting-sort arena). *)

val grow4 : int array -> int -> int array
(** Double a stride-4 staging buffer (capacity stays a multiple of 4),
    preserving the first [len] slots.  For {!Runtime.run_flat}. *)

val grow5 : int array -> int -> int array
(** Double a stride-5 staging buffer (capacity stays a multiple of 5):
    the sharded executor ({!Runtime.run_flat_par}) stages
    (dst, src, tag, word, bits) quints so trace recording can happen
    after the parallel phase. *)

(** {1 Programs} *)

type 'out node = {
  fstep : round:int -> inbox:inbox -> emitter -> unit;
      (** Read the inbox, stage sends into the emitter.  The emitter is
          already cleared; the inbox is only valid during the call. *)
  fhalted : unit -> bool;
  foutput : unit -> 'out option;
}

type 'out t = { fname : string; fspawn : Program.view -> 'out node }
(** Spawned from the same {!Program.view} (same neighbor arrays, same
    split PRNG streams) as list-mode programs, so a flat port is
    output-identical to its original under any seed. *)

(** {1 Flat ports of the library algorithms} *)

val max_id : rounds:int -> int t
(** Mirror of {!Algo_flood.max_id}. *)

val bfs_distances : root:int -> rounds:int -> int t
(** Mirror of {!Algo_bfs.distances}. *)

val luby_mis : bool t
(** Mirror of {!Algo_luby.mis} (3-phase local-maxima protocol). *)
