(** Luby's randomized maximal independent set in CONGEST.

    The classic [O(log n)]-phase algorithm: in each 3-round phase, every
    still-undecided node draws a random priority; local maxima join the
    independent set, and their neighbors drop out.  Messages are at most
    [2·⌈log n⌉]-bit priorities — comfortably inside the CONGEST budget.

    This is a {e maximal} (not maximum) independent set algorithm: it is
    one of the fast upper-bound algorithms the paper's introduction
    contrasts with the hardness results, and the benches run it on the hard
    instances to show how far below OPT such algorithms land. *)

val mis : bool Program.t
(** Output: [Some true] if the node entered the independent set,
    [Some false] if a neighbor did.  All nodes halt with probability 1;
    the expected number of phases is [O(log n)]. *)
