module Dynvec = Stdx.Dynvec

type send = { round : int; src : int; dst : int; bits : int }

type fault_kind = Dropped | Duplicated | Corrupted | Delayed of int | Crashed

type fault = { round : int; src : int; dst : int; bits : int; kind : fault_kind }

type mode = Full | Light

(* Registered-cut accumulators: when the partition is known before the
   run (the simulation theorem's player split always is), every
   cut-crossing aggregate is maintained in O(1) per recorded event, so
   the blackboard accounting costs nothing extra at query time and works
   without the send log (Light mode). *)
type cut = {
  part : int array;
  by_side : int array;  (* attempted bits written by each player *)
  by_round : int Dynvec.t;
  mutable c_bits : int;
  mutable c_msgs : int;
  mutable c_dropped : int;
  mutable c_duplicated : int;
}

type t = {
  mode : mode;
  (* Structure-of-arrays send/fault log — four (five) plain int vectors,
     no per-message record.  Retained in [Full] mode only. *)
  s_round : int Dynvec.t;
  s_src : int Dynvec.t;
  s_dst : int Dynvec.t;
  s_bits : int Dynvec.t;
  f_round : int Dynvec.t;
  f_src : int Dynvec.t;
  f_dst : int Dynvec.t;
  f_bits : int Dynvec.t;
  f_kind : int Dynvec.t;
  mutable executed_rounds : int;
  (* Streaming accumulators — the single source of truth for every
     log-shaped query that does not take a post-hoc partition. *)
  mutable n_sends : int;
  mutable sum_bits : int;
  mutable max_send_round : int;  (* -1 when no send recorded *)
  mutable max_fault_round : int;
  r_bits : int Dynvec.t;  (* per-round attempted bits *)
  r_msgs : int Dynvec.t;
  (* Open accumulation cell for the round currently being recorded: the
     executor sends a whole round's traffic back to back, so the two
     [bump]s per send collapse to two scalar adds, flushed into the
     per-round vectors when the round changes (or a query reads them). *)
  mutable open_round : int;  (* -1 when nothing pending *)
  mutable open_bits : int;
  mutable open_msgs : int;
  r_faults : int Dynvec.t;
  mutable n_faults : int;
  mutable b_dropped : int;
  mutable b_duplicated : int;
  mutable b_corrupted : int;
  (* Per-directed-edge totals: built on first [bits_on_edge] query, then
     maintained incrementally by [record_send] — never rebuilt. *)
  mutable edge_index : (int * int, int) Hashtbl.t option;
  (* Largest per-(round, directed edge) total, observed by the runtime
     (which tracks the running total for bandwidth enforcement anyway). *)
  mutable max_edge_obs : int;
  cut : cut option;
  (* Streaming 63-bit digests for Light mode, where the Int64 replay
     digest cannot fold a retained log. *)
  mutable h_sends : int;
  mutable h_faults : int;
}

let light_basis = 0x2545f4914f6cdd1d

let create ?(mode = Full) ?cut () =
  {
    mode;
    s_round = Dynvec.create ();
    s_src = Dynvec.create ();
    s_dst = Dynvec.create ();
    s_bits = Dynvec.create ();
    f_round = Dynvec.create ();
    f_src = Dynvec.create ();
    f_dst = Dynvec.create ();
    f_bits = Dynvec.create ();
    f_kind = Dynvec.create ();
    executed_rounds = 0;
    n_sends = 0;
    sum_bits = 0;
    max_send_round = -1;
    max_fault_round = -1;
    r_bits = Dynvec.create ();
    r_msgs = Dynvec.create ();
    open_round = -1;
    open_bits = 0;
    open_msgs = 0;
    r_faults = Dynvec.create ();
    n_faults = 0;
    b_dropped = 0;
    b_duplicated = 0;
    b_corrupted = 0;
    edge_index = None;
    max_edge_obs = 0;
    cut =
      Option.map
        (fun part ->
          let sides = Array.fold_left (fun acc p -> max acc (p + 1)) 0 part in
          {
            part;
            by_side = Array.make (max sides 1) 0;
            by_round = Dynvec.create ();
            c_bits = 0;
            c_msgs = 0;
            c_dropped = 0;
            c_duplicated = 0;
          })
        cut;
    h_sends = light_basis;
    h_faults = light_basis;
  }

let mode t = t.mode

let registered_cut t = Option.map (fun c -> c.part) t.cut

(* Add [d] at index [i] of a zero-extended vector. *)
let bump vec i d =
  while Dynvec.length vec <= i do
    Dynvec.push vec 0
  done;
  Dynvec.set vec i (Dynvec.get vec i + d)

let mix_int h x = (h lxor x) * 0x100000001b3 lxor (h lsr 29)

let flush_round t =
  if t.open_round >= 0 then begin
    bump t.r_bits t.open_round t.open_bits;
    bump t.r_msgs t.open_round t.open_msgs;
    t.open_round <- -1;
    t.open_bits <- 0;
    t.open_msgs <- 0
  end

let record_send t ~round ~src ~dst ~bits =
  if t.mode = Full then begin
    Dynvec.push t.s_round round;
    Dynvec.push t.s_src src;
    Dynvec.push t.s_dst dst;
    Dynvec.push t.s_bits bits;
    match t.edge_index with
    | None -> ()
    | Some h ->
        let key = (src, dst) in
        Hashtbl.replace h key
          (bits + Option.value ~default:0 (Hashtbl.find_opt h key))
  end;
  t.n_sends <- t.n_sends + 1;
  t.sum_bits <- t.sum_bits + bits;
  if round > t.max_send_round then t.max_send_round <- round;
  if round <> t.open_round then begin
    flush_round t;
    t.open_round <- round
  end;
  t.open_bits <- t.open_bits + bits;
  t.open_msgs <- t.open_msgs + 1;
  (match t.cut with
  | Some c when c.part.(src) <> c.part.(dst) ->
      c.c_bits <- c.c_bits + bits;
      c.c_msgs <- c.c_msgs + 1;
      c.by_side.(c.part.(src)) <- c.by_side.(c.part.(src)) + bits;
      bump c.by_round round bits
  | _ -> ());
  if t.mode = Light then
    t.h_sends <-
      mix_int (mix_int (mix_int (mix_int t.h_sends round) src) dst) bits

(* ------------------------------------------------------------------ *)
(* Bulk recording (the domain-sharded executor's path).

   [record_send] is per-message because Full mode retains the log and a
   registered cut needs each (src, dst).  When neither applies — Light
   mode, no cut — everything the trace maintains per send is an
   aggregate plus the streamed digest, so the parallel executor records
   a whole round's shard in O(1) with [record_send_bulk] and folds the
   digest itself with [send_mix] over its staged messages (in shard
   order = ascending source order, exactly the sequence the sequential
   executor would have recorded). *)

let per_send_required t = t.mode = Full || t.cut <> None

let record_send_bulk t ~round ~count ~bits =
  if per_send_required t then
    invalid_arg
      "Trace.record_send_bulk: this trace needs per-send events (Full mode \
       or registered cut)";
  if count < 0 || bits < 0 then
    invalid_arg "Trace.record_send_bulk: negative count or bits";
  if count > 0 then begin
    t.n_sends <- t.n_sends + count;
    t.sum_bits <- t.sum_bits + bits;
    if round > t.max_send_round then t.max_send_round <- round;
    if round <> t.open_round then begin
      flush_round t;
      t.open_round <- round
    end;
    t.open_bits <- t.open_bits + bits;
    t.open_msgs <- t.open_msgs + count
  end

let send_mix ~h ~round ~src ~dst ~bits =
  mix_int (mix_int (mix_int (mix_int h round) src) dst) bits

let send_digest_state t = t.h_sends

let set_send_digest_state t h = t.h_sends <- h

let fault_code = function
  | Dropped -> 1
  | Duplicated -> 2
  | Corrupted -> 3
  | Delayed d -> 4 lor (d lsl 3)
  | Crashed -> 5

let fault_of_code = function
  | 1 -> Dropped
  | 2 -> Duplicated
  | 3 -> Corrupted
  | 5 -> Crashed
  | c when c land 7 = 4 -> Delayed (c lsr 3)
  | c -> invalid_arg (Printf.sprintf "Trace: bad fault code %d" c)

let record_fault t ~round ~src ~dst ~bits ~kind =
  let code = fault_code kind in
  if t.mode = Full then begin
    Dynvec.push t.f_round round;
    Dynvec.push t.f_src src;
    Dynvec.push t.f_dst dst;
    Dynvec.push t.f_bits bits;
    Dynvec.push t.f_kind code
  end;
  t.n_faults <- t.n_faults + 1;
  if round > t.max_fault_round then t.max_fault_round <- round;
  bump t.r_faults round 1;
  (match kind with
  | Dropped -> t.b_dropped <- t.b_dropped + bits
  | Duplicated -> t.b_duplicated <- t.b_duplicated + bits
  | Corrupted -> t.b_corrupted <- t.b_corrupted + bits
  | Delayed _ | Crashed -> ());
  (match t.cut with
  | Some c when c.part.(src) <> c.part.(dst) -> (
      match kind with
      | Dropped -> c.c_dropped <- c.c_dropped + bits
      | Duplicated -> c.c_duplicated <- c.c_duplicated + bits
      | Corrupted | Delayed _ | Crashed -> ())
  | _ -> ());
  if t.mode = Light then
    t.h_faults <-
      mix_int
        (mix_int (mix_int (mix_int (mix_int t.h_faults round) src) dst) bits)
        code

let observe_edge_total t total =
  if total > t.max_edge_obs then t.max_edge_obs <- total

let rounds t =
  max t.executed_rounds (max (t.max_send_round + 1) (t.max_fault_round + 1))

let set_rounds t r = t.executed_rounds <- r

let total_messages t = t.n_sends

let total_bits t = t.sum_bits

let bits_in_round t r =
  flush_round t;
  if r < 0 || r >= Dynvec.length t.r_bits then 0 else Dynvec.get t.r_bits r

let messages_in_round t r =
  flush_round t;
  if r < 0 || r >= Dynvec.length t.r_msgs then 0 else Dynvec.get t.r_msgs r

let need_log t what =
  if t.mode = Light then
    invalid_arg
      (Printf.sprintf
         "Trace.%s: needs the retained send log (Full mode); this trace \
          streams aggregates only"
         what)

let iter_sends t f =
  need_log t "iter_sends";
  for i = 0 to Dynvec.length t.s_round - 1 do
    f ~round:(Dynvec.get t.s_round i) ~src:(Dynvec.get t.s_src i)
      ~dst:(Dynvec.get t.s_dst i) ~bits:(Dynvec.get t.s_bits i)
  done

let send_events t =
  need_log t "send_events";
  Array.init (Dynvec.length t.s_round) (fun i ->
      {
        round = Dynvec.get t.s_round i;
        src = Dynvec.get t.s_src i;
        dst = Dynvec.get t.s_dst i;
        bits = Dynvec.get t.s_bits i;
      })

let bits_on_edge t ~src ~dst =
  need_log t "bits_on_edge";
  let h =
    match t.edge_index with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        iter_sends t (fun ~round:_ ~src ~dst ~bits ->
            let key = (src, dst) in
            Hashtbl.replace h key
              (bits + Option.value ~default:0 (Hashtbl.find_opt h key)));
        t.edge_index <- Some h;
        h
  in
  Option.value ~default:0 (Hashtbl.find_opt h (src, dst))

(* ------------------------------------------------------------------ *)
(* Cut accounting.  Queries against the registered partition are O(1)
   reads of the streamed accumulators; a different partition falls back
   to a fold over the retained log (Full mode only). *)

let same_cut t part =
  match t.cut with
  | Some c -> c.part == part || c.part = part
  | None -> false

let fold_sends t init f =
  let acc = ref init in
  for i = 0 to Dynvec.length t.s_round - 1 do
    acc :=
      f !acc (Dynvec.get t.s_round i) (Dynvec.get t.s_src i)
        (Dynvec.get t.s_dst i) (Dynvec.get t.s_bits i)
  done;
  !acc

let cut_bits t part =
  if same_cut t part then (Option.get t.cut).c_bits
  else begin
    need_log t "cut_bits";
    fold_sends t 0 (fun acc _ src dst bits ->
        if part.(src) <> part.(dst) then acc + bits else acc)
  end

let cut_messages t part =
  if same_cut t part then (Option.get t.cut).c_msgs
  else begin
    need_log t "cut_messages";
    fold_sends t 0 (fun acc _ src dst _ ->
        if part.(src) <> part.(dst) then acc + 1 else acc)
  end

let cut_bits_by_side t part =
  if same_cut t part then Array.copy (Option.get t.cut).by_side
  else begin
    need_log t "cut_bits_by_side";
    let sides = Array.fold_left (fun acc p -> max acc (p + 1)) 0 part in
    let per = Array.make sides 0 in
    fold_sends t () (fun () _ src dst bits ->
        if part.(src) <> part.(dst) then
          per.(part.(src)) <- per.(part.(src)) + bits);
    per
  end

let cut_bits_by_round t part =
  let r = rounds t in
  if same_cut t part then begin
    let c = Option.get t.cut in
    Array.init r (fun i ->
        if i < Dynvec.length c.by_round then Dynvec.get c.by_round i else 0)
  end
  else begin
    need_log t "cut_bits_by_round";
    let per = Array.make r 0 in
    fold_sends t () (fun () round src dst bits ->
        if part.(src) <> part.(dst) then per.(round) <- per.(round) + bits);
    per
  end

let max_bits_per_edge_round t =
  if t.mode = Light then t.max_edge_obs
  else begin
    let tbl = Hashtbl.create 64 in
    fold_sends t () (fun () round src dst bits ->
        let key = (round, src, dst) in
        Hashtbl.replace tbl key
          (bits + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
    Hashtbl.fold (fun _ v acc -> max acc v) tbl 0
  end

(* ------------------------------------------------------------------ *)
(* Injected-fault accounting *)

let total_faults t = t.n_faults

let fault_at t i =
  {
    round = Dynvec.get t.f_round i;
    src = Dynvec.get t.f_src i;
    dst = Dynvec.get t.f_dst i;
    bits = Dynvec.get t.f_bits i;
    kind = fault_of_code (Dynvec.get t.f_kind i);
  }

let fault_events t =
  need_log t "fault_events";
  Array.init (Dynvec.length t.f_round) (fault_at t)

let faults_in_round t r =
  if r < 0 || r >= Dynvec.length t.r_faults then 0 else Dynvec.get t.r_faults r

let dropped_bits t = t.b_dropped

let duplicated_bits t = t.b_duplicated

let corrupted_bits t = t.b_corrupted

let fold_faults t init f =
  let acc = ref init in
  for i = 0 to Dynvec.length t.f_round - 1 do
    acc :=
      f !acc (Dynvec.get t.f_src i) (Dynvec.get t.f_dst i)
        (Dynvec.get t.f_bits i)
        (Dynvec.get t.f_kind i)
  done;
  !acc

let cut_bits_dropped t part =
  if same_cut t part then (Option.get t.cut).c_dropped
  else begin
    need_log t "cut_bits_dropped";
    fold_faults t 0 (fun acc src dst bits code ->
        if code = 1 && part.(src) <> part.(dst) then acc + bits else acc)
  end

let cut_bits_duplicated t part =
  if same_cut t part then (Option.get t.cut).c_duplicated
  else begin
    need_log t "cut_bits_duplicated";
    fold_faults t 0 (fun acc src dst bits code ->
        if code = 2 && part.(src) <> part.(dst) then acc + bits else acc)
  end

let cut_bits_delivered t part =
  cut_bits t part - cut_bits_dropped t part + cut_bits_duplicated t part

(* ------------------------------------------------------------------ *)
(* Replay digest *)

let mix h x =
  let open Int64 in
  let h = mul (logxor h (of_int x)) 0x100000001b3L in
  logxor h (shift_right_logical h 29)

let digest t =
  match t.mode with
  | Full ->
      (* The historical definition, folded over the retained log — the
         FAULTS bench prints these values, so they must not drift. *)
      let h = ref 0xcbf29ce484222325L in
      let add x = h := mix !h x in
      add t.executed_rounds;
      for i = 0 to Dynvec.length t.s_round - 1 do
        add (Dynvec.get t.s_round i);
        add (Dynvec.get t.s_src i);
        add (Dynvec.get t.s_dst i);
        add (Dynvec.get t.s_bits i)
      done;
      for i = 0 to Dynvec.length t.f_round - 1 do
        add (Dynvec.get t.f_round i);
        add (Dynvec.get t.f_src i);
        add (Dynvec.get t.f_dst i);
        add (Dynvec.get t.f_bits i);
        add (Dynvec.get t.f_kind i)
      done;
      !h
  | Light ->
      (* Streamed variant: same replay guarantee (a pure function of the
         recorded event sequence), different numeric values than Full. *)
      Int64.of_int
        (mix_int
           (mix_int (mix_int light_basis t.executed_rounds) t.h_sends)
           t.h_faults)

let pp ppf t =
  Format.fprintf ppf "trace(rounds=%d, msgs=%d, bits=%d, faults=%d)" (rounds t)
    (total_messages t) (total_bits t) (total_faults t)
