type send = { round : int; src : int; dst : int; bits : int }

type fault_kind = Dropped | Duplicated | Corrupted | Delayed of int | Crashed

type fault = { round : int; src : int; dst : int; bits : int; kind : fault_kind }

(* Lazily built aggregate index over the send log.  [bits_in_round],
   [messages_in_round] and [bits_on_edge] are hot in soak runs that query
   per round; folding the whole log per query is O(|sends|) each, which
   goes quadratic when faults multiply the log.  The index is invalidated
   by any mutation and rebuilt in one pass on the next query. *)
type index = {
  round_bits : int array;
  round_msgs : int array;
  edge_bits : (int * int, int) Hashtbl.t;
}

type t = {
  sends : send Stdx.Dynvec.t;
  faults : fault Stdx.Dynvec.t;
  mutable executed_rounds : int;
  mutable index : index option;
}

let create () =
  {
    sends = Stdx.Dynvec.create ();
    faults = Stdx.Dynvec.create ();
    executed_rounds = 0;
    index = None;
  }

let record_send t ~round ~src ~dst ~bits =
  t.index <- None;
  Stdx.Dynvec.push t.sends { round; src; dst; bits }

let record_fault t ~round ~src ~dst ~bits ~kind =
  t.index <- None;
  Stdx.Dynvec.push t.faults { round; src; dst; bits; kind }

let rounds t =
  let on_sends =
    Stdx.Dynvec.fold (fun acc (s : send) -> max acc (s.round + 1)) 0 t.sends
  in
  let on_faults =
    Stdx.Dynvec.fold (fun acc (f : fault) -> max acc (f.round + 1)) 0 t.faults
  in
  max t.executed_rounds (max on_sends on_faults)

let set_rounds t r =
  t.index <- None;
  t.executed_rounds <- r

let total_messages t = Stdx.Dynvec.length t.sends

let total_bits t = Stdx.Dynvec.fold (fun acc (s : send) -> acc + s.bits) 0 t.sends

let ensure_index t =
  match t.index with
  | Some idx -> idx
  | None ->
      let r = rounds t in
      let idx =
        {
          round_bits = Array.make r 0;
          round_msgs = Array.make r 0;
          edge_bits = Hashtbl.create 64;
        }
      in
      Stdx.Dynvec.iter
        (fun (s : send) ->
          idx.round_bits.(s.round) <- idx.round_bits.(s.round) + s.bits;
          idx.round_msgs.(s.round) <- idx.round_msgs.(s.round) + 1;
          let key = (s.src, s.dst) in
          Hashtbl.replace idx.edge_bits key
            (s.bits + Option.value ~default:0 (Hashtbl.find_opt idx.edge_bits key)))
        t.sends;
      t.index <- Some idx;
      idx

let bits_in_round t r =
  let idx = ensure_index t in
  if r < 0 || r >= Array.length idx.round_bits then 0 else idx.round_bits.(r)

let messages_in_round t r =
  let idx = ensure_index t in
  if r < 0 || r >= Array.length idx.round_msgs then 0 else idx.round_msgs.(r)

let bits_on_edge t ~src ~dst =
  let idx = ensure_index t in
  Option.value ~default:0 (Hashtbl.find_opt idx.edge_bits (src, dst))

let cut_bits t part =
  Stdx.Dynvec.fold
    (fun acc (s : send) -> if part.(s.src) <> part.(s.dst) then acc + s.bits else acc)
    0 t.sends

let cut_messages t part =
  Stdx.Dynvec.fold
    (fun acc (s : send) -> if part.(s.src) <> part.(s.dst) then acc + 1 else acc)
    0 t.sends

let cut_bits_by_side t part =
  let sides = Array.fold_left (fun acc p -> max acc (p + 1)) 0 part in
  let per = Array.make sides 0 in
  Stdx.Dynvec.iter
    (fun (s : send) ->
      if part.(s.src) <> part.(s.dst) then
        per.(part.(s.src)) <- per.(part.(s.src)) + s.bits)
    t.sends;
  per

let cut_bits_by_round t part =
  let per = Array.make (rounds t) 0 in
  Stdx.Dynvec.iter
    (fun (s : send) ->
      if part.(s.src) <> part.(s.dst) then
        per.(s.round) <- per.(s.round) + s.bits)
    t.sends;
  per

let max_bits_per_edge_round t =
  let tbl = Hashtbl.create 64 in
  Stdx.Dynvec.iter
    (fun (s : send) ->
      let key = (s.round, s.src, s.dst) in
      Hashtbl.replace tbl key
        (s.bits + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.sends;
  Hashtbl.fold (fun _ v acc -> max acc v) tbl 0

(* ------------------------------------------------------------------ *)
(* Injected-fault accounting *)

let total_faults t = Stdx.Dynvec.length t.faults

let fault_events t = Stdx.Dynvec.to_array t.faults

let count_faults t pred =
  Stdx.Dynvec.fold (fun acc f -> if pred f then acc + 1 else acc) 0 t.faults

let sum_fault_bits t pred =
  Stdx.Dynvec.fold (fun acc f -> if pred f then acc + f.bits else acc) 0 t.faults

let faults_in_round t r = count_faults t (fun f -> f.round = r)

let dropped_bits t = sum_fault_bits t (fun f -> f.kind = Dropped)

let duplicated_bits t = sum_fault_bits t (fun f -> f.kind = Duplicated)

let corrupted_bits t = sum_fault_bits t (fun f -> f.kind = Corrupted)

let cut_bits_dropped t part =
  sum_fault_bits t (fun f -> f.kind = Dropped && part.(f.src) <> part.(f.dst))

let cut_bits_duplicated t part =
  sum_fault_bits t (fun f -> f.kind = Duplicated && part.(f.src) <> part.(f.dst))

let cut_bits_delivered t part =
  cut_bits t part - cut_bits_dropped t part + cut_bits_duplicated t part

(* ------------------------------------------------------------------ *)
(* Replay digest *)

let mix h x =
  let open Int64 in
  let h = mul (logxor h (of_int x)) 0x100000001b3L in
  logxor h (shift_right_logical h 29)

let fault_code = function
  | Dropped -> 1
  | Duplicated -> 2
  | Corrupted -> 3
  | Delayed d -> 4 lor (d lsl 3)
  | Crashed -> 5

let digest t =
  let h = ref 0xcbf29ce484222325L in
  let add x = h := mix !h x in
  add t.executed_rounds;
  Stdx.Dynvec.iter
    (fun (s : send) ->
      add s.round;
      add s.src;
      add s.dst;
      add s.bits)
    t.sends;
  Stdx.Dynvec.iter
    (fun (f : fault) ->
      add f.round;
      add f.src;
      add f.dst;
      add f.bits;
      add (fault_code f.kind))
    t.faults;
  !h

let pp ppf t =
  Format.fprintf ppf "trace(rounds=%d, msgs=%d, bits=%d, faults=%d)" (rounds t)
    (total_messages t) (total_bits t) (total_faults t)
