type send = { round : int; src : int; dst : int; bits : int }

type t = { sends : send Stdx.Dynvec.t; mutable executed_rounds : int }

let create () = { sends = Stdx.Dynvec.create (); executed_rounds = 0 }

let record_send t ~round ~src ~dst ~bits =
  Stdx.Dynvec.push t.sends { round; src; dst; bits }

let rounds t =
  max t.executed_rounds
    (Stdx.Dynvec.fold (fun acc s -> max acc (s.round + 1)) 0 t.sends)

let set_rounds t r = t.executed_rounds <- r

let total_messages t = Stdx.Dynvec.length t.sends

let total_bits t = Stdx.Dynvec.fold (fun acc s -> acc + s.bits) 0 t.sends

let bits_in_round t r =
  Stdx.Dynvec.fold (fun acc s -> if s.round = r then acc + s.bits else acc) 0 t.sends

let messages_in_round t r =
  Stdx.Dynvec.fold (fun acc s -> if s.round = r then acc + 1 else acc) 0 t.sends

let bits_on_edge t ~src ~dst =
  Stdx.Dynvec.fold
    (fun acc s -> if s.src = src && s.dst = dst then acc + s.bits else acc)
    0 t.sends

let cut_bits t part =
  Stdx.Dynvec.fold
    (fun acc s -> if part.(s.src) <> part.(s.dst) then acc + s.bits else acc)
    0 t.sends

let cut_messages t part =
  Stdx.Dynvec.fold
    (fun acc s -> if part.(s.src) <> part.(s.dst) then acc + 1 else acc)
    0 t.sends

let max_bits_per_edge_round t =
  let tbl = Hashtbl.create 64 in
  Stdx.Dynvec.iter
    (fun s ->
      let key = (s.round, s.src, s.dst) in
      Hashtbl.replace tbl key
        (s.bits + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.sends;
  Hashtbl.fold (fun _ v acc -> max acc v) tbl 0

let pp ppf t =
  Format.fprintf ppf "trace(rounds=%d, msgs=%d, bits=%d)" (rounds t)
    (total_messages t) (total_bits t)
