(* Seeded, deterministic fault injection for the CONGEST runtime.

   A plan describes per-link message faults (drop, duplication, payload
   corruption, bounded delay) and per-node crashes.  All randomness comes
   from one splitmix64 stream seeded by [plan.seed] and consumed in the
   runtime's deterministic iteration order, so a faulty execution is a pure
   function of [(config, plan)] — the replay guarantee [Trace.digest]
   equality is tested against. *)

type link_fault = {
  drop : float;
  duplicate : float;
  corrupt : float;
  max_delay : int;
}

let no_fault = { drop = 0.0; duplicate = 0.0; corrupt = 0.0; max_delay = 0 }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults.link: %s probability %g not in [0,1]" name p)

let link ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(max_delay = 0) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  if max_delay < 0 then invalid_arg "Faults.link: negative max_delay";
  { drop; duplicate; corrupt; max_delay }

type plan = {
  seed : int;
  default : link_fault;
  links : ((int * int) * link_fault) list;
  crashes : (int * int) list;
}

let plan ?(default = no_fault) ?(links = []) ?(crashes = []) seed =
  List.iter
    (fun (v, r) ->
      if v < 0 then invalid_arg "Faults.plan: negative crash node";
      if r < 0 then invalid_arg "Faults.plan: negative crash round")
    crashes;
  { seed; default; links; crashes }

let crash_round plan ~node =
  List.fold_left
    (fun acc (v, r) ->
      if v <> node then acc
      else match acc with None -> Some r | Some r' -> Some (min r r'))
    None plan.crashes

let pp_link ppf f =
  Format.fprintf ppf "drop=%g dup=%g corrupt=%g delay<=%d" f.drop f.duplicate
    f.corrupt f.max_delay

let pp_plan ppf p =
  Format.fprintf ppf "plan(seed=%d, %a" p.seed pp_link p.default;
  if p.links <> [] then Format.fprintf ppf ", %d link overrides" (List.length p.links);
  if p.crashes <> [] then
    Format.fprintf ppf ", crashes:%a"
      (Format.pp_print_list (fun ppf (v, r) -> Format.fprintf ppf " %d@r%d" v r))
      p.crashes;
  Format.fprintf ppf ")"

(* ------------------------------------------------------------------ *)
(* Injection *)

type injector = {
  rng : Stdx.Prng.t;
  overrides : (int * int, link_fault) Hashtbl.t;
  default : link_fault;
}

let injector plan =
  let overrides = Hashtbl.create 16 in
  List.iter (fun (edge, f) -> Hashtbl.replace overrides edge f) plan.links;
  { rng = Stdx.Prng.create plan.seed; overrides; default = plan.default }

let link_fault inj ~src ~dst =
  Option.value ~default:inj.default (Hashtbl.find_opt inj.overrides (src, dst))

(* Flip one bit of one payload component.  The message records only its
   total declared size, not per-component widths, so the flip position is
   drawn from the component's own bit-length: v < 2^w implies the result
   stays < 2^w, keeping the corrupted value representable in whatever
   width the component was declared with (a receiver re-encoding it must
   not explode).  The declared size is unchanged; only the content is
   damaged (which a checksum, e.g. [harden]'s, must catch). *)
let flip rng v =
  let width = ref 0 in
  while v lsr !width > 0 do incr width done;
  if !width = 0 then 1 (* v = 0: set the low bit *)
  else v lxor (1 lsl Stdx.Prng.int rng !width)

let corrupt_msg rng (m : Msg.t) =
  let payload =
    match m.Msg.payload with
    | Msg.Unit -> Msg.Unit (* a pure ping carries no content to damage *)
    | Msg.Bool x -> Msg.Bool (not x)
    | Msg.Int v -> Msg.Int (flip rng v)
    | Msg.Pair (x, y) ->
        if Stdx.Prng.bool rng then Msg.Pair (flip rng x, y)
        else Msg.Pair (x, flip rng y)
    | Msg.Triple (x, y, z) -> (
        match Stdx.Prng.int rng 3 with
        | 0 -> Msg.Triple (flip rng x, y, z)
        | 1 -> Msg.Triple (x, flip rng y, z)
        | _ -> Msg.Triple (x, y, flip rng z))
  in
  { m with Msg.payload }

let apply inj ~src ~dst (m : Msg.t) =
  let f = link_fault inj ~src ~dst in
  let events = ref [] in
  let ev k = events := k :: !events in
  let hit p = p > 0.0 && Stdx.Prng.float inj.rng 1.0 < p in
  if hit f.drop then begin
    ev Trace.Dropped;
    ([], List.rev !events)
  end
  else begin
    let m =
      if hit f.corrupt then begin
        ev Trace.Corrupted;
        corrupt_msg inj.rng m
      end
      else m
    in
    let copies =
      if hit f.duplicate then begin
        ev Trace.Duplicated;
        [ m; m ]
      end
      else [ m ]
    in
    let deliveries =
      List.map
        (fun c ->
          let d =
            if f.max_delay > 0 then Stdx.Prng.int inj.rng (f.max_delay + 1) else 0
          in
          if d > 0 then ev (Trace.Delayed d);
          (d, c))
        copies
    in
    (deliveries, List.rev !events)
  end

(* ------------------------------------------------------------------ *)
(* Reliable delivery: the harden combinator.

   Wraps a node program with per-link sequence-numbered stop-and-wait
   ack/retransmit, checksummed packets, and an alpha-synchronizer-style
   end-of-round barrier, so the inner program observes exactly the
   fault-free synchronous semantics: inner round r's outbox arrives,
   complete and uncorrupted, as inner round r+1's inbox.

   Packet = Triple (header, data, checksum), 131 declared bits:
     header (52 bits) = kind(2) | seq(20) | cumulative ack(20) | len(10)
     data   (63 bits) = DATA: tagged inner payload, each component packed
                        in [len] bits; EOR: the inner round index
     checksum (16 bits) over header and data.

   Kinds: DATA carries one inner message; EOR marks the end of an inner
   round's batch (the barrier); HALT announces the inner program halted
   (the link is finished in both directions); ACK carries only the
   cumulative ack.  Per link, at most one packet is sent per physical
   round, so the per-edge cost is bounded — but every inner bit now rides
   in a 131-bit frame and every loss costs a round trip: reliability is
   bought with communication, the currency the paper's lower bounds
   price. *)

let kind_data = 0
let kind_eor = 1
let kind_halt = 2
let kind_ack = 3
let seq_bits = 20
let seq_mask = (1 lsl seq_bits) - 1
let len_mask = (1 lsl 10) - 1
let header_width = 2 + seq_bits + seq_bits + 10
let max_inner_bits = 20

let checksum h d =
  let x = (h * 0x9E3779B1) lxor ((d + 1) * 0x85EBCA77) in
  let x = x lxor (x lsr 13) lxor (x lsr 29) in
  x land 0xFFFF

let encode_payload (m : Msg.t) =
  let b = m.Msg.bits in
  if b > max_inner_bits then
    invalid_arg
      (Printf.sprintf
         "Faults.harden: inner message of %d bits exceeds the %d-bit frame"
         b max_inner_bits);
  match m.Msg.payload with
  | Msg.Unit -> 0
  | Msg.Bool x -> 1 lor ((if x then 1 else 0) lsl 3)
  | Msg.Int v -> 2 lor (v lsl 3)
  | Msg.Pair (x, y) -> 3 lor (x lsl 3) lor (y lsl (3 + b))
  | Msg.Triple (x, y, z) ->
      4 lor (x lsl 3) lor (y lsl (3 + b)) lor (z lsl (3 + (2 * b)))

let decode_payload ~b data =
  let mask = (1 lsl b) - 1 in
  let comp i = (data lsr (3 + (i * b))) land mask in
  match data land 7 with
  | 0 -> Msg.Unit
  | 1 -> Msg.Bool ((data lsr 3) land 1 = 1)
  | 2 -> Msg.Int (comp 0)
  | 3 -> Msg.Pair (comp 0, comp 1)
  | _ -> Msg.Triple (comp 0, comp 1, comp 2)

let packet ~kind ~seq ~ack ~b ~data =
  let header = kind lor (seq lsl 2) lor (ack lsl 22) lor (b lsl 42) in
  Msg.triple_msg ~widths:(header_width, 63, 16) (header, data, checksum header data)

type out_entry = { seq : int; kind : int; b : int; data : int }

type link = {
  nb : int;
  outq : out_entry Queue.t;  (* unacked + unsent, head = next to (re)send *)
  mutable next_seq_out : int;
  mutable next_seq_in : int;
  mutable acc : Msg.t list;  (* current inner-round batch, reversed *)
  ready : Msg.t list Queue.t;  (* completed batches, oldest first *)
  mutable nb_halted : bool;
  mutable need_ack : bool;
}

let harden ?(linger = 8) (inner : 'out Program.t) =
  {
    Program.name = inner.Program.name ^ "+hardened";
    spawn =
      (fun view ->
        let inner_inst = inner.Program.spawn view in
        let links =
          Array.map
            (fun nb ->
              {
                nb;
                outq = Queue.create ();
                next_seq_out = 0;
                next_seq_in = 0;
                acc = [];
                ready = Queue.create ();
                nb_halted = false;
                need_ack = false;
              })
            view.Program.neighbors
        in
        let link_of = Hashtbl.create (Array.length links) in
        Array.iter (fun l -> Hashtbl.replace link_of l.nb l) links;
        let enqueue l ~kind ?(b = 0) data =
          if l.next_seq_out > seq_mask then
            invalid_arg "Faults.harden: per-link sequence space exhausted";
          Queue.push { seq = l.next_seq_out; kind; b; data } l.outq;
          l.next_seq_out <- l.next_seq_out + 1
        in
        let inner_round = ref 0 in
        let inner_halted = ref false in
        let wrapper_halted = ref false in
        let quiet = ref 0 in
        let receive src (m : Msg.t) =
          match (Hashtbl.find_opt link_of src, m.Msg.payload) with
          | Some l, Msg.Triple (header, data, ck) when checksum header data = ck
            ->
              let kind = header land 3 in
              let seq = (header lsr 2) land seq_mask in
              let ack = (header lsr 22) land seq_mask in
              let b = (header lsr 42) land len_mask in
              (* Cumulative ack: everything below [ack] is received. *)
              while
                (not (Queue.is_empty l.outq)) && (Queue.peek l.outq).seq < ack
              do
                ignore (Queue.pop l.outq)
              done;
              if kind <> kind_ack then
                if seq = l.next_seq_in then begin
                  l.next_seq_in <- seq + 1;
                  l.need_ack <- true;
                  if kind = kind_data then
                    l.acc <- { Msg.bits = b; payload = decode_payload ~b data } :: l.acc
                  else if kind = kind_eor then begin
                    Queue.push (List.rev l.acc) l.ready;
                    l.acc <- []
                  end
                  else begin
                    (* HALT: the peer's inner program is done — it will
                       neither send nor consume again, so our own pending
                       packets to it are moot. *)
                    l.nb_halted <- true;
                    Queue.clear l.outq
                  end
                end
                else if seq < l.next_seq_in then
                  (* stale retransmission or duplicate: re-ack *)
                  l.need_ack <- true
          | _ -> () (* corrupted (checksum mismatch) or foreign: ignore *)
        in
        let advance_inner () =
          if not !inner_halted then begin
            let can =
              !inner_round = 0
              || Array.for_all
                   (fun l -> l.nb_halted || not (Queue.is_empty l.ready))
                   links
            in
            if can then begin
              let inbox =
                if !inner_round = 0 then []
                else
                  List.rev
                    (Array.fold_left
                       (fun acc l ->
                         if not (Queue.is_empty l.ready) then
                           List.fold_left
                             (fun acc m -> (l.nb, m) :: acc)
                             acc (Queue.pop l.ready)
                         else acc)
                       [] links)
              in
              let outbox = inner_inst.Program.step ~round:!inner_round ~inbox in
              incr inner_round;
              List.iter
                (fun (dst, (m : Msg.t)) ->
                  match Hashtbl.find_opt link_of dst with
                  | Some l when not l.nb_halted ->
                      enqueue l ~kind:kind_data ~b:m.Msg.bits (encode_payload m)
                  | Some _ -> () (* halted peer never consumes: discard *)
                  | None ->
                      invalid_arg
                        "Faults.harden: inner program addressed a non-neighbor")
                outbox;
              Array.iter
                (fun l ->
                  if not l.nb_halted then
                    enqueue l ~kind:kind_eor (!inner_round - 1))
                links;
              if inner_inst.Program.halted () then begin
                inner_halted := true;
                Array.iter
                  (fun l -> if not l.nb_halted then enqueue l ~kind:kind_halt 0)
                  links
              end
            end
          end
        in
        let step ~round:_ ~inbox =
          if inbox = [] then incr quiet else quiet := 0;
          List.iter (fun (src, m) -> receive src m) inbox;
          advance_inner ();
          let out =
            Array.fold_left
              (fun acc l ->
                if not (Queue.is_empty l.outq) then begin
                  let e = Queue.peek l.outq in
                  l.need_ack <- false;
                  (l.nb, packet ~kind:e.kind ~seq:e.seq ~ack:l.next_seq_in ~b:e.b ~data:e.data)
                  :: acc
                end
                else if l.need_ack then begin
                  l.need_ack <- false;
                  (l.nb, packet ~kind:kind_ack ~seq:0 ~ack:l.next_seq_in ~b:0 ~data:0)
                  :: acc
                end
                else acc)
              [] links
          in
          (* Halt once the inner program is done, every link is flushed
             (acked or peer-halted), and the line has been quiet long
             enough that no peer is still waiting on a lost ack. *)
          if
            !inner_halted
            && Array.for_all (fun l -> l.nb_halted || Queue.is_empty l.outq) links
            && (Array.length links = 0 || !quiet >= linger)
          then wrapper_halted := true;
          List.rev out
        in
        {
          Program.step;
          halted = (fun () -> !wrapper_halted);
          output = inner_inst.Program.output;
        });
  }
