(* Tagged messages: Pair (tag, value) with tag 0 = BFS wave, 1 = "you are
   my parent", 2 = partial aggregate.

   Timeline for a node adopting the wave at round r (the root "adopts" at
   round 0): it relays the wave and claims its parent during round r; its
   children adopt at r+1 and their claims arrive in the inbox of round
   r+2 — after which the children set is final, because every neighbor has
   adopted some parent by then.  A node forwards its aggregate once the
   children set is final and every child has reported. *)

let tag_wave = 0
let tag_claim = 1
let tag_value = 2

let make ~name ~root ~value_width ~combine ~contribution =
  {
    Program.name;
    spawn =
      (fun view ->
        let me = view.Program.id in
        let widths = (2, value_width) in
        let is_root = me = root in
        let adopted_round = ref (if is_root then Some 0 else None) in
        let parent = ref None in
        let children = Hashtbl.create 4 in
        let acc = ref 0 in
        let reports = ref 0 in
        let done_ = ref false in
        let result = ref None in
        let send_all msg =
          Array.to_list (Array.map (fun nb -> (nb, msg)) view.Program.neighbors)
        in
        let step ~round ~inbox =
          let just_adopted = ref (is_root && round = 0) in
          List.iter
            (fun (src, (m : Msg.t)) ->
              match m.Msg.payload with
              | Msg.Pair (tag, v) ->
                  if tag = tag_wave then begin
                    if !adopted_round = None then begin
                      adopted_round := Some round;
                      parent := Some src;
                      just_adopted := true
                    end
                  end
                  else if tag = tag_claim then Hashtbl.replace children src ()
                  else if tag = tag_value then begin
                    acc := combine !acc v;
                    incr reports
                  end
              | _ -> ())
            inbox;
          let outbox = ref [] in
          if !just_adopted then begin
            (* The wave skips the parent edge (the parent already has it),
               which also keeps the per-edge round budget to one message. *)
            let wave = Msg.pair_msg ~widths (tag_wave, 0) in
            (match !parent with
            | Some pr ->
                Array.iter
                  (fun nb -> if nb <> pr then outbox := (nb, wave) :: !outbox)
                  view.Program.neighbors;
                outbox := (pr, Msg.pair_msg ~widths (tag_claim, 0)) :: !outbox
            | None -> outbox := send_all wave)
          end;
          (match !adopted_round with
          | Some r0
            when round >= r0 + 2
                 && (not !done_)
                 && !reports = Hashtbl.length children ->
              let total = combine !acc (contribution view) in
              if is_root then result := Some total
              else (
                match !parent with
                | Some pr ->
                    outbox :=
                      (pr, Msg.pair_msg ~widths (tag_value, total)) :: !outbox
                | None -> ());
              done_ := true
          | _ -> ());
          !outbox
        in
        {
          Program.step;
          halted = (fun () -> !done_);
          output = (fun () -> !result);
        });
  }

let sum_of_weights ~root ~value_width =
  make ~name:"convergecast-weight-sum" ~root ~value_width ~combine:( + )
    ~contribution:(fun view -> view.Program.weight)

let count_nodes ~root ~value_width =
  make ~name:"convergecast-count" ~root ~value_width ~combine:( + )
    ~contribution:(fun _ -> 1)

let max_weight ~root ~value_width =
  make ~name:"convergecast-max-weight" ~root ~value_width ~combine:max
    ~contribution:(fun view -> view.Program.weight)

let aggregate ~name ~root ~value_width ~combine ~contribution =
  make ~name ~root ~value_width ~combine ~contribution
