(** Node programs: the algorithms that run in the CONGEST model.

    A program describes what one node does: it is spawned with the node's
    {e local view} (its id, weight, neighbor ids, and the network size [n]
    — the standard knowledge assumption in CONGEST), and then steps once
    per synchronous round, consuming the messages received on its incident
    edges and emitting at most one message per incident edge.

    Node state is hidden inside the spawned closure, so the runtime is
    polymorphic only in the program's {e output} type. *)

type view = {
  id : int;  (** this node's id (also its index in the underlying graph) *)
  n : int;  (** number of nodes in the network *)
  weight : int;  (** this node's weight (the paper's [w(v)]) *)
  neighbors : int array;  (** ids of adjacent nodes, ascending *)
  rng : Stdx.Prng.t;  (** private randomness stream *)
}

type 'out instance = {
  step : round:int -> inbox:(int * Msg.t) list -> (int * Msg.t) list;
      (** [step ~round ~inbox] consumes [(sender, message)] pairs and
          returns [(recipient, message)] pairs; recipients must be
          neighbors.  Called once per round until the node halts. *)
  halted : unit -> bool;
      (** Once true, the node is skipped (and sends nothing). *)
  output : unit -> 'out option;
      (** The node's final (or current) local output. *)
}

type 'out t = {
  name : string;
  spawn : view -> 'out instance;
}
