(** The universal topology-gathering algorithm.

    The paper notes that {e any} problem can be solved in [O(n²)] rounds in
    CONGEST: nodes flood a description of the whole graph (at most
    [O(n²)] facts of [O(log n)] bits each over every edge), then solve
    locally.  This module implements that algorithm generically: every node
    floods (weight and edge) facts with per-edge pipelining, reconstructs
    the graph when it has all facts, and applies a local [solve] function.

    Running it with an exact MaxIS [solve] through the Theorem 5 simulation
    is the repository's end-to-end reproduction of the reduction: the
    resulting protocol decides promise pairwise disjointness, and its
    measured blackboard cost is [rounds × |cut| × O(log n)] — which is why
    the round lower bound follows from the communication lower bound.

    Knowledge assumptions: nodes know [n] (standard) and the total number
    of edges [m] (computable with a preliminary convergecast; we grant it
    directly and document the substitution in DESIGN.md). *)

val gather : m:int -> solve:(Wgraph.Graph.t -> 'out) -> 'out Program.t
(** [gather ~m ~solve]: every node halts once it knows all [n] weights and
    all [m] edges and has forwarded every fact to every neighbor; its
    output is [solve g] on the reconstructed graph.  Weights must fit in
    [2·⌈log n⌉] bits.  Completes in [O(m + D)] rounds on connected
    graphs. *)

val exact_maxis : m:int -> int Program.t
(** [gather] composed with the exact solver: output is OPT, the
    maximum-weight independent set value of the whole network. *)

val gather_flat :
  m:int -> solve:(Wgraph.Graph.t -> 'out) -> 'out Fastpath.t
(** Flat port of {!gather} for {!Runtime.run_flat} /
    {!Runtime.run_flat_par}: facts travel as packed ints under the same
    [1 + 3·⌈log n⌉] bit charge, and per-round message counts, round
    counts and outputs are identical to the list-mode program (learning
    order is the only thing that may differ, and nothing observable
    depends on it).  The fact log itself still allocates — the flat
    executors' zero-allocation guarantee covers delivery, not program
    state. *)

val exact_maxis_flat : m:int -> int Fastpath.t
(** {!gather_flat} composed with the exact solver. *)
