(** Distributed greedy maximal independent set by weight.

    The deterministic sibling of Luby's algorithm: the per-phase priority
    is the node's (static) weight, so heavy nodes win locally — the
    distributed analogue of the sequential max-weight-first greedy.  On the
    paper's hard instances this is exactly the kind of fast algorithm whose
    approximation the lower bounds show cannot be improved cheaply: it
    terminates in [O(n)] rounds (typically far fewer) but can land a
    constant factor below OPT. *)

val mis : bool Program.t
(** Output: [Some true] iff the node joined the independent set. *)
