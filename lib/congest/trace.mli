(** Execution traces: the bit accounting behind the simulation theorem.

    Theorem 5's proof counts the bits a CONGEST algorithm sends across the
    player partition: [O(T · |cut| · log |V|)].  The runtime records every
    directed send with its declared size, so after a run one can ask for
    total bits, per-round bits, per-directed-edge bits, and — the key
    quantity — bits crossing an arbitrary node partition. *)

type t

val create : unit -> t

val record_send : t -> round:int -> src:int -> dst:int -> bits:int -> unit

val rounds : t -> int
(** Number of rounds that sent or could have sent messages (1 + highest
    recorded round index; 0 when nothing was recorded). *)

val set_rounds : t -> int -> unit
(** The runtime stamps the actual executed round count (which can exceed
    the last round that sent a message). *)

val total_messages : t -> int
val total_bits : t -> int

val bits_in_round : t -> int -> int
val messages_in_round : t -> int -> int

val bits_on_edge : t -> src:int -> dst:int -> int
(** Directed accumulation over the whole run. *)

val cut_bits : t -> int array -> int
(** [cut_bits tr part] is the number of bits sent on edges whose endpoints
    lie in different parts — the blackboard cost of simulating the run in
    the multi-party model. *)

val cut_messages : t -> int array -> int

val max_bits_per_edge_round : t -> int
(** The largest per-(round, directed edge) total — must be at most the
    configured bandwidth (the runtime enforces it; the trace re-derives it
    for tests). *)

val pp : Format.formatter -> t -> unit
