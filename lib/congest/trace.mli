(** Execution traces: the bit accounting behind the simulation theorem.

    Theorem 5's proof counts the bits a CONGEST algorithm sends across the
    player partition: [O(T · |cut| · log |V|)].  The runtime records every
    directed send with its declared size, so after a run one can ask for
    total bits, per-round bits, per-directed-edge bits, and — the key
    quantity — bits crossing an arbitrary node partition.

    When the runtime executes under a fault plan ({!Faults.plan}) it also
    records every injected event (drop, duplication, corruption, delay,
    crash) alongside the sends, so {e attempted} traffic (what Theorem 5's
    [T·|cut|·B] cap bounds) and {e delivered} traffic (what actually
    reached the inboxes) can be metered separately.

    {b Streaming accumulation.}  Every aggregate that does not depend on a
    post-hoc partition — round counts, total/per-round bits and messages,
    per-kind fault bits — is maintained as a running scalar updated in
    O(1) per recorded event; queries read the accumulator, never fold the
    log.  Partition-shaped queries are also O(1) when the partition is
    registered at {!create} time (the player cut always is), and fall back
    to a fold over the retained log otherwise.  In {!Light} mode the log
    is not retained at all: memory stays O(rounds + cut sides) regardless
    of message volume, which is what lets the LARGEN bench run n = 10⁵–10⁶
    sweeps, and the few genuinely log-shaped queries raise. *)

type t

type send = { round : int; src : int; dst : int; bits : int }

(** How an injected fault perturbed a recorded send (or, for [Crashed], a
    node). *)
type fault_kind =
  | Dropped  (** the message was not delivered *)
  | Duplicated  (** a second copy was delivered *)
  | Corrupted  (** the payload was bit-flipped before delivery *)
  | Delayed of int  (** delivery deferred by this many extra rounds *)
  | Crashed  (** the node (src = dst) stopped executing this round *)

type fault = { round : int; src : int; dst : int; bits : int; kind : fault_kind }

type mode =
  | Full
      (** Retain the complete send/fault log (structure-of-arrays, four
          int vectors) alongside the streamed aggregates.  Every query
          below is available, and {!digest} equals the historical
          replay-digest values.  The default. *)
  | Light
      (** Streamed aggregates only; the log is discarded as it is
          recorded.  O(rounds) memory at any message volume.  Queries
          that need the log ({!send_events}, {!fault_events},
          {!iter_sends}, {!bits_on_edge}, and cut queries for a partition
          other than the registered one) raise [Invalid_argument]. *)

val create : ?mode:mode -> ?cut:int array -> unit -> t
(** [create ()] is a [Full] trace with no registered cut — drop-in for
    the historical [create].  [~cut:part] registers the node partition
    whose crossing traffic should be streamed: subsequent [cut_*] queries
    against that same partition are O(1) reads and work in [Light] mode.
    The array is captured, not copied; don't mutate it mid-run. *)

val mode : t -> mode

val registered_cut : t -> int array option

val record_send : t -> round:int -> src:int -> dst:int -> bits:int -> unit

val per_send_required : t -> bool
(** Does this trace need to see every individual send ([Full] mode
    retains the log; a registered cut classifies each [(src, dst)])?
    When [false] — [Light] mode, no cut — a whole round of traffic can
    be recorded with {!record_send_bulk} plus a caller-side
    {!send_mix} digest fold, with no observable difference from
    per-message {!record_send} calls.  The domain-sharded executor
    branches on this. *)

val record_send_bulk : t -> round:int -> count:int -> bits:int -> unit
(** [record_send_bulk t ~round ~count ~bits] records [count] sends
    totalling [bits] bits in [round] in O(1): every streamed aggregate
    is updated exactly as [count] {!record_send} calls would have —
    {e except} the Light-mode send digest, which depends on each
    [(src, dst)] and must be folded by the caller with {!send_mix} and
    stored back via {!set_send_digest_state}.  [count = 0] is a no-op.
    Raises [Invalid_argument] when {!per_send_required} holds or on
    negative arguments. *)

val send_mix : h:int -> round:int -> src:int -> dst:int -> bits:int -> int
(** One step of the Light-mode send-digest stream: exactly the fold
    {!record_send} applies.  Pure; combine with
    {!send_digest_state}/{!set_send_digest_state} to reproduce the
    sequential digest from bulk-recorded rounds. *)

val send_digest_state : t -> int
(** Current Light-mode send-digest accumulator (also defined, but
    unused by {!digest}, in [Full] mode). *)

val set_send_digest_state : t -> int -> unit

val record_fault :
  t -> round:int -> src:int -> dst:int -> bits:int -> kind:fault_kind -> unit
(** Recorded by the runtime for every injected event; [bits] is the size of
    the affected message (0 for [Crashed]). *)

val observe_edge_total : t -> int -> unit
(** The runtime reports each per-(round, directed edge) running total it
    already tracks for bandwidth enforcement; the trace keeps the max so
    {!max_bits_per_edge_round} works without the log in [Light] mode. *)

val rounds : t -> int
(** Number of rounds that sent or could have sent messages (1 + highest
    recorded round index; 0 when nothing was recorded). *)

val set_rounds : t -> int -> unit
(** The runtime stamps the actual executed round count (which can exceed
    the last round that sent a message). *)

val total_messages : t -> int
val total_bits : t -> int

val bits_in_round : t -> int -> int
val messages_in_round : t -> int -> int
(** O(1) reads of the streamed per-round accumulators (0 outside the
    recorded range). *)

val bits_on_edge : t -> src:int -> dst:int -> int
(** Directed accumulation over the whole run, served from a per-edge
    index built lazily on first query and maintained incrementally by
    later {!record_send}s.  Needs the log: raises in [Light] mode. *)

val cut_bits : t -> int array -> int
(** [cut_bits tr part] is the number of bits sent on edges whose endpoints
    lie in different parts — the blackboard cost of simulating the run in
    the multi-party model.  This counts {e attempted} sends: Theorem 5's
    cap bounds what the algorithm emits, whether or not an adversarial
    link then dropped it.  O(1) when [part] is the registered cut;
    otherwise a fold over the log ([Full] mode only). *)

val cut_messages : t -> int array -> int

val cut_bits_by_side : t -> int array -> int array
(** [cut_bits_by_side tr part]: slot [p] holds the bits {e written} by
    player [p] — attempted sends with [part.(src) = p] crossing the cut.
    Array length is [1 + max part value]; [Array.fold_left (+)] over it
    equals {!cut_bits}.  This is the per-player split of the Theorem-5
    blackboard currency, exported per player by [Core.Simulation]'s
    metrics. *)

val cut_bits_by_round : t -> int array -> int array
(** Per-round cut-crossing bits (length {!rounds}); sums to {!cut_bits}. *)

val max_bits_per_edge_round : t -> int
(** The largest per-(round, directed edge) total — must be at most the
    configured bandwidth (the runtime enforces it; the trace re-derives it
    for tests).  In [Light] mode this reads the {!observe_edge_total}
    maximum instead of re-deriving. *)

(** {1 The send log} *)

val iter_sends :
  t -> (round:int -> src:int -> dst:int -> bits:int -> unit) -> unit
(** Every recorded send in recording order, without materializing
    records.  Raises in [Light] mode. *)

val send_events : t -> send array
(** All recorded sends in recording order (a fresh copy).  Raises in
    [Light] mode.  This is what the golden tests fold over to check the
    streamed accumulators. *)

(** {1 Injected-fault accounting} *)

val total_faults : t -> int

val fault_events : t -> fault array
(** All injected events in recording order (a copy).  Raises in [Light]
    mode. *)

val faults_in_round : t -> int -> int

val dropped_bits : t -> int
(** Bits of recorded sends that a fault plan then dropped. *)

val duplicated_bits : t -> int
(** Extra bits delivered beyond the recorded sends (one duplicate copy per
    [Duplicated] event). *)

val corrupted_bits : t -> int

val cut_bits_dropped : t -> int array -> int
(** Cut-crossing bits the plan dropped: the injected-lost share of
    {!cut_bits}. *)

val cut_bits_duplicated : t -> int array -> int

val cut_bits_delivered : t -> int array -> int
(** Cut-crossing bits that actually arrived:
    [cut_bits - cut_bits_dropped + cut_bits_duplicated]. *)

(** {1 Replay digest} *)

val digest : t -> int64
(** A deterministic digest over the executed round count, every recorded
    send and every injected event.  Two runs with identical
    [(config, plan)] produce identical digests — the replay guarantee the
    fault layer is tested against.  [Full] traces produce the historical
    fold-based values; [Light] traces stream an equivalent (but
    numerically different) digest as events arrive. *)

val pp : Format.formatter -> t -> unit
