module Graph = Wgraph.Graph

exception
  Bandwidth_exceeded of {
    round : int;
    src : int;
    dst : int;
    bits : int;
    limit : int;
  }

exception Illegal_recipient of { round : int; src : int; dst : int }

type mode = Unicast | Broadcast

type config = { max_rounds : int; bandwidth_factor : int; mode : mode; seed : int }

let default_config =
  { max_rounds = 10_000; bandwidth_factor = 4; mode = Unicast; seed = 42 }

type 'out result = {
  outputs : 'out option array;
  rounds_executed : int;
  all_halted : bool;
  trace : Trace.t;
}

let bandwidth_bits config ~n =
  config.bandwidth_factor * Msg.id_width ~n

let check_broadcast_uniform round src outbox =
  match outbox with
  | [] | [ _ ] -> ()
  | (_, first) :: rest ->
      List.iter
        (fun (_, (m : Msg.t)) ->
          if m.Msg.payload <> first.Msg.payload || m.Msg.bits <> first.Msg.bits
          then
            invalid_arg
              (Printf.sprintf
                 "Runtime: node %d sent non-uniform messages in broadcast \
                  mode at round %d"
                 src round))
        rest

let run ?(config = default_config) (program : 'out Program.t) g =
  let n = Graph.n g in
  let limit = bandwidth_bits config ~n in
  let master_rng = Stdx.Prng.create config.seed in
  (* Spawn in ascending node order: per-node randomness streams are then a
     pure function of (seed, node id), which Maxis_core.Player_sim relies
     on to replay identical executions. *)
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = Graph.weight g v;
        neighbors = Stdx.Bitset.to_array (Graph.neighbors g v);
        rng = Stdx.Prng.split master_rng;
      }
    in
    program.Program.spawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  let trace = Trace.create () in
  (* inboxes.(v) holds the messages delivered to v at the start of the
     current round, as (sender, msg) pairs. *)
  let inboxes : (int * Msg.t) list array = Array.make n [] in
  let next_inboxes : (int * Msg.t) list array = Array.make n [] in
  (* per-round, per-directed-edge bit budget bookkeeping *)
  let sent_this_round : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let round = ref 0 in
  let all_halted () =
    Array.for_all (fun inst -> inst.Program.halted ()) instances
  in
  while !round < config.max_rounds && not (all_halted ()) do
    Hashtbl.reset sent_this_round;
    Array.fill next_inboxes 0 n [];
    for v = 0 to n - 1 do
      let inst = instances.(v) in
      if not (inst.Program.halted ()) then begin
        let outbox = inst.Program.step ~round:!round ~inbox:inboxes.(v) in
        (match config.mode with
        | Unicast -> ()
        | Broadcast -> check_broadcast_uniform !round v outbox);
        List.iter
          (fun (dst, (m : Msg.t)) ->
            if not (Graph.has_edge g v dst) then
              raise (Illegal_recipient { round = !round; src = v; dst });
            let key = (v, dst) in
            let already =
              Option.value ~default:0 (Hashtbl.find_opt sent_this_round key)
            in
            let total = already + m.Msg.bits in
            if total > limit then
              raise
                (Bandwidth_exceeded
                   { round = !round; src = v; dst; bits = total; limit });
            Hashtbl.replace sent_this_round key total;
            Trace.record_send trace ~round:!round ~src:v ~dst ~bits:m.Msg.bits;
            next_inboxes.(dst) <- (v, m) :: next_inboxes.(dst))
          outbox
      end
    done;
    (* Deliver: keep sender order deterministic (ascending sender id). *)
    for v = 0 to n - 1 do
      inboxes.(v) <-
        List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(v)
    done;
    incr round
  done;
  Trace.set_rounds trace !round;
  {
    outputs = Array.map (fun inst -> inst.Program.output ()) instances;
    rounds_executed = !round;
    all_halted = all_halted ();
    trace;
  }
