module Graph = Wgraph.Graph
module Csr = Wgraph.Csr
module Dynvec = Stdx.Dynvec

exception
  Bandwidth_exceeded of {
    round : int;
    src : int;
    dst : int;
    bits : int;
    limit : int;
  }

exception Illegal_recipient of { round : int; src : int; dst : int }

exception Non_uniform_broadcast of { round : int; src : int }

type mode = Unicast | Broadcast

type config = {
  max_rounds : int;
  bandwidth_factor : int;
  mode : mode;
  seed : int;
  faults : Faults.plan option;
}

let default_config =
  {
    max_rounds = 10_000;
    bandwidth_factor = 4;
    mode = Unicast;
    seed = 42;
    faults = None;
  }

type 'out result = {
  outputs : 'out option array;
  rounds_executed : int;
  all_halted : bool;
  crashed : bool array;
  trace : Trace.t;
}

type failure_reason =
  | Oversend of { dst : int; bits : int; limit : int }
  | Non_neighbor of { dst : int }
  | Broadcast_mismatch

type failure = {
  round : int;
  src : int;
  reason : failure_reason;
  trace_prefix : Trace.t;
}

let pp_failure ppf f =
  match f.reason with
  | Oversend { dst; bits; limit } ->
      Format.fprintf ppf
        "round %d: node %d oversent to %d (%d bits > %d-bit edge budget)"
        f.round f.src dst bits limit
  | Non_neighbor { dst } ->
      Format.fprintf ppf "round %d: node %d addressed non-neighbor %d" f.round
        f.src dst
  | Broadcast_mismatch ->
      Format.fprintf ppf
        "round %d: node %d sent non-uniform messages in broadcast mode" f.round
        f.src

let bandwidth_bits config ~n = config.bandwidth_factor * Msg.id_width ~n

let check_broadcast_uniform round src outbox =
  match outbox with
  | [] | [ _ ] -> ()
  | (_, first) :: rest ->
      List.iter
        (fun (_, (m : Msg.t)) ->
          if m.Msg.payload <> first.Msg.payload || m.Msg.bits <> first.Msg.bits
          then raise (Non_uniform_broadcast { round; src }))
        rest

(* Metric handles are interned per (metric, algo) pair: re-deriving them
   here costs one registry lookup per run, and the per-send updates below
   are plain atomic bumps (see docs/OBSERVABILITY.md for the catalog). *)
type metrics = {
  m_runs : Obs.Metrics.counter;
  m_rounds : Obs.Metrics.counter;
  m_messages : Obs.Metrics.counter;
  m_bits : Obs.Metrics.counter;
  m_deliveries : Obs.Metrics.counter;
}

let metrics_for algo =
  let labels = [ ("algo", algo) ] in
  {
    m_runs = Obs.Metrics.counter ~labels "congest_runs_total";
    m_rounds = Obs.Metrics.counter ~labels "congest_rounds_total";
    m_messages = Obs.Metrics.counter ~labels "congest_messages_total";
    m_bits = Obs.Metrics.counter ~labels "congest_bits_total";
    m_deliveries = Obs.Metrics.counter ~labels "congest_deliveries_total";
  }

(* Memory-footprint gauges for the flat executors: the resident size of
   the CSR graph being executed and the peak words held in the staging +
   delivery buffers, so large-n memory shows up in --metrics exports
   next to the time series. *)
let g_arena_peak = Obs.Metrics.gauge "runtime_arena_peak_words"

let g_graph_words = Obs.Metrics.gauge "graph_resident_words"

let fault_kind_label = function
  | Trace.Dropped -> "dropped"
  | Trace.Duplicated -> "duplicated"
  | Trace.Corrupted -> "corrupted"
  | Trace.Delayed _ -> "delayed"
  | Trace.Crashed -> "crashed"

let fault_counter algo kind =
  Obs.Metrics.counter
    ~labels:[ ("algo", algo); ("kind", fault_kind_label kind) ]
    "congest_fault_events_total"

(* ------------------------------------------------------------------ *)
(* Topology abstraction: one executor body serves both graph
   representations.  [t_neighbors] returns a fresh ascending array (the
   per-node view owned by the spawned instance). *)

type topo = {
  t_n : int;
  t_weight : int -> int;
  t_neighbors : int -> int array;
  t_has_edge : int -> int -> bool;
}

let topo_of_graph g =
  {
    t_n = Graph.n g;
    t_weight = Graph.weight g;
    t_neighbors = (fun v -> Stdx.Bitset.to_array (Graph.neighbors g v));
    t_has_edge = Graph.has_edge g;
  }

let topo_of_csr c =
  {
    t_n = Csr.n c;
    t_weight = Csr.weight c;
    t_neighbors = Csr.neighbors_array c;
    t_has_edge = Csr.has_edge c;
  }

(* ------------------------------------------------------------------ *)
(* Message arena: preallocated structure-of-arrays buffers reused across
   rounds instead of the historical per-round [next_inboxes] cons lists
   plus a per-round [List.sort].

   Messages append chronologically into per-destination chains.  The
   required inbox order is the historical one: ascending sender, ties in
   reverse chronological order (consing then stable-sorting by sender
   produced exactly that).  While senders arrive strictly ascending —
   the common case, since nodes step in ascending order — the chain is
   already in final order and delivery is a straight copy-out; otherwise
   the chain is sorted by (src, ord) where [ord] is descending append
   order for round sends and ascending defer order (before all same-src
   round sends) for delay-fault arrivals, reproducing the historical
   order exactly. *)

type arena = {
  mutable ar_src : int array;
  mutable ar_ord : int array;
  mutable ar_msg : Msg.t array;
  mutable ar_next : int array;
  mutable ar_used : int;
  head : int array;  (* per dst; valid when count > 0 *)
  tail : int array;
  count : int array;
  last_src : int array;
  unsorted : bool array;
  touched : int Dynvec.t;  (* dsts with a nonempty chain this round *)
  mutable scratch : int array;  (* chain slots, collected at delivery *)
}

let arena_create n =
  {
    ar_src = [||];
    ar_ord = [||];
    ar_msg = [||];
    ar_next = [||];
    ar_used = 0;
    head = Array.make (max n 1) (-1);
    tail = Array.make (max n 1) (-1);
    count = Array.make (max n 1) 0;
    last_src = Array.make (max n 1) (-1);
    unsorted = Array.make (max n 1) false;
    touched = Dynvec.create ();
    scratch = [||];
  }

let arena_append a ~dst ~src ~ord m =
  if a.ar_used = Array.length a.ar_src then begin
    let cap = max 16 (2 * a.ar_used) in
    let grow_int old =
      let b = Array.make cap 0 in
      Array.blit old 0 b 0 a.ar_used;
      b
    in
    a.ar_src <- grow_int a.ar_src;
    a.ar_ord <- grow_int a.ar_ord;
    a.ar_next <- grow_int a.ar_next;
    let msgs = Array.make cap Msg.unit_msg in
    Array.blit a.ar_msg 0 msgs 0 a.ar_used;
    a.ar_msg <- msgs
  end;
  let slot = a.ar_used in
  a.ar_used <- slot + 1;
  a.ar_src.(slot) <- src;
  a.ar_ord.(slot) <- ord;
  a.ar_msg.(slot) <- m;
  a.ar_next.(slot) <- -1;
  if a.count.(dst) = 0 then begin
    a.head.(dst) <- slot;
    a.unsorted.(dst) <- false;
    Dynvec.push a.touched dst
  end
  else begin
    a.ar_next.(a.tail.(dst)) <- slot;
    if src <= a.last_src.(dst) then a.unsorted.(dst) <- true
  end;
  a.tail.(dst) <- slot;
  a.last_src.(dst) <- src;
  a.count.(dst) <- a.count.(dst) + 1

(* Insertion sort of scratch[0, cnt) by (src asc, ord asc): chains only
   need sorting on the rare fault/multi-send paths, where counts are
   small. *)
let sort_slots a cnt =
  let s = a.scratch and src = a.ar_src and ord = a.ar_ord in
  for i = 1 to cnt - 1 do
    let x = s.(i) in
    let kx_src = src.(x) and kx_ord = ord.(x) in
    let j = ref (i - 1) in
    while
      !j >= 0
      && (src.(s.(!j)) > kx_src || (src.(s.(!j)) = kx_src && ord.(s.(!j)) > kx_ord))
    do
      s.(!j + 1) <- s.(!j);
      decr j
    done;
    s.(!j + 1) <- x
  done

(* Build dst's inbox list (head = smallest sender) and reset its chain. *)
let arena_deliver a dst =
  let cnt = a.count.(dst) in
  if Array.length a.scratch < cnt then a.scratch <- Array.make (max 16 (2 * cnt)) 0;
  let slot = ref a.head.(dst) in
  for i = 0 to cnt - 1 do
    a.scratch.(i) <- !slot;
    slot := a.ar_next.(!slot)
  done;
  if a.unsorted.(dst) then sort_slots a cnt;
  let acc = ref [] in
  for i = cnt - 1 downto 0 do
    let s = a.scratch.(i) in
    acc := (a.ar_src.(s), a.ar_msg.(s)) :: !acc
  done;
  a.count.(dst) <- 0;
  !acc

(* Drop message references so the arena doesn't retain the last round's
   payloads, and rewind. *)
let arena_reset a =
  for i = 0 to a.ar_used - 1 do
    a.ar_msg.(i) <- Msg.unit_msg
  done;
  a.ar_used <- 0;
  Dynvec.clear a.touched

(* ------------------------------------------------------------------ *)
(* List-mode executor *)

let exec ~config (program : 'out Program.t) topo trace =
  let n = topo.t_n in
  let limit = bandwidth_bits config ~n in
  let mx = metrics_for program.Program.name in
  Obs.Metrics.inc mx.m_runs;
  (* Trace faults and meter them in one move; the counter handles exist
     only for runs that actually inject. *)
  let record_fault ~round ~src ~dst ~bits ~kind =
    Obs.Metrics.inc (fault_counter program.Program.name kind);
    Trace.record_fault trace ~round ~src ~dst ~bits ~kind
  in
  let master_rng = Stdx.Prng.create config.seed in
  (* Spawn in ascending node order: per-node randomness streams are then a
     pure function of (seed, node id), which Maxis_core.Player_sim relies
     on to replay identical executions. *)
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = topo.t_weight v;
        neighbors = topo.t_neighbors v;
        rng = Stdx.Prng.split master_rng;
      }
    in
    program.Program.spawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  (* Fault machinery: the injector draws from its own stream in the
     deterministic send order below, so the faulty run replays exactly from
     (config, plan). *)
  let injector = Option.map Faults.injector config.faults in
  let crash_at = Array.make (max n 1) max_int in
  (match config.faults with
  | None -> ()
  | Some plan ->
      List.iter
        (fun (v, r) -> if v < n then crash_at.(v) <- min crash_at.(v) r)
        plan.Faults.crashes);
  let crashed = Array.make n false in
  (* Messages deferred by delay faults, keyed by the round whose inbox they
     join (a message sent at round r normally joins round r+1's inbox; a
     delay of d defers it to round r+1+d). *)
  let delayed : (int, (int * int * Msg.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let defer ~at ~src ~dst m =
    match Hashtbl.find_opt delayed at with
    | Some l -> l := (dst, src, m) :: !l
    | None -> Hashtbl.replace delayed at (ref [ (dst, src, m) ])
  in
  (* inboxes.(v) holds the messages delivered to v at the start of the
     current round, as (sender, msg) pairs; [filled] tracks which entries
     are nonempty so clearing costs O(deliveries), not O(n). *)
  let inboxes : (int * Msg.t) list array = Array.make n [] in
  let filled = Dynvec.create () in
  let arena = arena_create n in
  (* Per-round, per-directed-edge bit budget: [bw_used.(dst)] is live for
     the current (round, src) when stamped with the current token — an
     O(1) reset replacing the historical hashtable. *)
  let bw_used = Array.make (max n 1) 0 in
  let bw_stamp = Array.make (max n 1) (-1) in
  let token = ref 0 in
  let round = ref 0 in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (crashed.(v) || instances.(v).Program.halted ()) then ok := false
    done;
    !ok
  in
  while !round < config.max_rounds && not (all_halted ()) do
    (* Crash-stop: scheduled nodes die at the start of the round — never
       stepped again, sending nothing; messages already in flight to them
       still deliver (into an inbox nobody reads). *)
    for v = 0 to n - 1 do
      if (not crashed.(v)) && crash_at.(v) <= !round then begin
        crashed.(v) <- true;
        record_fault ~round:!round ~src:v ~dst:v ~bits:0 ~kind:Trace.Crashed
      end
    done;
    for v = 0 to n - 1 do
      let inst = instances.(v) in
      if not (crashed.(v) || inst.Program.halted ()) then begin
        let outbox = inst.Program.step ~round:!round ~inbox:inboxes.(v) in
        (match config.mode with
        | Unicast -> ()
        | Broadcast -> check_broadcast_uniform !round v outbox);
        incr token;
        List.iter
          (fun (dst, (m : Msg.t)) ->
            if not (topo.t_has_edge v dst) then
              raise (Illegal_recipient { round = !round; src = v; dst });
            if bw_stamp.(dst) <> !token then begin
              bw_stamp.(dst) <- !token;
              bw_used.(dst) <- 0
            end;
            let total = bw_used.(dst) + m.Msg.bits in
            if total > limit then
              raise
                (Bandwidth_exceeded
                   { round = !round; src = v; dst; bits = total; limit });
            bw_used.(dst) <- total;
            Trace.observe_edge_total trace total;
            Trace.record_send trace ~round:!round ~src:v ~dst ~bits:m.Msg.bits;
            Obs.Metrics.inc mx.m_messages;
            Obs.Metrics.add mx.m_bits m.Msg.bits;
            match injector with
            | None ->
                Obs.Metrics.inc mx.m_deliveries;
                arena_append arena ~dst ~src:v ~ord:(- arena.ar_used) m
            | Some inj ->
                let deliveries, events = Faults.apply inj ~src:v ~dst m in
                List.iter
                  (fun kind ->
                    record_fault ~round:!round ~src:v ~dst ~bits:m.Msg.bits
                      ~kind)
                  events;
                List.iter
                  (fun (d, m') ->
                    Obs.Metrics.inc mx.m_deliveries;
                    if d = 0 then
                      arena_append arena ~dst ~src:v ~ord:(- arena.ar_used) m'
                    else defer ~at:(!round + 1 + d) ~src:v ~dst m')
                  deliveries)
          outbox
      end
    done;
    (* Delay faults scheduled for the next round's inboxes join now, in
       forward defer order and keyed to sort before this round's same-src
       sends — where consing placed them historically. *)
    (match Hashtbl.find_opt delayed (!round + 1) with
    | None -> ()
    | Some l ->
        List.iteri
          (fun j (dst, src, m) ->
            arena_append arena ~dst ~src ~ord:(min_int + j) m)
          (List.rev !l);
        Hashtbl.remove delayed (!round + 1));
    (* Deliver: clear the previous round's inboxes, then copy each
       touched chain out in sender order. *)
    Dynvec.iter (fun v -> inboxes.(v) <- []) filled;
    Dynvec.clear filled;
    Dynvec.iter
      (fun dst ->
        inboxes.(dst) <- arena_deliver arena dst;
        Dynvec.push filled dst)
      arena.touched;
    arena_reset arena;
    incr round
  done;
  Trace.set_rounds trace !round;
  Obs.Metrics.add mx.m_rounds !round;
  {
    outputs = Array.map (fun inst -> inst.Program.output ()) instances;
    rounds_executed = !round;
    all_halted = all_halted ();
    crashed;
    trace;
  }

let make_trace = function Some t -> t | None -> Trace.create ()

let run ?(config = default_config) ?trace (program : 'out Program.t) g =
  exec ~config program (topo_of_graph g) (make_trace trace)

let run_csr ?(config = default_config) ?trace (program : 'out Program.t) c =
  exec ~config program (topo_of_csr c) (make_trace trace)

let checked body trace =
  match body trace with
  | result -> Ok result
  | exception Bandwidth_exceeded { round; src; dst; bits; limit } ->
      Error
        {
          round;
          src;
          reason = Oversend { dst; bits; limit };
          trace_prefix = trace;
        }
  | exception Illegal_recipient { round; src; dst } ->
      Error { round; src; reason = Non_neighbor { dst }; trace_prefix = trace }
  | exception Non_uniform_broadcast { round; src } ->
      Error { round; src; reason = Broadcast_mismatch; trace_prefix = trace }

let run_checked ?(config = default_config) ?trace (program : 'out Program.t) g
    =
  checked (exec ~config program (topo_of_graph g)) (make_trace trace)

let run_csr_checked ?(config = default_config) ?trace
    (program : 'out Program.t) c =
  checked (exec ~config program (topo_of_csr c)) (make_trace trace)

(* ------------------------------------------------------------------ *)
(* Flat executor: the zero-allocation hot path for [Fastpath] programs.
   No cons lists, no tuples, no [Msg.t] on the per-round path — messages
   live in preallocated int buffers, counting-sorted into one shared
   delivery arena per round.  Fault plans and [Broadcast] mode keep to
   the list-mode executor. *)

let run_flat ?(config = default_config) ?trace (fp : 'out Fastpath.t) c =
  (match config.faults with
  | Some _ ->
      invalid_arg "Runtime.run_flat: fault plans need the list-mode runtime"
  | None -> ());
  if config.mode = Broadcast then
    invalid_arg "Runtime.run_flat: Broadcast mode needs the list-mode runtime";
  let trace = make_trace trace in
  let n = Csr.n c in
  Obs.Metrics.set g_graph_words (Csr.resident_words c);
  let limit = bandwidth_bits config ~n in
  let mx = metrics_for fp.Fastpath.fname in
  Obs.Metrics.inc mx.m_runs;
  let master_rng = Stdx.Prng.create config.seed in
  (* Same spawn order and PRNG splitting as the list-mode executor, so a
     faithful flat port is output-identical under any seed. *)
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = Csr.weight c v;
        neighbors = Csr.neighbors_array c v;
        rng = Stdx.Prng.split master_rng;
      }
    in
    fp.Fastpath.fspawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  (* Delivery is a per-round counting sort into one shared arena: sends
     are appended sequentially to [stage] as (dst, src, tag, word) quads
     while [counts] tallies per-destination totals; at round end a
     prefix sum turns the tallies into arena windows and one scatter
     pass groups the triples by destination.  Every node then reads its
     messages through the single reused [view] — no per-node inbox
     structures exist at all, and the only random memory access per
     message is the one arena write (measurably faster than scattering
     into 2n per-node buffers, and O(n + messages) memory instead of 2n
     growable buffers at n = 10⁶). *)
  let stage = ref [||] in
  let stage_len = ref 0 in
  let arena = ref [||] in
  let counts = Array.make (max n 1) 0 in
  let offs = Array.make (max n 1 + 1) 0 in
  let cursor = Array.make (max n 1) 0 in
  let view = Fastpath.make_inbox () in
  let em = Fastpath.make_emitter () in
  (* Per-destination bookkeeping, packed two-to-a-slot so each send
     touches one cache line: [book.(2d)] is the (sender, round) token
     stamped while marking the sender's CSR row — neighbor validation is
     then one read instead of a [has_edge] binary search — and
     [book.(2d+1)] the bits already sent to [d] this round, reset by the
     same marking pass.  Marking work per round is O(Σ deg), the order
     of the messages a full-rate round carries. *)
  let book = Array.make (2 * max n 1) (-1) in
  let token = ref 0 in
  (* One closure for the whole run — allocating it per node-round would
     show up in the perf guard. *)
  let mark u =
    book.(2 * u) <- !token;
    book.((2 * u) + 1) <- 0
  in
  let round = ref 0 in
  (* Metric totals are flushed once per run, not per send: three atomic
     bumps per message would dominate the otherwise allocation-free send
     path.  Every delivery succeeds here (no fault plans), so messages
     and deliveries share one counter.  [edge_obs] likewise keeps the
     running per-(edge, round) maximum out of the per-send path. *)
  let sent = ref 0 in
  let sent_bits = ref 0 in
  let edge_obs = ref 0 in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (instances.(v).Fastpath.fhalted ()) then ok := false
    done;
    !ok
  in
  while !round < config.max_rounds && not (all_halted ()) do
    Array.fill counts 0 (Array.length counts) 0;
    stage_len := 0;
    for v = 0 to n - 1 do
      let inst = instances.(v) in
      if not (inst.Fastpath.fhalted ()) then begin
        (* [offs] holds the previous round's windows (all zero before the
           first round, i.e. empty inboxes); re-aim the shared view since
           the arena array may have been replaced by growth. *)
        view.Fastpath.i_buf <- !arena;
        view.Fastpath.i_off <- Array.unsafe_get offs v;
        view.Fastpath.i_len <- Array.unsafe_get offs (v + 1) - view.Fastpath.i_off;
        em.Fastpath.e_len <- 0;
        inst.Fastpath.fstep ~round:!round ~inbox:view em;
        if em.Fastpath.e_len > 0 then begin
          incr token;
          Csr.iter_neighbors mark c v
        end;
        (* Unsafe reads/writes here are in range by construction: [k] is
           below the emitter's grown length, and [dst] is range-checked
           before indexing the n-sized bookkeeping arrays. *)
        let e_dst = em.Fastpath.e_dst
        and e_tag = em.Fastpath.e_tag
        and e_bits = em.Fastpath.e_bits
        and e_word = em.Fastpath.e_word in
        for k = 0 to em.Fastpath.e_len - 1 do
          let dst = Array.unsafe_get e_dst k in
          if
            dst < 0 || dst >= n
            || Array.unsafe_get book (2 * dst) <> !token
          then raise (Illegal_recipient { round = !round; src = v; dst });
          let bits = Array.unsafe_get e_bits k in
          let total = Array.unsafe_get book ((2 * dst) + 1) + bits in
          if total > limit then
            raise
              (Bandwidth_exceeded
                 { round = !round; src = v; dst; bits = total; limit });
          Array.unsafe_set book ((2 * dst) + 1) total;
          if total > !edge_obs then edge_obs := total;
          Trace.record_send trace ~round:!round ~src:v ~dst ~bits;
          sent := !sent + 1;
          sent_bits := !sent_bits + bits;
          let base = 4 * !stage_len in
          if base = Array.length !stage then
            stage := Fastpath.grow4 !stage base;
          let s = !stage in
          Array.unsafe_set s base dst;
          Array.unsafe_set s (base + 1) v;
          Array.unsafe_set s (base + 2) (Array.unsafe_get e_tag k);
          Array.unsafe_set s (base + 3) (Array.unsafe_get e_word k);
          incr stage_len;
          Array.unsafe_set counts dst (Array.unsafe_get counts dst + 1)
        done
      end
    done;
    (* Counting-sort scatter: prefix-sum the tallies into windows, then
       group this round's triples by destination.  Staging order is
       (src asc, emit order), so within each window delivery order is
       exactly what per-node buffers produced. *)
    let total = !stage_len in
    let acc = ref 0 in
    for v = 0 to n - 1 do
      offs.(v) <- !acc;
      cursor.(v) <- !acc;
      acc := !acc + counts.(v)
    done;
    offs.(n) <- !acc;
    if 3 * total > Array.length !arena then
      arena := Array.make (max 24 (2 * (3 * total))) 0;
    let a = !arena and s = !stage in
    for i = 0 to total - 1 do
      let q = 4 * i in
      let dst = Array.unsafe_get s q in
      let pos = Array.unsafe_get cursor dst in
      Array.unsafe_set cursor dst (pos + 1);
      let b = 3 * pos in
      Array.unsafe_set a b (Array.unsafe_get s (q + 1));
      Array.unsafe_set a (b + 1) (Array.unsafe_get s (q + 2));
      Array.unsafe_set a (b + 2) (Array.unsafe_get s (q + 3))
    done;
    incr round
  done;
  Trace.set_rounds trace !round;
  Trace.observe_edge_total trace !edge_obs;
  Obs.Metrics.add mx.m_rounds !round;
  Obs.Metrics.add mx.m_messages !sent;
  Obs.Metrics.add mx.m_bits !sent_bits;
  Obs.Metrics.add mx.m_deliveries !sent;
  Obs.Metrics.set g_arena_peak (Array.length !arena + Array.length !stage);
  {
    outputs = Array.map (fun inst -> inst.Fastpath.foutput ()) instances;
    rounds_executed = !round;
    all_halted = all_halted ();
    crashed = Array.make n false;
    trace;
  }

(* ------------------------------------------------------------------ *)
(* Domain-sharded flat executor.

   [run_flat_par] is [run_flat] with every per-node / per-destination
   phase of the round partitioned across an [Exec.Pool] via
   {!Exec.Pool.run_range}, arranged so the delivered inbox windows —
   and therefore outputs, round counts and trace digests — are
   byte-identical to the sequential executor at every pool width.  The
   determinism argument (docs/PERF.md):

   - node [v] always lives in the same chunk (run_range splits [0, n)
     the same way every call), and every chunk owns private staging,
     tallies, bandwidth book and emitter — no cross-domain writes;
   - the merge assembles per-destination windows as
     [offs.(d) + Σ_{s' < s} counts_{s'}(d)]: shard segments concatenate
     in ascending shard = ascending source order, which is exactly the
     (src asc, emit order) layout the sequential counting sort
     produces;
   - trace recording is replayed on the calling domain in ascending
     shard order after the barrier (the Light digest is an
     order-sensitive fold, so it cannot be parallelized — it is
     re-folded from the staged quints instead), giving the identical
     event sequence;
   - spawning stays sequential: PRNG splitting is one master stream.

   A round executes as four barriers: (1) stage — each shard steps its
   nodes against the previous round's windows and stages
   (dst, src, tag, word, bits) quints; (2) prefix pass A — each shard
   of the destination range turns the per-shard tallies into
   within-column prefixes and computes its chunk total, with the chunk
   bases then prefix-summed sequentially (O(jobs)); (3) prefix pass B —
   writes the global windows and lifts the within-column prefixes to
   absolute write cursors; (4) scatter — each shard copies its staged
   quints into its (disjoint) arena slots.

   Worker deaths are never retried (a chunk mutates node state and PRNG
   streams in place, so re-running half a chunk would corrupt the run):
   the round is torn down, no trace is recorded for it, and the same
   width-independent [Error.Error (Worker_death _)] escapes at every
   [jobs], including 1.  A model violation (oversend / non-neighbor)
   replays the trace prefix the sequential executor would have recorded
   — every staged message of lower shards plus the failing shard's
   prefix — before re-raising, so [run_flat_par_checked]-style drivers
   see identical post-mortem traces. *)

(* Per-shard hot tallies are spread [shard_pad] ints apart so two
   domains never bump the same cache line. *)
let shard_pad = 8

let run_flat_par ?(config = default_config) ?trace ?alloc_probe ~pool
    (fp : 'out Fastpath.t) c =
  (match config.faults with
  | Some _ ->
      invalid_arg "Runtime.run_flat_par: fault plans need the list-mode runtime"
  | None -> ());
  if config.mode = Broadcast then
    invalid_arg
      "Runtime.run_flat_par: Broadcast mode needs the list-mode runtime";
  let trace = make_trace trace in
  let n = Csr.n c in
  let jobs = Exec.Pool.jobs pool in
  (match alloc_probe with
  | Some p when Array.length p < jobs ->
      invalid_arg "Runtime.run_flat_par: alloc_probe shorter than pool width"
  | _ -> ());
  Obs.Metrics.set g_graph_words (Csr.resident_words c);
  let limit = bandwidth_bits config ~n in
  let mx = metrics_for fp.Fastpath.fname in
  Obs.Metrics.inc mx.m_runs;
  let master_rng = Stdx.Prng.create config.seed in
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = Csr.weight c v;
        neighbors = Csr.neighbors_array c v;
        rng = Stdx.Prng.split master_rng;
      }
    in
    fp.Fastpath.fspawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  (* Chunk geometry is fixed for the run, so a chunk's lo bound inverts
     to its shard index in O(1).  Chunks that are empty (n < jobs) stay
     empty forever and their shard state is never touched. *)
  let q = n / jobs and r = n mod jobs in
  let shard_of clo =
    if q = 0 then clo
    else if clo < (q + 1) * r then clo / (q + 1)
    else r + ((clo - ((q + 1) * r)) / q)
  in
  (* Shards past [used] own empty chunks: their staging state is never
     reset by a stage phase, so the merge passes must not fold it in —
     pass B would otherwise leave stale cursors in their count arrays
     that the next round's pass A mistakes for real tallies. *)
  let used = if q = 0 then r else jobs in
  (* Global delivery state: written only between barriers (arena
     replacement, offs.(n)) or in provably disjoint slots (pass B / the
     scatter). *)
  let arena = ref [||] in
  let offs = Array.make (max n 1 + 1) 0 in
  let col = Array.make (max n 1) 0 in
  (* Per-shard private state. *)
  let sh_stage = Array.make jobs [||] in
  let sh_counts = Array.init jobs (fun _ -> Array.make (max n 1) 0) in
  let sh_book = Array.init jobs (fun _ -> Array.make (2 * max n 1) (-1)) in
  let sh_view = Array.init jobs (fun _ -> Fastpath.make_inbox ()) in
  let sh_em = Array.init jobs (fun _ -> Fastpath.make_emitter ()) in
  let sh_token = Array.make (jobs * shard_pad) 0 in
  let sh_len = Array.make (jobs * shard_pad) 0 in
  let sh_round_bits = Array.make (jobs * shard_pad) 0 in
  let sh_halted = Array.make (jobs * shard_pad) 0 in
  let sh_edge_obs = Array.make (jobs * shard_pad) 0 in
  let sh_failed = Array.make (jobs * shard_pad) 0 in
  let ct = Array.make (jobs * shard_pad) 0 in
  let cb = Array.make jobs 0 in
  (* One mark closure per shard for the whole run, mirroring the
     sequential executor's single [mark]. *)
  let sh_mark =
    Array.init jobs (fun s ->
        let book = sh_book.(s) in
        let tok = s * shard_pad in
        fun u ->
          Array.unsafe_set book (2 * u) (Array.unsafe_get sh_token tok);
          Array.unsafe_set book ((2 * u) + 1) 0)
  in
  let round = ref 0 in
  let sent = ref 0 in
  let sent_bits = ref 0 in
  (* Phase 1: step + stage.  Identical per-message semantics to the
     sequential loop — validate against the shard's own book, then stage
     — with the trace recording deferred to the post-barrier merge. *)
  let stage_body clo chi s =
    let slot = s * shard_pad in
    sh_len.(slot) <- 0;
    sh_round_bits.(slot) <- 0;
    sh_halted.(slot) <- 0;
    sh_failed.(slot) <- 0;
    let counts = sh_counts.(s) in
    Array.fill counts 0 (Array.length counts) 0;
    let view = sh_view.(s) and em = sh_em.(s) in
    let mark = sh_mark.(s) and book = sh_book.(s) in
    let rnd = !round in
    for v = clo to chi - 1 do
      let inst = instances.(v) in
      if inst.Fastpath.fhalted () then sh_halted.(slot) <- sh_halted.(slot) + 1
      else begin
        view.Fastpath.i_buf <- !arena;
        view.Fastpath.i_off <- Array.unsafe_get offs v;
        view.Fastpath.i_len <-
          Array.unsafe_get offs (v + 1) - view.Fastpath.i_off;
        em.Fastpath.e_len <- 0;
        inst.Fastpath.fstep ~round:rnd ~inbox:view em;
        if em.Fastpath.e_len > 0 then begin
          sh_token.(slot) <- sh_token.(slot) + 1;
          Csr.iter_neighbors mark c v
        end;
        let e_dst = em.Fastpath.e_dst
        and e_tag = em.Fastpath.e_tag
        and e_bits = em.Fastpath.e_bits
        and e_word = em.Fastpath.e_word in
        for k = 0 to em.Fastpath.e_len - 1 do
          let dst = Array.unsafe_get e_dst k in
          if
            dst < 0 || dst >= n
            || Array.unsafe_get book (2 * dst) <> sh_token.(slot)
          then raise (Illegal_recipient { round = rnd; src = v; dst });
          let bits = Array.unsafe_get e_bits k in
          let total = Array.unsafe_get book ((2 * dst) + 1) + bits in
          if total > limit then
            raise
              (Bandwidth_exceeded
                 { round = rnd; src = v; dst; bits = total; limit });
          Array.unsafe_set book ((2 * dst) + 1) total;
          if total > sh_edge_obs.(slot) then sh_edge_obs.(slot) <- total;
          let base = 5 * sh_len.(slot) in
          if base = Array.length sh_stage.(s) then
            sh_stage.(s) <- Fastpath.grow5 sh_stage.(s) base;
          let st = sh_stage.(s) in
          Array.unsafe_set st base dst;
          Array.unsafe_set st (base + 1) v;
          Array.unsafe_set st (base + 2) (Array.unsafe_get e_tag k);
          Array.unsafe_set st (base + 3) (Array.unsafe_get e_word k);
          Array.unsafe_set st (base + 4) bits;
          sh_len.(slot) <- sh_len.(slot) + 1;
          sh_round_bits.(slot) <- sh_round_bits.(slot) + bits;
          Array.unsafe_set counts dst (Array.unsafe_get counts dst + 1)
        done;
        if inst.Fastpath.fhalted () then
          sh_halted.(slot) <- sh_halted.(slot) + 1
      end
    done
  in
  let f_stage clo chi =
    if clo < chi then begin
      let s = shard_of clo in
      let a0 =
        match alloc_probe with None -> 0.0 | Some _ -> Gc.minor_words ()
      in
      (try stage_body clo chi s
       with
      | Exec.Pool.Chaos_kill as e -> raise e
      | e ->
          (* Model violation (or a program bug): remember which shard so
             the caller can replay the sequential trace prefix. *)
          sh_failed.(shard_pad * s) <- 1;
          raise e);
      match alloc_probe with
      | None -> ()
      | Some p -> p.(s) <- p.(s) +. (Gc.minor_words () -. a0)
    end
  in
  (* Phase 2 (pass A): over destination chunks — turn the per-shard
     per-dst tallies into within-column prefixes, leaving the column
     total in [col] and this chunk's grand total in [ct]. *)
  let f_pass_a dlo dhi =
    if dlo < dhi then begin
      let s = shard_of dlo in
      let t = ref 0 in
      for d = dlo to dhi - 1 do
        let running = ref 0 in
        for s' = 0 to used - 1 do
          let cs = sh_counts.(s') in
          let c0 = Array.unsafe_get cs d in
          Array.unsafe_set cs d !running;
          running := !running + c0
        done;
        Array.unsafe_set col d !running;
        t := !t + !running
      done;
      ct.(s * shard_pad) <- !t
    end
  in
  (* Phase 3 (pass B): write the global windows and lift the per-shard
     prefixes to absolute arena write cursors. *)
  let f_pass_b dlo dhi =
    if dlo < dhi then begin
      let s = shard_of dlo in
      let acc = ref cb.(s) in
      for d = dlo to dhi - 1 do
        let o = !acc in
        Array.unsafe_set offs d o;
        for s' = 0 to used - 1 do
          let cs = sh_counts.(s') in
          Array.unsafe_set cs d (Array.unsafe_get cs d + o)
        done;
        acc := o + Array.unsafe_get col d
      done
    end
  in
  (* Phase 4: scatter each shard's staged quints into its disjoint
     arena slots ([sh_counts] now holds absolute write cursors). *)
  let f_scatter clo chi =
    if clo < chi then begin
      let s = shard_of clo in
      let st = sh_stage.(s) and counts = sh_counts.(s) and a = !arena in
      for i = 0 to sh_len.(s * shard_pad) - 1 do
        let b5 = 5 * i in
        let dst = Array.unsafe_get st b5 in
        let pos = Array.unsafe_get counts dst in
        Array.unsafe_set counts dst (pos + 1);
        let b3 = 3 * pos in
        Array.unsafe_set a b3 (Array.unsafe_get st (b5 + 1));
        Array.unsafe_set a (b3 + 1) (Array.unsafe_get st (b5 + 2));
        Array.unsafe_set a (b3 + 2) (Array.unsafe_get st (b5 + 3))
      done
    end
  in
  (* Trace prefix of a round torn by a model violation: every staged
     message of shards below the (lowest) failing one, then the failing
     shard's own staged prefix — exactly what sequential execution had
     recorded when it raised. *)
  let replay_violation_prefix () =
    let rec first_failed s =
      if s >= jobs then jobs
      else if sh_failed.(s * shard_pad) <> 0 then s
      else first_failed (s + 1)
    in
    let sf = first_failed 0 in
    if sf < jobs then begin
      let rnd = !round in
      for s = 0 to sf do
        let st = sh_stage.(s) in
        for i = 0 to sh_len.(s * shard_pad) - 1 do
          let b = 5 * i in
          Trace.record_send trace ~round:rnd ~src:st.(b + 1) ~dst:st.(b)
            ~bits:st.(b + 4)
        done
      done
    end
  in
  let seq_all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (instances.(v).Fastpath.fhalted ()) then ok := false
    done;
    !ok
  in
  (* Post-round halted totals come from the shard tallies; before the
     first round there are none, so scan once. *)
  let halted_sum = ref (-1) in
  let all_halted_now () =
    if !halted_sum < 0 then seq_all_halted () else !halted_sum = n
  in
  while !round < config.max_rounds && not (all_halted_now ()) do
    (match Exec.Pool.run_range pool ~lo:0 ~hi:n f_stage with
    | () -> ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (match e with
        | Exec.Error.Error (Exec.Error.Worker_death _) ->
            (* A torn round records no trace at any width: jobs = 1
               quarantines the kill through the same path. *)
            ()
        | _ -> replay_violation_prefix ());
        Printexc.raise_with_backtrace e bt);
    (* Sequential merge on the calling domain, ascending shard = source
       order: the trace sees the identical event sequence the
       sequential executor records. *)
    let rnd = !round in
    if Trace.per_send_required trace then
      for s = 0 to jobs - 1 do
        let st = sh_stage.(s) in
        for i = 0 to sh_len.(s * shard_pad) - 1 do
          let b = 5 * i in
          Trace.record_send trace ~round:rnd ~src:(Array.unsafe_get st (b + 1))
            ~dst:(Array.unsafe_get st b)
            ~bits:(Array.unsafe_get st (b + 4))
        done
      done
    else begin
      let cnt = ref 0 and bits = ref 0 in
      for s = 0 to jobs - 1 do
        cnt := !cnt + sh_len.(s * shard_pad);
        bits := !bits + sh_round_bits.(s * shard_pad)
      done;
      Trace.record_send_bulk trace ~round:rnd ~count:!cnt ~bits:!bits;
      if !cnt > 0 then begin
        (* The Light digest is an order-sensitive fold — the one part of
           the round that is inherently sequential.  Re-fold it from the
           staged quints in a tight loop. *)
        let h = ref (Trace.send_digest_state trace) in
        for s = 0 to jobs - 1 do
          let st = sh_stage.(s) in
          for i = 0 to sh_len.(s * shard_pad) - 1 do
            let b = 5 * i in
            h :=
              Trace.send_mix ~h:!h ~round:rnd
                ~src:(Array.unsafe_get st (b + 1))
                ~dst:(Array.unsafe_get st b)
                ~bits:(Array.unsafe_get st (b + 4))
          done
        done;
        Trace.set_send_digest_state trace !h
      end
    end;
    let halted = ref 0 in
    for s = 0 to jobs - 1 do
      sent := !sent + sh_len.(s * shard_pad);
      sent_bits := !sent_bits + sh_round_bits.(s * shard_pad);
      halted := !halted + sh_halted.(s * shard_pad)
    done;
    halted_sum := !halted;
    (* Two-pass prefix-sum merge with an O(jobs) sequential seam. *)
    Exec.Pool.run_range pool ~lo:0 ~hi:n f_pass_a;
    let accb = ref 0 in
    for s = 0 to jobs - 1 do
      cb.(s) <- !accb;
      accb := !accb + ct.(s * shard_pad)
    done;
    let total = !accb in
    offs.(n) <- total;
    if 3 * total > Array.length !arena then
      arena := Array.make (max 24 (2 * (3 * total))) 0;
    Exec.Pool.run_range pool ~lo:0 ~hi:n f_pass_b;
    Exec.Pool.run_range pool ~lo:0 ~hi:n f_scatter;
    incr round
  done;
  Trace.set_rounds trace !round;
  let edge_obs = ref 0 in
  for s = 0 to jobs - 1 do
    if sh_edge_obs.(s * shard_pad) > !edge_obs then
      edge_obs := sh_edge_obs.(s * shard_pad)
  done;
  Trace.observe_edge_total trace !edge_obs;
  Obs.Metrics.add mx.m_rounds !round;
  Obs.Metrics.add mx.m_messages !sent;
  Obs.Metrics.add mx.m_bits !sent_bits;
  Obs.Metrics.add mx.m_deliveries !sent;
  let stage_words =
    Array.fold_left (fun acc a -> acc + Array.length a) 0 sh_stage
  in
  Obs.Metrics.set g_arena_peak (Array.length !arena + stage_words);
  {
    outputs = Array.map (fun inst -> inst.Fastpath.foutput ()) instances;
    rounds_executed = !round;
    all_halted = all_halted_now ();
    crashed = Array.make n false;
    trace;
  }

let run_flat_checked ?(config = default_config) ?trace (fp : 'out Fastpath.t)
    c =
  checked (fun trace -> run_flat ~config ~trace fp c) (make_trace trace)

let run_flat_par_checked ?(config = default_config) ?trace ~pool
    (fp : 'out Fastpath.t) c =
  checked (fun trace -> run_flat_par ~config ~trace ~pool fp c) (make_trace trace)
