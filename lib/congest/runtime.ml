module Graph = Wgraph.Graph

exception
  Bandwidth_exceeded of {
    round : int;
    src : int;
    dst : int;
    bits : int;
    limit : int;
  }

exception Illegal_recipient of { round : int; src : int; dst : int }

exception Non_uniform_broadcast of { round : int; src : int }

type mode = Unicast | Broadcast

type config = {
  max_rounds : int;
  bandwidth_factor : int;
  mode : mode;
  seed : int;
  faults : Faults.plan option;
}

let default_config =
  {
    max_rounds = 10_000;
    bandwidth_factor = 4;
    mode = Unicast;
    seed = 42;
    faults = None;
  }

type 'out result = {
  outputs : 'out option array;
  rounds_executed : int;
  all_halted : bool;
  crashed : bool array;
  trace : Trace.t;
}

type failure_reason =
  | Oversend of { dst : int; bits : int; limit : int }
  | Non_neighbor of { dst : int }
  | Broadcast_mismatch

type failure = {
  round : int;
  src : int;
  reason : failure_reason;
  trace_prefix : Trace.t;
}

let pp_failure ppf f =
  match f.reason with
  | Oversend { dst; bits; limit } ->
      Format.fprintf ppf
        "round %d: node %d oversent to %d (%d bits > %d-bit edge budget)"
        f.round f.src dst bits limit
  | Non_neighbor { dst } ->
      Format.fprintf ppf "round %d: node %d addressed non-neighbor %d" f.round
        f.src dst
  | Broadcast_mismatch ->
      Format.fprintf ppf
        "round %d: node %d sent non-uniform messages in broadcast mode" f.round
        f.src

let bandwidth_bits config ~n = config.bandwidth_factor * Msg.id_width ~n

let check_broadcast_uniform round src outbox =
  match outbox with
  | [] | [ _ ] -> ()
  | (_, first) :: rest ->
      List.iter
        (fun (_, (m : Msg.t)) ->
          if m.Msg.payload <> first.Msg.payload || m.Msg.bits <> first.Msg.bits
          then raise (Non_uniform_broadcast { round; src }))
        rest

(* Metric handles are interned per (metric, algo) pair: re-deriving them
   here costs one registry lookup per run, and the per-send updates below
   are plain atomic bumps (see docs/OBSERVABILITY.md for the catalog). *)
type metrics = {
  m_runs : Obs.Metrics.counter;
  m_rounds : Obs.Metrics.counter;
  m_messages : Obs.Metrics.counter;
  m_bits : Obs.Metrics.counter;
  m_deliveries : Obs.Metrics.counter;
}

let metrics_for algo =
  let labels = [ ("algo", algo) ] in
  {
    m_runs = Obs.Metrics.counter ~labels "congest_runs_total";
    m_rounds = Obs.Metrics.counter ~labels "congest_rounds_total";
    m_messages = Obs.Metrics.counter ~labels "congest_messages_total";
    m_bits = Obs.Metrics.counter ~labels "congest_bits_total";
    m_deliveries = Obs.Metrics.counter ~labels "congest_deliveries_total";
  }

let fault_kind_label = function
  | Trace.Dropped -> "dropped"
  | Trace.Duplicated -> "duplicated"
  | Trace.Corrupted -> "corrupted"
  | Trace.Delayed _ -> "delayed"
  | Trace.Crashed -> "crashed"

let fault_counter algo kind =
  Obs.Metrics.counter
    ~labels:[ ("algo", algo); ("kind", fault_kind_label kind) ]
    "congest_fault_events_total"

let exec ~config (program : 'out Program.t) g trace =
  let n = Graph.n g in
  let limit = bandwidth_bits config ~n in
  let mx = metrics_for program.Program.name in
  Obs.Metrics.inc mx.m_runs;
  (* Trace faults and meter them in one move; the counter handles exist
     only for runs that actually inject. *)
  let record_fault ~round ~src ~dst ~bits ~kind =
    Obs.Metrics.inc (fault_counter program.Program.name kind);
    Trace.record_fault trace ~round ~src ~dst ~bits ~kind
  in
  let master_rng = Stdx.Prng.create config.seed in
  (* Spawn in ascending node order: per-node randomness streams are then a
     pure function of (seed, node id), which Maxis_core.Player_sim relies
     on to replay identical executions. *)
  let spawn v =
    let view =
      {
        Program.id = v;
        n;
        weight = Graph.weight g v;
        neighbors = Stdx.Bitset.to_array (Graph.neighbors g v);
        rng = Stdx.Prng.split master_rng;
      }
    in
    program.Program.spawn view
  in
  let instances =
    let rec build v acc =
      if v = n then List.rev acc else build (v + 1) (spawn v :: acc)
    in
    Array.of_list (build 0 [])
  in
  (* Fault machinery: the injector draws from its own stream in the
     deterministic send order below, so the faulty run replays exactly from
     (config, plan). *)
  let injector = Option.map Faults.injector config.faults in
  let crash_at = Array.make (max n 1) max_int in
  (match config.faults with
  | None -> ()
  | Some plan ->
      List.iter
        (fun (v, r) -> if v < n then crash_at.(v) <- min crash_at.(v) r)
        plan.Faults.crashes);
  let crashed = Array.make n false in
  (* Messages deferred by delay faults, keyed by the round whose inbox they
     join (a message sent at round r normally joins round r+1's inbox; a
     delay of d defers it to round r+1+d). *)
  let delayed : (int, (int * int * Msg.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let defer ~at ~src ~dst m =
    match Hashtbl.find_opt delayed at with
    | Some l -> l := (dst, src, m) :: !l
    | None -> Hashtbl.replace delayed at (ref [ (dst, src, m) ])
  in
  (* inboxes.(v) holds the messages delivered to v at the start of the
     current round, as (sender, msg) pairs. *)
  let inboxes : (int * Msg.t) list array = Array.make n [] in
  let next_inboxes : (int * Msg.t) list array = Array.make n [] in
  (* per-round, per-directed-edge bit budget bookkeeping *)
  let sent_this_round : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let round = ref 0 in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (crashed.(v) || instances.(v).Program.halted ()) then ok := false
    done;
    !ok
  in
  while !round < config.max_rounds && not (all_halted ()) do
    (* Crash-stop: scheduled nodes die at the start of the round — never
       stepped again, sending nothing; messages already in flight to them
       still deliver (into an inbox nobody reads). *)
    for v = 0 to n - 1 do
      if (not crashed.(v)) && crash_at.(v) <= !round then begin
        crashed.(v) <- true;
        record_fault ~round:!round ~src:v ~dst:v ~bits:0 ~kind:Trace.Crashed
      end
    done;
    Hashtbl.reset sent_this_round;
    Array.fill next_inboxes 0 n [];
    for v = 0 to n - 1 do
      let inst = instances.(v) in
      if not (crashed.(v) || inst.Program.halted ()) then begin
        let outbox = inst.Program.step ~round:!round ~inbox:inboxes.(v) in
        (match config.mode with
        | Unicast -> ()
        | Broadcast -> check_broadcast_uniform !round v outbox);
        List.iter
          (fun (dst, (m : Msg.t)) ->
            if not (Graph.has_edge g v dst) then
              raise (Illegal_recipient { round = !round; src = v; dst });
            let key = (v, dst) in
            let already =
              Option.value ~default:0 (Hashtbl.find_opt sent_this_round key)
            in
            let total = already + m.Msg.bits in
            if total > limit then
              raise
                (Bandwidth_exceeded
                   { round = !round; src = v; dst; bits = total; limit });
            Hashtbl.replace sent_this_round key total;
            Trace.record_send trace ~round:!round ~src:v ~dst ~bits:m.Msg.bits;
            Obs.Metrics.inc mx.m_messages;
            Obs.Metrics.add mx.m_bits m.Msg.bits;
            match injector with
            | None ->
                Obs.Metrics.inc mx.m_deliveries;
                next_inboxes.(dst) <- (v, m) :: next_inboxes.(dst)
            | Some inj ->
                let deliveries, events = Faults.apply inj ~src:v ~dst m in
                List.iter
                  (fun kind ->
                    record_fault ~round:!round ~src:v ~dst ~bits:m.Msg.bits
                      ~kind)
                  events;
                List.iter
                  (fun (d, m') ->
                    Obs.Metrics.inc mx.m_deliveries;
                    if d = 0 then
                      next_inboxes.(dst) <- (v, m') :: next_inboxes.(dst)
                    else defer ~at:(!round + 1 + d) ~src:v ~dst m')
                  deliveries)
          outbox
      end
    done;
    (* Delay faults scheduled for the next round's inboxes join now. *)
    (match Hashtbl.find_opt delayed (!round + 1) with
    | None -> ()
    | Some l ->
        List.iter
          (fun (dst, src, m) ->
            next_inboxes.(dst) <- (src, m) :: next_inboxes.(dst))
          !l;
        Hashtbl.remove delayed (!round + 1));
    (* Deliver: keep sender order deterministic (ascending sender id). *)
    for v = 0 to n - 1 do
      inboxes.(v) <-
        List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(v)
    done;
    incr round
  done;
  Trace.set_rounds trace !round;
  Obs.Metrics.add mx.m_rounds !round;
  {
    outputs = Array.map (fun inst -> inst.Program.output ()) instances;
    rounds_executed = !round;
    all_halted = all_halted ();
    crashed;
    trace;
  }

let run ?(config = default_config) (program : 'out Program.t) g =
  exec ~config program g (Trace.create ())

let run_checked ?(config = default_config) (program : 'out Program.t) g =
  let trace = Trace.create () in
  match exec ~config program g trace with
  | result -> Ok result
  | exception Bandwidth_exceeded { round; src; dst; bits; limit } ->
      Error { round; src; reason = Oversend { dst; bits; limit }; trace_prefix = trace }
  | exception Illegal_recipient { round; src; dst } ->
      Error { round; src; reason = Non_neighbor { dst }; trace_prefix = trace }
  | exception Non_uniform_broadcast { round; src } ->
      Error { round; src; reason = Broadcast_mismatch; trace_prefix = trace }
