type payload =
  | Unit
  | Bool of bool
  | Int of int
  | Pair of int * int
  | Triple of int * int * int

type t = { bits : int; payload : payload }

let check_fits width v =
  if v < 0 then invalid_arg "Msg: negative payload";
  if width < 63 && v >= 1 lsl width then
    invalid_arg
      (Printf.sprintf "Msg: value %d does not fit in %d bits" v width)

let unit_msg = { bits = 1; payload = Unit }
let bool_msg b = { bits = 1; payload = Bool b }

let int_msg ~width v =
  check_fits width v;
  { bits = width; payload = Int v }

let pair_msg ~widths:(w1, w2) (a, b) =
  check_fits w1 a;
  check_fits w2 b;
  { bits = w1 + w2; payload = Pair (a, b) }

let triple_msg ~widths:(w1, w2, w3) (a, b, c) =
  check_fits w1 a;
  check_fits w2 b;
  check_fits w3 c;
  { bits = w1 + w2 + w3; payload = Triple (a, b, c) }

let id_width ~n = max 1 (Stdx.Mathx.ceil_log2 (max 2 n))

let id_msg ~n v = int_msg ~width:(id_width ~n) v

let pp ppf m =
  let p ppf = function
    | Unit -> Format.fprintf ppf "()"
    | Bool b -> Format.fprintf ppf "%b" b
    | Int i -> Format.fprintf ppf "%d" i
    | Pair (a, b) -> Format.fprintf ppf "(%d,%d)" a b
    | Triple (a, b, c) -> Format.fprintf ppf "(%d,%d,%d)" a b c
  in
  Format.fprintf ppf "msg[%db]%a" m.bits p m.payload
