(** Messages of the CONGEST model, with explicit bit sizes.

    In the CONGEST model each edge carries an [O(log n)]-bit message per
    round and direction.  Making the size a declared field of every message
    lets the runtime {e enforce} the bandwidth constraint (rejecting
    oversized sends) and lets the simulation argument of Theorem 5 meter
    exactly how many bits cross the player partition. *)

type payload =
  | Unit
  | Bool of bool
  | Int of int
  | Pair of int * int
  | Triple of int * int * int

type t = { bits : int; payload : payload }

val unit_msg : t
(** 1 bit: a pure "ping". *)

val bool_msg : bool -> t

val int_msg : width:int -> int -> t
(** [int_msg ~width v] declares [width] bits.  Raises [Invalid_argument]
    when [v] is negative or does not fit. *)

val pair_msg : widths:int * int -> int * int -> t
val triple_msg : widths:int * int * int -> int * int * int -> t

val id_width : n:int -> int
(** Bits needed for a node id in an [n]-node network:
    [max 1 ⌈log₂ n⌉]. *)

val id_msg : n:int -> int -> t
(** A node-id message of [id_width ~n] bits. *)

val pp : Format.formatter -> t -> unit
