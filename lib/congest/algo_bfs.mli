(** Distributed BFS: single-source distances.

    The root announces distance 0; a node adopting distance [d] announces
    [d+1].  After [rounds >= eccentricity(root)+1] rounds every reachable
    node knows its distance.  One id-sized message per edge per round. *)

val distances : root:int -> rounds:int -> int Program.t
(** Output: the node's BFS distance from [root], or [None] if it never
    heard from the wave (disconnected or too few rounds). *)
