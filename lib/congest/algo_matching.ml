(* Phase layout (round mod 3):
     0: consume matched-announcements (shrinking the active neighbor set);
        a node with no active neighbors left halts; proposers send a
        proposal to one random active neighbor.
     1: acceptors accept the smallest-id proposal (if any) and are thereby
        matched; the accept message is the handshake.
     2: proposers receiving an accept are matched; both sides of every new
        pair announce "matched" to all neighbors and halt afterwards.

   Tags: 0 = proposal, 1 = accept, 2 = matched-announcement. *)

let tag_propose = 0
let tag_accept = 1
let tag_matched = 2

let maximal_matching =
  {
    Program.name = "maximal-matching";
    spawn =
      (fun view ->
        let widths = (2, 1) in
        let active = Hashtbl.create 8 in
        Array.iter
          (fun nb -> Hashtbl.replace active nb ())
          view.Program.neighbors;
        let partner = ref None in
        let is_proposer = ref false in
        let proposed_to = ref None in
        let must_announce = ref false in
        let halted = ref false in
        let send_all msg =
          Array.to_list
            (Array.map (fun nb -> (nb, msg)) view.Program.neighbors)
        in
        let step ~round ~inbox =
          match round mod 3 with
          | 0 ->
              List.iter
                (fun (src, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Pair (t, _) when t = tag_matched ->
                      Hashtbl.remove active src
                  | _ -> ())
                inbox;
              if !partner <> None then begin
                (* Matched last phase: the announcement went out at the end
                   of that phase; rest now. *)
                halted := true;
                []
              end
              else if Hashtbl.length active = 0 then begin
                (* Maximality witness: every neighbor is matched. *)
                halted := true;
                []
              end
              else begin
                is_proposer := Stdx.Prng.bool view.Program.rng;
                proposed_to := None;
                if !is_proposer then begin
                  let nbrs =
                    Array.of_seq (Hashtbl.to_seq_keys active)
                  in
                  Array.sort compare nbrs;
                  let target = nbrs.(Stdx.Prng.int view.Program.rng (Array.length nbrs)) in
                  proposed_to := Some target;
                  [ (target, Msg.pair_msg ~widths (tag_propose, 0)) ]
                end
                else []
              end
          | 1 ->
              if !partner = None && not !is_proposer then begin
                let best = ref None in
                List.iter
                  (fun (src, (m : Msg.t)) ->
                    match m.Msg.payload with
                    | Msg.Pair (t, _) when t = tag_propose -> (
                        match !best with
                        | Some b when b <= src -> ()
                        | _ -> best := Some src)
                    | _ -> ())
                  inbox;
                match !best with
                | Some src ->
                    partner := Some src;
                    must_announce := true;
                    [ (src, Msg.pair_msg ~widths (tag_accept, 0)) ]
                | None -> []
              end
              else []
          | _ ->
              let outbox = ref [] in
              if !is_proposer && !partner = None then
                List.iter
                  (fun (src, (m : Msg.t)) ->
                    match m.Msg.payload with
                    | Msg.Pair (t, _)
                      when t = tag_accept && !proposed_to = Some src ->
                        partner := Some src;
                        must_announce := true
                    | _ -> ())
                  inbox;
              if !must_announce then begin
                must_announce := false;
                outbox := send_all (Msg.pair_msg ~widths (tag_matched, 0))
              end;
              !outbox
        in
        {
          Program.step;
          halted = (fun () -> !halted);
          output = (fun () -> !partner);
        });
  }
