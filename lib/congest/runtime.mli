(** The synchronous CONGEST executor.

    Executes a {!Program.t} on every node of a network (a weighted graph),
    round by round: all nodes step simultaneously on the messages sent in
    the previous round, and the per-edge bandwidth constraint — at most
    [bandwidth_factor · ⌈log₂ n⌉] bits per directed edge per round — is
    enforced at send time.  A run terminates when all nodes have halted or
    when [max_rounds] is reached.

    With [config.faults] set, every attempted send passes through the
    seeded fault plan at delivery time (drop/duplicate/corrupt/delay) and
    scheduled nodes crash-stop; every injected event is recorded in the
    trace alongside the sends, and the whole faulty execution is exactly
    replayable from [(config, plan)].

    The executor is representation-agnostic: {!run} takes the bitset
    {!Wgraph.Graph.t}, {!run_csr} the compressed {!Wgraph.Csr.t}, and both
    drive one shared round loop over preallocated arena message buffers
    (docs/PERF.md describes the arena lifecycle).  Identical graphs
    produce identical executions — same outputs, same trace digests —
    whichever representation carries them.  {!run_flat} executes the
    allocation-free {!Fastpath} program form for large-n sweeps. *)

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int; limit : int }
exception Illegal_recipient of { round : int; src : int; dst : int }

exception Non_uniform_broadcast of { round : int; src : int }
(** Raised in [Broadcast] mode when a node sends unequal messages in one
    round. *)

type mode =
  | Unicast  (** the CONGEST model: different messages to different neighbors *)
  | Broadcast
      (** the CONGEST-Broadcast restriction (as in the triangle-detection
          lower bound of Drucker–Kuhn–Oshman discussed in the paper's
          introduction): in each round a node must send the same message to
          every neighbor it addresses, and addressing any neighbor sends to
          all of them. *)

type config = {
  max_rounds : int;
  bandwidth_factor : int;  (** the [c] in [c·⌈log n⌉] bits per edge-round *)
  mode : mode;
  seed : int;  (** seeds the per-node private randomness *)
  faults : Faults.plan option;
      (** adversarial links and crashes; [None] is the fault-free referee *)
}

val default_config : config
(** 10_000 rounds, factor 4, [Unicast], seed 42, no faults. *)

type 'out result = {
  outputs : 'out option array;  (** per node *)
  rounds_executed : int;
  all_halted : bool;  (** crashed nodes count as halted *)
  crashed : bool array;  (** per node: did a fault plan crash it? *)
  trace : Trace.t;
}

(** {1 Structured failure reporting} *)

type failure_reason =
  | Oversend of { dst : int; bits : int; limit : int }
  | Non_neighbor of { dst : int }
  | Broadcast_mismatch

type failure = {
  round : int;
  src : int;
  reason : failure_reason;
  trace_prefix : Trace.t;
      (** everything recorded up to the violation, for post-mortem *)
}

val pp_failure : Format.formatter -> failure -> unit

val bandwidth_bits : config -> n:int -> int
(** The per-(edge, round, direction) bit budget. *)

(** {1 Execution}

    All entry points accept [?trace] to record into a caller-constructed
    trace — a {!Trace.Light} one for large-n sweeps, or one with a
    registered cut for O(1) blackboard accounting.  Default: a fresh
    [Full] trace, preserving the historical behavior (including digest
    values) exactly. *)

val run :
  ?config:config ->
  ?trace:Trace.t ->
  'out Program.t ->
  Wgraph.Graph.t ->
  'out result
(** Raises {!Bandwidth_exceeded} when a node oversends,
    {!Illegal_recipient} when it addresses a non-neighbor, and
    {!Non_uniform_broadcast} when [mode = Broadcast] and a node sends
    unequal messages in one round. *)

val run_csr :
  ?config:config ->
  ?trace:Trace.t ->
  'out Program.t ->
  Wgraph.Csr.t ->
  'out result
(** {!run} on the CSR representation: same executor, same semantics —
    [run_csr p (Csr.of_graph g)] and [run p g] produce identical results
    and traces under any config. *)

val run_checked :
  ?config:config ->
  ?trace:Trace.t ->
  'out Program.t ->
  Wgraph.Graph.t ->
  ('out result, failure) Stdlib.result
(** Like {!run} but no model violation escapes as an exception: the
    [Error] carries round/src/dst context and the trace prefix, so drivers
    can report and continue instead of crashing. *)

val run_csr_checked :
  ?config:config ->
  ?trace:Trace.t ->
  'out Program.t ->
  Wgraph.Csr.t ->
  ('out result, failure) Stdlib.result

val run_flat :
  ?config:config ->
  ?trace:Trace.t ->
  'out Fastpath.t ->
  Wgraph.Csr.t ->
  'out result
(** The zero-allocation hot path: executes a flat program over
    preallocated int message buffers — no cons cells, tuples or [Msg.t]
    records per round (test/test_perf_guard.ml pins the per-round
    allocation ceiling).  Spawn order and PRNG splitting match the
    list-mode executors, so faithful flat ports are output-identical.
    Raises [Invalid_argument] if [config.faults] is set or
    [config.mode = Broadcast] — adversarial runs keep to the list-mode
    executor. *)

val run_flat_par :
  ?config:config ->
  ?trace:Trace.t ->
  ?alloc_probe:float array ->
  pool:Exec.Pool.t ->
  'out Fastpath.t ->
  Wgraph.Csr.t ->
  'out result
(** {!run_flat} sharded across the domains of [pool] (docs/PERF.md):
    every per-node and per-destination phase of the round runs as an
    {!Exec.Pool.run_range} barrier over private per-shard staging
    arenas and tallies, merged by a two-pass prefix sum into the same
    delivery-arena layout the sequential counting sort produces.
    Outputs, round counts, recorded traces and digests are
    byte-identical to {!run_flat} at every pool width, cold or warm
    (test/test_csr.ml pins this differentially at jobs ∈ {1, 2, 3, 8}).

    Spawning, trace recording and the O(jobs) prefix seam stay on the
    calling domain; per-run [congest_*] metric totals are merged from
    per-shard tallies at the end of the run, and the
    [runtime_arena_peak_words] / [graph_resident_words] gauges record
    the memory footprint.

    A worker death mid-round ({!Exec.Pool.Chaos_kill}) is never
    retried — shard bodies mutate node state and PRNG streams in place
    — so the run raises the same width-independent
    [Exec.Error.Error (Worker_death _)] at every [jobs] (including 1),
    with no trace recorded for the torn round.  Model violations raise
    the same exceptions as {!run_flat}, after replaying the identical
    trace prefix.

    [alloc_probe] (a test hook; length ≥ pool width) accumulates, per
    shard, the minor words its stage phase allocates each round — the
    per-domain allocation guard reads it.  Raises [Invalid_argument]
    under fault plans, in [Broadcast] mode, or if [alloc_probe] is too
    short. *)

val run_flat_checked :
  ?config:config ->
  ?trace:Trace.t ->
  'out Fastpath.t ->
  Wgraph.Csr.t ->
  ('out result, failure) Stdlib.result
(** {!run_flat} with model violations returned as structured failures,
    like {!run_checked}.  [Invalid_argument] (faults / Broadcast) still
    raises. *)

val run_flat_par_checked :
  ?config:config ->
  ?trace:Trace.t ->
  pool:Exec.Pool.t ->
  'out Fastpath.t ->
  Wgraph.Csr.t ->
  ('out result, failure) Stdlib.result
(** {!run_flat_par} behind the same checked wrapper.  A worker death
    ([Exec.Error.Error (Worker_death _)]) is an executor fault, not a
    model violation, and still raises. *)
