(** The synchronous CONGEST executor.

    Executes a {!Program.t} on every node of a network (a weighted graph),
    round by round: all nodes step simultaneously on the messages sent in
    the previous round, and the per-edge bandwidth constraint — at most
    [bandwidth_factor · ⌈log₂ n⌉] bits per directed edge per round — is
    enforced at send time.  A run terminates when all nodes have halted or
    when [max_rounds] is reached. *)

exception Bandwidth_exceeded of { round : int; src : int; dst : int; bits : int; limit : int }
exception Illegal_recipient of { round : int; src : int; dst : int }

type mode =
  | Unicast  (** the CONGEST model: different messages to different neighbors *)
  | Broadcast
      (** the CONGEST-Broadcast restriction (as in the triangle-detection
          lower bound of Drucker–Kuhn–Oshman discussed in the paper's
          introduction): in each round a node must send the same message to
          every neighbor it addresses, and addressing any neighbor sends to
          all of them. *)

type config = {
  max_rounds : int;
  bandwidth_factor : int;  (** the [c] in [c·⌈log n⌉] bits per edge-round *)
  mode : mode;
  seed : int;  (** seeds the per-node private randomness *)
}

val default_config : config
(** 10_000 rounds, factor 4, [Unicast], seed 42. *)

type 'out result = {
  outputs : 'out option array;  (** per node *)
  rounds_executed : int;
  all_halted : bool;
  trace : Trace.t;
}

val bandwidth_bits : config -> n:int -> int
(** The per-(edge, round, direction) bit budget. *)

val run : ?config:config -> 'out Program.t -> Wgraph.Graph.t -> 'out result
(** Raises {!Bandwidth_exceeded} when a node oversends,
    {!Illegal_recipient} when it addresses a non-neighbor, and
    [Invalid_argument] when [mode = Broadcast] and a node sends unequal
    messages in one round. *)
