(* Phase layout (round mod 2):
     0: uncolored nodes draw a random color from their residual palette and
        propose it to all neighbors; a node whose palette knowledge says a
        neighbor locked color c never proposes c again.
     1: a proposal is locked iff no *uncolored* neighbor proposed the same
        color; locking nodes announce (color, locked=1) and halt one phase
        later so the announcement is delivered.

   Message: Pair (color, flag) with flag 1 = locked announcement,
   flag 0 = proposal. *)

let color =
  {
    Program.name = "trial-coloring";
    spawn =
      (fun view ->
        let deg = Array.length view.Program.neighbors in
        let palette_size = deg + 1 in
        let color_width =
          max 1 (Stdx.Mathx.ceil_log2 (max 2 palette_size))
        in
        let widths = (color_width, 1) in
        let forbidden = Hashtbl.create 8 in
        (* colors locked by neighbors *)
        let my_color = ref None in
        (* locked color *)
        let proposal = ref None in
        let announced = ref false in
        let halted = ref false in
        let send_all msg =
          Array.to_list
            (Array.map (fun nb -> (nb, msg)) view.Program.neighbors)
        in
        let residual_palette () =
          let rec collect c acc =
            if c < 0 then acc
            else
              collect (c - 1)
                (if Hashtbl.mem forbidden c then acc else c :: acc)
          in
          collect (palette_size - 1) []
        in
        let step ~round ~inbox =
          match round mod 2 with
          | 0 ->
              (* Consume lock announcements from the previous phase. *)
              List.iter
                (fun (_, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Pair (c, 1) -> Hashtbl.replace forbidden c ()
                  | _ -> ())
                inbox;
              if !my_color <> None then begin
                (* Stay one extra phase so the lock announcement lands. *)
                halted := true;
                []
              end
              else begin
                match residual_palette () with
                | [] ->
                    (* Impossible: palette has deg+1 colors and at most deg
                       neighbors can lock. *)
                    assert false
                | palette ->
                    let c =
                      List.nth palette
                        (Stdx.Prng.int view.Program.rng (List.length palette))
                    in
                    proposal := Some c;
                    send_all (Msg.pair_msg ~widths (c, 0))
              end
          | _ ->
              let conflict = ref false in
              List.iter
                (fun (_, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Pair (c, 0) ->
                      if !proposal = Some c then conflict := true
                  | _ -> ())
                inbox;
              (match (!proposal, !conflict) with
              | Some c, false ->
                  my_color := Some c;
                  announced := true;
                  send_all (Msg.pair_msg ~widths (c, 1))
              | _ ->
                  proposal := None;
                  [])
        in
        {
          Program.step;
          halted = (fun () -> !halted);
          output = (fun () -> !my_color);
        });
  }
