let mis =
  Local_maxima.make ~name:"greedy-weight-mis"
    ~draw:(fun view ~phase:_ ->
      let w = view.Program.weight in
      { Local_maxima.value = w; width = max 1 (Stdx.Mathx.ceil_log2 (w + 1)) })
