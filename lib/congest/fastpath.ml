(* Flat CONGEST programs: the zero-allocation twin of [Program].

   [Program.step] speaks in [(int * Msg.t) list] — every round allocates
   a cons cell, a tuple and a [Msg.t] record per message, which is what
   dominates runtime at n ≥ 10⁵.  A flat program exchanges messages as
   (src, tag, bits, word) int quads staged in preallocated buffers the
   executor ([Runtime.run_flat]) reuses across rounds, so a settled run
   allocates nothing per round.  The three library algorithms below are
   exact ports of their list-mode versions — same message bits, same PRNG
   draw conditions — pinned against each other by test/test_csr.ml. *)

(* Tag conventions (mirroring the [Msg.payload] cases the ported
   algorithms use). *)
let tag_int = 0
let tag_true = 1
let tag_false = 2

(* Inbox entries are interleaved (src, tag, word) triples in one backing
   array: one packed access touches one cache line where three parallel
   arrays would touch three.  [i_off] lets an inbox be a window into a
   shared delivery arena — [Runtime.run_flat] counting-sorts each
   round's messages into one contiguous buffer and steps every node
   through a single reused view, so there are no per-node inbox
   structures at all.  A standalone inbox (as [make_inbox] returns, and
   as tests use via [push_inbox]) keeps [i_off = 0]. *)
type inbox = {
  mutable i_buf : int array;  (* entry k at 3(i_off+k) .. 3(i_off+k)+2 *)
  mutable i_off : int;
  mutable i_len : int;
}

type emitter = {
  mutable e_dst : int array;
  mutable e_tag : int array;
  mutable e_bits : int array;
  mutable e_word : int array;
  mutable e_len : int;
}

let make_inbox () = { i_buf = [||]; i_off = 0; i_len = 0 }

(* In range whenever [k < i_len]: the producer ([push_inbox] or the
   executor's scatter pass) sized the buffer past the window's end. *)
let[@inline] in_src b k = Array.unsafe_get b.i_buf (3 * (b.i_off + k))
let[@inline] in_tag b k = Array.unsafe_get b.i_buf ((3 * (b.i_off + k)) + 1)
let[@inline] in_word b k = Array.unsafe_get b.i_buf ((3 * (b.i_off + k)) + 2)

let make_emitter () =
  { e_dst = [||]; e_tag = [||]; e_bits = [||]; e_word = [||]; e_len = 0 }

let grow a len =
  let a' = Array.make (max 8 (2 * Array.length a)) 0 in
  Array.blit a 0 a' 0 len;
  a'

(* The only unsafe array accesses in the library live in these two
   staging functions and the [Runtime.run_flat] loop that drains them:
   the grow check just above each write puts the index in range by
   construction, and at 10⁷–10⁸ messages per sweep the bounds checks are
   a measurable slice of the whole run. *)

let grow3 a len =
  (* Capacity stays a multiple of 3 (24, 48, 96, ...), so a full buffer
     is detected by [base = length] exactly. *)
  let a' = Array.make (max 24 (2 * Array.length a)) 0 in
  Array.blit a 0 a' 0 len;
  a'

(* Same contract for the executor's stride-4 staging buffer. *)
let grow4 a len =
  let a' = Array.make (max 32 (2 * Array.length a)) 0 in
  Array.blit a 0 a' 0 len;
  a'

(* And for the sharded executor's stride-5 staging buffers, which keep
   each message's bit size alongside the quad so the trace can be
   recorded after the parallel phase. *)
let grow5 a len =
  let a' = Array.make (max 40 (2 * Array.length a)) 0 in
  Array.blit a 0 a' 0 len;
  a'

let[@inline] push_inbox b ~src ~tag ~word =
  let base = 3 * (b.i_off + b.i_len) in
  if base = Array.length b.i_buf then b.i_buf <- grow3 b.i_buf base;
  Array.unsafe_set b.i_buf base src;
  Array.unsafe_set b.i_buf (base + 1) tag;
  Array.unsafe_set b.i_buf (base + 2) word;
  b.i_len <- b.i_len + 1

let[@inline] emit e ~dst ~tag ~bits ~word =
  if e.e_len = Array.length e.e_dst then begin
    e.e_dst <- grow e.e_dst e.e_len;
    e.e_tag <- grow e.e_tag e.e_len;
    e.e_bits <- grow e.e_bits e.e_len;
    e.e_word <- grow e.e_word e.e_len
  end;
  Array.unsafe_set e.e_dst e.e_len dst;
  Array.unsafe_set e.e_tag e.e_len tag;
  Array.unsafe_set e.e_bits e.e_len bits;
  Array.unsafe_set e.e_word e.e_len word;
  e.e_len <- e.e_len + 1

type 'out node = {
  fstep : round:int -> inbox:inbox -> emitter -> unit;
  fhalted : unit -> bool;
  foutput : unit -> 'out option;
}

type 'out t = { fname : string; fspawn : Program.view -> 'out node }

(* ------------------------------------------------------------------ *)
(* Flat ports of the library algorithms *)

let max_id ~rounds =
  {
    fname = "max-id-flood";
    fspawn =
      (fun view ->
        let best = ref view.Program.id in
        let changed = ref true in
        let done_ = ref false in
        let n = view.Program.n in
        let width = Msg.id_width ~n in
        let nbrs = view.Program.neighbors in
        let deg = Array.length nbrs in
        {
          fstep =
            (fun ~round ~inbox em ->
              for k = 0 to inbox.i_len - 1 do
                if in_tag inbox k = tag_int then begin
                  let v = in_word inbox k in
                  if v > !best then begin
                    best := v;
                    changed := true
                  end
                end
              done;
              if !changed then
                for k = 0 to deg - 1 do
                  emit em ~dst:nbrs.(k) ~tag:tag_int ~bits:width ~word:!best
                done;
              changed := false;
              if round + 1 >= rounds then done_ := true);
          fhalted = (fun () -> !done_);
          foutput = (fun () -> Some !best);
        });
  }

let bfs_distances ~root ~rounds =
  {
    fname = "bfs-distances";
    fspawn =
      (fun view ->
        let n = view.Program.n in
        let width = Msg.id_width ~n in
        (* -1 encodes "unknown" so no option allocates on the hot path. *)
        let dist = ref (if view.Program.id = root then 0 else -1) in
        let announced = ref false in
        let done_ = ref false in
        let nbrs = view.Program.neighbors in
        let deg = Array.length nbrs in
        {
          fstep =
            (fun ~round ~inbox em ->
              for k = 0 to inbox.i_len - 1 do
                if in_tag inbox k = tag_int then begin
                  let d = in_word inbox k in
                  if !dist < 0 || !dist > d + 1 then dist := d + 1
                end
              done;
              if !dist >= 0 && not !announced then begin
                announced := true;
                let w = min !dist (n - 1) in
                for k = 0 to deg - 1 do
                  emit em ~dst:nbrs.(k) ~tag:tag_int ~bits:width ~word:w
                done
              end;
              if round + 1 >= rounds then done_ := true);
          fhalted = (fun () -> !done_);
          foutput = (fun () -> if !dist < 0 then None else Some !dist);
        });
  }

(* Index of [x] in the sorted row [a], or -1: deactivations and priority
   slots are per-neighbor-index, found by binary search. *)
let find_nbr a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  let res = ref (-1) in
  while !lo < !hi && !res < 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then res := mid
    else if a.(mid) < x then lo := mid + 1
    else hi := mid
  done;
  !res

let luby_mis =
  {
    fname = "luby-mis";
    fspawn =
      (fun view ->
        let nbrs = view.Program.neighbors in
        let deg = Array.length nbrs in
        let width = 2 * Msg.id_width ~n:view.Program.n in
        (* 0 = Active, 1 = In_mis, 2 = Covered — as in Local_maxima. *)
        let status = ref 0 in
        let active = Bytes.make (max deg 1) '\001' in
        let my_prio = ref 0 in
        (* recv_prios, round-stamped so no per-phase clearing. *)
        let prio = Array.make (max deg 1) 0 in
        let prio_round = Array.make (max deg 1) (-1) in
        let halted = ref false in
        let send_all em ~tag ~bits ~word =
          for k = 0 to deg - 1 do
            emit em ~dst:nbrs.(k) ~tag ~bits ~word
          done
        in
        {
          fstep =
            (fun ~round ~inbox em ->
              match round mod 3 with
              | 0 ->
                  for k = 0 to inbox.i_len - 1 do
                    if in_tag inbox k = tag_false then begin
                      let j = find_nbr nbrs (in_src inbox k) in
                      if j >= 0 then Bytes.set active j '\000'
                    end
                  done;
                  if !status = 0 then begin
                    let p = Stdx.Prng.int view.Program.rng (1 lsl width) in
                    my_prio := p;
                    send_all em ~tag:tag_int ~bits:width ~word:p
                  end
              | 1 ->
                  for k = 0 to inbox.i_len - 1 do
                    if in_tag inbox k = tag_int then begin
                      let j = find_nbr nbrs (in_src inbox k) in
                      if j >= 0 && Bytes.get active j = '\001' then begin
                        prio.(j) <- in_word inbox k;
                        prio_round.(j) <- round
                      end
                    end
                  done;
                  if !status = 0 then begin
                    let win = ref true in
                    for j = 0 to deg - 1 do
                      if prio_round.(j) = round then begin
                        let p = prio.(j) and src = nbrs.(j) in
                        (* strict (prio, id) lexicographic comparison *)
                        if not (!my_prio > p || (!my_prio = p && view.Program.id > src))
                        then win := false
                      end
                    done;
                    if !win then begin
                      status := 1;
                      send_all em ~tag:tag_true ~bits:1 ~word:0
                    end
                  end
              | _ ->
                  let neighbor_joined = ref false in
                  for k = 0 to inbox.i_len - 1 do
                    if in_tag inbox k = tag_true then begin
                      let j = find_nbr nbrs (in_src inbox k) in
                      if j >= 0 then Bytes.set active j '\000';
                      neighbor_joined := true
                    end
                  done;
                  if !status = 1 then halted := true
                  else if !status = 0 && !neighbor_joined then begin
                    status := 2;
                    halted := true;
                    send_all em ~tag:tag_false ~bits:1 ~word:0
                  end);
          fhalted = (fun () -> !halted);
          foutput =
            (fun () ->
              match !status with 1 -> Some true | 2 -> Some false | _ -> None);
        });
  }
