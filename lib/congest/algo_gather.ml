module Graph = Wgraph.Graph

(* Facts are flooded with per-edge pipelining: each node keeps an
   append-only log of the facts it knows and a per-neighbor cursor; each
   round it sends each neighbor the next fact that neighbor hasn't been
   sent.  A fact is a triple (kind, a, b): kind 0 = edge {a, b} (a < b),
   kind 1 = weight of node a is b. *)

type fact = Edge of int * int | Weight of int * int

let gather ~m ~solve =
  {
    Program.name = "gather-topology";
    spawn =
      (fun view ->
        let n = view.Program.n in
        let idw = Msg.id_width ~n in
        let weight_width = 2 * idw in
        let widths = (1, idw, weight_width) in
        let known : (fact, unit) Hashtbl.t = Hashtbl.create 64 in
        let log : fact Stdx.Dynvec.t = Stdx.Dynvec.create () in
        let learn f =
          if not (Hashtbl.mem known f) then begin
            Hashtbl.replace known f ();
            Stdx.Dynvec.push log f
          end
        in
        learn (Weight (view.Program.id, view.Program.weight));
        Array.iter
          (fun nb ->
            learn
              (Edge (min view.Program.id nb, max view.Program.id nb)))
          view.Program.neighbors;
        let deg = Array.length view.Program.neighbors in
        let cursor = Array.make deg 0 in
        let complete () = Hashtbl.length known >= n + m in
        let drained () =
          let all = ref true in
          Array.iter (fun c -> if c < Stdx.Dynvec.length log then all := false) cursor;
          !all
        in
        let halted = ref false in
        let result = ref None in
        let reconstruct () =
          let g = Graph.create n in
          Hashtbl.iter
            (fun f () ->
              match f with
              | Edge (u, v) -> Graph.add_edge g u v
              | Weight (v, w) -> Graph.set_weight g v w)
            known;
          g
        in
        let msg_of_fact = function
          | Edge (u, v) -> Msg.triple_msg ~widths (0, u, v)
          | Weight (v, w) -> Msg.triple_msg ~widths (1, v, w)
        in
        let fact_of_msg (m : Msg.t) =
          match m.Msg.payload with
          | Msg.Triple (0, u, v) -> Some (Edge (u, v))
          | Msg.Triple (1, v, w) -> Some (Weight (v, w))
          | _ -> None
        in
        {
          Program.step =
            (fun ~round:_ ~inbox ->
              List.iter
                (fun (_, m) ->
                  match fact_of_msg m with Some f -> learn f | None -> ())
                inbox;
              let outbox = ref [] in
              Array.iteri
                (fun i nb ->
                  if cursor.(i) < Stdx.Dynvec.length log then begin
                    outbox := (nb, msg_of_fact (Stdx.Dynvec.get log cursor.(i))) :: !outbox;
                    cursor.(i) <- cursor.(i) + 1
                  end)
                view.Program.neighbors;
              if complete () && drained () then begin
                result := Some (solve (reconstruct ()));
                halted := true
              end;
              !outbox);
          halted = (fun () -> !halted);
          output = (fun () -> !result);
        });
  }

let exact_maxis ~m = gather ~m ~solve:(fun g -> (Mis.Exact.solve g).Mis.Exact.weight)

(* Flat port for the sharded executors.  Facts travel as one packed int —
   kind at bit 3·idw, then a (idw bits), then b (2·idw bits) — under
   [Fastpath.tag_int], with the same 1 + 3·idw bit charge as the
   list-mode [Msg.triple_msg].  Per-round message counts, round counts
   and outputs are order-independent (a node's log grows by the set of
   new facts, and cursors advance one fact per neighbor per round), so
   the simulation report built on this port matches the list-mode one
   exactly.  The internal fact log still allocates — the zero-alloc
   guarantee of the flat runtime covers delivery, not program state. *)

let gather_flat ~m ~solve =
  {
    Fastpath.fname = "gather-topology";
    fspawn =
      (fun view ->
        let n = view.Program.n in
        let idw = Msg.id_width ~n in
        let fact_bits = 1 + (3 * idw) in
        let bshift = 2 * idw in
        let bmask = (1 lsl bshift) - 1 in
        let amask = (1 lsl idw) - 1 in
        let pack ~kind ~a ~b =
          if b < 0 || b > bmask || a < 0 || a > amask then
            invalid_arg "Algo_gather.gather_flat: fact field too wide";
          (kind lsl (3 * idw)) lor (a lsl bshift) lor b
        in
        let known : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        let log : int Stdx.Dynvec.t = Stdx.Dynvec.create () in
        let learn f =
          if not (Hashtbl.mem known f) then begin
            Hashtbl.replace known f ();
            Stdx.Dynvec.push log f
          end
        in
        learn (pack ~kind:1 ~a:view.Program.id ~b:view.Program.weight);
        Array.iter
          (fun nb ->
            learn
              (pack ~kind:0
                 ~a:(min view.Program.id nb)
                 ~b:(max view.Program.id nb)))
          view.Program.neighbors;
        let nbrs = view.Program.neighbors in
        let deg = Array.length nbrs in
        let cursor = Array.make (max deg 1) 0 in
        let complete () = Hashtbl.length known >= n + m in
        let drained () =
          let all = ref true in
          for i = 0 to deg - 1 do
            if cursor.(i) < Stdx.Dynvec.length log then all := false
          done;
          !all
        in
        let halted = ref false in
        let result = ref None in
        let reconstruct () =
          let g = Graph.create n in
          Hashtbl.iter
            (fun f () ->
              let a = (f lsr bshift) land amask and b = f land bmask in
              if f lsr (3 * idw) = 0 then Graph.add_edge g a b
              else Graph.set_weight g a b)
            known;
          g
        in
        {
          Fastpath.fstep =
            (fun ~round:_ ~inbox em ->
              for k = 0 to inbox.Fastpath.i_len - 1 do
                if Fastpath.in_tag inbox k = Fastpath.tag_int then
                  learn (Fastpath.in_word inbox k)
              done;
              for i = 0 to deg - 1 do
                if cursor.(i) < Stdx.Dynvec.length log then begin
                  Fastpath.emit em ~dst:nbrs.(i) ~tag:Fastpath.tag_int
                    ~bits:fact_bits
                    ~word:(Stdx.Dynvec.get log cursor.(i));
                  cursor.(i) <- cursor.(i) + 1
                end
              done;
              if complete () && drained () then begin
                result := Some (solve (reconstruct ()));
                halted := true
              end);
          fhalted = (fun () -> !halted);
          foutput = (fun () -> !result);
        });
  }

let exact_maxis_flat ~m =
  gather_flat ~m ~solve:(fun g -> (Mis.Exact.solve g).Mis.Exact.weight)
