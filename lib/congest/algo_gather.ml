module Graph = Wgraph.Graph

(* Facts are flooded with per-edge pipelining: each node keeps an
   append-only log of the facts it knows and a per-neighbor cursor; each
   round it sends each neighbor the next fact that neighbor hasn't been
   sent.  A fact is a triple (kind, a, b): kind 0 = edge {a, b} (a < b),
   kind 1 = weight of node a is b. *)

type fact = Edge of int * int | Weight of int * int

let gather ~m ~solve =
  {
    Program.name = "gather-topology";
    spawn =
      (fun view ->
        let n = view.Program.n in
        let idw = Msg.id_width ~n in
        let weight_width = 2 * idw in
        let widths = (1, idw, weight_width) in
        let known : (fact, unit) Hashtbl.t = Hashtbl.create 64 in
        let log : fact Stdx.Dynvec.t = Stdx.Dynvec.create () in
        let learn f =
          if not (Hashtbl.mem known f) then begin
            Hashtbl.replace known f ();
            Stdx.Dynvec.push log f
          end
        in
        learn (Weight (view.Program.id, view.Program.weight));
        Array.iter
          (fun nb ->
            learn
              (Edge (min view.Program.id nb, max view.Program.id nb)))
          view.Program.neighbors;
        let deg = Array.length view.Program.neighbors in
        let cursor = Array.make deg 0 in
        let complete () = Hashtbl.length known >= n + m in
        let drained () =
          let all = ref true in
          Array.iter (fun c -> if c < Stdx.Dynvec.length log then all := false) cursor;
          !all
        in
        let halted = ref false in
        let result = ref None in
        let reconstruct () =
          let g = Graph.create n in
          Hashtbl.iter
            (fun f () ->
              match f with
              | Edge (u, v) -> Graph.add_edge g u v
              | Weight (v, w) -> Graph.set_weight g v w)
            known;
          g
        in
        let msg_of_fact = function
          | Edge (u, v) -> Msg.triple_msg ~widths (0, u, v)
          | Weight (v, w) -> Msg.triple_msg ~widths (1, v, w)
        in
        let fact_of_msg (m : Msg.t) =
          match m.Msg.payload with
          | Msg.Triple (0, u, v) -> Some (Edge (u, v))
          | Msg.Triple (1, v, w) -> Some (Weight (v, w))
          | _ -> None
        in
        {
          Program.step =
            (fun ~round:_ ~inbox ->
              List.iter
                (fun (_, m) ->
                  match fact_of_msg m with Some f -> learn f | None -> ())
                inbox;
              let outbox = ref [] in
              Array.iteri
                (fun i nb ->
                  if cursor.(i) < Stdx.Dynvec.length log then begin
                    outbox := (nb, msg_of_fact (Stdx.Dynvec.get log cursor.(i))) :: !outbox;
                    cursor.(i) <- cursor.(i) + 1
                  end)
                view.Program.neighbors;
              if complete () && drained () then begin
                result := Some (solve (reconstruct ()));
                halted := true
              end;
              !outbox);
          halted = (fun () -> !halted);
          output = (fun () -> !result);
        });
  }

let exact_maxis ~m = gather ~m ~solve:(fun g -> (Mis.Exact.solve g).Mis.Exact.weight)
