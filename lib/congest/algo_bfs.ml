let distances ~root ~rounds =
  {
    Program.name = "bfs-distances";
    spawn =
      (fun view ->
        let n = view.Program.n in
        let dist = ref (if view.Program.id = root then Some 0 else None) in
        let announced = ref false in
        let done_ = ref false in
        {
          Program.step =
            (fun ~round ~inbox ->
              (* Adopt the smallest announced distance + 1. *)
              List.iter
                (fun (_, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Int d -> (
                      match !dist with
                      | Some cur when cur <= d + 1 -> ()
                      | _ -> dist := Some (d + 1))
                  | _ -> ())
                inbox;
              let outbox =
                match (!dist, !announced) with
                | Some d, false ->
                    announced := true;
                    Array.to_list
                      (Array.map
                         (fun nb -> (nb, Msg.int_msg ~width:(Msg.id_width ~n) (min d (n - 1))))
                         view.Program.neighbors)
                | _ -> []
              in
              if round + 1 >= rounds then done_ := true;
              outbox);
          halted = (fun () -> !done_);
          output = (fun () -> !dist);
        });
  }
