type view = {
  id : int;
  n : int;
  weight : int;
  neighbors : int array;
  rng : Stdx.Prng.t;
}

type 'out instance = {
  step : round:int -> inbox:(int * Msg.t) list -> (int * Msg.t) list;
  halted : unit -> bool;
  output : unit -> 'out option;
}

type 'out t = { name : string; spawn : view -> 'out instance }
