(** Shared engine for "local maxima join" MIS algorithms.

    Luby's algorithm and the distributed greedy weighted MIS share the same
    3-round phase skeleton: undecided nodes announce a priority, strict
    local maxima (ties broken by id) join the independent set and announce
    it, and covered neighbors drop out and announce that.  The two
    algorithms differ only in the priority: fresh randomness per phase for
    Luby, the static node weight for greedy.  This module implements the
    skeleton once. *)

type priority = {
  value : int;  (** compared lexicographically with (value, id) *)
  width : int;  (** declared message width in bits *)
}

val make : name:string -> draw:(Program.view -> phase:int -> priority) -> bool Program.t
(** [draw] is called once per phase on each still-active node.  Output per
    node: [Some true] if it joined the MIS, [Some false] if covered. *)
