let mis =
  Local_maxima.make ~name:"luby-mis"
    ~draw:(fun view ~phase:_ ->
      let width = 2 * Msg.id_width ~n:view.Program.n in
      {
        Local_maxima.value = Stdx.Prng.int view.Program.rng (1 lsl width);
        width;
      })
