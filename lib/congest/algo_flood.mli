(** Max-id flooding and leader election.

    The simplest genuinely distributed CONGEST algorithm: every node floods
    the largest id it has seen; after [rounds] rounds (any value at least
    diameter+1; nodes know [n], so [n] always suffices) every node knows
    the global maximum.  Leader election falls out: the node whose own id
    equals the flooded maximum is the leader.

    Message size: one id = [⌈log₂ n⌉] bits, the canonical CONGEST message.
    Round complexity: [O(D)].  Works in both Unicast and Broadcast modes
    (all sends are uniform). *)

val max_id : rounds:int -> int Program.t
(** Output: the largest id the node knows after [rounds] rounds. *)

val leader_election : rounds:int -> bool Program.t
(** Output: [true] iff this node is the unique leader. *)
