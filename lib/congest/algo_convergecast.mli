(** BFS-tree convergecast: aggregate a value at a root in [O(D)] rounds.

    The standard CONGEST aggregation primitive (and the building block the
    folklore "learn m, then gather" preprocessing would use): a BFS wave
    from the root fixes parents, children identify themselves one round
    later, and partial sums flow up as soon as every child has reported.

    Message sizes: a 2-bit tag plus a [value_width]-bit value, so the
    caller must pick [value_width] large enough for the total aggregate
    (e.g. [⌈log₂(Σw+1)⌉] for a weight sum) and small enough for the
    bandwidth budget ([value_width + 2 <= c·⌈log n⌉]). *)

val sum_of_weights : root:int -> value_width:int -> int Program.t
(** Every node contributes its weight; the root outputs the total weight
    of its connected component (other nodes output nothing).  Completes in
    [O(eccentricity root)] rounds; all nodes halt. *)

val count_nodes : root:int -> value_width:int -> int Program.t
(** Same machinery with contribution 1: the root outputs the size of its
    component. *)

val max_weight : root:int -> value_width:int -> int Program.t
(** The maximum node weight in the root's component. *)

val aggregate :
  name:string ->
  root:int ->
  value_width:int ->
  combine:(int -> int -> int) ->
  contribution:(Program.view -> int) ->
  int Program.t
(** The general form: any commutative, associative [combine] whose values
    stay within [value_width] bits (sums, maxima, bitwise-or of flags,
    ...).  The root outputs the fold of [contribution] over its component;
    correctness needs [combine] commutative/associative because subtree
    results arrive in arbitrary order. *)
