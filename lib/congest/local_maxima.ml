(* Phase layout (round mod 3):
     0: active nodes draw and send a priority; covered-announcements from
        the previous phase are consumed here.
     1: active nodes compare their (priority, id) with received ones;
        strict local maxima join the MIS and announce with [Bool true].
     2: active nodes hearing a join become covered, announce [Bool false]
        and halt; joiners halt.

   [active_neighbors] shrinks as join/covered announcements arrive;
   priorities are only compared against currently active neighbors.  In
   every phase the globally largest (priority, id) among active nodes is a
   local maximum, so at least one node decides per phase and the algorithm
   terminates. *)

type priority = { value : int; width : int }

type status = Active | In_mis | Covered

let make ~name ~draw =
  {
    Program.name;
    spawn =
      (fun view ->
        let status = ref Active in
        let active_neighbors = Hashtbl.create 8 in
        Array.iter
          (fun nb -> Hashtbl.replace active_neighbors nb ())
          view.Program.neighbors;
        let my_prio = ref 0 in
        let recv_prios : (int, int) Hashtbl.t = Hashtbl.create 8 in
        let halted = ref false in
        let send_all msg =
          Array.to_list
            (Array.map (fun nb -> (nb, msg)) view.Program.neighbors)
        in
        let step ~round ~inbox =
          match round mod 3 with
          | 0 ->
              List.iter
                (fun (src, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Bool false -> Hashtbl.remove active_neighbors src
                  | _ -> ())
                inbox;
              if !status = Active then begin
                let p = draw view ~phase:(round / 3) in
                my_prio := p.value;
                send_all (Msg.int_msg ~width:p.width p.value)
              end
              else []
          | 1 ->
              Hashtbl.reset recv_prios;
              List.iter
                (fun (src, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Int p ->
                      if Hashtbl.mem active_neighbors src then
                        Hashtbl.replace recv_prios src p
                  | _ -> ())
                inbox;
              if !status = Active then begin
                let i_win =
                  Hashtbl.fold
                    (fun src p acc ->
                      acc && (!my_prio, view.Program.id) > (p, src))
                    recv_prios true
                in
                if i_win then begin
                  status := In_mis;
                  send_all (Msg.bool_msg true)
                end
                else []
              end
              else []
          | _ ->
              let neighbor_joined = ref false in
              List.iter
                (fun (src, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Bool true ->
                      Hashtbl.remove active_neighbors src;
                      neighbor_joined := true
                  | _ -> ())
                inbox;
              if !status = In_mis then begin
                halted := true;
                []
              end
              else if !status = Active && !neighbor_joined then begin
                status := Covered;
                halted := true;
                send_all (Msg.bool_msg false)
              end
              else []
        in
        {
          Program.step;
          halted = (fun () -> !halted);
          output =
            (fun () ->
              match !status with
              | In_mis -> Some true
              | Covered -> Some false
              | Active -> None);
        });
  }
