(** Randomized distributed maximal matching in CONGEST.

    A proposal protocol in 3-round phases: every unmatched node flips a
    coin; heads makes it a {e proposer} this phase, tails an {e acceptor}.
    Proposers pick a uniformly random still-unmatched neighbor and propose;
    acceptors accept the smallest-id proposal they received, forming a
    matched pair; matched nodes announce themselves and leave.  Any edge
    between two unmatched nodes survives a phase unmatched with probability
    bounded away from 1, so the matching is maximal after [O(log n)]
    phases in expectation (Israeli–Itai style).

    Messages are 3-bit tags — well under the CONGEST budget. *)

val maximal_matching : int Program.t
(** Output: [Some partner] for matched nodes, [None] for nodes left
    unmatched (their neighborhoods are fully matched).  All nodes halt
    with probability 1; the announced pairs always form a maximal
    matching. *)
