let max_id ~rounds =
  {
    Program.name = "max-id-flood";
    spawn =
      (fun view ->
        let best = ref view.Program.id in
        let changed = ref true in
        let done_ = ref false in
        let n = view.Program.n in
        {
          Program.step =
            (fun ~round ~inbox ->
              List.iter
                (fun (_, (m : Msg.t)) ->
                  match m.Msg.payload with
                  | Msg.Int v -> if v > !best then begin best := v; changed := true end
                  | _ -> ())
                inbox;
              let outbox =
                if !changed then
                  Array.to_list
                    (Array.map
                       (fun nb -> (nb, Msg.id_msg ~n !best))
                       view.Program.neighbors)
                else []
              in
              changed := false;
              if round + 1 >= rounds then done_ := true;
              outbox);
          halted = (fun () -> !done_);
          output = (fun () -> Some !best);
        });
  }

let leader_election ~rounds =
  let inner = max_id ~rounds in
  {
    Program.name = "leader-election";
    spawn =
      (fun view ->
        let inst = inner.Program.spawn view in
        {
          Program.step = inst.Program.step;
          halted = inst.Program.halted;
          output =
            (fun () ->
              Option.map (fun m -> m = view.Program.id) (inst.Program.output ()));
        });
  }
