(** Seeded, deterministic fault injection for the CONGEST runtime.

    The paper's lower bounds hold against {e any} CONGEST algorithm, so the
    runtime that referees the Theorem-5 simulation must not be an
    over-polite scheduler: this module lets a run face adversarial links —
    per-link message {b drop}, {b duplication}, {b bit-corruption} and
    bounded {b delay} — plus per-node {b crashes}, all driven by one
    splitmix64 stream seeded by the plan.  Every faulty execution is
    exactly replayable from [(config, plan)]: two runs with the same seed
    and plan produce byte-identical traces, injected events included
    (see {!Trace.digest}).

    Fault injection is {e out of model} for the paper's lower bound (the
    adversary there is the input, not the network) but {e in model} for
    validating the referee: the bit accounting that Theorems 1–2 rest on
    must hold up when the scheduler stops being polite. *)

(** Per-directed-link fault probabilities, drawn independently per
    message. *)
type link_fault = {
  drop : float;  (** probability the message is not delivered *)
  duplicate : float;  (** probability a second copy is delivered *)
  corrupt : float;  (** probability one payload bit is flipped *)
  max_delay : int;  (** delivery deferred by uniform [0, max_delay] rounds *)
}

val no_fault : link_fault

val link :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?max_delay:int ->
  unit ->
  link_fault
(** Raises [Invalid_argument] on probabilities outside [0,1] or negative
    delay. *)

type plan = {
  seed : int;  (** seeds the fault stream — independent of [config.seed] *)
  default : link_fault;  (** applies to every directed link *)
  links : ((int * int) * link_fault) list;
      (** per-directed-link overrides, [(src, dst)] keyed *)
  crashes : (int * int) list;
      (** [(node, round)]: the node stops executing at the start of the
          round (crash-stop; messages already in flight still deliver) *)
}

val plan :
  ?default:link_fault ->
  ?links:((int * int) * link_fault) list ->
  ?crashes:(int * int) list ->
  int ->
  plan
(** [plan seed] with no faults anywhere; raises [Invalid_argument] on
    negative crash nodes or rounds. *)

val crash_round : plan -> node:int -> int option
(** Earliest scheduled crash round for the node, if any. *)

val pp_plan : Format.formatter -> plan -> unit

(** {1 Injection} — consumed by {!Runtime}; exposed for tests. *)

type injector
(** The plan plus its live PRNG stream.  Decisions are drawn in the
    runtime's deterministic iteration order, making the whole faulty run a
    pure function of [(config, plan)]. *)

val injector : plan -> injector

val apply :
  injector -> src:int -> dst:int -> Msg.t -> (int * Msg.t) list * Trace.fault_kind list
(** [apply inj ~src ~dst m] decides the fate of one attempted send:
    returns the copies to deliver as [(extra_delay_rounds, message)] pairs
    (empty when dropped, two entries when duplicated, payload perturbed
    when corrupted) together with the injected events to record. *)

val corrupt_msg : Stdx.Prng.t -> Msg.t -> Msg.t
(** Flip one payload bit (the declared size is unchanged). *)

(** {1 Reliable delivery} *)

val harden : ?linger:int -> 'out Program.t -> 'out Program.t
(** [harden p] wraps every node of [p] with per-link sequence-numbered
    ack/retransmit logic (stop-and-wait, cumulative acks, 16-bit checksums
    against corruption) and an end-of-round barrier, so the inner program
    observes exactly the fault-free synchronous semantics even under
    drop/duplicate/corrupt/delay plans — while the runtime meters the (now
    much larger) bit cost.  Robustness is bought with communication, the
    very currency the paper's lower bounds price.

    Each hardened node sends at most one 131-bit frame per link per round,
    so the config's [bandwidth_factor] must allow 131 bits per edge-round.
    Inner messages must declare at most 20 bits.  Crashes are not masked
    (a crashed node is gone, not slow).  [linger] (default 8) is how many
    quiet rounds a finished node waits before halting, so that peers whose
    final acks were lost can still be answered; raise it for plans with
    long delays. *)
