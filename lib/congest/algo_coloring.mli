(** Randomized (Δ+1)-coloring in CONGEST.

    The classic trial-and-lock scheme: in every 2-round phase each
    uncolored node proposes a uniformly random color from its remaining
    palette ([{0..deg(v)}] minus colors locked by neighbors) and locks it
    if no uncolored neighbor proposed the same color simultaneously.  Each
    trial succeeds with probability at least a constant, so all nodes lock
    within [O(log n)] phases with high probability.

    Messages carry one color ([≤ ⌈log(Δ+2)⌉ ≤ ⌈log n⌉+1] bits) plus a
    1-bit lock flag.  Together with Luby MIS and the greedy MIS this
    rounds out the symmetry-breaking trio of the CONGEST substrate. *)

val color : int Program.t
(** Output: the node's final color in [0 .. deg(v)]; adjacent nodes always
    receive distinct colors.  All nodes halt with probability 1. *)
