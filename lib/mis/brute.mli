(** Brute-force maximum-weight independent set, for cross-checking.

    Enumerates all subsets; usable only for [n <= 24].  The property tests
    compare {!Exact.solve} against this on random small graphs — a strong
    correctness oracle for the branch-and-bound solver. *)

val solve : Wgraph.Graph.t -> int * Stdx.Bitset.t
(** [(weight, witness)].  Raises [Invalid_argument] for [n > 24]. *)
