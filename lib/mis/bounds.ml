module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

let clique_cover_upper g =
  let n = Graph.n g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Graph.weight g b) (Graph.weight g a))
    order;
  let classes : Bitset.t list ref = ref [] in
  let bound = ref 0 in
  Array.iter
    (fun v ->
      let nbrs = Graph.neighbors g v in
      let rec place = function
        | [] ->
            let c = Bitset.create n in
            Bitset.add c v;
            classes := c :: !classes;
            (* v opens the class, so it is the max (descending order). *)
            bound := !bound + Graph.weight g v
        | c :: rest ->
            if Bitset.subset c nbrs then Bitset.add c v else place rest
      in
      place !classes)
    order;
  !bound

let caro_wei_lower g =
  let acc = ref 0.0 in
  Graph.iter_nodes
    (fun v ->
      acc :=
        !acc
        +. (float_of_int (Graph.weight g v)
           /. float_of_int (Graph.degree g v + 1)))
    g;
  !acc

(* Local-ratio dual payments: processing edge (u,v) with both residual
   weights positive and paying m = min of the two reduces the optimal
   vertex-cover weight by at least m, so the payment total is a lower
   bound on MVC.  By the weighted Gallai identity OPT(MaxIS) =
   w(V) - MVC, which turns the payment total into an upper bound on
   OPT.  (Implemented from scratch rather than via [Vertex_cover] —
   whose exact solver depends on [Exact] — so [Exact] can call this for
   its budget-exhaustion certificates without a dependency cycle.) *)
let vc_dual_upper g =
  let n = Graph.n g in
  let residual = Array.init n (fun v -> Graph.weight g v) in
  let payments = ref 0 in
  Graph.iter_edges
    (fun u v ->
      let m = min residual.(u) residual.(v) in
      if m > 0 then begin
        residual.(u) <- residual.(u) - m;
        residual.(v) <- residual.(v) - m;
        payments := !payments + m
      end)
    g;
  Graph.total_weight g - !payments

let greedy_lower g =
  List.fold_left
    (fun acc h -> max acc (fst (Greedy.run h g)))
    0 Greedy.all

let sandwich g = (caro_wei_lower g, greedy_lower g, clique_cover_upper g)
