module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

let clique_cover_upper g =
  let n = Graph.n g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Graph.weight g b) (Graph.weight g a))
    order;
  let classes : Bitset.t list ref = ref [] in
  let bound = ref 0 in
  Array.iter
    (fun v ->
      let nbrs = Graph.neighbors g v in
      let rec place = function
        | [] ->
            let c = Bitset.create n in
            Bitset.add c v;
            classes := c :: !classes;
            (* v opens the class, so it is the max (descending order). *)
            bound := !bound + Graph.weight g v
        | c :: rest ->
            if Bitset.subset c nbrs then Bitset.add c v else place rest
      in
      place !classes)
    order;
  !bound

let caro_wei_lower g =
  let acc = ref 0.0 in
  Graph.iter_nodes
    (fun v ->
      acc :=
        !acc
        +. (float_of_int (Graph.weight g v)
           /. float_of_int (Graph.degree g v + 1)))
    g;
  !acc

let greedy_lower g =
  List.fold_left
    (fun acc h -> max acc (fst (Greedy.run h g)))
    0 Greedy.all

let sandwich g = (caro_wei_lower g, greedy_lower g, clique_cover_upper g)
