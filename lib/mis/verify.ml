module Graph = Wgraph.Graph

type report = {
  ok : bool;
  independent : bool;
  weight_matches : bool;
  claimed_weight : int;
  actual_weight : int;
  violations : (int * int) list;
}

let solution g ~claimed_weight set =
  let violations = Wgraph.Check.independence_violations g set in
  let independent = violations = [] in
  let actual_weight = Graph.set_weight_of g set in
  let weight_matches = actual_weight = claimed_weight in
  {
    ok = independent && weight_matches;
    independent;
    weight_matches;
    claimed_weight;
    actual_weight;
    violations;
  }

let solution_ok g ~claimed_weight set = (solution g ~claimed_weight set).ok

let approximation_ratio ~opt ~achieved =
  if opt <= 0 then invalid_arg "Verify.approximation_ratio: opt must be > 0";
  float_of_int achieved /. float_of_int opt
