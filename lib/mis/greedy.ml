module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type heuristic = { name : string; run : Graph.t -> Bitset.t }

(* Generic greedy: repeatedly pick the remaining node maximizing [score],
   add it, and delete its closed neighborhood. *)
let generic score g =
  let n = Graph.n g in
  let remaining = Bitset.full n in
  let chosen = Bitset.create n in
  let residual_degree v = Bitset.inter_cardinal (Graph.neighbors g v) remaining in
  let rec loop () =
    match
      Bitset.fold
        (fun v best ->
          let s = score g v (residual_degree v) in
          match best with
          | Some (_, bs) when bs >= s -> best
          | _ -> Some (v, s))
        remaining None
    with
    | None -> ()
    | Some (v, _) ->
        Bitset.add chosen v;
        Bitset.remove remaining v;
        Bitset.diff_in_place remaining (Graph.neighbors g v);
        loop ()
  in
  loop ();
  chosen

let max_weight_first =
  {
    name = "max-weight-first";
    run = generic (fun g v _deg -> float_of_int (Graph.weight g v));
  }

let min_degree_first =
  {
    name = "min-degree-first";
    run =
      generic (fun g v deg ->
          (* Lower degree is better; weight breaks ties. *)
          (-1000000.0 *. float_of_int deg) +. float_of_int (Graph.weight g v));
  }

let weight_degree_ratio =
  {
    name = "weight/degree";
    run =
      generic (fun g v deg ->
          float_of_int (Graph.weight g v) /. float_of_int (deg + 1));
  }

let all = [ max_weight_first; min_degree_first; weight_degree_ratio ]

let run h g =
  let set = h.run g in
  (Graph.set_weight_of g set, set)
