module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

let exact g =
  let sol = Exact.solve g in
  let cover = Bitset.complement sol.Exact.set in
  (Graph.total_weight g - sol.Exact.weight, cover)

let is_cover = Wgraph.Check.is_vertex_cover

let local_ratio_2approx g =
  let n = Graph.n g in
  let residual = Array.init n (fun v -> Graph.weight g v) in
  (* Pay down residual weights edge by edge. *)
  Graph.iter_edges
    (fun u v ->
      let eps = min residual.(u) residual.(v) in
      if eps > 0 then begin
        residual.(u) <- residual.(u) - eps;
        residual.(v) <- residual.(v) - eps
      end)
    g;
  let cover = Bitset.create n in
  for v = 0 to n - 1 do
    if residual.(v) = 0 && Graph.weight g v > 0 then Bitset.add cover v
  done;
  (* Zero-weight nodes are free cover members; include them when they cover
     anything, then prune to a minimal cover (dropping nodes whose removal
     keeps every edge covered only improves the weight). *)
  for v = 0 to n - 1 do
    if Graph.weight g v = 0 then Bitset.add cover v
  done;
  for v = 0 to n - 1 do
    if Bitset.mem cover v then begin
      Bitset.remove cover v;
      let still_covered =
        Bitset.for_all
          (fun u -> Bitset.mem cover u)
          (Graph.neighbors g v)
      in
      if not still_covered then Bitset.add cover v
    end
  done;
  (Graph.set_weight_of g cover, cover)

let duality_check g =
  let mvc, cover = exact g in
  is_cover g cover
  && mvc = Graph.set_weight_of g cover
  && mvc + (Exact.solve g).Exact.weight = Graph.total_weight g
