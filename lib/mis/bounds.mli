(** Upper and lower bounds on the maximum-weight independent set value.

    These sandwich [OPT] cheaply; the test suite asserts
    [caro_wei <= greedy <= OPT <= clique_cover] on every instance it
    touches, which catches bugs in any of the four computations. *)

val clique_cover_upper : Wgraph.Graph.t -> int
(** Greedy clique partition; the sum of per-clique maximum weights is an
    upper bound on OPT. *)

val vc_dual_upper : Wgraph.Graph.t -> int
(** [w(V)] minus a local-ratio lower bound on the minimum-weight vertex
    cover — an upper bound on OPT by the weighted Gallai identity.
    Incomparable with {!clique_cover_upper} in general; the budgeted
    exact solver certifies with the minimum of the two. *)

val caro_wei_lower : Wgraph.Graph.t -> float
(** [Σ_v w(v)/(deg(v)+1)] — always at most OPT (probabilistic argument;
    the bound is fractional). *)

val greedy_lower : Wgraph.Graph.t -> int
(** Best of the {!Greedy.all} heuristics — a constructive lower bound. *)

val sandwich : Wgraph.Graph.t -> float * int * int
(** [(caro_wei, greedy, clique_cover)]. *)
