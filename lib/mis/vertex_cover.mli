(** Minimum-weight vertex cover, via independent-set duality.

    The complement of a maximum-weight independent set is a minimum-weight
    vertex cover (and vice versa), so the exact MaxIS solver doubles as an
    exact MVC solver.  The paper's "Limitations" section discusses MVC
    alongside MaxIS — the two-party framework cannot defeat
    (3/2)-approximation for MVC (an argument from Bachrach et al.) — and
    this module supplies the MVC side of that picture, including the
    classic Bar-Yehuda–Even local-ratio 2-approximation as the matching
    upper bound. *)

val exact : Wgraph.Graph.t -> int * Stdx.Bitset.t
(** [(weight, cover)] — optimal, computed as the complement of the exact
    maximum-weight independent set. *)

val local_ratio_2approx : Wgraph.Graph.t -> int * Stdx.Bitset.t
(** Bar-Yehuda–Even: repeatedly pick an uncovered edge and pay the smaller
    residual weight on both endpoints; zero-residual nodes form the cover,
    pruned to a minimal one.  Weight at most twice the optimum. *)

val is_cover : Wgraph.Graph.t -> Stdx.Bitset.t -> bool
(** Every edge has an endpoint in the set (re-exported convenience). *)

val duality_check : Wgraph.Graph.t -> bool
(** Internal consistency: the returned cover is a valid vertex cover of
    the reported weight and [w(MVC) + w(MaxIS) = w(V)] (the weighted
    Gallai identity).  The test suite additionally pins optimality against
    an independent brute-force MaxIS. *)
