(** Solution verifiers.

    Everything the solvers emit is re-checked independently: a solution is
    valid iff its set is independent and its reported weight matches the
    actual set weight (Definition 5's [w(I)]). *)

type report = {
  ok : bool;
  independent : bool;
  weight_matches : bool;
  claimed_weight : int;
  actual_weight : int;
  violations : (int * int) list;  (** adjacent pairs inside the set *)
}

val solution : Wgraph.Graph.t -> claimed_weight:int -> Stdx.Bitset.t -> report

val solution_ok : Wgraph.Graph.t -> claimed_weight:int -> Stdx.Bitset.t -> bool

val approximation_ratio : opt:int -> achieved:int -> float
(** [achieved / opt]; by Definition 5 an independent set [I] is a
    γ-approximation when [w(I) >= OPT·γ] (the paper writes [OPT/γ] with
    γ >= 1 in Definition 5 but uses γ in [0,1] elsewhere; we standardize on
    ratios in [0,1]).  Raises [Invalid_argument] when [opt <= 0]. *)
