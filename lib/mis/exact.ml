module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type solution = { weight : int; set : Bitset.t; nodes_explored : int }

let max_nodes = 4000

(* Greedy clique-cover upper bound: partition the candidate set into
   cliques; an independent set holds at most one node per clique, so the sum
   of per-clique maximum weights bounds OPT on the candidates.  On the
   paper's gadgets (disjoint unions of cliques plus sparse inter-clique
   edges) this is nearly tight, which is what makes the search fast.

   We scan candidates in decreasing-weight order and put each node into the
   first clique class whose members are all adjacent to it. *)
let clique_cover_bound g order cands =
  (* class_mask.(c) = bitset of members; class_max.(c) = max weight. *)
  let classes : Bitset.t array ref = ref (Array.make 8 (Bitset.create 0)) in
  let class_max = ref (Array.make 8 0) in
  let nclasses = ref 0 in
  let bound = ref 0 in
  Array.iter
    (fun v ->
      if Bitset.mem cands v then begin
        let nbrs = Graph.neighbors g v in
        let rec find c =
          if c >= !nclasses then c
          else if Bitset.subset !classes.(c) nbrs then c
          else find (c + 1)
        in
        let c = find 0 in
        if c = !nclasses then begin
          if c >= Array.length !classes then begin
            let grow_to = 2 * Array.length !classes in
            let new_classes = Array.make grow_to (Bitset.create 0) in
            Array.blit !classes 0 new_classes 0 c;
            classes := new_classes;
            let new_max = Array.make grow_to 0 in
            Array.blit !class_max 0 new_max 0 c;
            class_max := new_max
          end;
          !classes.(c) <- Bitset.create (Graph.n g);
          !class_max.(c) <- 0;
          incr nclasses
        end;
        Bitset.add !classes.(c) v;
        let w = Graph.weight g v in
        if w > !class_max.(c) then begin
          bound := !bound + w - !class_max.(c);
          !class_max.(c) <- w
        end
      end)
    order;
  !bound

type exhausted = {
  lb : int;
  ub : int;
  witness : Bitset.t;
  nodes_explored : int;
  reason : Exec.Budget.reason;
}

type outcome = Complete of solution | Exhausted of exhausted

let interval = function
  | Complete s -> (s.weight, s.weight)
  | Exhausted e -> (e.lb, e.ub)

exception Out_of_budget of Exec.Budget.reason

(* Solver metrics (docs/OBSERVABILITY.md).  Node/prune/leaf counts are
   tallied in plain local refs inside the search and flushed in one
   atomic add per solve, so the branch loop's per-node cost is untouched;
   the shared cells make concurrent [solve_par] subproblems sum
   correctly. *)
let m_solves = Obs.Metrics.counter "solver_solves_total"

let m_nodes = Obs.Metrics.counter "solver_nodes_total"

let m_prunes =
  Obs.Metrics.counter ~labels:[ ("bound", "clique_cover") ] "solver_prunes_total"

let m_leaves = Obs.Metrics.counter "solver_leaves_total"

let m_exhausted reason =
  Obs.Metrics.counter
    ~labels:[ ("reason", Exec.Budget.reason_to_string reason) ]
    "solver_budget_exhausted_total"

let branch_order g =
  (* Static order: decreasing weight, ties by decreasing degree — good both
     for the clique cover and for branching. *)
  let order = Array.init (Graph.n g) Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (Graph.weight g b) (Graph.weight g a) in
      if c <> 0 then c else compare (Graph.degree g b) (Graph.degree g a))
    order;
  order

(* The budgeted core.  Under [Budget.unlimited] the check is a single
   physical-equality test and can never trip, so the exploration —
   including [nodes_explored] and the returned witness — is
   instruction-for-instruction the historical unbudgeted solver.  On
   exhaustion the incumbent certifies the lower end of the interval and
   a fresh root clique-cover bound certifies the upper end. *)
let solve_on ~budget g cands0 =
  let n = Graph.n g in
  if n > max_nodes then
    invalid_arg
      (Printf.sprintf "Mis.Exact.solve: %d nodes exceeds max_nodes=%d" n
         max_nodes);
  let order = branch_order g in
  let best_weight = ref 0 in
  let best_set = ref (Bitset.create n) in
  let current = Bitset.create n in
  let explored = ref 0 in
  let leaves = ref 0 in
  let pruned = ref 0 in
  let flush_metrics () =
    Obs.Metrics.inc m_solves;
    Obs.Metrics.add m_nodes !explored;
    Obs.Metrics.add m_leaves !leaves;
    Obs.Metrics.add m_prunes !pruned
  in
  let rec branch cands cur_weight =
    incr explored;
    (match Exec.Budget.check budget ~nodes:!explored with
    | Some reason -> raise (Out_of_budget reason)
    | None -> ());
    if Bitset.is_empty cands then begin
      incr leaves;
      if cur_weight > !best_weight then begin
        best_weight := cur_weight;
        best_set := Bitset.copy current
      end
    end
    else if cur_weight + clique_cover_bound g order cands > !best_weight then begin
      (* Branch on the heaviest candidate. *)
      let v =
        let rec find i =
          if Bitset.mem cands order.(i) then order.(i) else find (i + 1)
        in
        find 0
      in
      (* Include v. *)
      let without_nv = Bitset.diff cands (Graph.neighbors g v) in
      Bitset.remove without_nv v;
      Bitset.add current v;
      branch without_nv (cur_weight + Graph.weight g v);
      Bitset.remove current v;
      (* Exclude v. *)
      let without_v = Bitset.copy cands in
      Bitset.remove without_v v;
      branch without_v cur_weight
    end
    else incr pruned
  in
  match branch (Bitset.copy cands0) 0 with
  | () ->
      flush_metrics ();
      Complete { weight = !best_weight; set = !best_set; nodes_explored = !explored }
  | exception Out_of_budget reason ->
      flush_metrics ();
      Obs.Metrics.inc (m_exhausted reason);
      let ub = max !best_weight (clique_cover_bound g order cands0) in
      Exhausted
        {
          lb = !best_weight;
          ub;
          witness = !best_set;
          nodes_explored = !explored;
          reason;
        }

let complete_exn = function
  | Complete s -> s
  | Exhausted _ ->
      (* Unreachable: an unlimited budget can never trip. *)
      assert false

(* On full-graph solves a second, independent relaxation (vertex-cover
   duality) can undercut the clique cover; certify with the tighter of
   the two.  [max lb] keeps the interval well-formed by construction. *)
let refine_full_graph_ub g = function
  | Complete _ as c -> c
  | Exhausted e -> Exhausted { e with ub = max e.lb (min e.ub (Bounds.vc_dual_upper g)) }

let solve_budgeted ?(budget = Exec.Budget.unlimited) g =
  refine_full_graph_ub g (solve_on ~budget g (Bitset.full (Graph.n g)))

let solve_induced_budgeted ?(budget = Exec.Budget.unlimited) g cands =
  solve_on ~budget g cands

let solve g =
  complete_exn (solve_on ~budget:Exec.Budget.unlimited g (Bitset.full (Graph.n g)))

let solve_induced g cands =
  complete_exn (solve_on ~budget:Exec.Budget.unlimited g cands)

let opt g = (solve g).weight

(* ------------------------------------------------------------------ *)
(* Parallel solve: fan the top of the branch-and-bound tree out over a
   domain pool.

   The top [depth] levels of the include/exclude tree are expanded
   breadth-first into subproblems (candidate set, forced-in nodes, their
   weight); the subproblems partition the search space, so solving each
   independently and taking the best reconstructs the global optimum.
   Each subproblem runs the sequential solver with its own incumbent —
   no bound is shared across domains, which costs some pruning but makes
   the node counts and the returned solution independent of scheduling:
   the winner is the lowest-index subproblem achieving the maximum
   weight, so [solve_par] is deterministic for every pool width. *)

type subproblem = { cands : Bitset.t; chosen : int list; base_weight : int }

let split_subproblems g order target =
  let n = Graph.n g in
  let heaviest_in cands =
    let rec find i =
      if i >= n then None
      else if Bitset.mem cands order.(i) then Some order.(i)
      else find (i + 1)
    in
    find 0
  in
  let split sub =
    match heaviest_in sub.cands with
    | None -> None
    | Some v ->
        let incl_cands = Bitset.diff sub.cands (Graph.neighbors g v) in
        Bitset.remove incl_cands v;
        let incl =
          {
            cands = incl_cands;
            chosen = v :: sub.chosen;
            base_weight = sub.base_weight + Graph.weight g v;
          }
        in
        let excl_cands = Bitset.copy sub.cands in
        Bitset.remove excl_cands v;
        Some (incl, { sub with cands = excl_cands })
  in
  let rec expand subs count =
    if count >= target then subs
    else begin
      let progressed = ref false in
      let subs' =
        List.concat_map
          (fun sub ->
            match split sub with
            | None -> [ sub ]
            | Some (incl, excl) ->
                progressed := true;
                [ incl; excl ])
          subs
      in
      if !progressed then expand subs' (List.length subs') else subs
    end
  in
  expand
    [ { cands = Bitset.full n; chosen = []; base_weight = 0 } ]
    1

let solve_par_budgeted ~pool ?(budget = Exec.Budget.unlimited) g =
  if Exec.Pool.jobs pool <= 1 then solve_budgeted ~budget g
  else begin
    let n = Graph.n g in
    if n > max_nodes then
      invalid_arg
        (Printf.sprintf "Mis.Exact.solve_par: %d nodes exceeds max_nodes=%d" n
           max_nodes);
    let order = branch_order g in
    (* Oversplit relative to the pool width so an unlucky hard subproblem
       does not serialize the batch. *)
    let target = 4 * Exec.Pool.jobs pool in
    let subs = Array.of_list (split_subproblems g order target) in
    (* Each subproblem gets a deterministic share of the node cap (its
       own independent tally — no scheduling leak) and shares the
       deadline/cancellation token, so one deadline trip stops the
       siblings at their next checkpoint. *)
    let sub_budget = Exec.Budget.split budget ~pieces:(Array.length subs) in
    let solved =
      Exec.Pool.map pool (fun sub -> solve_on ~budget:sub_budget g sub.cands) subs
    in
    let witness_of i set =
      let w = Bitset.copy set in
      List.iter (Bitset.add w) subs.(i).chosen;
      w
    in
    let explored = ref 0 in
    Array.iter
      (fun o ->
        explored :=
          !explored
          + (match o with Complete s -> s.nodes_explored | Exhausted e -> e.nodes_explored))
      solved;
    if Array.for_all (function Complete _ -> true | Exhausted _ -> false) solved
    then begin
      (* Lowest-index subproblem achieving the maximum wins: deterministic
         for every pool width.  Weights are >= 0 and [subs] is non-empty,
         so a winner always exists. *)
      let weight_at i = subs.(i).base_weight + (complete_exn solved.(i)).weight in
      let best_idx = ref 0 in
      Array.iteri
        (fun i _ -> if weight_at i > weight_at !best_idx then best_idx := i)
        solved;
      Complete
        {
          weight = weight_at !best_idx;
          set = witness_of !best_idx (complete_exn solved.(!best_idx)).set;
          nodes_explored = !explored;
        }
    end
    else begin
      (* The subproblems partition the search space, so OPT is the max of
         the per-subproblem optima: lb = max of certified lower ends
         (witness from the lowest-index achiever), ub = max of certified
         upper ends.  With a pure node budget every per-subproblem
         outcome is deterministic, hence so is the interval. *)
      let lb_at i =
        subs.(i).base_weight
        + (match solved.(i) with Complete s -> s.weight | Exhausted e -> e.lb)
      in
      let ub_at i =
        subs.(i).base_weight
        + (match solved.(i) with Complete s -> s.weight | Exhausted e -> e.ub)
      in
      let best_idx = ref 0 in
      let ub = ref 0 in
      Array.iteri
        (fun i _ ->
          if lb_at i > lb_at !best_idx then best_idx := i;
          if ub_at i > !ub then ub := ub_at i)
        solved;
      let reason =
        let rec first i =
          match solved.(i) with Exhausted e -> e.reason | Complete _ -> first (i + 1)
        in
        first 0
      in
      let set =
        match solved.(!best_idx) with Complete s -> s.set | Exhausted e -> e.witness
      in
      refine_full_graph_ub g
        (Exhausted
           {
             lb = lb_at !best_idx;
             ub = max (lb_at !best_idx) !ub;
             witness = witness_of !best_idx set;
             nodes_explored = !explored;
             reason;
           })
    end
  end

let solve_par ~pool g =
  complete_exn (solve_par_budgeted ~pool ~budget:Exec.Budget.unlimited g)
