module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type solution = { weight : int; set : Bitset.t; nodes_explored : int }

let max_nodes = 4000

(* Greedy clique-cover upper bound: partition the candidate set into
   cliques; an independent set holds at most one node per clique, so the sum
   of per-clique maximum weights bounds OPT on the candidates.  On the
   paper's gadgets (disjoint unions of cliques plus sparse inter-clique
   edges) this is nearly tight, which is what makes the search fast.

   We scan candidates in decreasing-weight order and put each node into the
   first clique class whose members are all adjacent to it. *)
let clique_cover_bound g order cands =
  (* class_mask.(c) = bitset of members; class_max.(c) = max weight. *)
  let classes : Bitset.t array ref = ref (Array.make 8 (Bitset.create 0)) in
  let class_max = ref (Array.make 8 0) in
  let nclasses = ref 0 in
  let bound = ref 0 in
  Array.iter
    (fun v ->
      if Bitset.mem cands v then begin
        let nbrs = Graph.neighbors g v in
        let rec find c =
          if c >= !nclasses then c
          else if Bitset.subset !classes.(c) nbrs then c
          else find (c + 1)
        in
        let c = find 0 in
        if c = !nclasses then begin
          if c >= Array.length !classes then begin
            let grow_to = 2 * Array.length !classes in
            let new_classes = Array.make grow_to (Bitset.create 0) in
            Array.blit !classes 0 new_classes 0 c;
            classes := new_classes;
            let new_max = Array.make grow_to 0 in
            Array.blit !class_max 0 new_max 0 c;
            class_max := new_max
          end;
          !classes.(c) <- Bitset.create (Graph.n g);
          !class_max.(c) <- 0;
          incr nclasses
        end;
        Bitset.add !classes.(c) v;
        let w = Graph.weight g v in
        if w > !class_max.(c) then begin
          bound := !bound + w - !class_max.(c);
          !class_max.(c) <- w
        end
      end)
    order;
  !bound

let solve_on g cands0 =
  let n = Graph.n g in
  if n > max_nodes then
    invalid_arg
      (Printf.sprintf "Mis.Exact.solve: %d nodes exceeds max_nodes=%d" n
         max_nodes);
  (* Static order: decreasing weight, ties by decreasing degree — good both
     for the clique cover and for branching. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (Graph.weight g b) (Graph.weight g a) in
      if c <> 0 then c else compare (Graph.degree g b) (Graph.degree g a))
    order;
  let best_weight = ref 0 in
  let best_set = ref (Bitset.create n) in
  let current = Bitset.create n in
  let explored = ref 0 in
  let rec branch cands cur_weight =
    incr explored;
    if Bitset.is_empty cands then begin
      if cur_weight > !best_weight then begin
        best_weight := cur_weight;
        best_set := Bitset.copy current
      end
    end
    else if cur_weight + clique_cover_bound g order cands > !best_weight then begin
      (* Branch on the heaviest candidate. *)
      let v =
        let rec find i =
          if Bitset.mem cands order.(i) then order.(i) else find (i + 1)
        in
        find 0
      in
      (* Include v. *)
      let without_nv = Bitset.diff cands (Graph.neighbors g v) in
      Bitset.remove without_nv v;
      Bitset.add current v;
      branch without_nv (cur_weight + Graph.weight g v);
      Bitset.remove current v;
      (* Exclude v. *)
      let without_v = Bitset.copy cands in
      Bitset.remove without_v v;
      branch without_v cur_weight
    end
  in
  branch (Bitset.copy cands0) 0;
  { weight = !best_weight; set = !best_set; nodes_explored = !explored }

let solve g = solve_on g (Bitset.full (Graph.n g))

let solve_induced g cands = solve_on g cands

let opt g = (solve g).weight

(* ------------------------------------------------------------------ *)
(* Parallel solve: fan the top of the branch-and-bound tree out over a
   domain pool.

   The top [depth] levels of the include/exclude tree are expanded
   breadth-first into subproblems (candidate set, forced-in nodes, their
   weight); the subproblems partition the search space, so solving each
   independently and taking the best reconstructs the global optimum.
   Each subproblem runs the sequential solver with its own incumbent —
   no bound is shared across domains, which costs some pruning but makes
   the node counts and the returned solution independent of scheduling:
   the winner is the lowest-index subproblem achieving the maximum
   weight, so [solve_par] is deterministic for every pool width. *)

type subproblem = { cands : Bitset.t; chosen : int list; base_weight : int }

let split_subproblems g order target =
  let n = Graph.n g in
  let heaviest_in cands =
    let rec find i =
      if i >= n then None
      else if Bitset.mem cands order.(i) then Some order.(i)
      else find (i + 1)
    in
    find 0
  in
  let split sub =
    match heaviest_in sub.cands with
    | None -> None
    | Some v ->
        let incl_cands = Bitset.diff sub.cands (Graph.neighbors g v) in
        Bitset.remove incl_cands v;
        let incl =
          {
            cands = incl_cands;
            chosen = v :: sub.chosen;
            base_weight = sub.base_weight + Graph.weight g v;
          }
        in
        let excl_cands = Bitset.copy sub.cands in
        Bitset.remove excl_cands v;
        Some (incl, { sub with cands = excl_cands })
  in
  let rec expand subs count =
    if count >= target then subs
    else begin
      let progressed = ref false in
      let subs' =
        List.concat_map
          (fun sub ->
            match split sub with
            | None -> [ sub ]
            | Some (incl, excl) ->
                progressed := true;
                [ incl; excl ])
          subs
      in
      if !progressed then expand subs' (List.length subs') else subs
    end
  in
  expand
    [ { cands = Bitset.full n; chosen = []; base_weight = 0 } ]
    1

let solve_par ~pool g =
  if Exec.Pool.jobs pool <= 1 then solve g
  else begin
    let n = Graph.n g in
    if n > max_nodes then
      invalid_arg
        (Printf.sprintf "Mis.Exact.solve_par: %d nodes exceeds max_nodes=%d" n
           max_nodes);
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = compare (Graph.weight g b) (Graph.weight g a) in
        if c <> 0 then c else compare (Graph.degree g b) (Graph.degree g a))
      order;
    (* Oversplit relative to the pool width so an unlucky hard subproblem
       does not serialize the batch. *)
    let target = 4 * Exec.Pool.jobs pool in
    let subs = Array.of_list (split_subproblems g order target) in
    let solved =
      Exec.Pool.map pool
        (fun sub ->
          let s = solve_on g sub.cands in
          (sub.base_weight + s.weight, s))
        subs
    in
    (* Lowest-index subproblem achieving the maximum wins: deterministic
       for every pool width.  Weights are >= 0 and [subs] is non-empty,
       so a winner always exists. *)
    let best_idx = ref 0 in
    let explored = ref 0 in
    Array.iteri
      (fun i (w, s) ->
        explored := !explored + s.nodes_explored;
        if w > fst solved.(!best_idx) then best_idx := i)
      solved;
    let w, s = solved.(!best_idx) in
    let witness = Bitset.copy s.set in
    List.iter (Bitset.add witness) subs.(!best_idx).chosen;
    { weight = w; set = witness; nodes_explored = !explored }
  end
