module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

type solution = { weight : int; set : Bitset.t; nodes_explored : int }

let max_nodes = 4000

(* Greedy clique-cover upper bound: partition the candidate set into
   cliques; an independent set holds at most one node per clique, so the sum
   of per-clique maximum weights bounds OPT on the candidates.  On the
   paper's gadgets (disjoint unions of cliques plus sparse inter-clique
   edges) this is nearly tight, which is what makes the search fast.

   We scan candidates in decreasing-weight order and put each node into the
   first clique class whose members are all adjacent to it. *)
let clique_cover_bound g order cands =
  (* class_mask.(c) = bitset of members; class_max.(c) = max weight. *)
  let classes : Bitset.t array ref = ref (Array.make 8 (Bitset.create 0)) in
  let class_max = ref (Array.make 8 0) in
  let nclasses = ref 0 in
  let bound = ref 0 in
  Array.iter
    (fun v ->
      if Bitset.mem cands v then begin
        let nbrs = Graph.neighbors g v in
        let rec find c =
          if c >= !nclasses then c
          else if Bitset.subset !classes.(c) nbrs then c
          else find (c + 1)
        in
        let c = find 0 in
        if c = !nclasses then begin
          if c >= Array.length !classes then begin
            let grow_to = 2 * Array.length !classes in
            let new_classes = Array.make grow_to (Bitset.create 0) in
            Array.blit !classes 0 new_classes 0 c;
            classes := new_classes;
            let new_max = Array.make grow_to 0 in
            Array.blit !class_max 0 new_max 0 c;
            class_max := new_max
          end;
          !classes.(c) <- Bitset.create (Graph.n g);
          !class_max.(c) <- 0;
          incr nclasses
        end;
        Bitset.add !classes.(c) v;
        let w = Graph.weight g v in
        if w > !class_max.(c) then begin
          bound := !bound + w - !class_max.(c);
          !class_max.(c) <- w
        end
      end)
    order;
  !bound

let solve_on g cands0 =
  let n = Graph.n g in
  if n > max_nodes then
    invalid_arg
      (Printf.sprintf "Mis.Exact.solve: %d nodes exceeds max_nodes=%d" n
         max_nodes);
  (* Static order: decreasing weight, ties by decreasing degree — good both
     for the clique cover and for branching. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (Graph.weight g b) (Graph.weight g a) in
      if c <> 0 then c else compare (Graph.degree g b) (Graph.degree g a))
    order;
  let best_weight = ref 0 in
  let best_set = ref (Bitset.create n) in
  let current = Bitset.create n in
  let explored = ref 0 in
  let rec branch cands cur_weight =
    incr explored;
    if Bitset.is_empty cands then begin
      if cur_weight > !best_weight then begin
        best_weight := cur_weight;
        best_set := Bitset.copy current
      end
    end
    else if cur_weight + clique_cover_bound g order cands > !best_weight then begin
      (* Branch on the heaviest candidate. *)
      let v =
        let rec find i =
          if Bitset.mem cands order.(i) then order.(i) else find (i + 1)
        in
        find 0
      in
      (* Include v. *)
      let without_nv = Bitset.diff cands (Graph.neighbors g v) in
      Bitset.remove without_nv v;
      Bitset.add current v;
      branch without_nv (cur_weight + Graph.weight g v);
      Bitset.remove current v;
      (* Exclude v. *)
      let without_v = Bitset.copy cands in
      Bitset.remove without_v v;
      branch without_v cur_weight
    end
  in
  branch (Bitset.copy cands0) 0;
  { weight = !best_weight; set = !best_set; nodes_explored = !explored }

let solve g = solve_on g (Bitset.full (Graph.n g))

let solve_induced g cands = solve_on g cands

let opt g = (solve g).weight
