(** A second, independent exact MWIS solver: maximum-weight clique of the
    complement graph via Bron–Kerbosch with pivoting and weight-based
    pruning.

    This exists purely as a {e differential oracle}: it shares no code
    path with {!Exact} (different algorithm, different graph — the
    complement), so agreement between the two on thousands of random and
    gadget instances makes a silent bug in either vanishingly unlikely.
    The brute-force oracle ({!Brute}) covers [n <= 24]; this one is
    practical well past 100 nodes on the dense gadget graphs (whose
    complements are sparse). *)

val solve : Wgraph.Graph.t -> int * Stdx.Bitset.t
(** [(weight, witness)] — the maximum-weight independent set, computed as
    the maximum-weight clique of the complement.  Same [max_nodes] guard
    as {!Exact}. *)
