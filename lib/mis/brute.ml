module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

let solve g =
  let n = Graph.n g in
  if n > 24 then invalid_arg "Mis.Brute.solve: too many nodes";
  (* Precompute neighborhood masks as plain ints. *)
  let nbr = Array.make n 0 in
  Graph.iter_edges
    (fun u v ->
      nbr.(u) <- nbr.(u) lor (1 lsl v);
      nbr.(v) <- nbr.(v) lor (1 lsl u))
    g;
  let best_w = ref 0 and best_mask = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let independent = ref true in
    let weight = ref 0 in
    for v = 0 to n - 1 do
      if mask land (1 lsl v) <> 0 then begin
        if mask land nbr.(v) <> 0 then independent := false;
        weight := !weight + Graph.weight g v
      end
    done;
    if !independent && !weight > !best_w then begin
      best_w := !weight;
      best_mask := mask
    end
  done;
  let set = Bitset.create n in
  for v = 0 to n - 1 do
    if !best_mask land (1 lsl v) <> 0 then Bitset.add set v
  done;
  (!best_w, set)
