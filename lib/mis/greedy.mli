(** Greedy approximation heuristics for maximum-weight independent set.

    The paper's upper-bound landscape (Section 1) offers only
    Δ-approximations in CONGEST; these sequential heuristics play that role
    in the benches — they are the "achievable in practice" curves that the
    lower-bound gap tables are contrasted with.  All return independent
    sets (checked by {!Verify.solution_ok}). *)

type heuristic = {
  name : string;
  run : Wgraph.Graph.t -> Stdx.Bitset.t;
}

val max_weight_first : heuristic
(** Repeatedly take the heaviest remaining node and delete its
    neighborhood — the weighted analogue of the classic greedy MIS. *)

val min_degree_first : heuristic
(** Repeatedly take a remaining node of minimum residual degree (ties by
    weight).  Achieves Δ+1-ish behaviour on unweighted graphs. *)

val weight_degree_ratio : heuristic
(** Repeatedly take the node maximizing [w(v) / (deg(v)+1)] — the greedy
    that realizes the Caro–Wei bound [Σ w(v)/(deg(v)+1)] in expectation. *)

val all : heuristic list

val run : heuristic -> Wgraph.Graph.t -> int * Stdx.Bitset.t
(** [(weight, set)]. *)
