module Bitset = Stdx.Bitset
module Graph = Wgraph.Graph

(* Max-weight clique in the complement H of g.  Bron-Kerbosch over
   (R, P, X) with a pivot chosen to minimize branching, plus the standard
   weight bound: prune when w(R) + w(P) cannot beat the incumbent.
   Adjacency of H is materialized once as bitset rows. *)

let solve g =
  let n = Graph.n g in
  if n > Exact.max_nodes then
    invalid_arg "Mis.Bron_kerbosch.solve: too many nodes";
  let comp_adj =
    Array.init n (fun v ->
        let row = Bitset.complement (Graph.neighbors g v) in
        Bitset.remove row v;
        row)
  in
  let weight = Array.init n (fun v -> Graph.weight g v) in
  let best_w = ref 0 in
  let best_set = ref (Bitset.create n) in
  let current = Bitset.create n in
  let set_weight s = Bitset.fold (fun v acc -> acc + weight.(v)) s 0 in
  let rec expand r_weight p x =
    if Bitset.is_empty p && Bitset.is_empty x then begin
      if r_weight > !best_w then begin
        best_w := r_weight;
        best_set := Bitset.copy current
      end
    end
    else if r_weight + set_weight p > !best_w then begin
      (* Pivot: the vertex of P ∪ X with most neighbors in P (fewest
         branching candidates left). *)
      let pivot = ref (-1) and pivot_score = ref (-1) in
      let consider u =
        let score = Bitset.inter_cardinal comp_adj.(u) p in
        if score > !pivot_score then begin
          pivot_score := score;
          pivot := u
        end
      in
      Bitset.iter consider p;
      Bitset.iter consider x;
      let candidates =
        if !pivot >= 0 then Bitset.diff p comp_adj.(!pivot) else Bitset.copy p
      in
      let p = Bitset.copy p and x = Bitset.copy x in
      Bitset.iter
        (fun v ->
          Bitset.add current v;
          expand (r_weight + weight.(v))
            (Bitset.inter p comp_adj.(v))
            (Bitset.inter x comp_adj.(v));
          Bitset.remove current v;
          Bitset.remove p v;
          Bitset.add x v)
        candidates
    end
  in
  expand 0 (Bitset.full n) (Bitset.create n);
  (!best_w, !best_set)
