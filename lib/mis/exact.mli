(** Exact maximum-weight independent set.

    This solver turns the paper's case analyses (Claims 1–7) into machine
    checks: for every constructed instance we compute [OPT] exactly and
    compare it against the closed-form predictions.

    The algorithm is branch and bound over bitset candidate sets with a
    greedy clique-cover upper bound — well suited to the gadget graphs,
    which are unions of cliques plus sparse connections, so the clique
    cover is nearly exact and pruning is aggressive.  Instances up to a few
    hundred nodes (all instances in the test and bench suites) solve in
    milliseconds to seconds. *)

type solution = {
  weight : int;  (** OPT — the paper's maximum independent set value *)
  set : Stdx.Bitset.t;  (** a witness achieving it *)
  nodes_explored : int;  (** branch-and-bound tree size, for the benches *)
}

val solve : Wgraph.Graph.t -> solution
(** Raises nothing; on the empty graph returns weight 0. *)

(** {1 Budgeted solving}

    The branch-and-bound tree of a pathological instance can blow up
    without warning; a sweep must degrade, not die.  The budgeted entry
    points thread an {!Exec.Budget} cooperatively through the search
    (the node cap is compared at every explored node; the clock and the
    cancellation token every [every] nodes) and, on exhaustion, return a
    {e certified interval} instead of raising: the incumbent — a valid
    independent set — certifies [lb], and root relaxations (the greedy
    clique cover, plus vertex-cover duality on full-graph solves)
    certify [ub], so [lb <= OPT <= ub] always holds.

    With [Exec.Budget.unlimited] (the default) the budgeted functions
    are bit-identical to their unbudgeted counterparts: same weight,
    same witness, same node count, at every pool width. *)

type exhausted = {
  lb : int;  (** weight of the best incumbent found — a valid IS *)
  ub : int;  (** certified relaxation bound, [>= lb] *)
  witness : Stdx.Bitset.t;  (** the incumbent achieving [lb] *)
  nodes_explored : int;
  reason : Exec.Budget.reason;
}

type outcome = Complete of solution | Exhausted of exhausted

val interval : outcome -> int * int
(** [(lb, ub)]; collapses to [(weight, weight)] on [Complete]. *)

val solve_budgeted : ?budget:Exec.Budget.t -> Wgraph.Graph.t -> outcome

val solve_induced_budgeted :
  ?budget:Exec.Budget.t -> Wgraph.Graph.t -> Stdx.Bitset.t -> outcome

val solve_par_budgeted :
  pool:Exec.Pool.t -> ?budget:Exec.Budget.t -> Wgraph.Graph.t -> outcome
(** Parallel fan-out with per-subproblem budget shares
    ({!Exec.Budget.split}): node caps are tallied independently per
    subproblem, so a pure node budget yields a deterministic interval
    for every fixed pool width; a deadline trip in any subproblem
    cancels the shared token and stops the siblings at their next
    checkpoint (promptly, but — like any wall-clock effect — not
    deterministically). *)

val solve_induced : Wgraph.Graph.t -> Stdx.Bitset.t -> solution
(** Maximum-weight independent set of the subgraph induced by the given
    node set, expressed in the original graph's node numbering.  This is
    what the "Limitations" protocol runs on each player's region [Vⁱ]. *)

val opt : Wgraph.Graph.t -> int
(** [opt g = (solve g).weight]. *)

val solve_par : pool:Exec.Pool.t -> Wgraph.Graph.t -> solution
(** Like {!solve}, with the top of the branch-and-bound tree expanded
    into subproblems fanned out over the pool.  Always returns the same
    [weight] as {!solve} and a valid witness set; the witness and
    [nodes_explored] may differ from the sequential run (no incumbent
    bound is shared across domains), but are themselves deterministic
    for a fixed pool width.  A pool of width 1 delegates to {!solve}
    exactly. *)

val max_nodes : int
(** Safety limit on instance size (default 4000); [solve] raises
    [Invalid_argument] beyond it rather than running forever. *)
