(** Exact maximum-weight independent set.

    This solver turns the paper's case analyses (Claims 1–7) into machine
    checks: for every constructed instance we compute [OPT] exactly and
    compare it against the closed-form predictions.

    The algorithm is branch and bound over bitset candidate sets with a
    greedy clique-cover upper bound — well suited to the gadget graphs,
    which are unions of cliques plus sparse connections, so the clique
    cover is nearly exact and pruning is aggressive.  Instances up to a few
    hundred nodes (all instances in the test and bench suites) solve in
    milliseconds to seconds. *)

type solution = {
  weight : int;  (** OPT — the paper's maximum independent set value *)
  set : Stdx.Bitset.t;  (** a witness achieving it *)
  nodes_explored : int;  (** branch-and-bound tree size, for the benches *)
}

val solve : Wgraph.Graph.t -> solution
(** Raises nothing; on the empty graph returns weight 0. *)

val solve_induced : Wgraph.Graph.t -> Stdx.Bitset.t -> solution
(** Maximum-weight independent set of the subgraph induced by the given
    node set, expressed in the original graph's node numbering.  This is
    what the "Limitations" protocol runs on each player's region [Vⁱ]. *)

val opt : Wgraph.Graph.t -> int
(** [opt g = (solve g).weight]. *)

val solve_par : pool:Exec.Pool.t -> Wgraph.Graph.t -> solution
(** Like {!solve}, with the top of the branch-and-bound tree expanded
    into subproblems fanned out over the pool.  Always returns the same
    [weight] as {!solve} and a valid witness set; the witness and
    [nodes_explored] may differ from the sequential run (no incumbent
    bound is shared across domains), but are themselves deterministic
    for a fixed pool width.  A pool of width 1 delegates to {!solve}
    exactly. *)

val max_nodes : int
(** Safety limit on instance size (default 4000); [solve] raises
    [Invalid_argument] beyond it rather than running forever. *)
