(* Remark 1: from weighted to unweighted hard instances.

   The paper's instances are weighted; Remark 1 blows each weight-l node
   into an independent set of l unit nodes (bicliques between heavy
   neighbors) and loses a log factor in the round bound because
   n grows from Theta(k) to Theta(k log k).  This example transforms a
   hard instance, verifies OPT is preserved exactly, and prints the
   inflation bookkeeping.

   Run with:  dune exec examples/unweighted_transform.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module U = Maxis_core.Unweighted
module T = Stdx.Tablefmt

let () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let rng = Stdx.Prng.create 99 in
  let table =
    T.create
      [
        T.column ~align:T.Left "side";
        T.column "n (weighted)";
        T.column "n (unweighted)";
        T.column "OPT (weighted)";
        T.column "OPT (unweighted)";
        T.column ~align:T.Left "preserved";
        T.column ~align:T.Left "verdict kept";
      ]
  in
  let pred = LF.predicate p in
  List.iter
    (fun intersecting ->
      let x =
        Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:2 ~intersecting
      in
      let inst = LF.instance p x in
      let t = U.transform_instance inst in
      let ow = Mis.Exact.opt inst.Maxis_core.Family.graph in
      let ou = Mis.Exact.opt t.U.graph in
      T.add_row table
        [
          (if intersecting then "intersecting" else "disjoint");
          T.cell_int (Wgraph.Graph.n inst.Maxis_core.Family.graph);
          T.cell_int (Wgraph.Graph.n t.U.graph);
          T.cell_int ow;
          T.cell_int ou;
          T.cell_bool (ow = ou);
          T.cell_bool
            (Maxis_core.Predicate.classify pred ow
            = Maxis_core.Predicate.classify pred ou);
        ])
    [ true; false ];
  T.print ~title:"Remark 1: unweighted transformation" table;

  (* Show the blow-up mechanics on one heavy node. *)
  let x = Commcx.Inputs.of_bit_lists ~k:(P.k p) [ [ 0 ]; [ 0 ] ] in
  let inst = LF.instance p x in
  let t = U.transform_instance inst in
  let heavy = Maxis_core.Base_graph.a_node p ~offset:0 ~m:0 in
  Format.printf
    "@.node %s (weight %d) became clones %s; every unit neighbor now sees \
     all of them, heavy neighbors meet them in a biclique.@."
    (Wgraph.Graph.label inst.Maxis_core.Family.graph heavy)
    (Wgraph.Graph.weight inst.Maxis_core.Family.graph heavy)
    (String.concat ", "
       (Array.to_list (Array.map string_of_int t.U.clones.(heavy))));
  Format.printf
    "inflation: n' = total weight = %d = Theta(k*ell) -> the round bound \
     loses one log factor (Remark 1).@."
    (U.inflation inst.Maxis_core.Family.graph)
