(* Lemma 1 end to end: the t = 2 warm-up.

   For two players the construction is a (3/4 + eps)-approximate MaxIS
   family: Claims 1 and 2 bound OPT at 4l+2a (intersecting) versus
   3l+2a+1 (disjoint).  This example checks both claims exhaustively over
   all singleton input pairs and prints the measured OPT table — the
   executable version of Section 4.2.1.

   Run with:  dune exec examples/two_party_warmup.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module T = Stdx.Tablefmt

let () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  Format.printf "Lemma 1 warm-up at %a@." P.pp p;
  let k = P.k p in
  let hi_bound = (4 * P.ell p) + (2 * P.alpha p) in
  let lo_bound = (3 * P.ell p) + (2 * P.alpha p) + 1 in
  Format.printf "Claim 1 bound (intersecting): OPT >= %d@." hi_bound;
  Format.printf "Claim 2 bound (disjoint):     OPT <= %d@." lo_bound;

  let table =
    T.create
      [
        T.column "x1";
        T.column "x2";
        T.column ~align:T.Left "case";
        T.column "OPT";
        T.column ~align:T.Left "claim";
      ]
  in
  let worst_ratio = ref 1.0 in
  for a = 0 to k - 1 do
    for b = 0 to k - 1 do
      let x = Commcx.Inputs.of_bit_lists ~k [ [ a ]; [ b ] ] in
      let inst = LF.instance p x in
      let opt = Mis.Exact.opt inst.Maxis_core.Family.graph in
      let claim =
        if a = b then Maxis_core.Claims.claim1 p x
        else Maxis_core.Claims.claim2 p x
      in
      if a <> b then
        worst_ratio :=
          Float.min !worst_ratio (float_of_int opt /. float_of_int hi_bound);
      T.add_row table
        [
          Printf.sprintf "{%d}" (a + 1);
          Printf.sprintf "{%d}" (b + 1);
          (if a = b then "intersecting" else "disjoint");
          T.cell_int opt;
          Printf.sprintf "%s %s" claim.Maxis_core.Claims.name
            (if claim.Maxis_core.Claims.holds then "holds" else "VIOLATED");
        ]
    done
  done;
  T.print ~title:"all singleton input pairs" table;
  Format.printf
    "@.achieved disjoint/intersecting ratio: %.4f (Lemma 1: approaches 3/4 = \
     %.4f as ell grows; the +eps slack here is %d/%d)@."
    !worst_ratio 0.75 lo_bound hi_bound;

  (* The "limitation" side of the same story: two players can always get a
     1/2-approximation for free. *)
  let rng = Stdx.Prng.create 7 in
  let x = Commcx.Inputs.gen_promise rng ~k ~t:2 ~intersecting:false in
  let r = Maxis_core.Limitations.run (LF.instance p x) in
  Format.printf
    "@.free 1/2-approximation (Limitations section): best local OPT = %d, \
     global OPT = %d, ratio = %.3f >= 1/2, using only %d blackboard bits@."
    r.Maxis_core.Limitations.best_local r.Maxis_core.Limitations.global_opt
    r.Maxis_core.Limitations.ratio r.Maxis_core.Limitations.bits
