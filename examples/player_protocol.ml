(* Theorem 5's proof as a literal protocol: t player objects, one shared
   blackboard, no shared memory beyond it.

   The simulation argument says players p_1..p_t can run any CONGEST
   algorithm on G_x by each simulating its own region V^i and writing
   every cross-region message on the blackboard.  This example instantiates
   that protocol (Maxis_core.Player_sim), runs the universal exact-MaxIS
   algorithm through it, and shows:
     - the per-player transcript contributions,
     - bit-for-bit agreement with the monolithic runtime's cut metering,
     - the decision f(x) falling out of OPT.

   Run with:  dune exec examples/player_protocol.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module PS = Maxis_core.Player_sim
module T = Stdx.Tablefmt

let () =
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Stdx.Prng.create 314 in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting:false
  in
  let inst = LF.instance p x in
  let g = inst.Maxis_core.Family.graph in
  Format.printf "instance: %a, partition sizes %s@." Wgraph.Graph.pp g
    (String.concat "/"
       (Array.to_list
          (Array.map string_of_int
             (Wgraph.Cut.part_sizes inst.Maxis_core.Family.partition))));

  let answer, outcome =
    PS.decide_disjointness inst ~predicate:(LF.predicate p)
  in
  Format.printf
    "@.player protocol finished: %d simulated rounds, all halted: %b@."
    outcome.PS.rounds outcome.PS.all_halted;

  let table =
    T.create
      [
        T.column ~align:T.Left "player";
        T.column "region |V^i|";
        T.column "blackboard bits written";
      ]
  in
  let sizes = Wgraph.Cut.part_sizes inst.Maxis_core.Family.partition in
  List.iter
    (fun (author, bits) ->
      T.add_row table
        [
          Printf.sprintf "p_%d" (author + 1);
          T.cell_int sizes.(author);
          T.cell_int bits;
        ])
    (Commcx.Blackboard.bits_by_author outcome.PS.board);
  T.print ~title:"per-player transcript contribution" table;

  Format.printf
    "total transcript: %d bits in %d writes; region-internal traffic \
     (free): %d bits@."
    (Commcx.Blackboard.bits_written outcome.PS.board)
    (Commcx.Blackboard.writes outcome.PS.board)
    outcome.PS.internal_bits;

  (* Cross-validate against the monolithic runtime's trace metering. *)
  let m = Wgraph.Graph.edge_count g in
  let mono = Congest.Runtime.run (Congest.Algo_gather.exact_maxis ~m) g in
  let trace_bits =
    Congest.Trace.cut_bits mono.Congest.Runtime.trace
      inst.Maxis_core.Family.partition
  in
  Format.printf
    "monolithic runtime, same algorithm: cut traffic %d bits -- %s@."
    trace_bits
    (if trace_bits = Commcx.Blackboard.bits_written outcome.PS.board then
       "bit-for-bit identical to the player protocol"
     else "MISMATCH (bug!)");

  Format.printf "@.decision: f(x) = %s (truth: %b)@."
    (match answer with Some b -> string_of_bool b | None -> "?")
    (Commcx.Functions.promise_pairwise_disjointness x);
  Format.printf
    "Because promise pairwise disjointness costs Omega(k/t log t) bits, any@\n\
     algorithm whose simulation writes this little must have spent many \
     rounds:@\nthat arithmetic is Corollary 1, and with k = Theta(n) it is \
     Theorem 1.@."
