(* Quickstart: build one hard instance of the paper and watch the gap.

   This walks the shortest path through the library:
     1. pick parameters (alpha, ell, t),
     2. draw a promise input vector (uniquely intersecting or pairwise
        disjoint),
     3. build the Section-4 instance G_x,
     4. solve maximum-weight independent set exactly,
     5. classify with the gap predicate — recovering f(x) from OPT.

   Run with:  dune exec examples/quickstart.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family

let () =
  (* t = 3 players; ell = 4 > alpha*t so the formal gap separates. *)
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  Format.printf "parameters: %a@." P.pp p;

  let rng = Stdx.Prng.create 2020 in
  let show ~intersecting =
    let x =
      Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting
    in
    Format.printf "@.input (%s): %a@."
      (if intersecting then "uniquely intersecting" else "pairwise disjoint")
      Commcx.Inputs.pp x;
    let inst = LF.instance p x in
    let g = inst.Maxis_core.Family.graph in
    Format.printf "instance: %a, cut=%d@." Wgraph.Graph.pp g
      (Maxis_core.Family.cut_size inst);
    let sol = Mis.Exact.solve g in
    Format.printf "exact MaxIS: OPT = %d (witness of %d nodes, %d B&B nodes)@."
      sol.Mis.Exact.weight
      (Stdx.Bitset.cardinal sol.Mis.Exact.set)
      sol.Mis.Exact.nodes_explored;
    let pred = LF.predicate p in
    Format.printf "predicate %a@." Maxis_core.Predicate.pp pred;
    (match Maxis_core.Predicate.classify pred sol.Mis.Exact.weight with
    | `High ->
        Format.printf
          "verdict: OPT >= %d -- the strings intersect (f = FALSE)@."
          (LF.high_weight p)
    | `Low ->
        Format.printf
          "verdict: OPT <= %d -- the strings are pairwise disjoint (f = TRUE)@."
          (LF.low_weight p)
    | `Gap_violation -> Format.printf "verdict: GAP VIOLATION (bug!)@.")
  in
  show ~intersecting:true;
  show ~intersecting:false;
  Format.printf
    "@.The two OPT values straddle the gap [%d, %d]: any CONGEST algorithm@\n\
     achieving a (1/2+eps)-approximation could tell them apart, so it must@\n\
     pay the communication price -- Theorem 1's Omega(n/log^3 n) rounds.@."
    (LF.low_weight p) (LF.high_weight p)
