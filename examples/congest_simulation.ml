(* Theorem 5, live: simulate real CONGEST algorithms across the t-player
   partition and meter the blackboard.

   Player i simulates the nodes of V^i; every message on a cut edge is a
   blackboard write.  The transcript is therefore at most
   T x |cut| x O(log n) bits — and because promise pairwise disjointness
   costs Omega(k / t log t) bits, T must be large.  This example runs
   flooding, Luby's MIS, and the universal exact-MaxIS algorithm on a hard
   instance and prints both sides of that inequality.

   Run with:  dune exec examples/congest_simulation.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module Simulation = Maxis_core.Simulation
module T = Stdx.Tablefmt

let () =
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let rng = Stdx.Prng.create 2718 in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting:true
  in
  let inst = LF.instance p x in
  let g = inst.Maxis_core.Family.graph in
  let n = Wgraph.Graph.n g in
  let m = Wgraph.Graph.edge_count g in
  Format.printf "instance: %a, cut=%d, %d players@." Wgraph.Graph.pp g
    (Maxis_core.Family.cut_size inst) p.P.players;

  let table =
    T.create
      [
        T.column ~align:T.Left "algorithm";
        T.column "rounds T";
        T.column "blackboard bits";
        T.column "T*2cut*B bound";
        T.column ~align:T.Left "within";
        T.column "total bits";
      ]
  in
  let row program =
    let _, r = Simulation.simulate program inst in
    T.add_row table
      [
        r.Simulation.algorithm;
        T.cell_int r.Simulation.rounds;
        T.cell_int r.Simulation.blackboard_bits;
        T.cell_int r.Simulation.bound_bits;
        T.cell_bool r.Simulation.within_bound;
        T.cell_int r.Simulation.total_bits;
      ]
  in
  row (Congest.Algo_flood.max_id ~rounds:(Wgraph.Metrics.diameter g + 1));
  row (Congest.Algo_bfs.distances ~root:0 ~rounds:(Wgraph.Metrics.diameter g + 1));
  row Congest.Algo_luby.mis;
  row Congest.Algo_greedy_mis.mis;
  row (Congest.Algo_gather.exact_maxis ~m);
  T.print ~title:"Theorem 5: blackboard cost of simulated CONGEST runs" table;

  (* The full reduction: the universal algorithm decides disjointness. *)
  let d = Simulation.decide_disjointness inst ~predicate:(LF.predicate p) in
  Format.printf
    "@.universal algorithm: OPT = %d -> verdict %s -> f(x) = %s (expected \
     %b)@."
    d.Simulation.opt
    (match d.Simulation.verdict with
    | `High -> "High"
    | `Low -> "Low"
    | `Gap_violation -> "GAP VIOLATION")
    (match d.Simulation.answer with
    | Some b -> string_of_bool b
    | None -> "?")
    (Commcx.Functions.promise_pairwise_disjointness x);

  let cc =
    Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness
      ~k:(P.k p) ~t:p.P.players
  in
  Format.printf
    "@.information lower bound: any correct protocol writes >= %.1f bits \
     (Thm 3, constant 1);@\nthe simulation wrote %d -- so T >= %.4f rounds \
     by Corollary 1's arithmetic.@\nOn real (large-k) instances that \
     arithmetic is Omega(n/log^3 n); here n = %d.@."
    cc d.Simulation.report.Simulation.blackboard_bits
    (cc
    /. (2.0
       *. float_of_int d.Simulation.report.Simulation.cut_size
       *. float_of_int d.Simulation.report.Simulation.bandwidth))
    n
