(* Section 5's quadratic construction F_x, end to end.

   The input strings have length k^2 — Theta(n^2) bits — while the cut
   stays polylogarithmic, which is how the paper upgrades the linear bound
   to Omega(n^2/log^3 n) for (3/4+eps)-approximation.  This example builds
   F_x on both promise sides, verifies Claims 6 and 7, shows the Figure-6
   input-edge semantics, and prints the k^2-vs-cut asymmetry.

   Run with:  dune exec examples/quadratic_construction.exe *)

module P = Maxis_core.Params
module QF = Maxis_core.Quadratic_family
module BG = Maxis_core.Base_graph
module T = Stdx.Tablefmt

let () =
  let p = P.make ~alpha:1 ~ell:3 ~players:2 in
  Format.printf "quadratic construction at %a@." P.pp p;
  Format.printf "string length = k^2 = %d, cut = %d, n = %d@."
    (QF.string_length p) (QF.expected_cut_size p) (QF.n_nodes p);

  (* Figure 6's example input: one 0-bit for player 1, all ones for
     player 2. *)
  let sl = QF.string_length p in
  let all = List.init sl Fun.id in
  let x1 = List.filter (fun j -> j <> QF.pair_index p ~m1:0 ~m2:0) all in
  let x = Commcx.Inputs.of_bit_lists ~k:sl [ x1; all ] in
  let inst = QF.instance p x in
  let g = inst.Maxis_core.Family.graph in
  let a_side side m =
    BG.a_node p ~offset:(QF.copy_offset p ~player:0 ~side) ~m
  in
  Format.printf
    "@.Figure 6 semantics: x^1_(1,1) = 0 adds the edge v^(1,1)_1 -- \
     v^(1,2)_1: %b; 1-bits add nothing: %b@."
    (Wgraph.Graph.has_edge g (a_side 0 0) (a_side 1 0))
    (not (Wgraph.Graph.has_edge g (a_side 0 0) (a_side 1 1)));

  (* Claims 6 and 7 on random promise inputs. *)
  let rng = Stdx.Prng.create 55 in
  let table =
    T.create
      [
        T.column ~align:T.Left "promise side";
        T.column "OPT";
        T.column ~align:T.Left "claim";
        T.column "bound";
        T.column ~align:T.Left "status";
      ]
  in
  List.iter
    (fun intersecting ->
      let x = Commcx.Inputs.gen_promise rng ~k:sl ~t:2 ~intersecting in
      let claim =
        if intersecting then Maxis_core.Claims.claim6 p x
        else Maxis_core.Claims.claim7 p x
      in
      T.add_row table
        [
          (if intersecting then "uniquely intersecting" else "pairwise disjoint");
          T.cell_int claim.Maxis_core.Claims.opt;
          claim.Maxis_core.Claims.name;
          T.cell_int claim.Maxis_core.Claims.bound;
          (if claim.Maxis_core.Claims.holds then "holds" else "VIOLATED");
        ])
    [ true; false ];
  T.print ~title:"Claims 6 and 7" table;

  (* The quadratic payoff: strings grow as n^2 while the cut stays put. *)
  let table2 =
    T.create
      [
        T.column "ell";
        T.column "n";
        T.column "k^2 (string bits)";
        T.column "cut";
        T.column "bits/cut";
      ]
  in
  List.iter
    (fun ell ->
      let p = P.make ~alpha:1 ~ell ~players:2 in
      let sl = QF.string_length p in
      let cut = QF.expected_cut_size p in
      T.add_row table2
        [
          T.cell_int ell;
          T.cell_int (QF.n_nodes p);
          T.cell_int sl;
          T.cell_int cut;
          T.cell_float (float_of_int sl /. float_of_int cut);
        ])
    [ 3; 6; 12; 24; 48; 96 ];
  T.print ~title:"k^2 vs cut (why the bound is quadratic)" table2;
  Format.printf
    "@.Every extra factor of k^2/cut in string length divides straight into \
     the round bound: Omega(k^2 / (t log t cut log n)) = Omega(n^2/log^3 n).@."
