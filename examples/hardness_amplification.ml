(* Hardness amplification (Section 4.2.2): more players, harder ratio.

   The two-party framework cannot defeat 1/2-approximation; with t players
   the barrier moves to 1/t, and the construction's gap
   (t+1)l + at^2  versus  t(2l + a) approaches 1/2 as t grows (taking
   ell >> alpha t^2, the paper's regime where ell ~ log k).

   This example sweeps t, measures the exact OPT of both promise sides on
   concrete instances, and prints the closing ratio — Lemma 2 live.

   Run with:  dune exec examples/hardness_amplification.exe *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module T = Stdx.Tablefmt

let measure p ~intersecting seed =
  let rng = Stdx.Prng.create seed in
  let x =
    Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting
  in
  Mis.Exact.opt (LF.instance p x).Maxis_core.Family.graph

let () =
  Format.printf
    "Lemma 2: hardness amplification with t players (ell = t^2+1 so the \
     formal gap separates)@.";
  let table =
    T.create
      [
        T.column "t";
        T.column "ell";
        T.column "k";
        T.column "n";
        T.column "OPT(inter)";
        T.column "OPT(disj)";
        T.column "bound hi";
        T.column "bound lo";
        T.column "measured ratio";
        T.column "formula lo/hi";
        T.column "paper limit";
      ]
  in
  List.iter
    (fun t ->
      let ell = (t * t) + 1 in
      let p = P.make ~alpha:1 ~ell ~players:t in
      let hi = measure p ~intersecting:true 1 in
      let lo = measure p ~intersecting:false 2 in
      T.add_row table
        [
          T.cell_int t;
          T.cell_int ell;
          T.cell_int (P.k p);
          T.cell_int (LF.n_nodes p);
          T.cell_int hi;
          T.cell_int lo;
          T.cell_int (LF.high_weight p);
          T.cell_int (LF.low_weight p);
          T.cell_ratio (float_of_int lo /. float_of_int hi);
          T.cell_ratio
            (float_of_int (LF.low_weight p) /. float_of_int (LF.high_weight p));
          T.cell_ratio (0.5 +. (1.0 /. float_of_int t));
        ])
    [ 2; 3; 4 ];
  T.print ~title:"gap ratio vs number of players" table;
  Format.printf
    "@.As t grows the achievable ratio falls toward 1/2: a (1/2+eps)-\
     approximation algorithm with t = ceil(2/eps) players distinguishes the \
     sides,@\nso Theorem 1 gives Omega(n/log^3 n) rounds for every constant \
     eps > 0.@.";
  (* The closed-form trend further out (construction too large to solve
     exactly, but the bound formulas tell the story). *)
  let table2 =
    T.create [ T.column "t"; T.column "formula lo/hi (ell = 4t^2)" ]
  in
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:(4 * t * t) ~players:t in
      T.add_row table2
        [
          T.cell_int t;
          T.cell_ratio
            (float_of_int (LF.low_weight p) /. float_of_int (LF.high_weight p));
        ])
    [ 2; 4; 8; 16; 32; 64 ];
  T.print ~title:"formula ratio, large t" table2
