#!/usr/bin/env bash
# Crash-safety check for the sweep journal (docs/RESILIENCE.md): run the
# T1-gap sweep, SIGKILL it as soon as the journal has recorded at least
# one completed cell, resume with MAXIS_RESUME=1, and require
#
#   * every final CSV (and stdout) byte-identical to an uninterrupted
#     reference run,
#   * the resumed run re-solved nothing that was journaled
#     (skipped == resumed > 0, and strictly fewer exact solves than the
#     reference).
#
# SIGKILL on purpose: no handler can run, so this exercises the
# per-cell durability of the atomic journal appends, not the SIGINT
# flush path.
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"
dune build bench/main.exe
EXE="$ROOT/_build/default/bench/main.exe"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
echo "workdir: $WORK"

# Extract "name=<int>" from a stderr counters line.
counter() { grep -o "$2=[0-9]*" "$1" | head -n1 | cut -d= -f2; }

# --- Reference: one uninterrupted run, isolated cache -----------------
mkdir -p "$WORK/ref"
(cd "$WORK/ref" && MAXIS_CACHE_DIR="$WORK/ref-cache" \
  "$EXE" T1-gap >out.txt 2>err.txt)
ref_solves=$(counter "$WORK/ref/err.txt" solves)
echo "reference: solves=$ref_solves"
test "$ref_solves" -gt 0

# --- Interrupted run: SIGKILL once a cell is journaled ----------------
mkdir -p "$WORK/run"
cd "$WORK/run"
journal=results/journal/ci.journal
MAXIS_CACHE_DIR="$WORK/run-cache" MAXIS_RUN_ID=ci \
  "$EXE" T1-gap >kill.out 2>kill.err &
pid=$!
# Wait for the header plus at least one cell line, then kill -9.
for _ in $(seq 1 600); do
  if [ -f "$journal" ] && [ "$(wc -l <"$journal")" -ge 2 ]; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -9 "$pid" 2>/dev/null; then
  echo "killed pid $pid with $(($(wc -l <"$journal") - 1)) cells journaled"
else
  echo "warning: run finished before it could be killed"
fi
wait "$pid" 2>/dev/null || true
test -f "$journal"
test "$(wc -l <"$journal")" -ge 2

# --- Resume and compare ----------------------------------------------
MAXIS_CACHE_DIR="$WORK/run-cache" MAXIS_RUN_ID=ci MAXIS_RESUME=1 \
  "$EXE" T1-gap >out.txt 2>err.txt

resumed=$(counter err.txt resumed)
skipped=$(counter err.txt skipped)
res_solves=$(counter err.txt solves)
echo "resume: resumed=$resumed skipped=$skipped solves=$res_solves"

test "$resumed" -gt 0                 # the journal actually carried cells over
test "$skipped" -eq "$resumed"        # every journaled cell skipped, none re-solved
test "$res_solves" -lt "$ref_solves"  # strictly less work than from scratch

diff "$WORK/ref/out.txt" out.txt      # stdout byte-identical
for csv in "$WORK"/ref/results/*.csv; do
  diff "$csv" "results/$(basename "$csv")"
done
echo "kill/resume: OK ($(ls "$WORK"/ref/results/*.csv | wc -l) CSVs byte-identical)"
