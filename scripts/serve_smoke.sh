#!/usr/bin/env bash
# End-to-end smoke test for the solve daemon (docs/SERVING.md): start a
# real `maxis_lb serve` process, aim the SERVE bench's capability +
# load legs at it over the wire (MAXIS_SERVE_SOCKET external mode),
# require every capability verdict to pass and serve_requests_total to
# be visible on the Prometheus scrape, then SIGTERM the daemon and
# require a clean drain: exit code 0 and the socket files unlinked.
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"
dune build bin/maxis_lb.exe bench/main.exe
CLI="$ROOT/_build/default/bin/maxis_lb.exe"
BENCH="$ROOT/_build/default/bench/main.exe"

WORK=$(mktemp -d)
SOCK="$WORK/wire.sock"
MSOCK="$WORK/metrics.sock"
cleanup() {
  if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT
echo "workdir: $WORK"

# --- Start the daemon --------------------------------------------------
# cwd = workdir so its default cache (results/cache) stays in the temp
# tree; 64 KiB line cap so the bench's oversized-line capability row is
# exercised against this daemon too (the bench assumes this cap).
(cd "$WORK" && exec "$CLI" serve \
  --listen "unix:$SOCK" --metrics-listen "unix:$MSOCK" \
  --jobs 2 --max-line-bytes 65536 \
  2>"$WORK/daemon.err") &
daemon_pid=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$WORK/daemon.err"; exit 1; }
  sleep 0.1
done
test -S "$SOCK" || { echo "daemon never bound $SOCK"; exit 1; }
echo "daemon: pid=$daemon_pid listening on $SOCK"

# --- Drive it: SERVE bench in external mode ----------------------------
(cd "$WORK" && \
  MAXIS_SERVE_SOCKET="unix:$SOCK" MAXIS_SERVE_METRICS_SOCKET="unix:$MSOCK" \
  "$BENCH" SERVE >bench.out 2>bench.err)
cat "$WORK/bench.out"

if grep -q 'FAIL' "$WORK/bench.out"; then
  echo "smoke: a capability or verdict row did not pass"
  exit 1
fi
grep -q 'scrape shows serve_requests_total' "$WORK/bench.out"

# --- Drain: SIGTERM must exit 0 and unlink the sockets -----------------
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
echo "daemon exit status: $status"
grep -i 'drained' "$WORK/daemon.err" || true
test "$status" -eq 0 || { echo "FAIL: drain exited $status"; cat "$WORK/daemon.err"; exit 1; }
test ! -e "$SOCK" || { echo "FAIL: wire socket not unlinked"; exit 1; }
test ! -e "$MSOCK" || { echo "FAIL: metrics socket not unlinked"; exit 1; }

echo "serve smoke: OK"
