(* Tests for the Theorem 1/2 bound calculators, the Bachrach-et-al.
   baseline comparison, the Limitations (1/t-approximation) protocol, and
   the Predicate module. *)

module P = Maxis_core.Params
module LF = Maxis_core.Linear_family
module QF = Maxis_core.Quadratic_family
module Theorems = Maxis_core.Theorems
module Baseline = Maxis_core.Bachrach_baseline
module Limitations = Maxis_core.Limitations
module Predicate = Maxis_core.Predicate
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let p3 = P.make ~alpha:1 ~ell:4 ~players:3

(* ------------------------------------------------------------------ *)
(* Predicate *)

let test_predicate_classify () =
  let p = Predicate.make ~name:"x" ~high:10 ~low:7 in
  check "high" true (Predicate.classify p 10 = `High);
  check "higher" true (Predicate.classify p 15 = `High);
  check "low" true (Predicate.classify p 7 = `Low);
  check "lower" true (Predicate.classify p 0 = `Low);
  check "gap violation" true (Predicate.classify p 8 = `Gap_violation);
  check_float "gamma" 0.7 (Predicate.gamma p);
  Alcotest.(check (option bool)) "low -> TRUE" (Some true) (Predicate.decides_to p 5);
  Alcotest.(check (option bool)) "high -> FALSE" (Some false) (Predicate.decides_to p 12);
  Alcotest.(check (option bool)) "violation -> None" None (Predicate.decides_to p 8)

let test_predicate_validation () =
  Alcotest.check_raises "low >= high"
    (Invalid_argument "Predicate.make: need 0 <= low < high (got 5, 5)")
    (fun () -> ignore (Predicate.make ~name:"x" ~high:5 ~low:5))

(* ------------------------------------------------------------------ *)
(* Theorem reports *)

let test_linear_report_fields () =
  let r = Theorems.linear p3 in
  check_int "k" (P.k p3) r.Theorems.k;
  check_int "strings = k" (P.k p3) r.Theorems.string_length;
  check_int "t" 3 r.Theorems.t;
  check_int "n" (LF.n_nodes p3) r.Theorems.n;
  check_int "cut measured" (LF.expected_cut_size p3) r.Theorems.cut;
  check "positive bound" true (r.Theorems.rounds_lower_bound > 0.0);
  (* rounds = cc / (2 cut log n) *)
  check_float "formula"
    (r.Theorems.cc_bits /. (2.0 *. float_of_int r.Theorems.cut *. r.Theorems.log_n))
    r.Theorems.rounds_lower_bound

let test_quadratic_report_fields () =
  let r = Theorems.quadratic p3 in
  check_int "strings = k^2" (P.k p3 * P.k p3) r.Theorems.string_length;
  check_int "n doubled" (QF.n_nodes p3) r.Theorems.n;
  check_int "cut doubled" (QF.expected_cut_size p3) r.Theorems.cut;
  (* the quadratic bound at the same params dwarfs the linear one once k
     grows; at least it is never smaller here *)
  let lin = Theorems.linear p3 in
  check "quadratic >= linear shape" true (r.Theorems.shape >= lin.Theorems.shape)

let test_shapes () =
  check_float "linear shape" (1024.0 /. 1000.0) (Theorems.linear_shape ~n:1024.0);
  check_float "quadratic shape" (1024.0 *. 1024.0 /. 1000.0)
    (Theorems.quadratic_shape ~n:1024.0);
  (* monotone growth *)
  check "monotone" true
    (Theorems.linear_shape ~n:10000.0 > Theorems.linear_shape ~n:1000.0)

let test_bound_grows_with_k () =
  (* The bound only grows when alpha grows with k — exactly why the paper
     sets alpha ~ log k / log log k.  (With alpha fixed at 1, k = ell+1
     grows linearly while the cut grows cubically and the bound *shrinks*;
     that regime is tested nowhere near tight.)  Sweep the paper-style
     direction: alpha and ell both increasing. *)
  let bounds =
    List.map
      (fun (alpha, ell) ->
        (Theorems.linear (P.make ~alpha ~ell ~players:3)).Theorems.rounds_lower_bound)
      [ (1, 4); (2, 4); (3, 5); (4, 6) ]
  in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  check "increasing in ell" true (increasing bounds)

let test_epsilon_statements () =
  let s1 = Theorems.theorem1_statement ~epsilon:0.25 in
  check_int "t = 8" 8 s1.Theorems.players_used;
  check_float "ratio" 0.75 s1.Theorems.defeated_ratio;
  (* n / (t log t log^3 n) at n = 1024: 1024 / (8*3*1000) *)
  check_float "rounds" (1024.0 /. 24000.0) (s1.Theorems.rounds_at ~n:1024.0);
  let s2 = Theorems.theorem2_statement ~epsilon:0.125 in
  check_int "t = 5" 5 s2.Theorems.players_used;
  check_float "ratio" 0.875 s2.Theorems.defeated_ratio;
  (* doubling n multiplies n^2 by 4 and log^3 n by (11/10)^3: net x3.005 *)
  check "quadratic in n" true
    (s2.Theorems.rounds_at ~n:2048.0 > 2.9 *. s2.Theorems.rounds_at ~n:1024.0);
  Alcotest.check_raises "eps range"
    (Invalid_argument "Theorems.theorem1_statement: need 0 < epsilon < 1/2")
    (fun () -> ignore (Theorems.theorem1_statement ~epsilon:0.5))

let test_epsilon_tradeoff () =
  (* Smaller eps -> harder ratio but weaker constant (more players). *)
  let tight = Theorems.theorem1_statement ~epsilon:0.01 in
  let loose = Theorems.theorem1_statement ~epsilon:0.4 in
  check "harder ratio" true
    (tight.Theorems.defeated_ratio < loose.Theorems.defeated_ratio);
  check "weaker constant" true
    (tight.Theorems.rounds_at ~n:65536.0 < loose.Theorems.rounds_at ~n:65536.0)

(* ------------------------------------------------------------------ *)
(* Baseline comparison *)

let test_baseline_entries () =
  check_int "five entries" 5 (List.length Baseline.all);
  check_float "bachrach linear ratio" (5.0 /. 6.0) Baseline.bachrach_linear.Baseline.ratio;
  check_float "this paper linear ratio" 0.5 Baseline.this_paper_linear.Baseline.ratio;
  check_float "this paper quadratic ratio" 0.75 Baseline.this_paper_quadratic.Baseline.ratio

let test_improvement_over_bachrach () =
  (* This paper's bounds are stronger at every realistic n: log^3 factor
     saved in rounds, and strictly smaller defeated ratio. *)
  List.iter
    (fun n ->
      check "linear rounds stronger" true
        (Baseline.improvement_factor ~old_bound:Baseline.bachrach_linear
           ~new_bound:Baseline.this_paper_linear ~n
        > 1.0);
      check "quadratic rounds stronger" true
        (Baseline.improvement_factor ~old_bound:Baseline.bachrach_quadratic
           ~new_bound:Baseline.this_paper_quadratic ~n
        > 1.0))
    [ 1024.0; 1048576.0 ];
  check "harder ratio (linear)" true
    (Baseline.this_paper_linear.Baseline.ratio < Baseline.bachrach_linear.Baseline.ratio);
  check "harder ratio (quadratic)" true
    (Baseline.this_paper_quadratic.Baseline.ratio
    < Baseline.bachrach_quadratic.Baseline.ratio)

let test_improvement_factor_value () =
  (* linear improvement = log^3 n exactly *)
  let n = 1024.0 in
  check_float "log^3" 1000.0
    (Baseline.improvement_factor ~old_bound:Baseline.bachrach_linear
       ~new_bound:Baseline.this_paper_linear ~n)

(* ------------------------------------------------------------------ *)
(* Regime *)

module Regime = Maxis_core.Regime

let test_regime_consistency () =
  let r = Regime.at ~target_k:65536 ~players:3 in
  let p = r.Regime.params in
  check_int "realized = (l+a)^a" r.Regime.realized_k
    (Stdx.Mathx.pow (P.positions p) (P.alpha p));
  check "ratio positive" true (r.Regime.k_ratio > 0.0);
  check "padding small" true (r.Regime.prime_padding >= 0 && r.Regime.prime_padding < 10);
  check_int "nodes formula" (Maxis_core.Linear_family.n_nodes p) (Regime.nodes_linear r);
  check_int "nodes quadratic" (2 * Maxis_core.Linear_family.n_nodes p)
    (Regime.nodes_quadratic r)

let test_regime_alpha_grows () =
  let alpha_at k = P.alpha (Regime.at ~target_k:k ~players:2).Regime.params in
  check "alpha grows with k" true
    (alpha_at 16 <= alpha_at 65536 && alpha_at 65536 <= alpha_at 1073741824);
  check "alpha nontrivial at large k" true (alpha_at 1073741824 >= 4)

let test_regime_validation () =
  Alcotest.check_raises "k too small"
    (Invalid_argument "Code_params.paper_regime: k must be >= 2") (fun () ->
      ignore (Regime.at ~target_k:1 ~players:2))

(* ------------------------------------------------------------------ *)
(* Two-party framework (the paper's baseline framework) *)

module Two_party = Maxis_core.Two_party

let test_two_party_spec_exhaustive () =
  (* Unlike the promise families, the two-party spec must decide *every*
     input pair.  Exhaust all 2^k x 2^k subsets at k = 4. *)
  let p = Two_party.params ~ell:3 in
  let k = P.k p in
  Alcotest.(check int) "k" 4 k;
  let spec = Two_party.spec p in
  for a = 0 to (1 lsl k) - 1 do
    for b = 0 to (1 lsl k) - 1 do
      let bits_of m = List.filter (fun j -> m land (1 lsl j) <> 0) (List.init k Fun.id) in
      let x = Commcx.Inputs.of_bit_lists ~k [ bits_of a; bits_of b ] in
      let r = Maxis_core.Family.check_condition2 spec x in
      if not r.Maxis_core.Family.ok then
        Alcotest.failf "a=%d b=%d opt=%d expected=%b" a b
          r.Maxis_core.Family.opt r.Maxis_core.Family.expected
    done
  done

let test_two_party_round_bound () =
  let p = Two_party.params ~ell:4 in
  let b = Two_party.round_bound p in
  Alcotest.(check int) "cc = k" (P.k p) (int_of_float b.Two_party.cc_bits);
  check "positive" true (b.Two_party.rounds_lower_bound > 0.0);
  check_float "ratio" 0.75 b.Two_party.gamma_defeated;
  (* The two-party CC (k bits, no t log t loss) beats the t=2 promise-based
     arithmetic by exactly the factor 2 = t*log t. *)
  let promise =
    Commcx.Cc_bounds.eval_bits Commcx.Cc_bounds.promise_pairwise_disjointness
      ~k:(P.k p) ~t:2
  in
  check_float "factor 2" (b.Two_party.cc_bits /. 2.0) promise

let test_two_party_barrier () =
  check_float "barrier" 0.5 Two_party.barrier_ratio;
  (* The multi-party Theorem 1 defeats ratios *below* the two-party
     barrier: that is the paper's headline. *)
  let s = Theorems.theorem1_statement ~epsilon:0.05 in
  check "beyond Alice and Bob" true
    (s.Theorems.defeated_ratio < 0.75
    && s.Theorems.defeated_ratio > Two_party.barrier_ratio)

let test_two_party_requires_two () =
  Alcotest.check_raises "three players"
    (Invalid_argument "Two_party.round_bound: need exactly two players")
    (fun () ->
      ignore (Two_party.round_bound (P.make ~alpha:1 ~ell:4 ~players:3)))

(* ------------------------------------------------------------------ *)
(* Limitations: the 1/t floor *)

let instance seed p ~intersecting =
  let rng = Prng.create seed in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting in
  LF.instance p x

let test_limitations_ratio_floor () =
  List.iter
    (fun (p, seed, inter) ->
      let inst = instance seed p ~intersecting:inter in
      let r = Limitations.run inst in
      let floor = 1.0 /. float_of_int r.Limitations.players in
      check
        (Printf.sprintf "ratio %.3f >= 1/t %.3f" r.Limitations.ratio floor)
        true
        (r.Limitations.ratio >= floor -. 1e-9))
    [
      (P.make ~alpha:1 ~ell:4 ~players:2, 3, true);
      (P.make ~alpha:1 ~ell:4 ~players:2, 4, false);
      (p3, 5, true);
      (p3, 6, false);
      (P.make ~alpha:1 ~ell:5 ~players:4, 7, false);
    ]

let test_limitations_cheap () =
  (* O(t log W) bits: tiny compared to the k-ish cost the reduction needs. *)
  let inst = instance 9 p3 ~intersecting:false in
  let r = Limitations.run inst in
  check "few bits" true (r.Limitations.bits <= 3 * 16);
  check_int "t values" 3 (Array.length r.Limitations.local_opts)

let test_limitations_local_opts_valid () =
  let inst = instance 11 p3 ~intersecting:true in
  let r = Limitations.run inst in
  Array.iter
    (fun v -> check "local <= global" true (v <= r.Limitations.global_opt))
    r.Limitations.local_opts;
  check_int "best is max" (Array.fold_left max 0 r.Limitations.local_opts)
    r.Limitations.best_local

let test_limitations_as_protocol () =
  let p = p3 in
  let spec = LF.spec p in
  let proto = Limitations.as_protocol spec in
  let rng = Prng.create 13 in
  let x = Commcx.Inputs.gen_promise rng ~k:(P.k p) ~t:3 ~intersecting:true in
  let o = Commcx.Protocol.execute proto x in
  check "writes t values" true (o.Commcx.Protocol.writes = 3);
  (* t values of <= 16 bits each: logarithmic in the total weight, versus
     the Omega(k/t log t) the reduction forces for exact answers. *)
  check "cheap" true (o.Commcx.Protocol.bits <= 3 * 16)

let prop_limitations_floor_random =
  QCheck.Test.make ~name:"1/t floor on random instances" ~count:10
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let inst = instance seed p3 ~intersecting:inter in
      let r = Limitations.run inst in
      r.Limitations.ratio >= (1.0 /. 3.0) -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Verification auditor *)

module Verification = Maxis_core.Verification

let test_verification_all_ok () =
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let items = Verification.run ~seed:7 ~samples:2 p in
  check "all ok" true (Verification.all_ok items);
  (* the audit is substantial: code + properties + claims + conditions +
     both reductions *)
  check "substantial" true (List.length items >= 15);
  (* t = 2 also runs the warm-up claims *)
  check "warm-up claims present" true
    (List.exists (fun i -> i.Verification.name = "Claim 1") items)

let test_verification_skips_invalid_gap () =
  (* Figure parameters at t = 3: no formal gap, so conditions/reduction
     are skipped with an explanatory item, and nothing fails. *)
  let p = P.figure_params ~players:3 in
  let items = Verification.run ~seed:7 ~samples:1 p in
  check "all ok" true (Verification.all_ok items);
  check "skip recorded" true
    (List.exists
       (fun i ->
         i.Verification.name = "Definition 4, conditions + reduction")
       items)

let test_verification_deterministic () =
  let p = P.make ~alpha:1 ~ell:4 ~players:3 in
  let a = Verification.run ~seed:11 ~samples:1 p in
  let b = Verification.run ~seed:11 ~samples:1 p in
  check "same audit" true (a = b)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "theorems"
    [
      ( "predicate",
        [
          Alcotest.test_case "classify" `Quick test_predicate_classify;
          Alcotest.test_case "validation" `Quick test_predicate_validation;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "linear report" `Quick test_linear_report_fields;
          Alcotest.test_case "quadratic report" `Quick test_quadratic_report_fields;
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "grows with k" `Quick test_bound_grows_with_k;
          Alcotest.test_case "epsilon statements" `Quick test_epsilon_statements;
          Alcotest.test_case "epsilon tradeoff" `Quick test_epsilon_tradeoff;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "entries" `Quick test_baseline_entries;
          Alcotest.test_case "improvement" `Quick test_improvement_over_bachrach;
          Alcotest.test_case "improvement value" `Quick test_improvement_factor_value;
        ] );
      ( "verification",
        [
          Alcotest.test_case "all ok" `Quick test_verification_all_ok;
          Alcotest.test_case "skips invalid gap" `Quick
            test_verification_skips_invalid_gap;
          Alcotest.test_case "deterministic" `Quick test_verification_deterministic;
        ] );
      ( "regime",
        [
          Alcotest.test_case "consistency" `Quick test_regime_consistency;
          Alcotest.test_case "alpha grows" `Quick test_regime_alpha_grows;
          Alcotest.test_case "validation" `Quick test_regime_validation;
        ] );
      ( "two-party",
        [
          Alcotest.test_case "exhaustive decision" `Slow test_two_party_spec_exhaustive;
          Alcotest.test_case "round bound" `Quick test_two_party_round_bound;
          Alcotest.test_case "barrier" `Quick test_two_party_barrier;
          Alcotest.test_case "arity" `Quick test_two_party_requires_two;
        ] );
      ( "limitations",
        [
          Alcotest.test_case "ratio floor" `Quick test_limitations_ratio_floor;
          Alcotest.test_case "cheap" `Quick test_limitations_cheap;
          Alcotest.test_case "local opts valid" `Quick test_limitations_local_opts_valid;
          Alcotest.test_case "as protocol" `Quick test_limitations_as_protocol;
        ] );
      qsuite "limitations-props" [ prop_limitations_floor_random ];
    ]
