(* Tests for the wgraph substrate: graphs, builders, matching, cuts,
   checks, metrics, DOT export. *)

module Graph = Wgraph.Graph
module Build = Wgraph.Build
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph core *)

let test_create_empty () =
  let g = Graph.create 5 in
  check_int "n" 5 (Graph.n g);
  check_int "edges" 0 (Graph.edge_count g);
  check_int "weight default" 1 (Graph.weight g 0);
  check_int "total weight" 5 (Graph.total_weight g);
  check_int "max degree" 0 (Graph.max_degree g)

let test_add_edges () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 1;
  check_int "edge count" 2 (Graph.edge_count g);
  check "has 0-1" true (Graph.has_edge g 0 1);
  check "symmetric" true (Graph.has_edge g 1 0);
  check "no 0-2" false (Graph.has_edge g 0 2);
  check_int "degree 1" 2 (Graph.degree g 1);
  Graph.remove_edge g 0 1;
  check "removed" false (Graph.has_edge g 0 1);
  check_int "edge count after" 1 (Graph.edge_count g)

let test_self_loop_rejected () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_bad_node () =
  let g = Graph.create 3 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: node 3 out of range [0, 3)") (fun () ->
      ignore (Graph.degree g 3))

let test_weights () =
  let g = Graph.create 3 in
  Graph.set_weight g 0 10;
  Graph.set_weight g 2 5;
  check_int "w0" 10 (Graph.weight g 0);
  check_int "total" 16 (Graph.total_weight g);
  check_int "set weight of" 15 (Graph.set_weight_of g (Bitset.of_list 3 [ 0; 2 ]));
  Alcotest.check_raises "negative" (Invalid_argument "Graph.set_weight: negative weight")
    (fun () -> Graph.set_weight g 0 (-1))

let test_labels () =
  let g = Graph.create 2 in
  Alcotest.(check string) "default" "1" (Graph.label g 1);
  Graph.set_label g 1 "v^1_2";
  Alcotest.(check string) "custom" "v^1_2" (Graph.label g 1)

let test_iter_edges_each_once () =
  let g = Build.complete 5 in
  let count = ref 0 in
  Graph.iter_edges (fun u v -> check "u<v" true (u < v); incr count) g;
  check_int "edges once" 10 !count;
  check_int "edges list" 10 (List.length (Graph.edges g))

let test_copy_independent () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  let h = Graph.copy g in
  Graph.add_edge h 1 2;
  check "copy has new" true (Graph.has_edge h 1 2);
  check "orig clean" false (Graph.has_edge g 1 2);
  Graph.set_weight h 0 9;
  check_int "orig weight" 1 (Graph.weight g 0)

let test_induced () =
  let g = Build.cycle 6 in
  Graph.set_weight g 2 7;
  let sub, mapping = Graph.induced g (Bitset.of_list 6 [ 1; 2; 3 ]) in
  check_int "sub n" 3 (Graph.n sub);
  Alcotest.(check (array int)) "mapping" [| 1; 2; 3 |] mapping;
  check_int "sub edges" 2 (Graph.edge_count sub);
  check_int "weight carried" 7 (Graph.weight sub 1);
  check "edge 0-1 (1-2 orig)" true (Graph.has_edge sub 0 1);
  check "no edge 0-2 (1-3 orig)" false (Graph.has_edge sub 0 2)

let test_disjoint_union () =
  let g = Build.complete 3 and h = Build.path 4 in
  let u, shift = Graph.disjoint_union g h in
  check_int "shift" 3 shift;
  check_int "n" 7 (Graph.n u);
  check_int "edges" (3 + 3) (Graph.edge_count u);
  check "no cross edges" true
    (not (Graph.has_edge u 0 3) && not (Graph.has_edge u 2 6))

let test_complement () =
  let g = Build.path 4 in
  let c = Graph.complement g in
  check_int "edges" (6 - 3) (Graph.edge_count c);
  check "path edge gone" false (Graph.has_edge c 0 1);
  check "non-edge present" true (Graph.has_edge c 0 2);
  let cc = Graph.complement c in
  check "double complement" true (Graph.equal g cc)

(* ------------------------------------------------------------------ *)
(* Builders *)

let test_complete () =
  let g = Build.complete 6 in
  check_int "edges" 15 (Graph.edge_count g);
  check_int "degree" 5 (Graph.max_degree g)

let test_path_cycle_star () =
  check_int "path edges" 4 (Graph.edge_count (Build.path 5));
  check_int "cycle edges" 5 (Graph.edge_count (Build.cycle 5));
  check_int "star edges" 4 (Graph.edge_count (Build.star 5));
  check_int "tiny cycle" 1 (Graph.edge_count (Build.cycle 2))

let test_complete_bipartite () =
  let g = Build.complete_bipartite 3 4 in
  check_int "edges" 12 (Graph.edge_count g);
  check "no left-left" false (Graph.has_edge g 0 1);
  check "cross" true (Graph.has_edge g 0 3)

let test_connect_complement_of_matching () =
  (* Figure 2: every sigma^i_(h,r) adjacent to all of C^j_h except its twin. *)
  let g = Graph.create 6 in
  let xs = [| 0; 1; 2 |] and ys = [| 3; 4; 5 |] in
  Build.connect_complement_of_matching g xs ys;
  check_int "edges" 6 (Graph.edge_count g);
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          check
            (Printf.sprintf "edge %d-%d" x y)
            (i <> j) (Graph.has_edge g x y))
        ys)
    xs;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Build.connect_complement_of_matching: length mismatch")
    (fun () -> Build.connect_complement_of_matching g xs [| 0 |])

let test_make_clique () =
  let g = Graph.create 5 in
  Build.make_clique g [ 0; 2; 4 ];
  check_int "edges" 3 (Graph.edge_count g);
  check "clique check" true (Wgraph.Check.is_clique g (Bitset.of_list 5 [ 0; 2; 4 ]))

let test_erdos_renyi_extremes () =
  let rng = Prng.create 1 in
  let g0 = Build.erdos_renyi rng 10 0.0 in
  check_int "p=0" 0 (Graph.edge_count g0);
  let g1 = Build.erdos_renyi rng 10 1.0 in
  check_int "p=1" 45 (Graph.edge_count g1)

(* ------------------------------------------------------------------ *)
(* Check *)

let test_is_independent () =
  let g = Build.cycle 5 in
  check "alternating" true (Wgraph.Check.is_independent g (Bitset.of_list 5 [ 0; 2 ]));
  check "adjacent pair" false (Wgraph.Check.is_independent g (Bitset.of_list 5 [ 0; 1 ]));
  check "empty" true (Wgraph.Check.is_independent g (Bitset.create 5));
  Alcotest.(check (list (pair int int)))
    "violations" [ (0, 1) ]
    (Wgraph.Check.independence_violations g (Bitset.of_list 5 [ 0; 1; 3 ]))

let test_is_clique () =
  let g = Build.complete 4 in
  check "whole" true (Wgraph.Check.is_clique g (Bitset.full 4));
  let h = Build.path 4 in
  check "path not clique" false (Wgraph.Check.is_clique h (Bitset.of_list 4 [ 0; 1; 2 ]));
  check "single" true (Wgraph.Check.is_clique h (Bitset.of_list 4 [ 0 ]));
  check "edge" true (Wgraph.Check.is_clique h (Bitset.of_list 4 [ 0; 1 ]))

let test_is_maximal_independent () =
  let g = Build.path 4 in
  check "0,2 not maximal" false
    (Wgraph.Check.is_maximal_independent g (Bitset.of_list 4 [ 0 ]));
  check "0,2 maximal" true
    (Wgraph.Check.is_maximal_independent g (Bitset.of_list 4 [ 0; 2 ]));
  check "not independent" false
    (Wgraph.Check.is_maximal_independent g (Bitset.of_list 4 [ 0; 1 ]));
  check "0,3 maximal" true
    (Wgraph.Check.is_maximal_independent g (Bitset.of_list 4 [ 0; 3 ]))

let test_vertex_cover_domination () =
  let g = Build.star 5 in
  check "center covers" true (Wgraph.Check.is_vertex_cover g (Bitset.of_list 5 [ 0 ]));
  check "leaf doesn't" false (Wgraph.Check.is_vertex_cover g (Bitset.of_list 5 [ 1 ]));
  check "center dominates" true (Wgraph.Check.dominates g (Bitset.of_list 5 [ 0 ]));
  check "leaves dominate" true
    (Wgraph.Check.dominates g (Bitset.of_list 5 [ 1; 2; 3; 4 ]))

(* ------------------------------------------------------------------ *)
(* Matching *)

let test_matching_perfect () =
  let g = Build.complete_bipartite 4 4 in
  let r =
    Wgraph.Matching.max_bipartite_matching g ~left:[| 0; 1; 2; 3 |]
      ~right:[| 4; 5; 6; 7 |]
  in
  check_int "size" 4 r.Wgraph.Matching.size;
  check "valid" true (Wgraph.Matching.is_matching g r.Wgraph.Matching.pairs)

let test_matching_complement_of_matching () =
  (* Property 2's engine: complement-of-perfect-matching between two sets of
     size q has a perfect matching for q >= 2 (a derangement exists). *)
  let q = 5 in
  let g = Graph.create (2 * q) in
  let xs = Array.init q Fun.id and ys = Array.init q (fun i -> q + i) in
  Build.connect_complement_of_matching g xs ys;
  let r = Wgraph.Matching.max_bipartite_matching g ~left:xs ~right:ys in
  check_int "derangement size" q r.Wgraph.Matching.size

let test_matching_unbalanced () =
  let g = Build.complete_bipartite 2 5 in
  let r =
    Wgraph.Matching.max_bipartite_matching g ~left:[| 0; 1 |]
      ~right:[| 2; 3; 4; 5; 6 |]
  in
  check_int "size" 2 r.Wgraph.Matching.size

let test_matching_empty () =
  let g = Graph.create 4 in
  let r = Wgraph.Matching.max_bipartite_matching g ~left:[| 0; 1 |] ~right:[| 2; 3 |] in
  check_int "no edges" 0 r.Wgraph.Matching.size;
  Alcotest.(check (list (pair int int))) "no pairs" [] r.Wgraph.Matching.pairs

let test_is_matching_rejects () =
  let g = Build.complete_bipartite 2 2 in
  check "reuse vertex" false (Wgraph.Matching.is_matching g [ (0, 2); (0, 3) ]);
  check "non-edge" false (Wgraph.Matching.is_matching g [ (0, 1) ]);
  check "ok" true (Wgraph.Matching.is_matching g [ (0, 2); (1, 3) ])

let prop_matching_bounded =
  QCheck.Test.make ~name:"matching <= min side, pairs valid" ~count:60
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 2 + (nn mod 8) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng (2 * n) 0.4 in
      let left = Array.init n Fun.id and right = Array.init n (fun i -> n + i) in
      let r = Wgraph.Matching.max_bipartite_matching g ~left ~right in
      r.Wgraph.Matching.size <= n
      && Wgraph.Matching.is_matching g r.Wgraph.Matching.pairs
      && List.length r.Wgraph.Matching.pairs = r.Wgraph.Matching.size)

(* König on small random bipartite graphs: max matching + max independent
   set = total vertices. *)
let prop_matching_konig =
  QCheck.Test.make ~name:"Konig duality on random bipartite graphs" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let n = 4 in
      let g = Graph.create (2 * n) in
      for u = 0 to n - 1 do
        for v = n to (2 * n) - 1 do
          if Prng.float rng 1.0 < 0.4 then Graph.add_edge g u v
        done
      done;
      let left = Array.init n Fun.id and right = Array.init n (fun i -> n + i) in
      let m = (Wgraph.Matching.max_bipartite_matching g ~left ~right).Wgraph.Matching.size in
      let alpha, _ = Mis.Brute.solve g in
      m + alpha = 2 * n)

(* ------------------------------------------------------------------ *)
(* Cut *)

let test_cut_basic () =
  let g = Build.cycle 6 in
  let part = [| 0; 0; 0; 1; 1; 1 |] in
  check_int "cut size" 2 (Wgraph.Cut.size g part);
  Alcotest.(check (list (pair int int))) "cut edges" [ (0, 5); (2, 3) ]
    (Wgraph.Cut.edges g part);
  check_int "parts" 2 (Wgraph.Cut.parts part);
  Alcotest.(check (list int)) "part 1 nodes" [ 3; 4; 5 ] (Wgraph.Cut.part_nodes part 1);
  Alcotest.(check (array int)) "part sizes" [| 3; 3 |] (Wgraph.Cut.part_sizes part);
  check "internal" true (Wgraph.Cut.is_internal part 0 1);
  check "crossing" false (Wgraph.Cut.is_internal part 2 3)

let test_cut_validation () =
  let g = Build.path 3 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Cut: partition length differs from node count")
    (fun () -> ignore (Wgraph.Cut.size g [| 0; 1 |]));
  Alcotest.check_raises "negative part"
    (Invalid_argument "Cut: negative part index") (fun () ->
      ignore (Wgraph.Cut.size g [| 0; -1; 0 |]))

let test_cut_all_same_part () =
  let g = Build.complete 5 in
  check_int "no cut" 0 (Wgraph.Cut.size g (Array.make 5 0))

let prop_cut_bounded_by_edges =
  QCheck.Test.make ~name:"0 <= cut <= m" ~count:60 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng 12 0.3 in
      let part = Array.init 12 (fun _ -> Prng.int rng 3) in
      let c = Wgraph.Cut.size g part in
      c >= 0 && c <= Graph.edge_count g
      && c = List.length (Wgraph.Cut.edges g part))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_bfs_distances () =
  let g = Build.path 5 in
  Alcotest.(check (array int)) "from 0" [| 0; 1; 2; 3; 4 |] (Wgraph.Metrics.bfs_distances g 0);
  Alcotest.(check (array int)) "from 2" [| 2; 1; 0; 1; 2 |] (Wgraph.Metrics.bfs_distances g 2)

let test_diameter () =
  check_int "path" 4 (Wgraph.Metrics.diameter (Build.path 5));
  check_int "cycle" 3 (Wgraph.Metrics.diameter (Build.cycle 6));
  check_int "complete" 1 (Wgraph.Metrics.diameter (Build.complete 4));
  check_int "single" 0 (Wgraph.Metrics.diameter (Graph.create 1));
  check_int "disconnected" (-1) (Wgraph.Metrics.diameter (Graph.create 3))

let test_connectivity () =
  check "path connected" true (Wgraph.Metrics.is_connected (Build.path 5));
  check "edgeless not" false (Wgraph.Metrics.is_connected (Graph.create 2));
  let comp, count = Wgraph.Metrics.connected_components (Graph.create 3) in
  check_int "three components" 3 count;
  Alcotest.(check (array int)) "ids" [| 0; 1; 2 |] comp

let test_degree_histogram () =
  let g = Build.star 5 in
  Alcotest.(check (list (pair int int))) "star histogram" [ (1, 4); (4, 1) ]
    (Wgraph.Metrics.degree_histogram g)

let test_density () =
  Alcotest.(check (float 1e-9)) "complete" 1.0 (Wgraph.Metrics.density (Build.complete 5));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Wgraph.Metrics.density (Graph.create 5))

(* ------------------------------------------------------------------ *)
(* Dot *)

let contains hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dot_contains_structure () =
  let g = Build.path 3 in
  Graph.set_label g 0 "a";
  let dot = Wgraph.Dot.to_dot ~name:"T" g in
  check "graph header" true (contains dot "graph \"T\"");
  check "edge" true (contains dot "0 -- 1");
  check "label" true (contains dot "label=\"a");
  let dot2 = Wgraph.Dot.to_dot ~partition:[| 0; 0; 1 |] g in
  check "clusters" true (contains dot2 "subgraph cluster_0");
  check "cut dashed" true (contains dot2 "style=dashed");
  let dot3 = Wgraph.Dot.to_dot ~highlight:(Bitset.of_list 3 [ 1 ]) g in
  check "highlight" true (contains dot3 "fillcolor=lightblue")

let test_ascii_summary_stable () =
  let g = Build.cycle 4 in
  Alcotest.(check string) "summary"
    "n=4 m=4 total_weight=4 max_degree=2 diameter=2\ndegree histogram: 2:4\n"
    (Wgraph.Dot.ascii_summary g)

(* ------------------------------------------------------------------ *)
(* Dimacs *)

let test_dimacs_roundtrip () =
  let g = Build.cycle 5 in
  Graph.set_weight g 2 7;
  let text = Wgraph.Dimacs.to_string ~comment:"test graph" g in
  let g', part = Wgraph.Dimacs.parse text in
  check "equal" true (Graph.equal g g');
  check "no partition" true (part = None)

let test_dimacs_partition () =
  let g = Build.path 4 in
  let text = Wgraph.Dimacs.to_string ~partition:[| 0; 0; 1; 2 |] g in
  let g', part = Wgraph.Dimacs.parse text in
  check "graph" true (Graph.equal g g');
  Alcotest.(check (option (array int))) "partition" (Some [| 0; 0; 1; 2 |]) part

let test_dimacs_format_shape () =
  let g = Build.path 2 in
  Graph.set_weight g 1 3;
  let text = Wgraph.Dimacs.to_string g in
  Alcotest.(check string) "exact format" "p edge 2 1\nn 2 3\ne 1 2\n" text

let test_dimacs_parse_errors () =
  check "no p line" true
    (try ignore (Wgraph.Dimacs.parse "e 1 2\n"); false with Failure _ -> true);
  check "bad int" true
    (try ignore (Wgraph.Dimacs.parse "p edge x 0\n"); false with Failure _ -> true);
  check "unknown record" true
    (try ignore (Wgraph.Dimacs.parse "p edge 2 0\nz 1\n"); false
     with Failure _ -> true);
  check "duplicate p" true
    (try ignore (Wgraph.Dimacs.parse "p edge 2 0\np edge 2 0\n"); false
     with Failure _ -> true)

let test_dimacs_file_io () =
  let g = Build.complete 4 in
  Graph.set_weight g 0 9;
  let path = Filename.temp_file "dimacs" ".col" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Wgraph.Dimacs.write_file path ~comment:"K4" ~partition:[| 0; 1; 0; 1 |] g;
      let g', part = Wgraph.Dimacs.read_file path in
      check "roundtrip" true (Graph.equal g g');
      check "partition" true (part = Some [| 0; 1; 0; 1 |]))

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs roundtrip on random graphs" ~count:60
    QCheck.(pair small_int small_int) (fun (seed, nn) ->
      let n = 1 + (nn mod 15) in
      let rng = Prng.create seed in
      let g = Build.erdos_renyi rng n 0.3 in
      Build.random_weights rng g 5;
      let g', _ = Wgraph.Dimacs.parse (Wgraph.Dimacs.to_string g) in
      Graph.equal g g')

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "wgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "create" `Quick test_create_empty;
          Alcotest.test_case "add edges" `Quick test_add_edges;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "bad node" `Quick test_bad_node;
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "iter edges" `Quick test_iter_edges_each_once;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "complement" `Quick test_complement;
        ] );
      ( "build",
        [
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "path/cycle/star" `Quick test_path_cycle_star;
          Alcotest.test_case "bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "complement of matching" `Quick
            test_connect_complement_of_matching;
          Alcotest.test_case "clique" `Quick test_make_clique;
          Alcotest.test_case "erdos-renyi extremes" `Quick test_erdos_renyi_extremes;
        ] );
      ( "check",
        [
          Alcotest.test_case "independent" `Quick test_is_independent;
          Alcotest.test_case "clique" `Quick test_is_clique;
          Alcotest.test_case "maximal independent" `Quick test_is_maximal_independent;
          Alcotest.test_case "cover/domination" `Quick test_vertex_cover_domination;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "complement of matching" `Quick
            test_matching_complement_of_matching;
          Alcotest.test_case "unbalanced" `Quick test_matching_unbalanced;
          Alcotest.test_case "empty" `Quick test_matching_empty;
          Alcotest.test_case "is_matching" `Quick test_is_matching_rejects;
        ] );
      qsuite "matching-props" [ prop_matching_bounded; prop_matching_konig ];
      ( "cut",
        [
          Alcotest.test_case "basic" `Quick test_cut_basic;
          Alcotest.test_case "validation" `Quick test_cut_validation;
          Alcotest.test_case "single part" `Quick test_cut_all_same_part;
        ] );
      qsuite "cut-props" [ prop_cut_bounded_by_edges ];
      ( "metrics",
        [
          Alcotest.test_case "bfs" `Quick test_bfs_distances;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "density" `Quick test_density;
        ] );
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_contains_structure;
          Alcotest.test_case "ascii summary" `Quick test_ascii_summary_stable;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "partition" `Quick test_dimacs_partition;
          Alcotest.test_case "format shape" `Quick test_dimacs_format_shape;
          Alcotest.test_case "parse errors" `Quick test_dimacs_parse_errors;
          Alcotest.test_case "file io" `Quick test_dimacs_file_io;
        ] );
      qsuite "dimacs-props" [ prop_dimacs_roundtrip ];
    ]
