(* Tests for the linear family (Section 4): fixed construction G, weighted
   instances G_x, cut structure, Definition 4 conditions, and the gap. *)

module P = Maxis_core.Params
module BG = Maxis_core.Base_graph
module LF = Maxis_core.Linear_family
module Family = Maxis_core.Family
module Predicate = Maxis_core.Predicate
module Inputs = Commcx.Inputs
module Graph = Wgraph.Graph
module Bitset = Stdx.Bitset
module Prng = Stdx.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Gap-valid parameters: ell > alpha * t. *)
let p3 = P.make ~alpha:1 ~ell:4 ~players:3
let fig2 = P.figure_params ~players:2

let rand_inputs seed p ~intersecting =
  let rng = Prng.create seed in
  Inputs.gen_promise rng ~k:(P.k p) ~t:p.P.players ~intersecting

(* ------------------------------------------------------------------ *)
(* Fixed construction *)

let test_fixed_census_figure_t2 () =
  (* Two copies of the Figure-1 H (12 nodes, 30 edges each) plus
     inter-copy connections: positions * q * (q-1) = 3*3*2 = 18. *)
  let g, part = LF.fixed fig2 in
  check_int "n" 24 (Graph.n g);
  check_int "m" (30 + 30 + 18) (Graph.edge_count g);
  check_int "cut" 18 (Wgraph.Cut.size g part);
  check_int "expected cut" 18 (LF.expected_cut_size fig2);
  Alcotest.(check (array int)) "part sizes" [| 12; 12 |] (Wgraph.Cut.part_sizes part)

let test_fixed_unit_weights () =
  let g, _ = LF.fixed p3 in
  check_int "total weight = n" (Graph.n g) (Graph.total_weight g)

let test_intercopy_connections_shape () =
  (* Figure 2: sigma^i_(h,r) adjacent to all of C^j_h except sigma^j_(h,r). *)
  let p = fig2 in
  let g, _ = LF.fixed p in
  let off0 = LF.copy_offset p 0 and off1 = LF.copy_offset p 1 in
  for h = 0 to P.positions p - 1 do
    for r = 0 to P.q p - 1 do
      for r' = 0 to P.q p - 1 do
        let u = BG.sigma_node p ~offset:off0 ~h ~r in
        let v = BG.sigma_node p ~offset:off1 ~h ~r:r' in
        check
          (Printf.sprintf "h=%d r=%d r'=%d" h r r')
          (r <> r') (Graph.has_edge g u v)
      done
    done
  done

let test_no_edges_between_different_positions () =
  (* C^i_h and C^j_h' are not connected for h <> h'. *)
  let p = fig2 in
  let g, _ = LF.fixed p in
  let u = BG.sigma_node p ~offset:(LF.copy_offset p 0) ~h:0 ~r:1 in
  let v = BG.sigma_node p ~offset:(LF.copy_offset p 1) ~h:1 ~r:2 in
  check "no cross-position edge" false (Graph.has_edge g u v)

let test_no_edges_between_a_cliques () =
  (* No edges between A^i and A^j, nor between A^i and Code^j. *)
  let p = p3 in
  let g, _ = LF.fixed p in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j then begin
        let vi = BG.a_node p ~offset:(LF.copy_offset p i) ~m:0 in
        let vj = BG.a_node p ~offset:(LF.copy_offset p j) ~m:1 in
        check "A-A" false (Graph.has_edge g vi vj);
        let sj = BG.sigma_node p ~offset:(LF.copy_offset p j) ~h:0 ~r:0 in
        check "A-Code" false (Graph.has_edge g vi sj)
      end
    done
  done

let test_cut_is_only_intercopy_code () =
  (* Every cut edge joins two code nodes at the same position h. *)
  let p = p3 in
  let g, part = LF.fixed p in
  List.iter
    (fun (u, v) ->
      let off_u = LF.copy_offset p part.(u) and off_v = LF.copy_offset p part.(v) in
      match (BG.node_kind p ~offset:off_u u, BG.node_kind p ~offset:off_v v) with
      | `Sigma (hu, _), `Sigma (hv, _) -> check_int "same position" hu hv
      | _ -> Alcotest.fail "cut edge touches an A node")
    (Wgraph.Cut.edges g part)

let test_cut_size_formula_across_t () =
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:3 ~players:t in
      let g, part = LF.fixed p in
      check_int
        (Printf.sprintf "cut t=%d" t)
        (LF.expected_cut_size p)
        (Wgraph.Cut.size g part))
    [ 2; 3; 4; 5 ]

let test_constant_diameter () =
  (* The paper notes the hard instances have constant diameter. *)
  List.iter
    (fun t ->
      let p = P.make ~alpha:1 ~ell:3 ~players:t in
      let g, _ = LF.fixed p in
      let d = Wgraph.Metrics.diameter g in
      check (Printf.sprintf "diameter t=%d is %d" t d) true (d >= 1 && d <= 4))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Weighted instances *)

let test_instance_weights () =
  let p = p3 in
  let x =
    Inputs.of_bit_lists ~k:(P.k p) [ [ 0; 2 ]; [ 1 ]; [] ]
  in
  let inst = LF.instance p x in
  let g = inst.Family.graph in
  let weight_of i m = Graph.weight g (BG.a_node p ~offset:(LF.copy_offset p i) ~m) in
  check_int "x^1_0 = 1 -> ell" (P.ell p) (weight_of 0 0);
  check_int "x^1_1 = 0 -> 1" 1 (weight_of 0 1);
  check_int "x^1_2 = 1 -> ell" (P.ell p) (weight_of 0 2);
  check_int "x^2_1 = 1 -> ell" (P.ell p) (weight_of 1 1);
  check_int "x^3 all zero" 1 (weight_of 2 0);
  (* code nodes always weigh 1 *)
  check_int "code weight" 1
    (Graph.weight g (BG.sigma_node p ~offset:(LF.copy_offset p 1) ~h:0 ~r:0))

let test_instance_edges_equal_fixed () =
  (* The weighting never changes the edge set. *)
  let p = p3 in
  let fixed_g, _ = LF.fixed p in
  let x = rand_inputs 5 p ~intersecting:true in
  let inst = LF.instance p x in
  check_int "same edges" (Graph.edge_count fixed_g) (Graph.edge_count inst.Family.graph);
  let same = ref true in
  Graph.iter_edges
    (fun u v -> if not (Graph.has_edge inst.Family.graph u v) then same := false)
    fixed_g;
  check "edge sets equal" true !same

let test_instance_input_validation () =
  let p = p3 in
  Alcotest.check_raises "wrong k"
    (Invalid_argument "Linear_family.instance: wrong string length") (fun () ->
      ignore (LF.instance p (Inputs.of_bit_lists ~k:4 [ []; []; [] ])));
  Alcotest.check_raises "wrong t"
    (Invalid_argument "Linear_family.instance: wrong number of players") (fun () ->
      ignore (LF.instance p (Inputs.of_bit_lists ~k:(P.k p) [ []; [] ])))

(* ------------------------------------------------------------------ *)
(* Property-1 set and the gap *)

let test_property1_set_weight () =
  (* On an instance where everyone holds m, the Property-1 set weighs
     exactly t(2ell+alpha). *)
  let p = p3 in
  let m = 2 in
  let x = Inputs.of_bit_lists ~k:(P.k p) [ [ m ]; [ m ]; [ m ] ] in
  let inst = LF.instance p x in
  let s = LF.property1_set p ~m in
  check "independent" true (Wgraph.Check.is_independent inst.Family.graph s);
  check_int "weight" (LF.high_weight p) (Graph.set_weight_of inst.Family.graph s)

let test_gap_thresholds () =
  let p = p3 in
  (* t=3, ell=4, alpha=1: high = 3*(8+1) = 27, low = 4*4 + 9 = 25 *)
  check_int "high" 27 (LF.high_weight p);
  check_int "low" 25 (LF.low_weight p);
  check "gap valid" true (LF.formal_gap_valid p);
  let pred = LF.predicate p in
  Alcotest.(check (float 1e-6)) "gamma" (25.0 /. 27.0) (Predicate.gamma pred)

let test_gap_invalid_at_figure_params () =
  (* ell=2, alpha=1, t=3: alpha*t = 3 > ell -> no formal gap. *)
  let p = P.figure_params ~players:3 in
  check "invalid" false (LF.formal_gap_valid p)

let test_condition2_exhaustive_singletons () =
  (* All-singleton inputs with t=2, ell=4 (gap valid: 4 > 2): x^1 = {a},
     x^2 = {b}; intersecting iff a = b.  Exhaustive over k^2 pairs. *)
  let p = P.make ~alpha:1 ~ell:4 ~players:2 in
  let spec = LF.spec p in
  for a = 0 to P.k p - 1 do
    for b = 0 to P.k p - 1 do
      let x = Inputs.of_bit_lists ~k:(P.k p) [ [ a ]; [ b ] ] in
      let r = Family.check_condition2 spec x in
      check (Printf.sprintf "a=%d b=%d" a b) true r.Family.ok;
      Alcotest.(check bool) "expected matches disjointness" (a <> b) r.Family.expected
    done
  done

let test_condition1_locality () =
  let p = p3 in
  let spec = LF.spec p in
  let base = [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let x1 = Inputs.of_bit_lists ~k:(P.k p) base in
  let x2 = Inputs.of_bit_lists ~k:(P.k p) [ [ 0 ]; [ 1; 3; 4 ]; [ 2 ] ] in
  let r = Family.check_condition1 spec x1 x2 ~player:1 in
  check "local" true r.Family.ok;
  Alcotest.(check (list int)) "no foreign weights" [] r.Family.foreign_weight_diffs;
  (* Varying two players at once is rejected. *)
  let x3 = Inputs.of_bit_lists ~k:(P.k p) [ [ 3 ]; [ 1; 3 ]; [ 2 ] ] in
  Alcotest.check_raises "two players varied"
    (Invalid_argument "Family.check_condition1: inputs differ outside the varied player")
    (fun () -> ignore (Family.check_condition1 spec x1 x3 ~player:1))

let test_claim3_exact_tightness () =
  (* The Property-1 set realizes exactly the Claim-3 bound, and on sparse
     intersecting instances OPT equals it (nothing better exists). *)
  let p = p3 in
  let m = 0 in
  let x = Inputs.of_bit_lists ~k:(P.k p) [ [ m ]; [ m ]; [ m ] ] in
  let inst = LF.instance p x in
  check_int "OPT = t(2l+a)" (LF.high_weight p) (Mis.Exact.opt inst.Family.graph)

let test_condition1_catches_leaky_family () =
  (* Negative control: a family where player 2's string changes player 1's
     weights must be flagged by the checker — otherwise the checker proves
     nothing. *)
  let p = p3 in
  let leaky_build x =
    let inst = LF.instance p x in
    (* Leak: if player 1 holds bit 0, bump a node owned by player 0. *)
    if Inputs.bit x ~player:1 0 then
      Graph.set_weight inst.Family.graph
        (Maxis_core.Base_graph.a_node p ~offset:(LF.copy_offset p 0) ~m:0)
        99;
    inst
  in
  let spec = { (LF.spec p) with Family.build = leaky_build } in
  let x1 = Inputs.of_bit_lists ~k:(P.k p) [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let x2 = Inputs.of_bit_lists ~k:(P.k p) [ [ 1 ]; [ 0 ]; [ 3 ] ] in
  let r = Family.check_condition1 spec x1 x2 ~player:1 in
  check "leak detected" false r.Family.ok;
  check "the leaked node is listed" true
    (List.mem
       (Maxis_core.Base_graph.a_node p ~offset:(LF.copy_offset p 0) ~m:0)
       r.Family.foreign_weight_diffs)

let test_condition1_catches_leaky_edges () =
  (* Same idea with a foreign edge: player 1's bit toggles an edge inside
     player 0's region. *)
  let p = p3 in
  let leaky_build x =
    let inst = LF.instance p x in
    if Inputs.bit x ~player:1 0 then
      Graph.remove_edge inst.Family.graph
        (Maxis_core.Base_graph.a_node p ~offset:(LF.copy_offset p 0) ~m:0)
        (Maxis_core.Base_graph.a_node p ~offset:(LF.copy_offset p 0) ~m:1);
    inst
  in
  let spec = { (LF.spec p) with Family.build = leaky_build } in
  let x1 = Inputs.of_bit_lists ~k:(P.k p) [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let x2 = Inputs.of_bit_lists ~k:(P.k p) [ [ 1 ]; [ 0 ]; [ 3 ] ] in
  let r = Family.check_condition1 spec x1 x2 ~player:1 in
  check "edge leak detected" false r.Family.ok;
  check "edge listed" true (r.Family.foreign_edge_diffs <> [])

let prop_gap_over_random_promise_inputs =
  QCheck.Test.make ~name:"linear gap: verdict matches promise side" ~count:25
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let p = p3 in
      let x = rand_inputs seed p ~intersecting:inter in
      let inst = LF.instance p x in
      let opt = Mis.Exact.opt inst.Family.graph in
      if inter then opt >= LF.high_weight p else opt <= LF.low_weight p)

let prop_cut_independent_of_inputs =
  QCheck.Test.make ~name:"cut never depends on inputs" ~count:15
    QCheck.(pair small_int bool) (fun (seed, inter) ->
      let p = p3 in
      let x = rand_inputs seed p ~intersecting:inter in
      let inst = LF.instance p x in
      Family.cut_size inst = LF.expected_cut_size p)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "linear-family"
    [
      ( "fixed",
        [
          Alcotest.test_case "census t=2 figure" `Quick test_fixed_census_figure_t2;
          Alcotest.test_case "unit weights" `Quick test_fixed_unit_weights;
          Alcotest.test_case "inter-copy shape (Fig 2)" `Quick
            test_intercopy_connections_shape;
          Alcotest.test_case "no cross-position edges" `Quick
            test_no_edges_between_different_positions;
          Alcotest.test_case "no A-A / A-Code cross edges" `Quick
            test_no_edges_between_a_cliques;
          Alcotest.test_case "cut = inter-copy code edges" `Quick
            test_cut_is_only_intercopy_code;
          Alcotest.test_case "cut formula across t" `Quick test_cut_size_formula_across_t;
          Alcotest.test_case "constant diameter" `Quick test_constant_diameter;
        ] );
      ( "instances",
        [
          Alcotest.test_case "weights follow inputs" `Quick test_instance_weights;
          Alcotest.test_case "edges fixed" `Quick test_instance_edges_equal_fixed;
          Alcotest.test_case "validation" `Quick test_instance_input_validation;
        ] );
      ( "gap",
        [
          Alcotest.test_case "property-1 set weight" `Quick test_property1_set_weight;
          Alcotest.test_case "thresholds" `Quick test_gap_thresholds;
          Alcotest.test_case "figure params have no formal gap" `Quick
            test_gap_invalid_at_figure_params;
          Alcotest.test_case "condition 2 exhaustive t=2" `Slow
            test_condition2_exhaustive_singletons;
          Alcotest.test_case "condition 1 locality" `Quick test_condition1_locality;
          Alcotest.test_case "condition 1 catches leaky weights" `Quick
            test_condition1_catches_leaky_family;
          Alcotest.test_case "condition 1 catches leaky edges" `Quick
            test_condition1_catches_leaky_edges;
          Alcotest.test_case "claim 3 tight" `Quick test_claim3_exact_tightness;
        ] );
      qsuite "gap-props"
        [ prop_gap_over_random_promise_inputs; prop_cut_independent_of_inputs ];
    ]
